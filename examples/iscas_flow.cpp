// Full two-stage flow on a real ISCAS85 netlist.
//
// Parses a `.bench` file (the in-tree c17 by default, or a path given as
// argv[1]), elaborates it into a physical circuit, runs logic simulation +
// WOSS wire ordering, then the OGWS Lagrangian sizing, and prints the
// before/after metrics plus the KKT residual certificate.
//
// Run: build/examples/iscas_flow [path/to/netlist.bench]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/flow.hpp"
#include "core/kkt.hpp"
#include "netlist/bench_parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lrsizer;

  netlist::LogicNetlist logic;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    try {
      logic = netlist::parse_bench(in);
    } catch (const netlist::BenchParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("netlist: %s\n", argv[1]);
  } else {
    logic = netlist::parse_bench_string(netlist::kIscas85C17);
    std::printf("netlist: built-in ISCAS85 c17\n");
  }

  std::printf("  %d gates, %zu inputs, %zu outputs, depth %d\n\n",
              logic.num_real_gates(), logic.primary_inputs().size(),
              logic.primary_outputs().size(), logic.depth());

  core::FlowOptions options;
  options.num_vectors = 64;
  // Small/shallow circuits (like c17) are infeasible under the strict
  // Table 1 factors (noise 0.10x pins wires at the minimum width, where the
  // wire resistance alone busts a 1.00x delay bound); keep a little slack.
  options.bound_factors.delay = 1.15;
  options.bound_factors.noise = 0.12;
  const core::FlowResult flow = core::run_two_stage_flow(logic, options);

  std::printf("circuit graph: %d gates + %d wires = %d components, %d edges\n",
              flow.circuit.num_gates(), flow.circuit.num_wires(),
              flow.circuit.num_components(), flow.circuit.num_edges());
  std::printf("stage 1: effective loading %.3f -> %.3f (WOSS), %.1f ms\n",
              flow.ordering_cost_initial, flow.ordering_cost_woss,
              flow.stage1_seconds * 1e3);
  std::printf("stage 2: %s after %d iterations, %.1f ms\n\n",
              flow.ogws.converged ? "converged" : "stopped", flow.ogws.iterations,
              flow.stage2_seconds * 1e3);

  util::TextTable table({"metric", "init", "final"});
  table.add_row({"noise (fF)", util::TextTable::num(flow.init_metrics.noise_f * 1e15),
                 util::TextTable::num(flow.final_metrics.noise_f * 1e15)});
  table.add_row({"delay (ps)", util::TextTable::num(flow.init_metrics.delay_s * 1e12),
                 util::TextTable::num(flow.final_metrics.delay_s * 1e12)});
  table.add_row({"power (mW)", util::TextTable::num(flow.init_metrics.power_w * 1e3),
                 util::TextTable::num(flow.final_metrics.power_w * 1e3)});
  table.add_row({"area (um2)", util::TextTable::num(flow.init_metrics.area_um2),
                 util::TextTable::num(flow.final_metrics.area_um2)});
  table.print(std::cout);

  std::printf("\nmemory: %.2f MB tracked (Table 1 style accounting)\n",
              static_cast<double>(flow.memory_bytes) / (1024.0 * 1024.0));
  return 0;
}
