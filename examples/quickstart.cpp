// Quickstart: size the paper's Figure 1 circuit, then drive the staged
// session API.
//
// Act 1 — three input drivers, three gates, seven wires and one output
// load. We build the circuit graph by hand with CircuitBuilder, declare two
// routing channels so the wires have coupling neighbors, derive bounds from
// the unit-size metrics and run OGWS. Output: a before/after metric table
// plus the per-component sizes.
//
// Act 2 — api::SizingSession on ISCAS85 c17: validated options through
// FlowOptionsBuilder, the four pipeline stages run individually, a
// per-iteration progress observer, and a warm-started re-size that skips
// the converged work.
//
// Run: build/examples/quickstart [--jobs N]
// With --jobs, a third act sizes two Table-1 circuits concurrently through
// the batch runtime (runtime/batch) — the same path `lrsizer batch` drives.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "api/options.hpp"
#include "api/session.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/builder.hpp"
#include "runtime/batch.hpp"
#include "timing/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lrsizer;

  int batch_jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      batch_jobs = std::atoi(argv[++i]);
    }
  }

  // ---- build the Figure 1 circuit ----------------------------------------
  netlist::TechParams tech;
  netlist::CircuitBuilder builder(tech);

  const auto d1 = builder.add_driver();
  const auto d2 = builder.add_driver();
  const auto d3 = builder.add_driver();

  const auto w1 = builder.add_wire(300.0);
  const auto w2 = builder.add_wire(250.0);
  const auto w3 = builder.add_wire(400.0);
  const auto gate_a = builder.add_gate();
  const auto w4 = builder.add_wire(350.0);
  const auto w5 = builder.add_wire(200.0);
  const auto gate_b = builder.add_gate();
  const auto w6 = builder.add_wire(300.0);
  const auto gate_c = builder.add_gate();
  const auto w7 = builder.add_wire(450.0);

  builder.connect(d1, w1);
  builder.connect(d2, w2);
  builder.connect(d3, w3);
  builder.connect(w1, gate_a);
  builder.connect(w2, gate_a);
  builder.connect(gate_a, w4);
  builder.connect(gate_a, w5);
  builder.connect(w3, gate_b);
  builder.connect(w4, gate_b);
  builder.connect(gate_b, w6);
  builder.connect(w5, gate_c);
  builder.connect(w6, gate_c);
  builder.connect(gate_c, w7);
  builder.mark_primary_output(w7, tech.output_load);

  netlist::Circuit circuit = builder.finalize();

  // ---- coupling: two routing channels -------------------------------------
  // Input wires run side by side, and so do the inter-gate wires.
  const std::vector<std::vector<netlist::NodeId>> channels = {
      {builder.node_of(w1), builder.node_of(w2), builder.node_of(w3)},
      {builder.node_of(w4), builder.node_of(w5), builder.node_of(w6),
       builder.node_of(w7)},
  };
  layout::NeighborOptions neighbor_options;
  neighbor_options.fold_miller = false;  // no simulation in this example
  const layout::CouplingSet coupling =
      layout::build_coupling_set(circuit, channels, neighbor_options);

  // ---- bounds from the unit-size starting point ----------------------------
  circuit.set_uniform_size(1.0);
  const auto mode = timing::CouplingLoadMode::kLocalOnly;
  const timing::Metrics init =
      timing::compute_metrics(circuit, coupling, circuit.sizes(), mode);

  core::BoundFactors factors;  // delay 1.0x, power 0.15x, noise 0.10x
  const core::Bounds bounds =
      core::derive_bounds(circuit, coupling, circuit.sizes(), mode, factors);

  // ---- optimize -------------------------------------------------------------
  const core::OgwsResult sized = core::run_ogws(circuit, coupling, bounds);
  circuit.mutable_sizes() = sized.sizes;
  const timing::Metrics fin =
      timing::compute_metrics(circuit, coupling, circuit.sizes(), mode);

  // ---- report ---------------------------------------------------------------
  std::printf("OGWS: %s after %d iterations (gap %.3f%%, violation %.3f%%)\n\n",
              sized.converged ? "converged" : "stopped", sized.iterations,
              100.0 * sized.rel_gap, 100.0 * sized.max_violation);

  util::TextTable table({"metric", "bound", "init", "final", "impr%"});
  auto impr = [](double a, double b) { return 100.0 * (a - b) / a; };
  table.add_row({"noise (fF)", util::TextTable::num(bounds.noise_f * 1e15),
                 util::TextTable::num(init.noise_f * 1e15),
                 util::TextTable::num(fin.noise_f * 1e15),
                 util::TextTable::num(impr(init.noise_f, fin.noise_f), 1)});
  table.add_row({"delay (ps)", util::TextTable::num(bounds.delay_s * 1e12),
                 util::TextTable::num(init.delay_s * 1e12),
                 util::TextTable::num(fin.delay_s * 1e12),
                 util::TextTable::num(impr(init.delay_s, fin.delay_s), 1)});
  table.add_row({"power (mW)",
                 util::TextTable::num(bounds.cap_f * circuit.tech().power_per_farad() * 1e3),
                 util::TextTable::num(init.power_w * 1e3),
                 util::TextTable::num(fin.power_w * 1e3),
                 util::TextTable::num(impr(init.power_w, fin.power_w), 1)});
  table.add_row({"area (um2)", "-", util::TextTable::num(init.area_um2),
                 util::TextTable::num(fin.area_um2),
                 util::TextTable::num(impr(init.area_um2, fin.area_um2), 1)});
  table.print(std::cout);

  std::printf("\nfinal sizes (um):\n");
  const char* names[] = {"w1", "w2", "w3", "gateA", "w4", "w5",
                         "gateB", "w6", "gateC", "w7"};
  const netlist::CircuitBuilder::Handle handles[] = {w1, w2, w3, gate_a, w4, w5,
                                                     gate_b, w6, gate_c, w7};
  for (std::size_t i = 0; i < std::size(handles); ++i) {
    std::printf("  %-6s %.3f\n", names[i], circuit.size(builder.node_of(handles[i])));
  }

  // ---- act 2: the staged session API on ISCAS85 c17 -------------------------
  {
    std::printf("\nsession demo: staged sizing of ISCAS85 c17\n");

    // Options through the validating builder (c17 is so shallow that the
    // Table-1 factors are infeasible; these are the feasible ones).
    core::FlowOptions options;
    const api::Status built = api::FlowOptionsBuilder()
                                  .vectors(16)
                                  .delay_bound(1.15)
                                  .noise_bound(0.12)
                                  .build(options);
    std::printf("  options: %s\n", built.to_string().c_str());

    api::SizingSession session(netlist::parse_bench_string(netlist::kIscas85C17),
                               options);
    int iterations_seen = 0;
    session.set_observer([&](const core::OgwsIterate&) { ++iterations_seen; });

    // The same pipeline run_two_stage_flow() chains, one stage at a time —
    // a server or notebook can checkpoint, report or abort between stages.
    std::printf("  elaborate:          %s\n", session.elaborate().to_string().c_str());
    std::printf("  simulate_and_order: %s\n",
                session.simulate_and_order().to_string().c_str());
    std::printf("  derive_bounds:      %s\n",
                session.derive_bounds().to_string().c_str());
    std::printf("  size:               %s\n", session.size().to_string().c_str());

    const core::FlowSummary s = session.summary();
    std::printf("  %s after %d iterations (observer saw %d), area %.1f um2\n",
                s.converged ? "converged" : "stopped", s.iterations,
                iterations_seen, s.final_metrics.area_um2);

    // Warm start: a new session seeded with this result re-converges almost
    // immediately under identical options.
    api::SizingSession rerun(netlist::parse_bench_string(netlist::kIscas85C17),
                             options);
    (void)rerun.warm_start_from(session.result());
    if (rerun.run_all().ok()) {
      std::printf("  warm-started re-size: %d iteration(s) to re-converge\n",
                  rerun.summary().iterations);
    }
  }

  // ---- optional third act: batch two circuits in parallel -------------------
  if (batch_jobs > 0) {
    std::printf("\nbatch demo (--jobs %d): sizing c432 and c499 concurrently\n",
                batch_jobs);
    std::vector<runtime::BatchJob> jobs;
    jobs.push_back(runtime::make_profile_job("c432"));
    jobs.push_back(runtime::make_profile_job("c499"));
    runtime::BatchOptions batch_options;
    batch_options.jobs = batch_jobs;
    const runtime::BatchResult batch =
        runtime::run_batch(std::move(jobs), batch_options);
    for (const auto& job : batch.jobs) {
      if (!job.ok) {
        std::printf("  %s FAILED: %s\n", job.name.c_str(), job.error.c_str());
        continue;
      }
      std::printf("  %-5s %d iterations, final area %.0f um2, %.2f s\n",
                  job.name.c_str(), job.summary.iterations,
                  job.summary.final_metrics.area_um2, job.seconds);
    }
    std::printf("  wall %.2f s on %d worker(s), results identical at any -j\n",
                batch.wall_seconds, batch.num_workers);
  }

  std::printf("\nnext: the CLI drives this at scale — try\n"
              "  build/tools/lrsizer batch --profiles all --jobs 8\n"
              "  build/tools/lrsizer --help\n");
  return 0;
}
