// Stage 1 walk-through: the paper's Figure 6 scenario.
//
// Four wires carry square waves with different phases and polarities. We
// compute the switching similarity of every pair, the Miller weights
// 1 - similarity, and compare three track orderings: the initial one, the
// WOSS heuristic's, and the exhaustive optimum. Wires that switch together
// end up on adjacent tracks, minimizing the total effective loading.
//
// Run: build/examples/crosstalk_ordering
#include <cstdio>
#include <iostream>
#include <vector>

#include "layout/ordering.hpp"
#include "sim/similarity.hpp"
#include "sim/waveform.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;
  using sim::SimTime;
  using sim::Waveform;

  // Four waveforms over [0, 1000): like the paper's wires 4, 5, 7, 8.
  const SimTime horizon = 1000;
  std::vector<Waveform> waves(4);

  // wire "4": square wave, period 250, starts high.
  waves[0].set_initial_value(1);
  for (SimTime t = 125; t < horizon; t += 125) waves[0].add_toggle(t);
  // wire "5": same wave, slightly lagged — switches *with* wire 4.
  waves[1].set_initial_value(1);
  for (SimTime t = 135; t < horizon; t += 125) waves[1].add_toggle(t);
  // wire "7": complement of wire 4 — switches *against* it.
  waves[2].set_initial_value(0);
  for (SimTime t = 125; t < horizon; t += 125) waves[2].add_toggle(t);
  // wire "8": slow wave, period 500 — roughly uncorrelated.
  waves[3].set_initial_value(1);
  for (SimTime t = 250; t < horizon; t += 250) waves[3].add_toggle(t);

  const sim::SimilarityMatrix matrix(waves, horizon);
  const char* names[] = {"w4", "w5", "w7", "w8"};

  std::printf("similarity(i,j) = (1/T)*integral of f_i*f_j  (paper section 3.2)\n\n");
  util::TextTable sim_table({"pair", "similarity", "miller weight 1-s"});
  for (std::int32_t a = 0; a < 4; ++a) {
    for (std::int32_t b = a + 1; b < 4; ++b) {
      sim_table.add_row({std::string(names[a]) + "-" + names[b],
                         util::TextTable::num(matrix.at(a, b), 3),
                         util::TextTable::num(matrix.miller_weight(a, b), 3)});
    }
  }
  sim_table.print(std::cout);

  // Weight matrix for the SS problem.
  std::vector<double> weights(16);
  for (std::int32_t a = 0; a < 4; ++a) {
    for (std::int32_t b = 0; b < 4; ++b) {
      weights[static_cast<std::size_t>(a * 4 + b)] = matrix.miller_weight(a, b);
    }
  }
  const layout::DenseWeights view(4, std::move(weights));

  const std::vector<std::int32_t> initial = {0, 1, 2, 3};
  const std::vector<std::int32_t> woss = layout::woss_ordering(view);
  const std::vector<std::int32_t> optimal = layout::optimal_ordering_bruteforce(view);

  auto show = [&](const char* label, const std::vector<std::int32_t>& order) {
    std::printf("%-18s <", label);
    for (std::size_t i = 0; i < order.size(); ++i) {
      std::printf("%s%s", names[order[i]], i + 1 < order.size() ? "," : "");
    }
    std::printf(">  effective loading = %.3f\n",
                layout::ordering_cost(view, order));
  };
  std::printf("\n");
  show("initial order", initial);
  show("WOSS (Figure 7)", woss);
  show("exhaustive optimum", optimal);
  return 0;
}
