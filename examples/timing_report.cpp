// Timing report: STA-style view of a sized circuit.
//
// Runs the two-stage flow on a generated circuit, then prints
//   * the critical path with per-node delays and arrivals,
//   * the most critical components by slack,
//   * the worst coupling victims (per-net noise), and
//   * optionally dumps the simulation waveforms as a VCD file (argv[1]).
//
// Run: build/examples/timing_report [out.vcd]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "timing/arrival.hpp"
#include "timing/paths.hpp"
#include "timing/slack.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lrsizer;

  netlist::GeneratorSpec spec;
  spec.num_gates = 150;
  spec.num_wires = 320;
  spec.num_inputs = 16;
  spec.num_outputs = 10;
  spec.depth = 12;
  spec.seed = 21;
  const auto logic = netlist::generate_circuit(spec);

  core::FlowOptions options;
  const auto flow = core::run_two_stage_flow(logic, options);
  const auto& circuit = flow.circuit;

  // Re-run the analyses at the final sizes.
  timing::LoadAnalysis loads;
  timing::compute_loads(circuit, flow.coupling, circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis arrivals;
  timing::compute_arrivals(circuit, circuit.sizes(), loads, arrivals);
  timing::SlackAnalysis slacks;
  timing::compute_slacks(circuit, arrivals, flow.bounds.delay_s, slacks);

  std::printf("critical delay %.1f ps against bound %.1f ps (worst slack %.2f ps)\n\n",
              arrivals.critical_delay * 1e12, flow.bounds.delay_s * 1e12,
              slacks.worst_slack * 1e12);

  auto kind_name = [&](netlist::NodeId v) {
    if (circuit.is_gate(v)) return "gate";
    if (circuit.is_wire(v)) return "wire";
    if (circuit.is_driver(v)) return "driver";
    return "?";
  };

  std::printf("critical path (%zu nodes):\n",
              timing::critical_path(circuit, arrivals).size());
  util::TextTable path_table({"node", "kind", "size(um)", "D(ps)", "a(ps)", "slack(ps)"});
  for (netlist::NodeId v : timing::critical_path(circuit, arrivals)) {
    const auto i = static_cast<std::size_t>(v);
    path_table.add_row({util::TextTable::integer(v), kind_name(v),
                        util::TextTable::num(circuit.size(v), 3),
                        util::TextTable::num(arrivals.delay[i] * 1e12, 2),
                        util::TextTable::num(arrivals.arrival[i] * 1e12, 1),
                        util::TextTable::num(slacks.slack[i] * 1e12, 2)});
  }
  path_table.print(std::cout);

  std::printf("\nthree longest paths (top-K enumeration):\n");
  util::TextTable topk_table({"rank", "delay(ps)", "nodes"});
  const auto paths = timing::top_k_paths(circuit, arrivals, 3);
  for (std::size_t r = 0; r < paths.size(); ++r) {
    topk_table.add_row({util::TextTable::integer(static_cast<long long>(r + 1)),
                        util::TextTable::num(paths[r].delay_s * 1e12, 1),
                        util::TextTable::integer(
                            static_cast<long long>(paths[r].nodes.size()))});
  }
  topk_table.print(std::cout);

  std::printf("\nten most critical components by slack:\n");
  util::TextTable crit_table({"node", "kind", "slack(ps)"});
  int shown = 0;
  for (netlist::NodeId v : timing::nodes_by_criticality(circuit, slacks)) {
    if (!circuit.is_sized(v)) continue;
    crit_table.add_row({util::TextTable::integer(v), kind_name(v),
                        util::TextTable::num(slacks.slack[static_cast<std::size_t>(v)] *
                                                 1e12,
                                             2)});
    if (++shown == 10) break;
  }
  crit_table.print(std::cout);

  std::printf("\nworst coupling victims (per-net noise, final sizes):\n");
  struct Victim {
    netlist::NodeId node;
    double noise;
  };
  std::vector<Victim> victims;
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    if (!circuit.is_wire(v) || flow.coupling.owned_pairs(v).empty()) continue;
    victims.push_back({v, flow.coupling.owned_noise_linear(v, circuit.sizes())});
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.noise > b.noise; });
  util::TextTable noise_table({"wire", "owned pairs", "noise(fF)"});
  for (std::size_t k = 0; k < victims.size() && k < 10; ++k) {
    noise_table.add_row(
        {util::TextTable::integer(victims[k].node),
         util::TextTable::integer(
             static_cast<long long>(flow.coupling.owned_pairs(victims[k].node).size())),
         util::TextTable::num(victims[k].noise * 1e15, 2)});
  }
  noise_table.print(std::cout);

  if (argc > 1) {
    const auto vectors = sim::random_vectors(spec.num_inputs, 32, 7);
    const auto sim_result = sim::simulate(logic, vectors);
    std::ofstream vcd(argv[1]);
    sim::write_vcd(logic, sim_result, vcd);
    std::printf("\nwaveforms written to %s\n", argv[1]);
  }
  return 0;
}
