// Constraint sweep: the area cost of tightening each bound.
//
// Generates a mid-size synthetic circuit and sweeps (a) the delay bound and
// (b) the noise bound, printing the optimized area at each point. This is
// the classic area-delay / area-noise tradeoff curve the LR formulation
// makes cheap to explore: only the bounds change, the machinery is reused.
//
// Run: build/examples/constraint_sweep
#include <cstdio>
#include <iostream>

#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;

  netlist::GeneratorSpec spec;
  spec.num_gates = 200;
  spec.num_wires = 400;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.depth = 14;
  spec.seed = 42;
  const netlist::LogicNetlist logic = netlist::generate_circuit(spec);

  std::printf("circuit: %d gates, target %d wires (seed %llu)\n\n", spec.num_gates,
              spec.num_wires, static_cast<unsigned long long>(spec.seed));

  // --- sweep the delay bound at fixed noise/power factors -------------------
  util::TextTable delay_table(
      {"delay factor", "area (um2)", "delay (ps)", "noise (fF)", "iters"});
  for (const double f : {0.80, 0.90, 1.00, 1.10, 1.25, 1.50}) {
    core::FlowOptions options;
    options.bound_factors.delay = f;
    const core::FlowResult flow = core::run_two_stage_flow(logic, options);
    delay_table.add_row({util::TextTable::num(f),
                         util::TextTable::num(flow.final_metrics.area_um2, 0),
                         util::TextTable::num(flow.final_metrics.delay_s * 1e12, 1),
                         util::TextTable::num(flow.final_metrics.noise_f * 1e15, 1),
                         util::TextTable::integer(flow.ogws.iterations)});
  }
  std::printf("area vs delay bound (noise 0.10x, power 0.15x):\n");
  delay_table.print(std::cout);

  // --- sweep the noise bound --------------------------------------------------
  util::TextTable noise_table(
      {"noise factor", "area (um2)", "delay (ps)", "noise (fF)", "iters"});
  for (const double f : {0.05, 0.10, 0.20, 0.40, 0.80}) {
    core::FlowOptions options;
    options.bound_factors.noise = f;
    const core::FlowResult flow = core::run_two_stage_flow(logic, options);
    noise_table.add_row({util::TextTable::num(f),
                         util::TextTable::num(flow.final_metrics.area_um2, 0),
                         util::TextTable::num(flow.final_metrics.delay_s * 1e12, 1),
                         util::TextTable::num(flow.final_metrics.noise_f * 1e15, 1),
                         util::TextTable::integer(flow.ogws.iterations)});
  }
  std::printf("\narea vs noise bound (delay 1.00x, power 0.15x):\n");
  noise_table.print(std::cout);
  return 0;
}
