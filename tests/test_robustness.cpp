// Failure injection and randomized stress: wrong inputs must die loudly
// (the checked-assert contract), and the full flow must uphold its
// invariants under arbitrary option combinations.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "timing/loads.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;

// ---- failure injection ------------------------------------------------------

TEST(FailureDeath, SimulatorRejectsWrongVectorWidth) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  EXPECT_DEATH(sim::simulate(logic, {{1, 0, 1}}), "vector width");
}

TEST(FailureDeath, SimulatorRejectsGateDelayBeyondPeriod) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  sim::SimOptions options;
  options.vector_period = 4;
  options.gate_delay = 8;
  EXPECT_DEATH(sim::simulate(logic, {{1, 0, 1, 0, 1}}, options), "gate_delay");
}

TEST(FailureDeath, LoadsRejectWrongSizeVector) {
  auto c = ChainCircuit::make();
  const auto coupling = test_support::no_coupling(c.circuit);
  std::vector<double> wrong(3, 1.0);  // must be num_nodes() long
  timing::LoadAnalysis loads;
  EXPECT_DEATH(timing::compute_loads(c.circuit, coupling, wrong,
                                     timing::CouplingLoadMode::kLocalOnly, loads),
               "x.size");
}

TEST(FailureDeath, WireNeedsPositiveLength) {
  netlist::CircuitBuilder b;
  EXPECT_DEATH(b.add_wire(0.0), "length");
  EXPECT_DEATH(b.add_wire(-3.0), "length");
}

TEST(FailureDeath, GeneratorRejectsImpossibleWireBudget) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 10;
  spec.num_wires = 5;  // fewer wires than gates+outputs can use
  EXPECT_DEATH(netlist::generate_circuit(spec), "num_wires");
}

TEST(FailureDeath, GeneratorRejectsOverfullWireBudget) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 10;
  spec.num_wires = 500;  // beyond the fanin cap of 5 per gate
  EXPECT_DEATH(netlist::generate_circuit(spec), "num_wires");
}

TEST(FailureDeath, UnknownProfileName) {
  EXPECT_DEATH(netlist::iscas85_profile("c9999"), "unknown");
}

// ---- randomized option stress -----------------------------------------------

struct StressCase {
  std::uint64_t seed;
};

class FlowStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowStress, InvariantsHoldUnderRandomOptions) {
  util::Rng rng(GetParam());

  netlist::GeneratorSpec spec;
  spec.num_gates = rng.uniform_int(40, 160);
  spec.num_inputs = rng.uniform_int(6, 24);
  spec.num_outputs = rng.uniform_int(4, 12);
  spec.depth = rng.uniform_int(5, 18);
  spec.num_wires =
      rng.uniform_int(spec.num_gates + spec.num_outputs + 8, 4 * spec.num_gates);
  spec.seed = rng.next_u64();

  core::FlowOptions options;
  options.elab = spec.elab;
  options.elab.max_star_fanout = rng.uniform_int(3, 10);
  options.elab.segments_per_wire = 1;
  options.elab.differentiate_gate_types = rng.bernoulli(0.5);
  spec.elab = options.elab;  // keep the generator's oracle consistent
  options.num_vectors = rng.uniform_int(8, 40);
  options.pattern_seed = rng.next_u64();
  options.channels.max_channel_width = rng.uniform_int(6, 40);
  options.neighbors.fold_miller = rng.bernoulli(0.7);
  options.use_woss = rng.bernoulli(0.8);
  options.bound_factors.delay = rng.uniform(1.0, 1.4);
  options.bound_factors.power = rng.uniform(0.14, 0.5);
  options.bound_factors.noise = rng.uniform(0.12, 0.6);
  if (rng.bernoulli(0.3)) {
    options.bound_factors.per_net_noise = rng.uniform(0.2, 0.8);
  }
  options.ogws.lrs.mode = rng.bernoulli(0.25)
                              ? timing::CouplingLoadMode::kPropagateUpstream
                              : timing::CouplingLoadMode::kLocalOnly;
  options.ogws.lrs.warm_start = rng.bernoulli(0.3);

  const auto logic = netlist::generate_circuit(spec);
  const auto flow = core::run_two_stage_flow(logic, options);

  // Structural invariants.
  EXPECT_EQ(flow.circuit.num_gates(), spec.num_gates);
  EXPECT_EQ(flow.circuit.num_wires(), spec.num_wires);
  flow.circuit.validate();

  // Solution invariants: box bounds always; feasibility within a generous
  // tolerance (a few configurations are legitimately tight).
  for (netlist::NodeId v = flow.circuit.first_component();
       v < flow.circuit.end_component(); ++v) {
    EXPECT_GE(flow.circuit.size(v), flow.circuit.lower_bound(v) - 1e-12);
    EXPECT_LE(flow.circuit.size(v), flow.circuit.upper_bound(v) + 1e-12);
  }
  EXPECT_LE(flow.ogws.max_violation, 0.10);
  EXPECT_LE(flow.final_metrics.area_um2, flow.init_metrics.area_um2 * 1.001);
  EXPECT_LE(flow.ordering_cost_woss, flow.ordering_cost_initial + 1e-12);
  EXPECT_GT(flow.memory_bytes, util::MemoryTracker::kBaseBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowStress,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108,
                                           109, 110));

}  // namespace
