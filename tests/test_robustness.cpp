// Failure injection and randomized stress: wrong inputs must die loudly
// (the checked-assert contract), the full flow must uphold its invariants
// under arbitrary option combinations, and — via the src/fault framework
// (docs/RELIABILITY.md) — the serving stack must degrade cleanly when
// storage, allocation, parsing, or client sockets fail underneath it.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#endif

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "fault/fault.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"
#include "runtime/cache.hpp"
#include "runtime/json.hpp"
#include "serve/listen.hpp"
#include "serve/server.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "timing/loads.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using runtime::Json;

// ---- failure injection ------------------------------------------------------

TEST(FailureDeath, SimulatorRejectsWrongVectorWidth) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  EXPECT_DEATH(sim::simulate(logic, {{1, 0, 1}}), "vector width");
}

TEST(FailureDeath, SimulatorRejectsGateDelayBeyondPeriod) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  sim::SimOptions options;
  options.vector_period = 4;
  options.gate_delay = 8;
  EXPECT_DEATH(sim::simulate(logic, {{1, 0, 1, 0, 1}}, options), "gate_delay");
}

TEST(FailureDeath, LoadsRejectWrongSizeVector) {
  auto c = ChainCircuit::make();
  const auto coupling = test_support::no_coupling(c.circuit);
  std::vector<double> wrong(3, 1.0);  // must be num_nodes() long
  timing::LoadAnalysis loads;
  EXPECT_DEATH(timing::compute_loads(c.circuit, coupling, wrong,
                                     timing::CouplingLoadMode::kLocalOnly, loads),
               "x.size");
}

TEST(FailureDeath, WireNeedsPositiveLength) {
  netlist::CircuitBuilder b;
  EXPECT_DEATH(b.add_wire(0.0), "length");
  EXPECT_DEATH(b.add_wire(-3.0), "length");
}

TEST(FailureDeath, GeneratorRejectsImpossibleWireBudget) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 10;
  spec.num_wires = 5;  // fewer wires than gates+outputs can use
  EXPECT_DEATH(netlist::generate_circuit(spec), "num_wires");
}

TEST(FailureDeath, GeneratorRejectsOverfullWireBudget) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 10;
  spec.num_wires = 500;  // beyond the fanin cap of 5 per gate
  EXPECT_DEATH(netlist::generate_circuit(spec), "num_wires");
}

TEST(FailureDeath, UnknownProfileName) {
  EXPECT_DEATH(netlist::iscas85_profile("c9999"), "unknown");
}

// ---- randomized option stress -----------------------------------------------

struct StressCase {
  std::uint64_t seed;
};

class FlowStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowStress, InvariantsHoldUnderRandomOptions) {
  util::Rng rng(GetParam());

  netlist::GeneratorSpec spec;
  spec.num_gates = rng.uniform_int(40, 160);
  spec.num_inputs = rng.uniform_int(6, 24);
  spec.num_outputs = rng.uniform_int(4, 12);
  spec.depth = rng.uniform_int(5, 18);
  spec.num_wires =
      rng.uniform_int(spec.num_gates + spec.num_outputs + 8, 4 * spec.num_gates);
  spec.seed = rng.next_u64();

  core::FlowOptions options;
  options.elab = spec.elab;
  options.elab.max_star_fanout = rng.uniform_int(3, 10);
  options.elab.segments_per_wire = 1;
  options.elab.differentiate_gate_types = rng.bernoulli(0.5);
  spec.elab = options.elab;  // keep the generator's oracle consistent
  options.num_vectors = rng.uniform_int(8, 40);
  options.pattern_seed = rng.next_u64();
  options.channels.max_channel_width = rng.uniform_int(6, 40);
  options.neighbors.fold_miller = rng.bernoulli(0.7);
  options.use_woss = rng.bernoulli(0.8);
  options.bound_factors.delay = rng.uniform(1.0, 1.4);
  options.bound_factors.power = rng.uniform(0.14, 0.5);
  options.bound_factors.noise = rng.uniform(0.12, 0.6);
  if (rng.bernoulli(0.3)) {
    options.bound_factors.per_net_noise = rng.uniform(0.2, 0.8);
  }
  options.ogws.lrs.mode = rng.bernoulli(0.25)
                              ? timing::CouplingLoadMode::kPropagateUpstream
                              : timing::CouplingLoadMode::kLocalOnly;
  options.ogws.lrs.warm_start = rng.bernoulli(0.3);

  const auto logic = netlist::generate_circuit(spec);
  const auto flow = core::run_two_stage_flow(logic, options);

  // Structural invariants.
  EXPECT_EQ(flow.circuit.num_gates(), spec.num_gates);
  EXPECT_EQ(flow.circuit.num_wires(), spec.num_wires);
  flow.circuit.validate();

  // Solution invariants: box bounds always; feasibility within a generous
  // tolerance (a few configurations are legitimately tight).
  for (netlist::NodeId v = flow.circuit.first_component();
       v < flow.circuit.end_component(); ++v) {
    EXPECT_GE(flow.circuit.size(v), flow.circuit.lower_bound(v) - 1e-12);
    EXPECT_LE(flow.circuit.size(v), flow.circuit.upper_bound(v) + 1e-12);
  }
  EXPECT_LE(flow.ogws.max_violation, 0.10);
  EXPECT_LE(flow.final_metrics.area_um2, flow.init_metrics.area_um2 * 1.001);
  EXPECT_LE(flow.ordering_cost_woss, flow.ordering_cost_initial + 1e-12);
  EXPECT_GT(flow.memory_bytes, util::MemoryTracker::kBaseBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowStress,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108,
                                           109, 110));

// ---- deterministic fault injection (src/fault) ------------------------------

/// Disarm on both ends of every test: a leaked rule would fail unrelated
/// suites in ways that look like real bugs. The framework is process-global
/// and gtest runs tests sequentially, so no two fault tests overlap.
struct FaultGuard {
  FaultGuard() { fault::reset(); }
  ~FaultGuard() { fault::reset(); }
};

TEST(Fault, DisarmedIsTheDefaultAndPointsNeverFire) {
  FaultGuard guard;
  EXPECT_FALSE(fault::armed());
  for (const std::string& point : fault::known_points()) {
    EXPECT_FALSE(fault::should_fail(point.c_str())) << point;
  }
  // The macro short-circuits on the armed flag, so this is also the
  // disarmed fast path every production call site takes.
  EXPECT_FALSE(LRSIZER_FAULT_POINT("cache.read"));
  EXPECT_TRUE(fault::armed_points().empty());
}

TEST(Fault, TriggerGrammarAlwaysNthEveryAndSeededProbability) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("cache.read:always"));
  EXPECT_TRUE(fault::armed());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fault::should_fail("cache.read"));
  EXPECT_EQ(fault::injected_count("cache.read"), 5u);
  // Arming one point leaves the others disarmed.
  EXPECT_FALSE(fault::should_fail("cache.write"));

  // nth=3 fires on exactly the third hit, once.
  ASSERT_TRUE(fault::arm("cache.read:nth=3"));  // re-arming resets counters
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fault::should_fail("cache.read"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(fault::injected_count("cache.read"), 1u);

  // every=2 fires on hits 2, 4, 6, ...
  ASSERT_TRUE(fault::arm("cache.read:every=2"));
  fired.clear();
  for (int i = 0; i < 6; ++i) fired.push_back(fault::should_fail("cache.read"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));

  // Probabilistic triggers are seeded, hence reproducible: the same spec
  // yields the same firing sequence, and the extremes are exact.
  ASSERT_TRUE(fault::arm("cache.read:p=1"));
  EXPECT_TRUE(fault::should_fail("cache.read"));
  ASSERT_TRUE(fault::arm("cache.read:p=0@42"));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(fault::should_fail("cache.read"));
  ASSERT_TRUE(fault::arm("cache.read:p=0.5@42"));
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) first.push_back(fault::should_fail("cache.read"));
  ASSERT_TRUE(fault::arm("cache.read:p=0.5@42"));
  std::vector<bool> second;
  for (int i = 0; i < 32; ++i) second.push_back(fault::should_fail("cache.read"));
  EXPECT_EQ(first, second);

  fault::reset();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::injected_count("cache.read"), 0u);
}

TEST(Fault, BadSpecsAreRejectedWithAReason) {
  FaultGuard guard;
  const char* bad[] = {
      "",                      // empty
      "cache.read",            // missing trigger
      "warp.core:always",      // unknown point
      "cache.read:sometimes",  // unknown trigger
      "cache.read:nth=0",      // counts are 1-based
      "cache.read:every=0",
      "cache.read:nth=",       // no digits
      "cache.read:p=1.5",      // probability out of [0, 1]
      "cache.read:p=x",
      "cache.read:p=0.5@0",    // xorshift64 seeds must be nonzero
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(fault::arm(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
  // An unknown point names the valid ones in the message (typo debugging).
  std::string error;
  ASSERT_FALSE(fault::arm("warp.core:always", &error));
  EXPECT_NE(error.find("cache.read"), std::string::npos);
  // Nothing was armed along the way.
  EXPECT_FALSE(fault::armed());
}

TEST(Fault, ArmFromEnvironmentParsesCommaSeparatedSpecs) {
  FaultGuard guard;
  ::setenv("LRSIZER_FAULT", "cache.read:nth=2,json.parse:always", 1);
  std::string error;
  EXPECT_EQ(fault::arm_from_env(&error), 2);
  EXPECT_TRUE(error.empty()) << error;
  const auto points = fault::armed_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], "cache.read");
  EXPECT_EQ(points[1], "json.parse");

  ::setenv("LRSIZER_FAULT", "cache.read:nope", 1);
  EXPECT_EQ(fault::arm_from_env(&error), -1);
  EXPECT_FALSE(error.empty());

  ::unsetenv("LRSIZER_FAULT");
  EXPECT_EQ(fault::arm_from_env(&error), 0);
}

// ---- disk-cache integrity ---------------------------------------------------

/// Fresh scratch directory per test (removed on destruction).
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("lrsizer_robust_" + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
};

runtime::CachedEntry make_entry(const std::string& marker) {
  runtime::CachedEntry entry;
  entry.job = Json::object();
  entry.job.set("name", marker);
  entry.sizes = {{7, 1.25}, {8, 2.5}};
  return entry;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

TEST(CacheIntegrity, ChecksummedEntriesRoundTripAndOldFilesStillLoad) {
  FaultGuard guard;
  ScratchDir dir("roundtrip");
  const runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  {
    runtime::ResultCache cache(dir.path.string());
    cache.store(key, make_entry("keep"));
  }
  const auto file = dir.path / (key.key + ".json");
  ASSERT_TRUE(std::filesystem::exists(file));
  const std::string text = read_file(file);
  EXPECT_NE(text.find("\"checksum\""), std::string::npos);
  {
    runtime::ResultCache cache(dir.path.string());
    const auto hit = cache.lookup(key.key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->job.at("name").as_string(), "keep");
    EXPECT_EQ(cache.corrupt(), 0u);
  }

  // Back-compat: a pre-checksum file (the field stripped wholesale) is
  // accepted as-is, not quarantined — v3 readers serve caches written by
  // older builds.
  const std::size_t line_at = text.find("  \"checksum\"");
  ASSERT_NE(line_at, std::string::npos);
  const std::size_t line_end = text.find('\n', line_at);
  std::string stripped = text;
  stripped.erase(line_at, line_end - line_at + 1);
  write_file(file, stripped);
  runtime::ResultCache cache(dir.path.string());
  const auto hit = cache.lookup(key.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->job.at("name").as_string(), "keep");
  EXPECT_EQ(cache.corrupt(), 0u);
}

TEST(CacheIntegrity, BitRotFailsTheChecksumAndQuarantinesTheFile) {
  FaultGuard guard;
  ScratchDir dir("bitrot");
  const runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  {
    runtime::ResultCache cache(dir.path.string());
    cache.store(key, make_entry("truth"));
  }
  // One flipped byte inside the payload: still valid JSON, wrong content —
  // exactly what schema validation alone cannot catch.
  const auto file = dir.path / (key.key + ".json");
  std::string text = read_file(file);
  const std::size_t at = text.find("truth");
  ASSERT_NE(at, std::string::npos);
  text[at] = 'x';
  write_file(file, text);

  runtime::ResultCache cache(dir.path.string());
  EXPECT_EQ(cache.lookup(key.key), nullptr);
  EXPECT_EQ(cache.corrupt(), 1u);
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_TRUE(std::filesystem::exists(dir.path / (key.key + ".corrupt")));
  // The quarantined file is out of the way: a repeat lookup is a plain
  // miss, not a second quarantine.
  EXPECT_EQ(cache.lookup(key.key), nullptr);
  EXPECT_EQ(cache.corrupt(), 1u);
  // And a re-store simply writes a fresh good entry alongside the corpse.
  cache.store(key, make_entry("fresh"));
  runtime::ResultCache reopened(dir.path.string());
  ASSERT_NE(reopened.lookup(key.key), nullptr);
  EXPECT_TRUE(std::filesystem::exists(dir.path / (key.key + ".corrupt")));
}

TEST(CacheIntegrity, TornRenameIsQuarantinedOnTheNextRead) {
  FaultGuard guard;
  ScratchDir dir("torn");
  const runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  ASSERT_TRUE(fault::arm("cache.rename:always"));
  {
    runtime::ResultCache cache(dir.path.string());
    cache.store(key, make_entry("torn"));  // final file lands half-written
  }
  fault::reset();
  const auto file = dir.path / (key.key + ".json");
  ASSERT_TRUE(std::filesystem::exists(file));

  runtime::ResultCache cache(dir.path.string());
  EXPECT_EQ(cache.lookup(key.key), nullptr);
  EXPECT_EQ(cache.corrupt(), 1u);
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_TRUE(std::filesystem::exists(dir.path / (key.key + ".corrupt")));
}

TEST(CacheIntegrity, WriteFailureSkipsPersistenceWithoutFailingTheStore) {
  FaultGuard guard;
  ScratchDir dir("enospc");
  const runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  ASSERT_TRUE(fault::arm("cache.write:always"));
  runtime::ResultCache cache(dir.path.string());
  cache.store(key, make_entry("lost"));  // disk full: entry not persisted
  fault::reset();
  // The in-memory copy still serves this process...
  ASSERT_NE(cache.lookup(key.key), nullptr);
  // ...but nothing (whole or torn) reached the directory.
  EXPECT_FALSE(std::filesystem::exists(dir.path / (key.key + ".json")));
  // A restart sees a plain miss, never a truncated entry.
  runtime::ResultCache restarted(dir.path.string());
  EXPECT_EQ(restarted.lookup(key.key), nullptr);
  EXPECT_EQ(restarted.corrupt(), 0u);
}

TEST(CacheIntegrity, TruncatedReadIsQuarantined) {
  FaultGuard guard;
  ScratchDir dir("shortread");
  const runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  {
    runtime::ResultCache cache(dir.path.string());
    cache.store(key, make_entry("whole"));
  }
  ASSERT_TRUE(fault::arm("cache.read:always"));
  runtime::ResultCache cache(dir.path.string());
  EXPECT_EQ(cache.lookup(key.key), nullptr);
  EXPECT_EQ(cache.corrupt(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.path / (key.key + ".corrupt")));
}

// ---- server under injected faults -------------------------------------------

/// Thread-safe response collector (the test-side Sink), as in test_serve.
struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Json> lines;

  serve::Server::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(Json::parse(line));
      cv.notify_all();
    };
  }

  std::vector<Json> of_type(const std::string& type) {
    const std::lock_guard<std::mutex> lock(mutex);
    std::vector<Json> matching;
    for (const Json& line : lines) {
      if (line.at("type").as_string() == type) matching.push_back(line);
    }
    return matching;
  }
};

std::string size_request(const std::string& id, const std::string& profile) {
  return R"({"type":"size","id":")" + id + R"(","input":{"profile":")" +
         profile + R"("},"options":{"vectors":8}})";
}

TEST(RobustServe, AllocationFailureFailsTheJobNotTheServer) {
  FaultGuard guard;
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  // The first elaboration throws bad_alloc (the big-allocation site a
  // 10^6-node job would really hit); the job fails cleanly...
  ASSERT_TRUE(fault::arm("session.alloc:nth=1"));
  ASSERT_TRUE(server.handle_line(size_request("oom", "c17")));
  server.drain();
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("id").as_string(), "oom");
  EXPECT_EQ(errors[0].at("code").as_string(), "failed");
  EXPECT_NE(errors[0].at("message").as_string().find("alloc"),
            std::string::npos);
  // ...and the server keeps serving.
  ASSERT_TRUE(server.handle_line(size_request("next", "c17")));
  server.drain();
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("id").as_string(), "next");
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(RobustServe, InjectedParseFailureEchoesTheRequestId) {
  FaultGuard guard;
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  ASSERT_TRUE(fault::arm("json.parse:always"));
  ASSERT_TRUE(server.handle_line(size_request("p1", "c17")));
  fault::reset();
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("code").as_string(), "parse");
  // The point sits after id extraction, so chaos clients can match the
  // injected error back to their request and retry it.
  EXPECT_EQ(errors[0].at("id").as_string(), "p1");
  ASSERT_TRUE(server.handle_line(size_request("p2", "c17")));
  server.drain();
  ASSERT_EQ(collector.of_type("result").size(), 1u);
}

TEST(RobustServe, PersistFailureStillAnswersTheJob) {
  FaultGuard guard;
  ScratchDir dir("serve_enospc");
  Collector collector;
  runtime::ResultCache cache(dir.path.string());
  serve::ServerOptions options;
  options.jobs = 1;
  options.cache = &cache;
  serve::Server server(options, collector.sink());
  server.hello();
  // The disk fills up exactly when the result would persist: the client
  // still gets its result; only the cross-process cache entry is lost.
  ASSERT_TRUE(fault::arm("cache.write:always"));
  ASSERT_TRUE(server.handle_line(size_request("a", "c17")));
  server.drain();
  fault::reset();
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("id").as_string(), "a");
  EXPECT_TRUE(collector.of_type("error").empty());
  EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

#if defined(__unix__) || defined(__APPLE__)

/// Minimal TCP harness (test_serve.cpp has the full-featured twin).
struct FaultTcpServer {
  serve::ServerOptions options;
  std::stop_source stop;
  std::unique_ptr<serve::Server> server;
  std::atomic<std::uint16_t> port{0};
  std::atomic<bool> done{false};
  std::thread thread;

  explicit FaultTcpServer(serve::ServerOptions opts)
      : options(std::move(opts)) {
    options.stop = stop.get_token();
    server = std::make_unique<serve::Server>(options);
    thread = std::thread([this] {
      serve::ListenOptions listen;
      listen.port = 0;
      listen.bound_port = &port;
      serve::listen_and_serve(listen, *server);
      done.store(true);
    });
    while (port.load() == 0 && !done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ~FaultTcpServer() {
    stop.request_stop();
    thread.join();
  }
};

struct FaultTcpClient {
  int fd = -1;
  std::string buffer;

  explicit FaultTcpClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval timeout{60, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~FaultTcpClient() {
    if (fd >= 0) ::close(fd);
  }
  FaultTcpClient(const FaultTcpClient&) = delete;
  FaultTcpClient& operator=(const FaultTcpClient&) = delete;

  bool ok() const { return fd >= 0; }

  void send_line(const std::string& line) {
    const std::string bytes = line + "\n";
    std::size_t off = 0;
    while (off < bytes.size()) {
#if defined(MSG_NOSIGNAL)
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
#endif
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t newline = buffer.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<Json> read_until(const std::string& type) {
    for (;;) {
      const auto line = read_line();
      if (!line) return std::nullopt;
      Json j = Json::parse(*line);
      if (j.at("type").as_string() == type) return j;
    }
  }
};

TEST(RobustServe, SocketWriteFailureReapsTheClientAndTheServerSurvives) {
  FaultGuard guard;
  serve::ServerOptions options;
  options.jobs = 1;
  FaultTcpServer ts(options);
  ASSERT_NE(ts.port.load(), 0);

  FaultTcpClient doomed(ts.port.load());
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(doomed.read_until("hello").has_value());
  // From here every socket write "fails" — as if the peer's half of the
  // connection died. The accepted response for the next request hits the
  // fault, the sink marks the connection broken, and the event loop reaps
  // it exactly like a disconnect.
  ASSERT_TRUE(fault::arm("socket.write:always"));
  doomed.send_line(size_request("x", "c17"));
  EXPECT_FALSE(doomed.read_line().has_value());  // EOF: reaped, not hung
  fault::reset();

  // The server itself shrugged it off: a new client full-round-trips.
  FaultTcpClient survivor(ts.port.load());
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(survivor.read_until("hello").has_value());
  survivor.send_line(size_request("y", "c17"));
  const auto result = survivor.read_until("result");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->at("id").as_string(), "y");
}

#endif  // sockets

}  // namespace
