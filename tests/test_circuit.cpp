// Circuit graph + builder invariants (paper §2.1 index contract).
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/circuit.hpp"
#include "test_helpers.hpp"
#include "util/memtrack.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

TEST(Circuit, ChainShape) {
  const auto c = ChainCircuit::make();
  EXPECT_EQ(c.circuit.num_drivers(), 1);
  EXPECT_EQ(c.circuit.num_gates(), 1);
  EXPECT_EQ(c.circuit.num_wires(), 2);
  EXPECT_EQ(c.circuit.num_components(), 3);
  // nodes: source + 1 driver + 3 components + sink
  EXPECT_EQ(c.circuit.num_nodes(), 6);
  // edges: source->driver, d->w1, w1->g, g->w2, w2->sink
  EXPECT_EQ(c.circuit.num_edges(), 5);
}

TEST(Circuit, IndexContract) {
  const auto f = Fig1Circuit::make();
  const auto& c = f.circuit;
  EXPECT_EQ(c.source(), 0);
  EXPECT_EQ(c.sink(), c.num_nodes() - 1);
  EXPECT_EQ(c.kind(0), netlist::NodeKind::kSource);
  EXPECT_EQ(c.kind(c.sink()), netlist::NodeKind::kSink);
  for (netlist::NodeId v = 1; v <= c.num_drivers(); ++v) {
    EXPECT_TRUE(c.is_driver(v));
  }
  for (netlist::NodeId v = c.first_component(); v < c.end_component(); ++v) {
    EXPECT_TRUE(c.is_sized(v));
  }
  for (netlist::EdgeId e = 0; e < c.num_edges(); ++e) {
    EXPECT_LT(c.edge_from(e), c.edge_to(e));
  }
}

TEST(Circuit, Fig1Counts) {
  const auto f = Fig1Circuit::make();
  EXPECT_EQ(f.circuit.num_drivers(), 3);
  EXPECT_EQ(f.circuit.num_gates(), 3);
  EXPECT_EQ(f.circuit.num_wires(), 7);
  // n + s + 2 nodes, exactly as the paper's Figure 2 (15 nodes, 0..14).
  EXPECT_EQ(f.circuit.num_nodes(), 15);
}

TEST(Circuit, AdjacencyMatchesConstruction) {
  const auto c = ChainCircuit::make();
  ASSERT_EQ(c.circuit.outputs(c.driver).size(), 1u);
  EXPECT_EQ(c.circuit.outputs(c.driver)[0], c.wire_in);
  ASSERT_EQ(c.circuit.inputs(c.gate).size(), 1u);
  EXPECT_EQ(c.circuit.inputs(c.gate)[0], c.wire_in);
  ASSERT_EQ(c.circuit.outputs(c.wire_out).size(), 1u);
  EXPECT_EQ(c.circuit.outputs(c.wire_out)[0], c.circuit.sink());
}

TEST(Circuit, EdgeCsrConsistency) {
  const auto f = Fig1Circuit::make();
  const auto& c = f.circuit;
  for (netlist::NodeId v = 0; v < c.num_nodes(); ++v) {
    const auto outs = c.outputs(v);
    const auto out_edges = c.output_edges(v);
    ASSERT_EQ(outs.size(), out_edges.size());
    for (std::size_t k = 0; k < outs.size(); ++k) {
      EXPECT_EQ(c.edge_from(out_edges[k]), v);
      EXPECT_EQ(c.edge_to(out_edges[k]), outs[k]);
    }
  }
}

TEST(Circuit, ResistanceAndCapacitanceModel) {
  const netlist::TechParams tech;
  const auto c = ChainCircuit::make(tech);
  // Gate: r = r̂/x, c = ĉ·x, no fringing.
  EXPECT_DOUBLE_EQ(c.circuit.resistance(c.gate, 2.0), tech.gate_unit_res / 2.0);
  EXPECT_DOUBLE_EQ(c.circuit.ground_cap(c.gate, 2.0), tech.gate_unit_cap * 2.0);
  EXPECT_DOUBLE_EQ(c.circuit.fringe_cap(c.gate), 0.0);
  // Wire (200 µm): scaled per-µm values plus fringing.
  EXPECT_DOUBLE_EQ(c.circuit.unit_res(c.wire_in), tech.wire_res_per_um * 200.0);
  EXPECT_DOUBLE_EQ(c.circuit.unit_cap(c.wire_in), tech.wire_cap_per_um * 200.0);
  EXPECT_DOUBLE_EQ(c.circuit.fringe_cap(c.wire_in), tech.wire_fringe_per_um * 200.0);
  // Driver resistance is size-independent.
  EXPECT_DOUBLE_EQ(c.circuit.resistance(c.driver, 123.0), tech.driver_res);
}

TEST(Circuit, SetUniformSizeClampsToBounds) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1e9);
  for (netlist::NodeId v = c.circuit.first_component(); v < c.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(c.circuit.size(v), c.circuit.upper_bound(v));
  }
  c.circuit.set_uniform_size(0.0);
  for (netlist::NodeId v = c.circuit.first_component(); v < c.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(c.circuit.size(v), c.circuit.lower_bound(v));
  }
}

TEST(Circuit, PinLoadOnPrimaryOutput) {
  const netlist::TechParams tech;
  const auto c = ChainCircuit::make(tech);
  EXPECT_DOUBLE_EQ(c.circuit.pin_load(c.wire_out), tech.output_load);
  EXPECT_DOUBLE_EQ(c.circuit.pin_load(c.wire_in), 0.0);
}

TEST(Circuit, MemoryAccountingIsPositiveAndGrows) {
  util::MemoryTracker small_t;
  ChainCircuit::make().circuit.account_memory(small_t);
  util::MemoryTracker big_t;
  Fig1Circuit::make().circuit.account_memory(big_t);
  EXPECT_GT(small_t.tracked_bytes(), 0u);
  EXPECT_GT(big_t.tracked_bytes(), small_t.tracked_bytes());
}

TEST(CircuitBuilder, TopologicalRenumberingHandlesShuffledInsertion) {
  // Build gates in "wrong" order: connections still force topological ids.
  netlist::CircuitBuilder b;
  const auto g2 = b.add_gate();   // consumes w1
  const auto w2 = b.add_wire(100.0);
  const auto g1 = b.add_gate();   // drives w1
  const auto w1 = b.add_wire(100.0);
  const auto d = b.add_driver();
  const auto w0 = b.add_wire(100.0);
  b.connect(d, w0);
  b.connect(w0, g1);
  b.connect(g1, w1);
  b.connect(w1, g2);
  b.connect(g2, w2);
  b.mark_primary_output(w2);
  const auto c = b.finalize();
  c.validate();
  EXPECT_LT(b.node_of(g1), b.node_of(w1));
  EXPECT_LT(b.node_of(w1), b.node_of(g2));
  EXPECT_LT(b.node_of(g2), b.node_of(w2));
}

TEST(CircuitBuilderDeath, RejectsCycle) {
  EXPECT_DEATH(
      {
        netlist::CircuitBuilder b;
        const auto d = b.add_driver();
        const auto g1 = b.add_gate();
        const auto g2 = b.add_gate();
        const auto w = b.add_wire(10.0);
        b.connect(d, w);
        b.connect(w, g1);
        b.connect(g1, g2);
        b.connect(g2, g1);  // cycle
        b.mark_primary_output(g2);
        b.finalize();
      },
      "cycle");
}

TEST(CircuitBuilderDeath, RejectsUndrivenComponent) {
  EXPECT_DEATH(
      {
        netlist::CircuitBuilder b;
        const auto d = b.add_driver();
        const auto w = b.add_wire(10.0);
        const auto g = b.add_gate();  // never driven
        b.connect(d, w);
        b.mark_primary_output(w);
        (void)g;
        b.finalize();
      },
      "undriven");
}

TEST(CircuitBuilderDeath, RejectsDanglingComponent) {
  EXPECT_DEATH(
      {
        netlist::CircuitBuilder b;
        const auto d = b.add_driver();
        const auto w = b.add_wire(10.0);
        const auto w2 = b.add_wire(10.0);
        b.connect(d, w);
        b.connect(d, w2);  // w2 drives nothing and is no PO
        b.mark_primary_output(w);
        b.finalize();
      },
      "dangling");
}

TEST(CircuitBuilderDeath, RejectsMissingPrimaryOutput) {
  EXPECT_DEATH(
      {
        netlist::CircuitBuilder b;
        const auto d = b.add_driver();
        const auto w = b.add_wire(10.0);
        const auto g = b.add_gate();
        b.connect(d, w);
        b.connect(w, g);
        b.finalize();  // no primary output declared
      },
      "primary output");
}

TEST(CircuitBuilderDeath, RejectsFaninIntoDriver) {
  EXPECT_DEATH(
      {
        netlist::CircuitBuilder b;
        const auto d = b.add_driver();
        const auto w = b.add_wire(10.0);
        b.connect(w, d);
      },
      "fanin");
}

TEST(CircuitBuilder, BoundsOverride) {
  netlist::CircuitBuilder b;
  const auto d = b.add_driver();
  const auto w = b.add_wire(10.0);
  b.connect(d, w);
  b.mark_primary_output(w);
  b.set_bounds(w, 0.5, 2.0);
  const auto c = b.finalize();
  EXPECT_DOUBLE_EQ(c.lower_bound(b.node_of(w)), 0.5);
  EXPECT_DOUBLE_EQ(c.upper_bound(b.node_of(w)), 2.0);
}

}  // namespace
