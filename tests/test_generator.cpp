// Synthetic circuit generator: exact counts, structure, determinism.
#include <gtest/gtest.h>

#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"

namespace {

using namespace lrsizer;

TEST(Generator, ExactGateCount) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 100;
  spec.num_wires = 210;
  spec.num_inputs = 12;
  spec.num_outputs = 10;
  const auto n = netlist::generate_circuit(spec);
  EXPECT_EQ(n.num_real_gates(), 100);
  EXPECT_EQ(n.primary_inputs().size(), 12u);
  EXPECT_EQ(n.primary_outputs().size(), 10u);
}

TEST(Generator, WireCountOracleHitsTarget) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 80;
  spec.num_wires = 170;
  spec.num_inputs = 10;
  spec.num_outputs = 6;
  const auto n = netlist::generate_circuit(spec);
  EXPECT_EQ(netlist::count_wires(n, spec.elab), spec.num_wires);
}

TEST(Generator, WireTargetHoldsAcrossSeeds) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 250;
  spec.num_wires = 520;
  spec.num_inputs = 25;
  spec.num_outputs = 18;
  spec.depth = 18;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    spec.seed = seed;
    const auto n = netlist::generate_circuit(spec);
    EXPECT_EQ(netlist::count_wires(n, spec.elab), spec.num_wires) << "seed " << seed;
  }
}

TEST(Generator, EveryNetUsed) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 150;
  spec.num_wires = 320;
  spec.num_inputs = 20;
  spec.num_outputs = 8;
  spec.seed = 99;
  const auto n = netlist::generate_circuit(spec);
  for (std::int32_t g = 0; g < n.num_gates_logic(); ++g) {
    EXPECT_TRUE(n.fanout_count(g) > 0 || n.is_primary_output(g))
        << "net " << g << " unused";
  }
}

TEST(Generator, DepthIsClose) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 200;
  spec.num_wires = 420;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  spec.depth = 15;
  const auto n = netlist::generate_circuit(spec);
  // The spine guarantees >= depth before repair; splicing can only deepen.
  EXPECT_GE(n.depth(), 15);
  EXPECT_LE(n.depth(), 15 + 6);
}

TEST(Generator, DeterministicForSameSeed) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 60;
  spec.num_wires = 130;
  spec.seed = 1234;
  const auto a = netlist::generate_circuit(spec);
  const auto b = netlist::generate_circuit(spec);
  ASSERT_EQ(a.num_gates_logic(), b.num_gates_logic());
  for (std::int32_t g = 0; g < a.num_gates_logic(); ++g) {
    EXPECT_EQ(a.gate(g).op, b.gate(g).op);
    EXPECT_EQ(a.gate(g).fanin, b.gate(g).fanin);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 60;
  spec.num_wires = 130;
  spec.seed = 1;
  const auto a = netlist::generate_circuit(spec);
  spec.seed = 2;
  const auto b = netlist::generate_circuit(spec);
  bool any_diff = false;
  for (std::int32_t g = 0; g < a.num_gates_logic() && !any_diff; ++g) {
    any_diff = a.gate(g).op != b.gate(g).op || a.gate(g).fanin != b.gate(g).fanin;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, LowFaninBudgetMakesInverterHeavyCircuit) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 100;
  // budget = 130 -> ~70 single-input gates, ~30 two-input (the usage and
  // wire-count repairs may shift a few pins around).
  spec.num_wires = 130 + 8;
  spec.num_outputs = 8;
  const auto n = netlist::generate_circuit(spec);
  int single = 0;
  for (const auto& g : n.gates()) {
    if (g.op != netlist::LogicOp::kInput && g.fanin.size() == 1) ++single;
  }
  EXPECT_GE(single, 55);
  EXPECT_LE(single, 80);
  EXPECT_EQ(netlist::count_wires(n, spec.elab), spec.num_wires);
}

TEST(Generator, ProfilesProduceExactPaperCounts) {
  // The two smallest paper circuits (full sweep lives in the benches).
  for (const char* name : {"c432", "c880"}) {
    const auto& profile = netlist::iscas85_profile(name);
    const auto spec = netlist::spec_for_profile(name, 5);
    const auto logic = netlist::generate_circuit(spec);
    EXPECT_EQ(logic.num_real_gates(), profile.num_gates);
    const auto wires = netlist::count_wires(logic, netlist::ElabOptions{});
    EXPECT_EQ(wires, profile.num_wires) << name;
  }
}

TEST(IscasProfiles, AllTenPresentWithPaperRows) {
  const auto& profiles = netlist::iscas85_profiles();
  ASSERT_EQ(profiles.size(), 10u);
  for (const auto& p : profiles) {
    EXPECT_GT(p.num_gates, 0);
    EXPECT_GT(p.num_wires, p.num_gates);  // paper: ~2 wires per gate
    EXPECT_GT(p.paper.noise_init_pf, p.paper.noise_fin_pf);
    EXPECT_GT(p.paper.area_init_um2, p.paper.area_fin_um2);
  }
  EXPECT_EQ(netlist::iscas85_profile("c7552").num_gates, 3512);
  EXPECT_EQ(netlist::iscas85_profile("c7552").num_wires, 6144);
}

}  // namespace
