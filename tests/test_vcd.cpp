// Direct coverage for sim/vcd.hpp: header structure, identifier uniqueness,
// and an initial-value/toggle round-trip through a small VCD reader.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace lrsizer {
namespace {

sim::SimResult simulate_netlist(const netlist::LogicNetlist& logic,
                                std::int32_t vectors = 8) {
  const auto inputs = sim::random_vectors(
      static_cast<std::int32_t>(logic.primary_inputs().size()), vectors, 11);
  return sim::simulate(logic, inputs);
}

/// Minimal VCD reader for the subset write_vcd emits: declared ids in order,
/// per-id initial value, and per-id toggle times.
struct ParsedVcd {
  std::string timescale;
  std::vector<std::string> ids;       ///< declaration order
  std::vector<std::string> names;     ///< parallel to ids
  std::map<std::string, int> initial; ///< id -> 0/1
  std::map<std::string, std::vector<sim::SimTime>> toggles;
  std::map<std::string, std::vector<int>> values;  ///< value after each toggle
  sim::SimTime last_timestamp = -1;
};

ParsedVcd parse_vcd(const std::string& text) {
  ParsedVcd vcd;
  std::istringstream in(text);
  std::string line;
  bool in_dumpvars = false;
  bool definitions_done = false;
  sim::SimTime now = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("$timescale", 0) == 0) {
      // "$timescale 1ps $end"
      std::istringstream ls(line);
      std::string keyword;
      ls >> keyword >> vcd.timescale;
      continue;
    }
    if (line.rfind("$var", 0) == 0) {
      // "$var wire 1 <id> <name> $end"
      std::istringstream ls(line);
      std::string keyword, kind, width, id, name;
      ls >> keyword >> kind >> width >> id >> name;
      EXPECT_EQ(kind, "wire");
      EXPECT_EQ(width, "1");
      vcd.ids.push_back(id);
      vcd.names.push_back(name);
      continue;
    }
    if (line == "$enddefinitions $end") {
      definitions_done = true;
      continue;
    }
    if (!definitions_done) continue;
    if (line == "$dumpvars") {
      in_dumpvars = true;
      continue;
    }
    if (line == "$end") {
      in_dumpvars = false;
      continue;
    }
    if (line[0] == '#') {
      now = std::stoll(line.substr(1));
      vcd.last_timestamp = now;
      continue;
    }
    if (line[0] == '0' || line[0] == '1') {
      const int value = line[0] - '0';
      const std::string id = line.substr(1);
      if (in_dumpvars) {
        vcd.initial[id] = value;
      } else {
        vcd.toggles[id].push_back(now);
        vcd.values[id].push_back(value);
      }
    }
  }
  return vcd;
}

TEST(Vcd, HeaderDeclaresTimescaleAndEveryNet) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = simulate_netlist(logic);
  const std::string text = sim::to_vcd_string(logic, result);

  const ParsedVcd vcd = parse_vcd(text);
  EXPECT_EQ(vcd.timescale, "1ps");
  ASSERT_EQ(vcd.ids.size(),
            static_cast<std::size_t>(logic.num_gates_logic()));
  for (std::int32_t g = 0; g < logic.num_gates_logic(); ++g) {
    EXPECT_EQ(vcd.names[static_cast<std::size_t>(g)], logic.gate(g).name);
  }
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module circuit $end"), std::string::npos);
}

TEST(Vcd, CustomTimescaleIsEmitted) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = simulate_netlist(logic);
  const ParsedVcd vcd = parse_vcd(sim::to_vcd_string(logic, result, "10ns"));
  EXPECT_EQ(vcd.timescale, "10ns");
}

TEST(Vcd, InitialValuesAndTogglesRoundTrip) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = simulate_netlist(logic, 16);
  const ParsedVcd vcd = parse_vcd(sim::to_vcd_string(logic, result));

  std::int64_t total_toggles = 0;
  for (std::int32_t g = 0; g < logic.num_gates_logic(); ++g) {
    const auto& id = vcd.ids[static_cast<std::size_t>(g)];
    const auto& waveform = result.waveforms[static_cast<std::size_t>(g)];
    ASSERT_TRUE(vcd.initial.count(id)) << "missing initial value for " << id;
    EXPECT_EQ(vcd.initial.at(id), waveform.initial_value());

    // Expected: exactly the waveform's toggles inside [0, horizon).
    std::vector<sim::SimTime> expected;
    for (sim::SimTime t : waveform.toggles()) {
      if (t < result.horizon) expected.push_back(t);
    }
    const auto it = vcd.toggles.find(id);
    const std::vector<sim::SimTime> actual =
        it == vcd.toggles.end() ? std::vector<sim::SimTime>{} : it->second;
    EXPECT_EQ(actual, expected) << "toggle times for net "
                                << logic.gate(g).name;

    // Values must alternate starting from the initial value.
    if (it != vcd.toggles.end()) {
      int value = waveform.initial_value();
      for (int emitted : vcd.values.at(id)) {
        value = 1 - value;
        EXPECT_EQ(emitted, value);
      }
    }
    total_toggles += static_cast<std::int64_t>(expected.size());
  }
  EXPECT_GT(total_toggles, 0) << "test vectors produced no switching at all";

  // The stream is closed by a final timestamp at the horizon.
  EXPECT_EQ(vcd.last_timestamp, result.horizon);
}

TEST(Vcd, IdentifiersStayUniqueBeyondOneCharacter) {
  // > 94 nets forces multi-character identifier codes; every id must still
  // be unique and declared exactly once.
  netlist::GeneratorSpec spec;
  spec.num_gates = 120;
  spec.num_wires = 240;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.depth = 8;
  spec.seed = 5;
  const auto logic = netlist::generate_circuit(spec);
  ASSERT_GT(logic.num_gates_logic(), 94);

  const auto result = simulate_netlist(logic, 4);
  const ParsedVcd vcd = parse_vcd(sim::to_vcd_string(logic, result));
  ASSERT_EQ(vcd.ids.size(), static_cast<std::size_t>(logic.num_gates_logic()));
  std::map<std::string, int> seen;
  bool saw_multichar = false;
  for (const auto& id : vcd.ids) {
    EXPECT_EQ(seen[id]++, 0) << "duplicate vcd id " << id;
    if (id.size() > 1) saw_multichar = true;
  }
  EXPECT_TRUE(saw_multichar);
}

TEST(Vcd, OutputIsDeterministic) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = simulate_netlist(logic);
  EXPECT_EQ(sim::to_vcd_string(logic, result), sim::to_vcd_string(logic, result));
}

}  // namespace
}  // namespace lrsizer
