// The distributed per-net crosstalk bound extension (paper §4.1 note).
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "netlist/generator.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

TEST(PerNet, OwnedPairsPartitionThePairSet) {
  const auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  std::size_t owned_total = 0;
  for (netlist::NodeId v = 0; v < f.circuit.num_nodes(); ++v) {
    for (std::int32_t p : coupling.owned_pairs(v)) {
      EXPECT_EQ(coupling.pairs()[static_cast<std::size_t>(p)].a, v);
      ++owned_total;
    }
  }
  EXPECT_EQ(owned_total, coupling.pairs().size());
}

TEST(PerNet, OwnedNoiseSumsToTotal) {
  const auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  std::vector<double> x(static_cast<std::size_t>(f.circuit.num_nodes()), 1.3);
  double sum = 0.0;
  for (netlist::NodeId v = 0; v < f.circuit.num_nodes(); ++v) {
    sum += coupling.owned_noise_linear(v, x);
  }
  EXPECT_NEAR(sum, coupling.noise_linear(x), 1e-25);
}

TEST(PerNet, DeriveBoundsFillsOwnersOnly) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  core::BoundFactors factors;
  factors.per_net_noise = 0.2;
  const auto bounds =
      core::derive_bounds(f.circuit, coupling, f.circuit.sizes(), kMode, factors);
  ASSERT_TRUE(bounds.per_net_enabled());
  for (netlist::NodeId v = 0; v < f.circuit.num_nodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (coupling.owned_pairs(v).empty()) {
      EXPECT_DOUBLE_EQ(bounds.per_net_noise_f[i], 0.0);
    } else {
      EXPECT_NEAR(bounds.per_net_noise_f[i],
                  0.2 * coupling.owned_noise_linear(v, f.circuit.sizes()), 1e-25);
    }
  }
}

TEST(PerNet, OgwsSatisfiesEveryNetBound) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  core::BoundFactors factors;
  factors.noise = 0.5;          // loose total bound
  factors.per_net_noise = 0.2;  // binding distributed bounds
  const auto bounds =
      core::derive_bounds(f.circuit, coupling, f.circuit.sizes(), kMode, factors);
  const auto result = core::run_ogws(f.circuit, coupling, bounds);
  for (netlist::NodeId v = 0; v < f.circuit.num_nodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (bounds.per_net_noise_f.empty() || bounds.per_net_noise_f[i] <= 0.0) continue;
    EXPECT_LE(coupling.owned_noise_linear(v, result.sizes),
              bounds.per_net_noise_f[i] * 1.02)
        << "net " << v;
  }
}

TEST(PerNet, DistributedBoundsAreStricterThanTotal) {
  // Per-net bounds at factor q imply the total bound at factor q; the
  // converse is false — so the distributed problem can cost more area.
  netlist::GeneratorSpec spec;
  spec.num_gates = 120;
  spec.num_wires = 260;
  spec.num_inputs = 14;
  spec.num_outputs = 9;
  spec.seed = 11;
  const auto logic = netlist::generate_circuit(spec);

  core::FlowOptions total_only;
  total_only.bound_factors.noise = 0.2;
  const auto a = core::run_two_stage_flow(logic, total_only);

  core::FlowOptions distributed = total_only;
  distributed.bound_factors.per_net_noise = 0.2;
  const auto b = core::run_two_stage_flow(logic, distributed);

  EXPECT_GE(b.final_metrics.area_um2, a.final_metrics.area_um2 * 0.98);
  // And the distributed run satisfies the per-net bounds.
  EXPECT_LE(b.ogws.max_violation, 0.03);
}

TEST(PerNet, NoiseMultipliersForOwner) {
  std::vector<double> per_net = {0.0, 0.5, 0.0, 2.0};
  const core::NoiseMultipliers plain(3.0);
  EXPECT_DOUBLE_EQ(plain.for_owner(1), 3.0);
  const core::NoiseMultipliers dist(3.0, &per_net);
  EXPECT_DOUBLE_EQ(dist.for_owner(1), 3.5);
  EXPECT_DOUBLE_EQ(dist.for_owner(3), 5.0);
}

TEST(PerNet, FlowRunsEndToEndWithDistributedBounds) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 80;
  spec.num_wires = 180;
  spec.seed = 6;
  const auto logic = netlist::generate_circuit(spec);
  core::FlowOptions options;
  options.bound_factors.noise = 0.5;
  options.bound_factors.per_net_noise = 0.25;
  const auto flow = core::run_two_stage_flow(logic, options);
  EXPECT_LE(flow.ogws.max_violation, 0.03);
  EXPECT_LT(flow.final_metrics.area_um2, flow.init_metrics.area_um2);
}

}  // namespace
