// Top-K path enumeration: exactness against brute force, ordering, limits.
#include <gtest/gtest.h>

#include <functional>

#include "test_helpers.hpp"
#include "timing/loads.hpp"
#include "timing/paths.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

/// All source->sink paths with their delays, by exhaustive DFS.
std::vector<timing::TimedPath> all_paths(const netlist::Circuit& c,
                                         const timing::ArrivalAnalysis& a) {
  std::vector<timing::TimedPath> paths;
  std::vector<netlist::NodeId> current;
  std::function<void(netlist::NodeId, double)> dfs = [&](netlist::NodeId v,
                                                         double delay) {
    if (v == c.sink()) {
      paths.push_back({current, delay});
      return;
    }
    current.push_back(v);
    for (netlist::NodeId o : c.outputs(v)) {
      dfs(o, delay + (o == c.sink() ? 0.0 : a.delay[static_cast<std::size_t>(o)]));
    }
    current.pop_back();
  };
  for (netlist::NodeId d : c.outputs(c.source())) {
    dfs(d, a.delay[static_cast<std::size_t>(d)]);
  }
  std::sort(paths.begin(), paths.end(),
            [](const auto& x, const auto& y) { return x.delay_s > y.delay_s; });
  return paths;
}

timing::ArrivalAnalysis analyze(const netlist::Circuit& c,
                                const layout::CouplingSet& coupling) {
  timing::LoadAnalysis loads;
  timing::compute_loads(c, coupling, c.sizes(), timing::CouplingLoadMode::kLocalOnly,
                        loads);
  timing::ArrivalAnalysis a;
  timing::compute_arrivals(c, c.sizes(), loads, a);
  return a;
}

TEST(Paths, ChainHasExactlyOnePath) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  const auto a = analyze(c.circuit, coupling);
  const auto paths = timing::top_k_paths(c.circuit, a, 10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].delay_s, a.critical_delay, 1e-18);
  EXPECT_EQ(paths[0].nodes.size(), 4u);
}

TEST(Paths, TopPathIsTheCriticalPath) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto a = analyze(f.circuit, coupling);
  const auto paths = timing::top_k_paths(f.circuit, a, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].delay_s, a.critical_delay, 1e-15 * a.critical_delay);
  EXPECT_EQ(paths[0].nodes, timing::critical_path(f.circuit, a));
}

TEST(Paths, MatchesBruteForceEnumeration) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto a = analyze(f.circuit, coupling);
  const auto expected = all_paths(f.circuit, a);
  const auto got = timing::top_k_paths(f.circuit, a,
                                       static_cast<int>(expected.size()) + 5);
  ASSERT_EQ(got.size(), expected.size());  // k larger than the path count
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].delay_s, expected[i].delay_s, 1e-15 * expected[0].delay_s)
        << "rank " << i;
  }
}

TEST(Paths, MatchesBruteForceUnderRandomSizes) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  util::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    for (netlist::NodeId v = f.circuit.first_component();
         v < f.circuit.end_component(); ++v) {
      f.circuit.set_size(v, rng.uniform(0.1, 10.0));
    }
    const auto a = analyze(f.circuit, coupling);
    const auto expected = all_paths(f.circuit, a);
    const auto got =
        timing::top_k_paths(f.circuit, a, static_cast<int>(expected.size()));
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].delay_s, expected[i].delay_s,
                  1e-12 * expected[0].delay_s);
    }
  }
}

TEST(Paths, DescendingOrderAndDistinct) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(2.0);
  const auto coupling = f.make_coupling();
  const auto a = analyze(f.circuit, coupling);
  const auto paths = timing::top_k_paths(f.circuit, a, 4);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].delay_s, paths[i].delay_s - 1e-21);
    EXPECT_NE(paths[i - 1].nodes, paths[i].nodes);
  }
}

TEST(Paths, KSmallerThanPathCountTruncates) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto a = analyze(f.circuit, coupling);
  EXPECT_EQ(timing::top_k_paths(f.circuit, a, 2).size(), 2u);
}

}  // namespace
