// Arrival times vs exhaustive path enumeration; critical path extraction.
#include <gtest/gtest.h>

#include <functional>

#include "test_helpers.hpp"
#include "timing/arrival.hpp"
#include "timing/loads.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

/// Longest source->sink path delay by explicit DFS over all paths.
double brute_force_delay(const netlist::Circuit& c,
                         const timing::ArrivalAnalysis& a) {
  double best = 0.0;
  std::function<void(netlist::NodeId, double)> dfs = [&](netlist::NodeId v,
                                                         double acc) {
    if (v == c.sink()) {
      best = std::max(best, acc);
      return;
    }
    const double here =
        v == c.source() ? 0.0 : a.delay[static_cast<std::size_t>(v)];
    for (netlist::NodeId o : c.outputs(v)) dfs(o, acc + here);
  };
  // Start below the source so the source contributes nothing.
  for (netlist::NodeId d : c.outputs(c.source())) dfs(d, 0.0);
  return best;
}

TEST(Arrival, ChainSumsComponentDelays) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  timing::LoadAnalysis loads;
  timing::compute_loads(c.circuit, coupling, c.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis a;
  timing::compute_arrivals(c.circuit, c.circuit.sizes(), loads, a);

  const double sum = a.delay[static_cast<std::size_t>(c.driver)] +
                     a.delay[static_cast<std::size_t>(c.wire_in)] +
                     a.delay[static_cast<std::size_t>(c.gate)] +
                     a.delay[static_cast<std::size_t>(c.wire_out)];
  EXPECT_NEAR(a.critical_delay, sum, 1e-18);
  // Elmore D_i = r_i * C_i spot check on the gate.
  const netlist::TechParams tech;
  EXPECT_NEAR(a.delay[static_cast<std::size_t>(c.gate)],
              tech.gate_unit_res * loads.cap_delay[static_cast<std::size_t>(c.gate)],
              1e-18);
}

TEST(Arrival, MatchesBruteForcePathEnumeration) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  timing::LoadAnalysis loads;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis a;
  timing::compute_arrivals(f.circuit, f.circuit.sizes(), loads, a);
  EXPECT_NEAR(a.critical_delay, brute_force_delay(f.circuit, a), 1e-18);
}

TEST(Arrival, MatchesBruteForceUnderRandomSizes) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  util::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    auto x = f.circuit.sizes();
    for (netlist::NodeId v = f.circuit.first_component();
         v < f.circuit.end_component(); ++v) {
      x[static_cast<std::size_t>(v)] = rng.uniform(0.1, 10.0);
    }
    timing::LoadAnalysis loads;
    timing::compute_loads(f.circuit, coupling, x,
                          timing::CouplingLoadMode::kLocalOnly, loads);
    timing::ArrivalAnalysis a;
    timing::compute_arrivals(f.circuit, x, loads, a);
    EXPECT_NEAR(a.critical_delay, brute_force_delay(f.circuit, a),
                1e-12 * a.critical_delay);
  }
}

TEST(Arrival, ArrivalsAreEdgeConsistent) {
  // a_i >= a_j + D_i for every edge (j, i): the constraint form of PP.
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(2.0);
  const auto coupling = f.make_coupling();
  timing::LoadAnalysis loads;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis a;
  timing::compute_arrivals(f.circuit, f.circuit.sizes(), loads, a);
  for (netlist::NodeId v = 1; v < f.circuit.sink(); ++v) {
    for (netlist::NodeId j : f.circuit.inputs(v)) {
      EXPECT_GE(a.arrival[static_cast<std::size_t>(v)] + 1e-21,
                a.arrival[static_cast<std::size_t>(j)] +
                    a.delay[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Arrival, CriticalPathIsConnectedAndCritical) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  timing::LoadAnalysis loads;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis a;
  timing::compute_arrivals(f.circuit, f.circuit.sizes(), loads, a);
  const auto path = timing::critical_path(f.circuit, a);
  ASSERT_FALSE(path.empty());
  // Path delays sum to the critical delay.
  double sum = 0.0;
  for (netlist::NodeId v : path) sum += a.delay[static_cast<std::size_t>(v)];
  EXPECT_NEAR(sum, a.critical_delay, 1e-18);
  // Path is connected front-to-back.
  for (std::size_t k = 1; k < path.size(); ++k) {
    bool connected = false;
    for (netlist::NodeId o : f.circuit.outputs(path[k - 1])) {
      connected |= (o == path[k]);
    }
    EXPECT_TRUE(connected) << "path break at " << k;
  }
  // Starts at a driver, ends at a primary output component.
  EXPECT_TRUE(f.circuit.is_driver(path.front()));
  bool drives_sink = false;
  for (netlist::NodeId o : f.circuit.outputs(path.back())) {
    drives_sink |= (o == f.circuit.sink());
  }
  EXPECT_TRUE(drives_sink);
}

TEST(Arrival, UpsizingTheCriticalGateReducesItsDelay) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  timing::LoadAnalysis loads;
  timing::compute_loads(c.circuit, coupling, c.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis before;
  timing::compute_arrivals(c.circuit, c.circuit.sizes(), loads, before);

  auto x = c.circuit.sizes();
  x[static_cast<std::size_t>(c.gate)] = 4.0;
  timing::compute_loads(c.circuit, coupling, x,
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis after;
  timing::compute_arrivals(c.circuit, x, loads, after);
  EXPECT_LT(after.delay[static_cast<std::size_t>(c.gate)],
            before.delay[static_cast<std::size_t>(c.gate)]);
}

}  // namespace
