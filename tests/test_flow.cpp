// End-to-end two-stage flow integration tests.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"

namespace {

using namespace lrsizer;

TEST(Flow, C17EndToEnd) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  core::FlowOptions options;
  // c17 is so shallow that the Table 1 factors (noise 0.10 pins every wire
  // at its lower bound, where the wire resistance already busts A0 by ~1%)
  // make the instance infeasible; use slightly looser, feasible bounds.
  options.bound_factors.delay = 1.15;
  options.bound_factors.noise = 0.12;
  const auto flow = core::run_two_stage_flow(logic, options);

  EXPECT_EQ(flow.circuit.num_gates(), 6);
  EXPECT_GT(flow.circuit.num_wires(), 6);
  // Constraints hold within the OGWS tolerance.
  EXPECT_LE(flow.final_metrics.delay_s, flow.bounds.delay_s * 1.02);
  EXPECT_LE(flow.final_metrics.cap_f, flow.bounds.cap_f * 1.02);
  EXPECT_LE(flow.final_metrics.noise_f, flow.bounds.noise_f * 1.02);
  // Area shrinks substantially from the unit-size start.
  EXPECT_LT(flow.final_metrics.area_um2, 0.5 * flow.init_metrics.area_um2);
}

TEST(Flow, InfeasibleBoundsReturnLeastViolatingIterate) {
  // The literal Table 1 factors are (marginally) infeasible on c17: the
  // flow must not crash, must report non-convergence, and must return the
  // least-violating sizes it saw.
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto flow = core::run_two_stage_flow(logic, {});
  EXPECT_LE(flow.ogws.max_violation, 0.05);  // within a few % of feasible
  EXPECT_GT(flow.final_metrics.area_um2, 0.0);
}

TEST(Flow, GeneratedCircuitEndToEnd) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 150;
  spec.num_wires = 320;
  spec.num_inputs = 16;
  spec.num_outputs = 10;
  spec.depth = 12;
  spec.seed = 5;
  const auto logic = netlist::generate_circuit(spec);
  core::FlowOptions options;
  const auto flow = core::run_two_stage_flow(logic, options);

  EXPECT_EQ(flow.circuit.num_gates(), 150);
  EXPECT_EQ(flow.circuit.num_wires(), 320);
  EXPECT_LE(flow.final_metrics.delay_s, flow.bounds.delay_s * 1.03);
  EXPECT_LE(flow.final_metrics.noise_f, flow.bounds.noise_f * 1.03);
  EXPECT_LT(flow.final_metrics.area_um2, flow.init_metrics.area_um2);
  EXPECT_LT(flow.final_metrics.noise_f, 0.2 * flow.init_metrics.noise_f);
}

TEST(Flow, WossReducesEffectiveLoading) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 120;
  spec.num_wires = 260;
  spec.num_inputs = 14;
  spec.num_outputs = 8;
  spec.seed = 9;
  const auto logic = netlist::generate_circuit(spec);
  core::FlowOptions options;
  const auto flow = core::run_two_stage_flow(logic, options);
  EXPECT_LE(flow.ordering_cost_woss, flow.ordering_cost_initial);
}

TEST(Flow, DisablingWossKeepsInitialOrder) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 80;
  spec.num_wires = 180;
  spec.seed = 2;
  const auto logic = netlist::generate_circuit(spec);
  core::FlowOptions options;
  options.use_woss = false;
  const auto flow = core::run_two_stage_flow(logic, options);
  EXPECT_DOUBLE_EQ(flow.ordering_cost_woss, flow.ordering_cost_initial);
}

TEST(Flow, DeterministicEndToEnd) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 60;
  spec.num_wires = 140;
  spec.seed = 8;
  const auto logic = netlist::generate_circuit(spec);
  const auto a = core::run_two_stage_flow(logic, {});
  const auto b = core::run_two_stage_flow(logic, {});
  EXPECT_DOUBLE_EQ(a.final_metrics.area_um2, b.final_metrics.area_um2);
  EXPECT_DOUBLE_EQ(a.final_metrics.noise_f, b.final_metrics.noise_f);
  EXPECT_EQ(a.ogws.iterations, b.ogws.iterations);
}

TEST(Flow, MemoryAccountingAboveBaseAndGrowsWithSize) {
  netlist::GeneratorSpec small_spec;
  small_spec.num_gates = 50;
  small_spec.num_wires = 120;
  const auto small_flow =
      core::run_two_stage_flow(netlist::generate_circuit(small_spec), {});

  netlist::GeneratorSpec big_spec;
  big_spec.num_gates = 400;
  big_spec.num_wires = 850;
  big_spec.num_inputs = 40;
  big_spec.num_outputs = 25;
  const auto big_flow =
      core::run_two_stage_flow(netlist::generate_circuit(big_spec), {});

  EXPECT_GT(small_flow.memory_bytes, util::MemoryTracker::kBaseBytes);
  EXPECT_GT(big_flow.memory_bytes, small_flow.memory_bytes);
}

TEST(Flow, MillerFoldingChangesCoupling) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 80;
  spec.num_wires = 180;
  spec.seed = 4;
  const auto logic = netlist::generate_circuit(spec);
  core::FlowOptions with;
  with.neighbors.fold_miller = true;
  core::FlowOptions without;
  without.neighbors.fold_miller = false;
  const auto a = core::run_two_stage_flow(logic, with);
  const auto b = core::run_two_stage_flow(logic, without);
  // Folding m_ij <= 2 rescales the noise metric; the runs must differ.
  EXPECT_NE(a.init_metrics.noise_f, b.init_metrics.noise_f);
}

TEST(Flow, StageTimesRecorded) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto flow = core::run_two_stage_flow(logic, {});
  EXPECT_GE(flow.stage1_seconds, 0.0);
  EXPECT_GT(flow.stage2_seconds, 0.0);
}

}  // namespace
