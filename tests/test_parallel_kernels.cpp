// The parallel-kernel contract (docs/ARCHITECTURE.md §Parallel kernels):
// level-schedule and coloring validity, KernelTeam chunk execution, and the
// headline bit-determinism guarantee — every kernel and the whole flow
// produce bit-identical results at threads = 1, 2 and 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "api/session.hpp"
#include "core/flow.hpp"
#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "layout/channels.hpp"
#include "layout/coloring.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"
#include "netlist/levels.hpp"
#include "runtime/pool.hpp"
#include "timing/arrival.hpp"
#include "timing/loads.hpp"
#include "timing/upstream.hpp"

namespace {

using namespace lrsizer;

struct Instance {
  netlist::Circuit circuit;
  layout::CouplingSet coupling;
  std::vector<double> mu;
};

Instance make_instance(const std::string& profile) {
  const auto spec = netlist::spec_for_profile(profile, 1);
  const auto logic = netlist::generate_circuit(spec);
  auto elab = netlist::elaborate(logic, netlist::TechParams{}, spec.elab);
  const auto channels =
      layout::assign_channels(elab.circuit, elab.net_of_node, logic);
  auto coupling = layout::build_coupling_set(elab.circuit, channels.channels,
                                             layout::NeighborOptions{});
  elab.circuit.set_uniform_size(1.0);
  core::MultiplierState m(elab.circuit);
  m.init_default(elab.circuit);
  std::vector<double> mu;
  m.compute_mu(elab.circuit, mu);
  for (double& v : mu) v *= 1e13;
  return Instance{std::move(elab.circuit), std::move(coupling), std::move(mu)};
}

/// level-or-color number per node, -1 for nodes outside the schedule; also
/// asserts no node appears twice.
std::vector<std::int32_t> level_of(const netlist::LevelSchedule& schedule,
                                   netlist::NodeId num_nodes) {
  std::vector<std::int32_t> level(static_cast<std::size_t>(num_nodes), -1);
  for (std::int32_t l = 0; l < schedule.num_levels(); ++l) {
    for (const netlist::NodeId v : schedule.level(l)) {
      EXPECT_EQ(level[static_cast<std::size_t>(v)], -1)
          << "node " << v << " scheduled twice";
      level[static_cast<std::size_t>(v)] = l;
    }
  }
  return level;
}

// ---- level-schedule validity ------------------------------------------------

TEST(LevelSchedule, ForwardAndReverseWavefrontsRespectEveryEdge) {
  const Instance inst = make_instance("c432");
  const netlist::Circuit& c = inst.circuit;

  const auto forward = level_of(c.forward_levels(), c.num_nodes());
  const auto reverse = level_of(c.reverse_levels(), c.num_nodes());

  // Coverage: exactly the nodes 1 .. sink-1, each once.
  for (netlist::NodeId v = 0; v < c.num_nodes(); ++v) {
    const bool scheduled = v >= 1 && v < c.sink();
    EXPECT_EQ(forward[static_cast<std::size_t>(v)] >= 0, scheduled) << "node " << v;
    EXPECT_EQ(reverse[static_cast<std::size_t>(v)] >= 0, scheduled) << "node " << v;
  }

  // Dependency property: inputs strictly earlier forward, outputs strictly
  // earlier reverse.
  for (netlist::EdgeId e = 0; e < c.num_edges(); ++e) {
    const netlist::NodeId u = c.edge_from(e);
    const netlist::NodeId v = c.edge_to(e);
    if (u >= 1 && v < c.sink()) {
      EXPECT_LT(forward[static_cast<std::size_t>(u)],
                forward[static_cast<std::size_t>(v)])
          << "edge " << u << " -> " << v;
      EXPECT_GT(reverse[static_cast<std::size_t>(u)],
                reverse[static_cast<std::size_t>(v)])
          << "edge " << u << " -> " << v;
    }
  }
  EXPECT_GT(c.forward_levels().num_levels(), 1);
  EXPECT_GT(c.reverse_levels().num_levels(), 1);
}

// ---- coloring validity ------------------------------------------------------

TEST(CouplingColors, OrderPreservingDistanceTwoColoring) {
  const Instance inst = make_instance("c432");
  const netlist::Circuit& c = inst.circuit;
  const auto schedule = layout::build_coupling_colors(c, inst.coupling);
  const auto color = level_of(schedule, c.num_nodes());

  // Coverage: exactly the sized components.
  for (netlist::NodeId v = 0; v < c.num_nodes(); ++v) {
    EXPECT_EQ(color[static_cast<std::size_t>(v)] >= 0, c.is_sized(v)) << "node " << v;
  }

  std::size_t checked_pairs = 0;
  for (const auto& pair : inst.coupling.pairs()) {
    // Adjacent wires get distinct colors, and the colors preserve the index
    // order — the property that makes the colored sweep bit-identical to
    // the ascending-index Gauss-Seidel sweep.
    EXPECT_LT(color[static_cast<std::size_t>(pair.a)],
              color[static_cast<std::size_t>(pair.b)])
        << "pair (" << pair.a << ", " << pair.b << ")";
    ++checked_pairs;
  }
  EXPECT_GT(checked_pairs, 0u) << "profile has no coupling pairs to validate";

  // Distance 2: no two same-color nodes share a coupling neighbor.
  for (netlist::NodeId w = c.first_component(); w < c.end_component(); ++w) {
    const auto neighbors = inst.coupling.neighbors(w);
    for (std::size_t a = 0; a < neighbors.size(); ++a) {
      for (std::size_t b = a + 1; b < neighbors.size(); ++b) {
        EXPECT_NE(color[static_cast<std::size_t>(neighbors[a].other)],
                  color[static_cast<std::size_t>(neighbors[b].other)])
            << "nodes " << neighbors[a].other << " and " << neighbors[b].other
            << " share neighbor " << w;
      }
    }
  }
}

// ---- KernelTeam -------------------------------------------------------------

TEST(KernelTeam, ExecutesEveryChunkExactlyOnce) {
  runtime::KernelTeam team(4);
  EXPECT_EQ(team.threads(), 4);

  // Varying (n, grain) rounds; disjoint chunks mean the plain increments
  // are race-free iff the team executes each index exactly once per round.
  const std::int32_t kRounds = 50;
  const std::int32_t n = 10007;
  std::vector<std::int32_t> hits(static_cast<std::size_t>(n), 0);
  for (std::int32_t round = 0; round < kRounds; ++round) {
    const std::int32_t grain = 1 + (round % 97);
    team.run_chunks(n, grain, [&](std::int32_t begin, std::int32_t end) {
      EXPECT_EQ(begin % grain, 0);
      EXPECT_LE(end, n);
      for (std::int32_t i = begin; i < end; ++i) ++hits[static_cast<std::size_t>(i)];
    });
  }
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [&](std::int32_t h) { return h == kRounds; }));
}

TEST(KernelTeam, DegenerateRoundsRunInline) {
  runtime::KernelTeam team(2);
  int calls = 0;
  team.run_chunks(0, 16, [&](std::int32_t, std::int32_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // empty round dispatches nothing
  team.run_chunks(5, 16, [&](std::int32_t begin, std::int32_t end) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 5);
  });
  EXPECT_EQ(calls, 1);  // single chunk runs inline on the caller

  runtime::KernelTeam serial(1);
  EXPECT_EQ(serial.threads(), 1);
  serial.run_chunks(100, 10, [&](std::int32_t, std::int32_t) { ++calls; });
  EXPECT_EQ(calls, 2);  // no workers: one inline call covering [0, n)
}

// ---- kernel bit-identity ----------------------------------------------------

TEST(ParallelKernels, AnalysesBitIdenticalAcrossThreads) {
  const Instance inst = make_instance("c499");
  const auto& x = inst.circuit.sizes();

  for (const auto mode : {timing::CouplingLoadMode::kLocalOnly,
                          timing::CouplingLoadMode::kPropagateUpstream}) {
    timing::LoadAnalysis loads_serial;
    timing::compute_loads(inst.circuit, inst.coupling, x, mode, loads_serial);
    timing::ArrivalAnalysis arrivals_serial;
    timing::compute_arrivals(inst.circuit, x, loads_serial, arrivals_serial);
    std::vector<double> r_up_serial;
    timing::compute_weighted_upstream(inst.circuit, x, inst.mu, r_up_serial);

    for (const int threads : {2, 8}) {
      runtime::KernelTeam team(threads);
      timing::LoadAnalysis loads;
      timing::compute_loads(inst.circuit, inst.coupling, x, mode, loads, &team);
      EXPECT_EQ(loads.cap_delay, loads_serial.cap_delay) << threads;
      EXPECT_EQ(loads.cap_prime, loads_serial.cap_prime) << threads;
      EXPECT_EQ(loads.load_in, loads_serial.load_in) << threads;

      timing::ArrivalAnalysis arrivals;
      timing::compute_arrivals(inst.circuit, x, loads, arrivals, &team);
      EXPECT_EQ(arrivals.delay, arrivals_serial.delay) << threads;
      EXPECT_EQ(arrivals.arrival, arrivals_serial.arrival) << threads;
      EXPECT_EQ(arrivals.critical_delay, arrivals_serial.critical_delay) << threads;

      std::vector<double> r_up;
      timing::compute_weighted_upstream(inst.circuit, x, inst.mu, r_up, &team);
      EXPECT_EQ(r_up, r_up_serial) << threads;
    }
  }
}

TEST(ParallelKernels, LrsBitIdenticalAcrossThreads) {
  const Instance inst = make_instance("c499");
  core::LrsOptions options;

  core::LrsWorkspace ws_serial;
  auto x_serial = inst.circuit.sizes();
  const auto stats_serial = core::run_lrs(inst.circuit, inst.coupling, inst.mu, 1e9,
                                          1e9, options, x_serial, ws_serial);

  const auto colors = layout::build_coupling_colors(inst.circuit, inst.coupling);
  for (const int threads : {2, 8}) {
    runtime::KernelTeam team(threads);
    const core::LrsRuntime lrs_runtime{&team, &colors};
    core::LrsWorkspace ws;
    auto x = inst.circuit.sizes();
    const auto stats = core::run_lrs(inst.circuit, inst.coupling, inst.mu, 1e9, 1e9,
                                     options, x, ws, lrs_runtime);
    EXPECT_EQ(x, x_serial) << threads;
    EXPECT_EQ(stats.passes, stats_serial.passes) << threads;
    EXPECT_EQ(stats.max_rel_change, stats_serial.max_rel_change) << threads;
    // The hand-back contract holds in both paths: loads are at the final x.
    EXPECT_EQ(ws.loads.cap_delay, ws_serial.loads.cap_delay) << threads;
  }
}

TEST(ParallelKernels, WorklistLrsBitIdenticalAcrossThreads) {
  // The colored worklist sweep writes neighbor flags (pending / loads_dirty)
  // from inside the parallel chunks; this is the TSan-covered witness that
  // the distance-2 coloring keeps those writes disjoint. A resumed second
  // call exercises the incremental load repair under threads too.
  const Instance inst = make_instance("c499");
  core::LrsOptions options;
  options.sweep = core::SweepMode::kWorklist;
  options.warm_start = true;

  auto run_pair = [&](util::Executor* exec, const netlist::LevelSchedule* colors,
                      std::vector<double>& x, core::LrsWorkspace& ws) {
    const core::LrsRuntime lrs_runtime{exec, colors};
    auto mu = inst.mu;
    core::run_lrs(inst.circuit, inst.coupling, mu, 1e9, 1e9, options, x, ws,
                  lrs_runtime);
    for (std::size_t i = 5; i < mu.size(); i += 73) mu[i] *= 1.01;
    return core::run_lrs(inst.circuit, inst.coupling, mu, 1e9, 1e9, options, x,
                         ws, lrs_runtime);
  };

  core::LrsWorkspace ws_serial;
  std::vector<double> x_serial(inst.mu.size(), 1.0);
  const auto stats_serial = run_pair(nullptr, nullptr, x_serial, ws_serial);

  const auto colors = layout::build_coupling_colors(inst.circuit, inst.coupling);
  for (const int threads : {2, 8}) {
    runtime::KernelTeam team(threads);
    core::LrsWorkspace ws;
    std::vector<double> x(inst.mu.size(), 1.0);
    const auto stats = run_pair(&team, &colors, x, ws);
    EXPECT_EQ(x, x_serial) << threads;
    EXPECT_EQ(stats.passes, stats_serial.passes) << threads;
    EXPECT_EQ(stats.nodes_processed, stats_serial.nodes_processed) << threads;
    EXPECT_EQ(ws.loads.load_in, ws_serial.loads.load_in) << threads;
  }
}

// ---- dual-ascent kernels ----------------------------------------------------

/// Deterministic non-uniform λ (varied per edge so the projection actually
/// rescales) on top of the flow-conserving default.
core::MultiplierState perturbed_multipliers(const netlist::Circuit& circuit) {
  core::MultiplierState m(circuit);
  m.init_default(circuit);
  for (std::size_t e = 0; e < m.lambda.size(); ++e) {
    m.lambda[e] *= 1.0 + 0.13 * static_cast<double>(e % 7);
  }
  m.beta = 0.25;
  m.gamma = 0.125;
  return m;
}

TEST(ParallelKernels, FlowProjectionAndMuBitIdenticalAcrossThreads) {
  const Instance inst = make_instance("c499");

  core::MultiplierState serial = perturbed_multipliers(inst.circuit);
  serial.project_flow(inst.circuit);
  std::vector<double> mu_serial;
  serial.compute_mu(inst.circuit, mu_serial);

  for (const int threads : {2, 8}) {
    runtime::KernelTeam team(threads);
    core::MultiplierState m = perturbed_multipliers(inst.circuit);
    m.project_flow(inst.circuit, &team);
    EXPECT_EQ(m.lambda, serial.lambda) << threads;
    std::vector<double> mu;
    m.compute_mu(inst.circuit, mu, &team);
    EXPECT_EQ(mu, mu_serial) << threads;
  }
}

TEST(ParallelKernels, DualAscentStepBitIdenticalAcrossThreads) {
  const Instance inst = make_instance("c499");
  const auto& circuit = inst.circuit;
  const auto& x = circuit.sizes();
  const auto mode = timing::CouplingLoadMode::kLocalOnly;

  timing::LoadAnalysis loads;
  timing::compute_loads(circuit, inst.coupling, x, mode, loads);
  timing::ArrivalAnalysis arrivals;
  timing::compute_arrivals(circuit, x, loads, arrivals);
  const double cap = timing::total_cap(circuit, x);
  const double noise = inst.coupling.noise_linear(x);
  const double area_ref = timing::total_area(circuit, x);

  for (const auto rule : {core::StepRule::kSubgradient, core::StepRule::kMultiplicative}) {
    for (const double per_net : {0.0, 0.5}) {
      core::BoundFactors factors;
      factors.per_net_noise = per_net;
      const auto bounds = core::derive_bounds(circuit, inst.coupling, x, mode, factors);
      const core::DualScales scales{area_ref, area_ref / bounds.delay_s,
                                    area_ref / bounds.cap_f,
                                    area_ref / bounds.noise_f};
      core::OgwsOptions options;
      options.step_rule = rule;

      auto step = [&](util::Executor* exec) {
        core::MultiplierState m = perturbed_multipliers(circuit);
        if (bounds.per_net_enabled()) {
          m.gamma_net.assign(static_cast<std::size_t>(circuit.num_nodes()), 0.5);
        }
        core::dual_ascent_step(circuit, inst.coupling, bounds, options, arrivals,
                               x, cap, noise, 0.7, scales, m, exec);
        return m;
      };
      const core::MultiplierState serial = step(nullptr);
      for (const int threads : {2, 8}) {
        runtime::KernelTeam team(threads);
        const core::MultiplierState m = step(&team);
        const std::string label = "rule=" + std::to_string(static_cast<int>(rule)) +
                                  " per_net=" + std::to_string(per_net) +
                                  " threads=" + std::to_string(threads);
        EXPECT_EQ(m.lambda, serial.lambda) << label;
        EXPECT_EQ(m.beta, serial.beta) << label;
        EXPECT_EQ(m.gamma, serial.gamma) << label;
        EXPECT_EQ(m.gamma_net, serial.gamma_net) << label;
      }
    }
  }
}

// ---- whole-flow bit-identity ------------------------------------------------

core::FlowOptions flow_options(double per_net_noise,
                               timing::CouplingLoadMode mode) {
  core::FlowOptions options;
  options.num_vectors = 16;
  options.bound_factors.delay = 1.0;
  options.bound_factors.power = 0.15;
  options.bound_factors.noise = 0.10;
  options.bound_factors.per_net_noise = per_net_noise;
  options.ogws.lrs.mode = mode;
  options.ogws.max_iterations = 60;
  return options;
}

void expect_same_flow(const core::FlowResult& a, const core::FlowResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.ogws.sizes, b.ogws.sizes) << label;
  EXPECT_EQ(a.circuit.sizes(), b.circuit.sizes()) << label;
  EXPECT_EQ(a.ogws.area, b.ogws.area) << label;
  EXPECT_EQ(a.ogws.dual, b.ogws.dual) << label;
  EXPECT_EQ(a.ogws.rel_gap, b.ogws.rel_gap) << label;
  EXPECT_EQ(a.ogws.max_violation, b.ogws.max_violation) << label;
  EXPECT_EQ(a.ogws.converged, b.ogws.converged) << label;
  EXPECT_EQ(a.ogws.iterations, b.ogws.iterations) << label;
  EXPECT_EQ(a.memory_bytes, b.memory_bytes) << label;
  ASSERT_EQ(a.ogws.history.size(), b.ogws.history.size()) << label;
  for (std::size_t k = 0; k < a.ogws.history.size(); ++k) {
    const auto& ia = a.ogws.history[k];
    const auto& ib = b.ogws.history[k];
    EXPECT_EQ(ia.area, ib.area) << label << " iterate " << k;
    EXPECT_EQ(ia.delay, ib.delay) << label << " iterate " << k;
    EXPECT_EQ(ia.cap, ib.cap) << label << " iterate " << k;
    EXPECT_EQ(ia.noise, ib.noise) << label << " iterate " << k;
    EXPECT_EQ(ia.dual, ib.dual) << label << " iterate " << k;
    EXPECT_EQ(ia.rel_gap, ib.rel_gap) << label << " iterate " << k;
    EXPECT_EQ(ia.max_violation, ib.max_violation) << label << " iterate " << k;
    EXPECT_EQ(ia.lrs_passes, ib.lrs_passes) << label << " iterate " << k;
  }
  EXPECT_EQ(a.final_metrics.area_um2, b.final_metrics.area_um2) << label;
  EXPECT_EQ(a.final_metrics.delay_s, b.final_metrics.delay_s) << label;
  EXPECT_EQ(a.final_metrics.noise_f, b.final_metrics.noise_f) << label;
}

TEST(ParallelFlow, BitIdenticalAcrossThreadsAllVariants) {
  // The acceptance matrix: Table-1 profile x both coupling-load modes x
  // per-net bounds on/off, threads in {1, 2, 8}.
  const auto netlist =
      netlist::generate_circuit(netlist::spec_for_profile("c432", 1));
  for (const auto mode : {timing::CouplingLoadMode::kLocalOnly,
                          timing::CouplingLoadMode::kPropagateUpstream}) {
    for (const double per_net : {0.0, 0.5}) {
      auto options = flow_options(per_net, mode);
      options.threads = 1;
      const auto baseline = core::run_two_stage_flow(netlist, options);
      for (const int threads : {2, 8}) {
        options.threads = threads;
        const auto result = core::run_two_stage_flow(netlist, options);
        expect_same_flow(baseline, result,
                         "mode=" + std::to_string(static_cast<int>(mode)) +
                             " per_net=" + std::to_string(per_net) +
                             " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ParallelFlow, WarmStartBitIdenticalAcrossThreads) {
  const auto netlist =
      netlist::generate_circuit(netlist::spec_for_profile("c499", 1));
  const auto options = flow_options(0.0, timing::CouplingLoadMode::kLocalOnly);

  api::SizingSession cold(netlist, options);
  ASSERT_TRUE(cold.run_all().ok());
  const core::FlowResult prior = cold.take_result();

  auto rerun = [&](int threads) {
    auto warm_options = options;
    warm_options.threads = threads;
    api::SizingSession session(netlist, warm_options);
    EXPECT_TRUE(session.warm_start_from(prior).ok());
    EXPECT_TRUE(session.run_all().ok());
    return session.take_result();
  };
  const auto warm1 = rerun(1);
  for (const int threads : {2, 8}) {
    expect_same_flow(warm1, rerun(threads), "warm threads=" + std::to_string(threads));
  }
}

TEST(ParallelFlow, SessionHonorsExternalExecutor) {
  const auto netlist =
      netlist::generate_circuit(netlist::spec_for_profile("c499", 1));
  const auto options = flow_options(0.0, timing::CouplingLoadMode::kLocalOnly);

  api::SizingSession serial(netlist, options);
  ASSERT_TRUE(serial.run_all().ok());

  runtime::KernelTeam team(4);
  api::SizingSession session(netlist, options);
  session.set_executor(&team);
  ASSERT_TRUE(session.run_all().ok());

  expect_same_flow(serial.result(), session.result(), "external executor");
}

}  // namespace
