// Coupling capacitance model: Eq. 2, Eq. 3, Theorem 1, CouplingSet sums.
#include <gtest/gtest.h>

#include <cmath>

#include "layout/coupling.hpp"
#include "layout/neighbors.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrsizer;

layout::CouplingGeometry geom(double overlap = 200.0, double pitch = 4.0,
                              double fringe = 0.25e-15) {
  layout::CouplingGeometry g;
  g.overlap_um = overlap;
  g.pitch_um = pitch;
  g.fringe_per_um = fringe;
  return g;
}

TEST(Coupling, CTildeAndCHat) {
  const auto g = geom(200.0, 4.0, 0.25e-15);
  EXPECT_DOUBLE_EQ(g.c_tilde(), 0.25e-15 * 200.0 / 4.0);
  EXPECT_DOUBLE_EQ(g.c_hat(), g.c_tilde() / 8.0);
}

TEST(Coupling, ExactFormulaMatchesClosedForm) {
  const auto g = geom();
  const double xi = 1.0;
  const double xj = 1.0;
  const double u = (xi + xj) / (2.0 * g.pitch_um);  // 0.25
  EXPECT_DOUBLE_EQ(layout::exact_coupling_cap(g, xi, xj), g.c_tilde() / (1.0 - u));
}

TEST(Coupling, ExactGrowsWithWidth) {
  const auto g = geom();
  EXPECT_GT(layout::exact_coupling_cap(g, 2.0, 2.0),
            layout::exact_coupling_cap(g, 1.0, 1.0));
}

TEST(Coupling, PosynomialOrder1IsConstant) {
  const auto g = geom();
  EXPECT_DOUBLE_EQ(layout::posynomial_coupling_cap(g, 3.0, 2.0, 1), g.c_tilde());
}

TEST(Coupling, PosynomialOrder2IsPaperEq3) {
  const auto g = geom();
  const double xi = 0.8;
  const double xj = 1.4;
  const double expected = g.c_tilde() * (1.0 + (xi + xj) / (2.0 * g.pitch_um));
  EXPECT_DOUBLE_EQ(layout::posynomial_coupling_cap(g, xi, xj, 2), expected);
}

TEST(Coupling, PosynomialConvergesToExact) {
  const auto g = geom();
  const double exact = layout::exact_coupling_cap(g, 1.0, 1.0);
  double prev_err = 1e9;
  for (int k = 1; k <= 8; ++k) {
    const double err =
        std::abs(exact - layout::posynomial_coupling_cap(g, 1.0, 1.0, k));
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err / exact, 1e-4);
}

// Theorem 1(2): the relative truncation error is exactly u^k. The paper
// quotes 6.3 / 1.6 / 0.4 / 0.1 % for u = 0.25, k = 2..5.
TEST(Coupling, Theorem1ErrorRatioIsExactlyUToTheK) {
  const auto g = geom();  // u = 0.25 at xi = xj = 1
  const double exact = layout::exact_coupling_cap(g, 1.0, 1.0);
  for (int k = 1; k <= 6; ++k) {
    const double approx = layout::posynomial_coupling_cap(g, 1.0, 1.0, k);
    const double measured = (exact - approx) / exact;
    EXPECT_NEAR(measured, layout::truncation_error_ratio(0.25, k), 1e-12) << "k=" << k;
  }
  EXPECT_NEAR(layout::truncation_error_ratio(0.25, 2), 0.0625, 1e-12);   // 6.3%
  EXPECT_NEAR(layout::truncation_error_ratio(0.25, 3), 0.015625, 1e-12); // 1.6%
  EXPECT_NEAR(layout::truncation_error_ratio(0.25, 4), 0.00390625, 1e-12);
  EXPECT_NEAR(layout::truncation_error_ratio(0.25, 5), 0.0009765625, 1e-12);
}

TEST(CouplingDeath, ExactRejectsTouchingWires) {
  const auto g = geom(100.0, 1.0);
  EXPECT_DEATH(layout::exact_coupling_cap(g, 1.0, 1.0), "overlap");
}

TEST(CouplingSet, NeighborsSymmetricWithSharedCoefficients) {
  const auto f = test_support::Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  // Channel {w1,w2,w3}: pairs (w1,w2), (w2,w3); channel {w4..w7}: 3 pairs.
  EXPECT_EQ(coupling.pairs().size(), 5u);
  const auto n1 = coupling.neighbors(f.wires[0]);
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0].other, f.wires[1]);
  const auto n2 = coupling.neighbors(f.wires[1]);
  ASSERT_EQ(n2.size(), 2u);
  // Shared pair has identical coefficients seen from both sides.
  const auto& from_w2 =
      n2[0].other == f.wires[0] ? n2[0] : n2[1];
  EXPECT_DOUBLE_EQ(from_w2.c_hat, n1[0].c_hat);
  EXPECT_DOUBLE_EQ(from_w2.c_tilde, n1[0].c_tilde);
}

TEST(CouplingSet, GatesHaveNoNeighbors) {
  const auto f = test_support::Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  for (netlist::NodeId g : f.gates) EXPECT_TRUE(coupling.neighbors(g).empty());
}

TEST(CouplingSet, NoiseLinearMatchesManualSum) {
  const auto f = test_support::Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  std::vector<double> x(static_cast<std::size_t>(f.circuit.num_nodes()), 1.0);
  double manual = 0.0;
  for (std::int32_t p = 0; p < static_cast<std::int32_t>(coupling.pairs().size());
       ++p) {
    manual += coupling.pair_c_hat(p) * 2.0;
  }
  EXPECT_DOUBLE_EQ(coupling.noise_linear(x), manual);
}

TEST(CouplingSet, NoiseLinearScalesWithUniformSizes) {
  const auto f = test_support::Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  std::vector<double> x1(static_cast<std::size_t>(f.circuit.num_nodes()), 1.0);
  std::vector<double> x01(static_cast<std::size_t>(f.circuit.num_nodes()), 0.1);
  // The Table 1 noise metric is linear in sizes: 10x shrink = 10x noise cut.
  EXPECT_NEAR(coupling.noise_linear(x01), 0.1 * coupling.noise_linear(x1), 1e-25);
}

TEST(CouplingSet, ExactNoiseExceedsLinearPlusConstant) {
  const auto f = test_support::Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  std::vector<double> x(static_cast<std::size_t>(f.circuit.num_nodes()), 1.0);
  double constants = 0.0;
  for (std::int32_t p = 0; p < static_cast<std::int32_t>(coupling.pairs().size());
       ++p) {
    constants += coupling.pair_c_tilde(p);
  }
  // exact = c̃/(1-u) >= c̃(1+u) = constant + linear part.
  EXPECT_GE(coupling.noise_exact(x), constants + coupling.noise_linear(x) - 1e-30);
}

TEST(CouplingSet, MillerFoldingScalesCoefficients) {
  const auto f = test_support::Fig1Circuit::make();
  const std::vector<std::vector<netlist::NodeId>> orders = {
      {f.wires[0], f.wires[1]}};
  layout::NeighborOptions options;
  options.fold_miller = true;
  const auto weighted = layout::build_coupling_set(
      f.circuit, orders, options, [](netlist::NodeId, netlist::NodeId) { return 0.5; });
  options.fold_miller = false;
  const auto plain = layout::build_coupling_set(f.circuit, orders, options);
  ASSERT_EQ(weighted.pairs().size(), 1u);
  EXPECT_DOUBLE_EQ(weighted.pair_c_hat(0), 0.5 * plain.pair_c_hat(0));
}

TEST(CouplingSet, EmptySetBehaves) {
  const auto f = test_support::Fig1Circuit::make();
  const auto coupling = test_support::no_coupling(f.circuit);
  std::vector<double> x(static_cast<std::size_t>(f.circuit.num_nodes()), 1.0);
  EXPECT_DOUBLE_EQ(coupling.noise_linear(x), 0.0);
  EXPECT_DOUBLE_EQ(coupling.noise_exact(x), 0.0);
  EXPECT_TRUE(coupling.neighbors(f.wires[0]).empty());
}

}  // namespace
