// Waveforms and the exact similarity integral (paper §3.2).
#include <gtest/gtest.h>

#include "sim/waveform.hpp"

namespace {

using lrsizer::sim::SimTime;
using lrsizer::sim::Waveform;

Waveform square(int initial, SimTime first, SimTime period, SimTime horizon) {
  Waveform w(initial);
  for (SimTime t = first; t < horizon; t += period) w.add_toggle(t);
  return w;
}

TEST(Waveform, ValueAtFollowsToggles) {
  Waveform w(0);
  w.add_toggle(10);
  w.add_toggle(20);
  EXPECT_EQ(w.value_at(0), 0);
  EXPECT_EQ(w.value_at(9), 0);
  EXPECT_EQ(w.value_at(10), 1);  // toggle takes effect at its own time
  EXPECT_EQ(w.value_at(15), 1);
  EXPECT_EQ(w.value_at(20), 0);
  EXPECT_EQ(w.value_at(1000), 0);
}

TEST(Waveform, DoubleToggleAtSameInstantCancels) {
  Waveform w(1);
  w.add_toggle(5);
  w.add_toggle(5);  // zero-width glitch
  EXPECT_TRUE(w.toggles().empty());
  EXPECT_EQ(w.value_at(5), 1);
}

TEST(Waveform, TransitionCountRespectsHorizon) {
  Waveform w(0);
  w.add_toggle(10);
  w.add_toggle(20);
  w.add_toggle(30);
  EXPECT_EQ(w.transition_count(25), 2);
  EXPECT_EQ(w.transition_count(30), 2);  // horizon is exclusive
  EXPECT_EQ(w.transition_count(31), 3);
}

TEST(Similarity, IdenticalWaveformsGiveOne) {
  const Waveform w = square(0, 10, 20, 100);
  EXPECT_DOUBLE_EQ(Waveform::similarity(w, w, 100), 1.0);
}

TEST(Similarity, ComplementaryWaveformsGiveMinusOne) {
  const Waveform a = square(0, 10, 20, 100);
  const Waveform b = square(1, 10, 20, 100);
  EXPECT_DOUBLE_EQ(Waveform::similarity(a, b, 100), -1.0);
}

TEST(Similarity, ConstantVsSquareGivesZero) {
  // A 50%-duty square against a constant: equal and opposite halves.
  const Waveform a = square(0, 10, 10, 100);  // toggles every 10 from t=10
  const Waveform constant(1);
  EXPECT_NEAR(Waveform::similarity(a, constant, 100), 0.0, 1e-12);
}

TEST(Similarity, QuarterShiftedSquares) {
  // Period 40, shifted by 10 (a quarter period): overlap 3/4 - 1/4 = 1/2...
  // computed exactly: agreement 20 of every 40 ticks -> similarity 0.
  const Waveform a = square(1, 20, 20, 200);
  const Waveform b = square(1, 10, 20, 200);
  EXPECT_NEAR(Waveform::similarity(a, b, 200), 0.0, 1e-12);
}

TEST(Similarity, SmallLagGivesHighSimilarity) {
  // b lags a by 2 ticks out of a 50-tick half period.
  const Waveform a = square(1, 50, 50, 1000);
  const Waveform b = square(1, 52, 50, 1000);
  const double s = Waveform::similarity(a, b, 1000);
  EXPECT_GT(s, 0.9);
  EXPECT_LT(s, 1.0);
}

TEST(Similarity, SymmetricInArguments) {
  const Waveform a = square(0, 7, 13, 400);
  const Waveform b = square(1, 5, 29, 400);
  EXPECT_DOUBLE_EQ(Waveform::similarity(a, b, 400),
                   Waveform::similarity(b, a, 400));
}

TEST(Similarity, BoundedByOne) {
  const Waveform a = square(0, 3, 7, 500);
  const Waveform b = square(1, 11, 17, 500);
  const double s = Waveform::similarity(a, b, 500);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

TEST(Similarity, HandLabeledExample) {
  // a: 1 on [0,30), 0 on [30,100). b: 1 on [0,60), 0 on [60,100).
  // agree on [0,30) ∪ [60,100) = 70, disagree on [30,60) = 30 -> 0.4.
  Waveform a(1);
  a.add_toggle(30);
  Waveform b(1);
  b.add_toggle(60);
  EXPECT_DOUBLE_EQ(Waveform::similarity(a, b, 100), 0.4);
}

TEST(Similarity, TogglesBeyondHorizonIgnored) {
  Waveform a(1);
  a.add_toggle(150);  // after horizon
  const Waveform constant(1);
  EXPECT_DOUBLE_EQ(Waveform::similarity(a, constant, 100), 1.0);
}

}  // namespace
