// Serialization: .bench writer round-trip and VCD export.
#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/generator.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace lrsizer;

TEST(BenchWriter, C17RoundTrip) {
  const auto original = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto text = netlist::to_bench_string(original, "round trip");
  const auto reparsed = netlist::parse_bench_string(text);
  ASSERT_EQ(reparsed.num_gates_logic(), original.num_gates_logic());
  ASSERT_EQ(reparsed.primary_inputs().size(), original.primary_inputs().size());
  ASSERT_EQ(reparsed.primary_outputs().size(), original.primary_outputs().size());
  for (std::int32_t g = 0; g < original.num_gates_logic(); ++g) {
    EXPECT_EQ(reparsed.gate(g).name, original.gate(g).name);
    EXPECT_EQ(reparsed.gate(g).op, original.gate(g).op);
    EXPECT_EQ(reparsed.gate(g).fanin, original.gate(g).fanin);
  }
}

TEST(BenchWriter, GeneratedCircuitRoundTripPreservesSimulation) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 90;
  spec.num_wires = 200;
  spec.num_inputs = 12;
  spec.num_outputs = 7;
  spec.seed = 13;
  const auto original = netlist::generate_circuit(spec);
  const auto reparsed =
      netlist::parse_bench_string(netlist::to_bench_string(original));

  // The behavioral oracle: identical waveforms under identical stimuli.
  const auto vectors = sim::random_vectors(12, 24, 99);
  const auto sim_a = sim::simulate(original, vectors);
  const auto sim_b = sim::simulate(reparsed, vectors);
  ASSERT_EQ(sim_a.waveforms.size(), sim_b.waveforms.size());
  for (std::size_t i = 0; i < sim_a.waveforms.size(); ++i) {
    EXPECT_EQ(sim_a.waveforms[i].initial_value(), sim_b.waveforms[i].initial_value());
    EXPECT_EQ(sim_a.waveforms[i].toggles(), sim_b.waveforms[i].toggles());
  }
}

TEST(BenchWriter, HeaderCommentEmitted) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto text = netlist::to_bench_string(logic, "hello world");
  EXPECT_EQ(text.rfind("# hello world\n", 0), 0u);
}

TEST(Vcd, StructureAndInitialDump) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const auto result = sim::simulate(logic, {{0}, {1}});
  const auto vcd = sim::to_vcd_string(logic, result);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 \" y $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  // Initial values: a = 0, y = 1.
  EXPECT_NE(vcd.find("0!"), std::string::npos);
  EXPECT_NE(vcd.find("1\""), std::string::npos);
}

TEST(Vcd, TransitionsAppearAtTheRightTimes) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  sim::SimOptions options;
  options.vector_period = 10;
  options.gate_delay = 3;
  const auto result = sim::simulate(logic, {{0}, {1}}, options);
  const auto vcd = sim::to_vcd_string(logic, result);
  // a rises at #10, y falls at #13.
  EXPECT_NE(vcd.find("#10\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#13\n0\""), std::string::npos);
}

TEST(Vcd, CoversAllNetsOfC17) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = sim::simulate(logic, sim::random_vectors(5, 8, 4));
  const auto vcd = sim::to_vcd_string(logic, result);
  for (std::int32_t g = 0; g < logic.num_gates_logic(); ++g) {
    EXPECT_NE(vcd.find(" " + logic.gate(g).name + " $end"), std::string::npos)
        << logic.gate(g).name;
  }
}

}  // namespace
