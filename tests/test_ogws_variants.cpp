// OGWS variants: the literal additive subgradient rule, coupling-load
// modes, differentiated gates, and a bound-factor sweep against exhaustive
// grid search on the chain circuit.
#include <gtest/gtest.h>

#include <cmath>

#include "core/flow.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "netlist/generator.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

TEST(OgwsVariants, AdditiveSubgradientReachesFeasibility) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, core::BoundFactors{});
  core::OgwsOptions options;
  options.step_rule = core::StepRule::kSubgradient;
  options.step0 = 0.25;
  options.max_iterations = 400;
  const auto result = core::run_ogws(f.circuit, coupling, bounds, options);
  EXPECT_LE(result.max_violation, 0.02);
  const auto m = timing::compute_metrics(f.circuit, coupling, result.sizes, kMode);
  EXPECT_LE(m.noise_f, bounds.noise_f * 1.02);
}

TEST(OgwsVariants, BothRulesAgreeOnTheOptimum) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, core::BoundFactors{});
  core::OgwsOptions mult;
  core::OgwsOptions sub;
  sub.step_rule = core::StepRule::kSubgradient;
  sub.step0 = 0.25;
  sub.max_iterations = 500;
  const auto a = core::run_ogws(f.circuit, coupling, bounds, mult);
  const auto b = core::run_ogws(f.circuit, coupling, bounds, sub);
  const auto ma = timing::compute_metrics(f.circuit, coupling, a.sizes, kMode);
  const auto mb = timing::compute_metrics(f.circuit, coupling, b.sizes, kMode);
  // The convex problem has one optimum; both searches must land within the
  // combined tolerance of it.
  EXPECT_NEAR(ma.area_um2, mb.area_um2, 0.06 * ma.area_um2);
}

TEST(OgwsVariants, PropagateUpstreamModeConvergesAndIsFeasible) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  core::BoundFactors factors;
  factors.delay = 1.1;  // the heavier load model needs a little slack
  core::OgwsOptions options;
  options.lrs.mode = timing::CouplingLoadMode::kPropagateUpstream;
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          options.lrs.mode, factors);
  const auto result = core::run_ogws(f.circuit, coupling, bounds, options);
  EXPECT_LE(result.max_violation, 0.02);
  const auto m = timing::compute_metrics(f.circuit, coupling, result.sizes,
                                         options.lrs.mode);
  EXPECT_LE(m.delay_s, bounds.delay_s * 1.02);
}

TEST(OgwsVariants, FlowWithDifferentiatedGates) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 100;
  spec.num_wires = 220;
  spec.num_inputs = 12;
  spec.num_outputs = 8;
  spec.seed = 15;
  const auto logic = netlist::generate_circuit(spec);
  core::FlowOptions options;
  options.elab.differentiate_gate_types = true;
  const auto flow = core::run_two_stage_flow(logic, options);
  EXPECT_LE(flow.ogws.max_violation, 0.03);
  EXPECT_LT(flow.final_metrics.area_um2, flow.init_metrics.area_um2);
  // Differentiated gates are heavier on average than the uniform model.
  core::FlowOptions uniform = options;
  uniform.elab.differentiate_gate_types = false;
  const auto base = core::run_two_stage_flow(logic, uniform);
  EXPECT_GT(flow.init_metrics.area_um2, base.init_metrics.area_um2);
}

// Bound-factor sweep vs exhaustive grid search on the 3-component chain.
class ChainBruteForce : public ::testing::TestWithParam<double> {};

TEST_P(ChainBruteForce, OgwsWithinTenPercentOfGridOptimum) {
  const double delay_factor = GetParam();
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  core::BoundFactors factors;
  factors.delay = delay_factor;
  factors.power = 0.6;
  const auto bounds =
      core::derive_bounds(c.circuit, coupling, c.circuit.sizes(), kMode, factors);

  const int steps = 20;
  std::vector<double> grid(steps);
  for (int k = 0; k < steps; ++k) {
    grid[static_cast<std::size_t>(k)] =
        0.1 * std::pow(100.0, static_cast<double>(k) / (steps - 1));
  }
  auto x = c.circuit.sizes();
  const netlist::NodeId c0 = c.circuit.first_component();
  double best = 1e300;
  for (double a : grid) {
    for (double b : grid) {
      for (double d : grid) {
        x[static_cast<std::size_t>(c0)] = a;
        x[static_cast<std::size_t>(c0 + 1)] = b;
        x[static_cast<std::size_t>(c0 + 2)] = d;
        const auto m = timing::compute_metrics(c.circuit, coupling, x, kMode);
        if (m.delay_s <= bounds.delay_s && m.cap_f <= bounds.cap_f) {
          best = std::min(best, m.area_um2);
        }
      }
    }
  }
  ASSERT_LT(best, 1e299);

  core::OgwsOptions options;
  options.max_iterations = 600;
  const auto result = core::run_ogws(c.circuit, coupling, bounds, options);
  const auto m = timing::compute_metrics(c.circuit, coupling, result.sizes, kMode);
  EXPECT_LE(m.delay_s, bounds.delay_s * 1.02);
  EXPECT_LE(m.area_um2, best * 1.10);
}

INSTANTIATE_TEST_SUITE_P(DelayFactors, ChainBruteForce,
                         ::testing::Values(0.85, 0.95, 1.05, 1.2),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "f" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
