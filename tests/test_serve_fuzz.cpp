// Protocol fuzz battery for the serve stack: seeded random malformed,
// truncated, and adversarial jsonl lines through Server::handle_line (and,
// on POSIX, raw TCP garbage through the event loop). The contract under
// attack: every response the server emits is well-formed jsonl of a known
// type, malformed input yields exactly `error` responses, and the process
// never crashes, leaks, or stalls. CI runs this binary under ASan/UBSan;
// the generators are fully seeded (std::mt19937_64 with fixed seeds) so a
// failure reproduces deterministically.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/json.hpp"
#include "serve/listen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace lrsizer {
namespace {

using runtime::Json;

/// The complete response vocabulary of lrsizer-serve-v3. Anything else
/// coming out of the server under fuzzing is a bug.
bool known_response_type(const std::string& type) {
  return type == "hello" || type == "accepted" || type == "progress" ||
         type == "result" || type == "cancelled" || type == "stats" ||
         type == "error";
}

/// A server wired to a collecting sink that *validates while collecting*:
/// every emitted line must parse as JSON with a known "type". Violations
/// are counted rather than asserted inline (sinks run on pool threads).
struct FuzzHarness {
  serve::Server server;
  std::atomic<std::size_t> responses{0};
  std::atomic<std::size_t> malformed{0};

  FuzzHarness()
      : server(make_options(), [this](const std::string& line) {
          ++responses;
          try {
            const Json j = Json::parse(line);
            if (!j.is_object() || j.find("type") == nullptr ||
                !j.at("type").is_string() ||
                !known_response_type(j.at("type").as_string())) {
              ++malformed;
            }
          } catch (const std::exception&) {
            ++malformed;
          }
        }) {}

  static serve::ServerOptions make_options() {
    serve::ServerOptions options;
    options.jobs = 1;
    options.version = "fuzz";
    return options;
  }

  /// Feed one line; handle_line returning false (shutdown) is fine, the
  /// harness just keeps feeding a fresh logical stream.
  void feed(const std::string& line) {
    (void)server.handle_line(line);
  }

  void finish() {
    server.drain();
    EXPECT_EQ(malformed.load(), 0u)
        << malformed.load() << " of " << responses.load()
        << " responses were not well-formed known-type jsonl";
  }
};

/// A valid request corpus to mutate: one of each request kind, plus a size
/// request with nested options (richer structure for bit-flips to corrupt).
const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kCorpus = {
      R"({"type":"size","id":"a","input":{"profile":"c17"},"options":{"vectors":8}})",
      R"({"type":"size","id":"b","seed":3,"input":{"profile":"c17"},"options":{"vectors":8,"max_iterations":5}})",
      R"({"type":"cancel","id":"a"})",
      R"({"type":"stats","id":"s"})",
      R"({"type":"stats"})",
  };
  return kCorpus;
}

// ---- Json parser hardening --------------------------------------------------

TEST(ServeFuzzJson, DeepNestingIsRejectedNotAStackOverflow) {
  // 100k opening brackets: without the parser's depth cap this recursion
  // would blow the stack long before ASan could say anything useful.
  const std::string deep_array(100000, '[');
  EXPECT_THROW((void)Json::parse(deep_array), std::exception);
  std::string deep_object;
  for (int i = 0; i < 100000; ++i) deep_object += "{\"k\":";
  EXPECT_THROW((void)Json::parse(deep_object), std::exception);
  // At a depth comfortably under the cap, nesting still parses.
  std::string shallow = "1";
  for (int i = 0; i < 64; ++i) shallow = "[" + shallow + "]";
  EXPECT_NO_THROW((void)Json::parse(shallow));
}

TEST(ServeFuzzJson, RandomBytesEitherParseOrThrowCleanly) {
  std::mt19937_64 rng(0xf00dULL);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> length(0, 256);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string text(length(rng), '\0');
    for (char& c : text) c = static_cast<char>(byte(rng));
    try {
      const Json j = Json::parse(text);
      (void)j.dump();  // whatever parsed must re-serialize
    } catch (const std::exception&) {
      // A clean throw is the expected outcome for garbage.
    }
  }
}

TEST(ServeFuzzJson, DumpEscapesControlCharactersRoundTrip) {
  // Strings containing every byte 0..255 must survive dump -> parse.
  std::string all_bytes;
  for (int c = 0; c < 256; ++c) all_bytes.push_back(static_cast<char>(c));
  Json j = Json::object();
  j.set("k", all_bytes);
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("k").as_string(), all_bytes);
}

// ---- handle_line fuzzing ----------------------------------------------------

TEST(ServeFuzz, BitFlippedRequestsOnlyEverYieldErrorsOrValidResponses) {
  FuzzHarness harness;
  std::mt19937_64 rng(1ULL);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int iteration = 0; iteration < 1500; ++iteration) {
    std::string line = corpus()[iteration % corpus().size()];
    // 1-3 random bit flips anywhere in the line.
    std::uniform_int_distribution<std::size_t> pos(0, line.size() - 1);
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      line[pos(rng)] ^= static_cast<char>(1 << bit(rng));
    }
    harness.feed(line);
  }
  harness.finish();
}

TEST(ServeFuzz, TruncatedRequestsOnlyEverYieldErrorsOrValidResponses) {
  FuzzHarness harness;
  std::mt19937_64 rng(2ULL);
  for (int iteration = 0; iteration < 1000; ++iteration) {
    const std::string& whole = corpus()[iteration % corpus().size()];
    std::uniform_int_distribution<std::size_t> cut(0, whole.size() - 1);
    harness.feed(whole.substr(0, cut(rng)));
  }
  harness.finish();
}

TEST(ServeFuzz, AdversarialPayloadsNeverCrashTheServer) {
  FuzzHarness harness;
  // Hand-picked nasties: wrong types everywhere, huge and non-finite
  // numbers, invalid UTF-8 in strings, control characters, unterminated
  // strings, absurd seeds, unknown profiles, deep nesting inside a request.
  const std::vector<std::string> nasties = {
      "",
      "   \t  ",
      "null",
      "true",
      "42",
      "\"just a string\"",
      "[]",
      "{}",
      R"({"type":null})",
      R"({"type":42})",
      R"({"type":"size"})",
      R"({"type":"size","id":7,"input":{"profile":"c17"}})",
      R"({"type":"size","id":"","input":{"profile":"c17"}})",
      R"({"type":"size","id":"x","input":{}})",
      R"({"type":"size","id":"x","input":{"profile":"c9999"}})",
      R"({"type":"size","id":"x","input":{"profile":"c17","bench":"x"}})",
      R"({"type":"size","id":"x","input":{"bench":"INPUT(}garbage{"}})",
      R"({"type":"size","id":"x","seed":-1,"input":{"profile":"c17"}})",
      R"({"type":"size","id":"x","seed":1e308,"input":{"profile":"c17"}})",
      R"({"type":"size","id":"x","seed":0.5,"input":{"profile":"c17"}})",
      R"({"type":"size","id":"x","input":{"profile":"c17"},"options":{"vectors":-8}})",
      R"({"type":"size","id":"x","input":{"profile":"c17"},"options":{"vectors":1e999}})",
      R"({"type":"size","id":"x","input":{"profile":"c17"},"options":42})",
      R"({"type":"cancel"})",
      R"({"type":"cancel","id":""})",
      R"({"type":"stats","id":7})",
      R"({"type":"bogus","id":"x"})",
      // Raw control characters inside strings are strict-JSON violations
      // and the parser rejects them (embedded NUL included).
      "{\"type\":\"stats\",\"id\":\"\x01\x02\x03\"}",
      std::string("{\"type\":\"size\",\"id\":\"a\0b\",\"input\":"
                  "{\"profile\":\"c17\"},\"options\":{\"vectors\":8}}",
                  76),
      R"({"type":"size","id":"x","input":)" + std::string(500, '[') + "}",
      "{\"unterminated\":\"",
      std::string(4096, '{'),
  };
  for (const std::string& line : nasties) harness.feed(line);
  harness.server.drain();
  // Every line above was rejected: nothing may have been accepted or run.
  EXPECT_EQ(harness.server.stats().accepted, 0u);
  // Ids are opaque byte strings to the protocol: invalid UTF-8 is not
  // malformed, just ugly. This must be *accepted*, run to completion, and
  // still produce well-formed responses (the sink validation) rather than
  // corrupting the output stream.
  harness.feed(
      "{\"type\":\"size\",\"id\":\"\xff\xfe\x80\",\"input\":{\"profile\":"
      "\"c17\"},\"options\":{\"vectors\":8}}");
  harness.finish();
  EXPECT_EQ(harness.server.stats().accepted, 1u);
  EXPECT_EQ(harness.server.stats().completed, 1u);
}

TEST(ServeFuzz, RandomStructuredRequestsKeepTheServerResponsive) {
  // Mutate at the token level (not bits): random type, ids with hostile
  // characters, random seeds and option values. Interleave a known-good
  // request periodically — the server must keep answering it correctly
  // no matter what came before.
  FuzzHarness harness;
  std::mt19937_64 rng(3ULL);
  const std::vector<std::string> types = {"size", "cancel", "stats",
                                          "bogus", "", "SIZE"};
  const std::vector<std::string> ids = {"a",      "",     "a b",
                                        "\\\"x\\\"", "\xc3\x28", "j"};
  for (int iteration = 0; iteration < 400; ++iteration) {
    std::string line = "{\"type\":\"" + types[rng() % types.size()] +
                       "\",\"id\":\"" + ids[rng() % ids.size()] + "\"";
    if (rng() % 2) line += ",\"seed\":" + std::to_string(rng());
    if (rng() % 2) {
      line += ",\"input\":{\"profile\":\"c17\"}";
    }
    if (rng() % 3 == 0) {
      line += ",\"options\":{\"vectors\":" +
              std::to_string(static_cast<int>(rng() % 2000) - 1000) + "}";
    }
    line += "}";
    harness.feed(line);
  }
  harness.server.drain();
  // The canary: after 400 rounds of abuse, a well-formed request still
  // produces a result.
  harness.feed(
      R"({"type":"size","id":"canary","input":{"profile":"c17"},"options":{"vectors":8}})");
  harness.finish();
  EXPECT_GE(harness.server.stats().completed, 1u);
}

// ---- TCP front-end fuzzing --------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
#endif
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{60, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Read until `marker` appears in the stream or EOF/timeout.
bool read_until_marker(int fd, const std::string& marker) {
  std::string seen;
  char chunk[4096];
  while (seen.find(marker) == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    seen.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

TEST(ServeFuzzTcp, RandomGarbageStreamsNeverKillTheEventLoop) {
  serve::ServerOptions options;
  options.jobs = 1;
  options.max_line_bytes = 4096;  // small cap: the flood trips it quickly
  options.version = "fuzz";
  std::stop_source stop;
  options.stop = stop.get_token();
  serve::Server server(options);
  std::atomic<std::uint16_t> port{0};
  std::atomic<bool> done{false};
  std::thread loop([&] {
    serve::listen_and_serve(0, server, &port);
    done.store(true);
  });
  while (port.load() == 0 && !done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(port.load(), 0);

  std::mt19937_64 rng(4ULL);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 8; ++round) {
    const int fd = connect_loopback(port.load());
    ASSERT_GE(fd, 0);
    switch (round % 4) {
      case 0: {  // pure binary garbage, newline-sprinkled
        std::string garbage(2048, '\0');
        for (char& c : garbage) c = static_cast<char>(byte(rng));
        for (std::size_t i = 64; i < garbage.size(); i += 128) {
          garbage[i] = '\n';
        }
        send_all(fd, garbage);
        break;
      }
      case 1:  // an endless line (no newline) — oversized-line path
        send_all(fd, std::string(32768, 'A'));
        break;
      case 2:  // half a request, then abrupt disconnect
        send_all(fd, R"({"type":"size","id":"half","inp)");
        break;
      case 3:  // interleaved garbage and valid request on one connection
        send_all(fd, "\x00\xff\xfe not json \n");
        send_all(fd,
                 "{\"type\":\"size\",\"id\":\"ok\",\"input\":{\"profile\":"
                 "\"c17\"},\"options\":{\"vectors\":8}}\n");
        EXPECT_TRUE(read_until_marker(fd, "\"result\""))
            << "valid request after garbage got no result (round " << round
            << ")";
        break;
    }
    ::close(fd);
  }

  // The loop survived it all: a fresh client still gets hello + stats.
  const int fd = connect_loopback(port.load());
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(read_until_marker(fd, "\"hello\""));
  send_all(fd, "{\"type\":\"stats\"}\n");
  EXPECT_TRUE(read_until_marker(fd, "\"stats\""));
  ::close(fd);

  stop.request_stop();
  loop.join();
  EXPECT_TRUE(done.load());
}

TEST(ServeFuzzHttp, MalformedScrapesNeverWedgeTheMetricsPortOrJobLoop) {
  serve::ServerOptions options;
  options.jobs = 1;
  options.version = "fuzz";
  std::stop_source stop;
  options.stop = stop.get_token();
  serve::Server server(options);
  std::atomic<std::uint16_t> port{0};
  std::atomic<std::uint16_t> metrics_port{0};
  std::atomic<bool> done{false};
  std::thread loop([&] {
    serve::ListenOptions listen;
    listen.port = 0;
    listen.metrics_port = 0;
    listen.bound_port = &port;
    listen.metrics_bound_port = &metrics_port;
    serve::listen_and_serve(listen, server);
    done.store(true);
  });
  while ((port.load() == 0 || metrics_port.load() == 0) && !done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(port.load(), 0);
  ASSERT_NE(metrics_port.load(), 0);

  /// Send raw bytes to the metrics port, read to EOF, return the response
  /// (empty when the peer just closes — the slowloris outcome).
  auto http_raw = [&](const std::string& bytes) {
    const int fd = connect_loopback(metrics_port.load());
    EXPECT_GE(fd, 0);
    if (fd < 0) return std::string();
    send_all(fd, bytes);
    std::string response;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };
  auto status_of = [](const std::string& response) {
    if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return 0;
    return std::atoi(response.c_str() + 9);
  };

  // Each malformation answered (or just closed), none fatal to the loop.
  EXPECT_EQ(status_of(http_raw("GET /" + std::string(9000, 'a') +
                               " HTTP/1.1\r\n\r\n")),
            400);  // oversized request line blows the 8 KiB cap
  EXPECT_EQ(status_of(http_raw("GET /metrics HTTP/1.1\n\n")),
            400);  // bare LF line endings
  EXPECT_EQ(status_of(http_raw("G@T /metrics HTTP/1.1\r\n\r\n")),
            400);  // non-token method byte
  EXPECT_EQ(status_of(http_raw("GET /metrics\r\n\r\n")),
            400);  // missing HTTP version
  EXPECT_EQ(status_of(http_raw("BREW /metrics HTTP/1.1\r\n\r\n")),
            405);  // parses fine; routing only answers GET
  std::mt19937_64 rng(5ULL);
  for (int round = 0; round < 4; ++round) {
    std::string garbage(1024, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    (void)http_raw(garbage);  // any status (or close) is fine; no crash
  }
  {
    // Slowloris: a header dribble that never completes, then EOF. The
    // parser is mid-request; the loop must just close and move on.
    const int fd = connect_loopback(metrics_port.load());
    ASSERT_GE(fd, 0);
    send_all(fd, "GET /metrics HTTP/1.1\r\nX-Slow: ");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  }
  {
    // A half-open scrape held idle while the jsonl side works (below):
    // one stuck connection must not block the shared poll loop.
    const int fd = connect_loopback(metrics_port.load());
    ASSERT_GE(fd, 0);
    send_all(fd, "GET /metr");

    // The jsonl job loop never noticed any of it.
    const int job = connect_loopback(port.load());
    ASSERT_GE(job, 0);
    EXPECT_TRUE(read_until_marker(job, "\"hello\""));
    send_all(job,
             "{\"type\":\"size\",\"id\":\"ok\",\"input\":{\"profile\":"
             "\"c17\"},\"options\":{\"vectors\":8}}\n");
    EXPECT_TRUE(read_until_marker(job, "\"result\""));
    ::close(job);
    ::close(fd);
  }

  // And a well-formed scrape still answers with the accepted job counted.
  const std::string scrape = http_raw("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(scrape), 200);
  EXPECT_NE(scrape.find("lrsizer_serve_accepted_total 1"), std::string::npos);
  const std::string health = http_raw("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(health), 200);

  stop.request_stop();
  loop.join();
  EXPECT_TRUE(done.load());
}

#endif  // sockets

}  // namespace
}  // namespace lrsizer
