// Baseline sizers: uniform scaling, min sizes, delay-only LR ([3]).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/problem.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

TEST(Baselines, MinSizesAreLowerBounds) {
  const auto f = Fig1Circuit::make();
  const auto x = core::min_sizes(f.circuit);
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(v)], f.circuit.lower_bound(v));
  }
  EXPECT_DOUBLE_EQ(x[0], 0.0);  // source carries no size
}

TEST(Baselines, UniformSizesClamp) {
  const auto f = Fig1Circuit::make();
  const auto x = core::uniform_sizes(f.circuit, 50.0);
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(v)], f.circuit.upper_bound(v));
  }
}

TEST(Baselines, UniformScalingMeetsReachableDelayBound) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  // Bound: the delay at uniform size 2 (reachable by construction).
  const auto x2 = core::uniform_sizes(f.circuit, 2.0);
  const double bound = timing::compute_metrics(f.circuit, coupling, x2, kMode).delay_s;
  const auto x = core::size_uniform_for_delay(f.circuit, coupling, bound, kMode);
  const auto m = timing::compute_metrics(f.circuit, coupling, x, kMode);
  EXPECT_LE(m.delay_s, bound * 1.0001);
  // And it should not be grossly oversized: area at most that of size 2.
  EXPECT_LE(m.area_um2,
            timing::compute_metrics(f.circuit, coupling, x2, kMode).area_um2 * 1.001);
}

TEST(Baselines, UniformScalingReturnsMinWhenBoundIsLoose) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  const auto x = core::size_uniform_for_delay(f.circuit, coupling, 1.0 /*1s*/, kMode);
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(v)], f.circuit.tech().min_size);
  }
}

TEST(Baselines, DelayOnlyLrIgnoresNoiseBound) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, core::BoundFactors{});
  core::OgwsOptions options;
  const auto constrained = core::run_ogws(f.circuit, coupling, bounds, options);
  const auto delay_only = core::run_delay_only_lr(f.circuit, coupling, bounds, options);

  const auto mc =
      timing::compute_metrics(f.circuit, coupling, constrained.sizes, kMode);
  const auto md =
      timing::compute_metrics(f.circuit, coupling, delay_only.sizes, kMode);
  // The noise-constrained run obeys X0; the delay-only baseline does not
  // have to (and its area can only be <= within tolerance).
  EXPECT_LE(mc.noise_f, bounds.noise_f * 1.02);
  EXPECT_LE(md.area_um2, mc.area_um2 * 1.05);
}

TEST(Baselines, UniformScalingCostsMoreAreaThanLr) {
  // The LR sizer beats the single-knob baseline at equal delay bound.
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  core::BoundFactors factors;
  factors.delay = 0.9;
  factors.power = 10.0;  // keep only the delay bound active
  factors.noise = 10.0;
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, factors);
  const auto lr = core::run_ogws(f.circuit, coupling, bounds);
  const auto uniform =
      core::size_uniform_for_delay(f.circuit, coupling, bounds.delay_s, kMode);
  const auto m_lr = timing::compute_metrics(f.circuit, coupling, lr.sizes, kMode);
  const auto m_un = timing::compute_metrics(f.circuit, coupling, uniform, kMode);
  EXPECT_LE(m_lr.delay_s, bounds.delay_s * 1.02);
  EXPECT_LE(m_lr.area_um2, m_un.area_um2 * 1.001);
}

}  // namespace
