// The ECO subsystem end to end (docs/ECO.md): incremental re-sizing against
// a cached base converges in a fraction of the cold iteration count at the
// same KKT tolerance, index/seed round-trips reuse everything on an
// unedited netlist, and the repeater-insertion pre-pass produces netlists
// that re-parse, re-hash stably, and size feasibly.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "core/flow.hpp"
#include "eco/buffering.hpp"
#include "eco/incremental.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/cone_hash.hpp"
#include "netlist/generator.hpp"
#include "netlist/hash.hpp"
#include "netlist/iscas_profiles.hpp"
#include "netlist/logic_netlist.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using netlist::LogicNetlist;
using netlist::LogicOp;

/// The paper benches' flow options (bench_common.hpp) — the profile the
/// committed bench/BENCH_eco.json was measured under.
core::FlowOptions eco_flow_options() {
  core::FlowOptions options;
  options.num_vectors = 32;
  options.bound_factors.delay = 1.0;
  options.bound_factors.power = 0.15;
  options.bound_factors.noise = 0.10;
  options.initial_size = 1.0;
  return options;
}

LogicOp flipped(LogicOp op) {
  switch (op) {
    case LogicOp::kAnd: return LogicOp::kOr;
    case LogicOp::kOr: return LogicOp::kAnd;
    case LogicOp::kNand: return LogicOp::kNor;
    case LogicOp::kNor: return LogicOp::kNand;
    case LogicOp::kXor: return LogicOp::kXnor;
    case LogicOp::kXnor: return LogicOp::kXor;
    default: return op;
  }
}

/// Rebuild `base` with a seeded `fraction` of its flippable gates' ops
/// flipped — same edit model as bench/bench_eco.cpp (arity and elaborated
/// structure unchanged, so the multiplier state transfers).
LogicNetlist flip_ops(const LogicNetlist& base, double fraction,
                      std::uint64_t seed) {
  std::vector<std::int32_t> candidates;
  for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
    if (flipped(base.gate(g).op) != base.gate(g).op) candidates.push_back(g);
  }
  util::Rng rng(seed);
  for (std::size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng.next_below(i)]);
  }
  std::size_t num_edits = static_cast<std::size_t>(
      fraction * static_cast<double>(base.num_real_gates()) + 0.5);
  if (num_edits == 0) num_edits = 1;
  if (num_edits > candidates.size()) num_edits = candidates.size();
  const std::unordered_set<std::int32_t> edits(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(num_edits));

  LogicNetlist revised;
  for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
    const netlist::LogicGate& gate = base.gate(g);
    if (gate.op == LogicOp::kInput) {
      revised.add_input(gate.name);
    } else {
      revised.add_gate(gate.name,
                       edits.count(g) != 0 ? flipped(gate.op) : gate.op,
                       gate.fanin);
    }
    if (base.is_primary_output(g)) revised.mark_output(g);
  }
  revised.finalize();
  return revised;
}

core::FlowSummary run_cold(const LogicNetlist& netlist,
                           const core::FlowOptions& options) {
  api::SizingSession session(netlist, options);
  const api::Status status = session.run_all();
  EXPECT_TRUE(status.ok()) << status.to_string();
  return session.summary();
}

// The ISSUE acceptance contract: on a seeded >=5k-node generator circuit
// with a 1% gate edit, the ECO path converges in at most a third of the
// cold iterations (small slack for platform drift) with the max KKT
// violation inside the same feasibility tolerance.
TEST(IncrementalSizer, OnePercentEditConvergesInAThirdOfColdIterations) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 2000;
  spec.num_wires = 3200;
  spec.num_inputs = 64;
  spec.num_outputs = 32;
  spec.depth = 20;
  spec.seed = 7;
  const LogicNetlist base = netlist::generate_circuit(spec);
  const core::FlowOptions options = eco_flow_options();

  api::SizingSession base_session(base, options);
  ASSERT_TRUE(base_session.run_all().ok());
  const core::FlowResult base_result = base_session.take_result();
  ASSERT_GE(base_result.circuit.num_nodes(), 5000);

  const LogicNetlist revised = flip_ops(base, 0.01, 1100);
  const core::FlowSummary cold = run_cold(revised, options);
  ASSERT_TRUE(cold.converged);

  const eco::IncrementalSizer incremental(base, options, base_result);
  eco::IncrementalSizer::Result eco;
  ASSERT_TRUE(incremental.resize(revised, &eco).ok());

  EXPECT_GT(eco.reused_nodes, 0);
  EXPECT_GT(eco.dirty_gates, 0);
  EXPECT_TRUE(eco.summary.converged);
  // Same KKT tolerance as the cold run: the converged flag already implies
  // feasibility within ogws.feas_tol, asserted explicitly for clarity.
  EXPECT_LE(eco.summary.max_violation, options.ogws.feas_tol);
  // <= 1/3 of cold, with 2 iterations of slack (measured 1 vs 9 — see the
  // committed bench/BENCH_eco.json).
  EXPECT_LE(3 * eco.summary.iterations, cold.iterations + 2)
      << "eco " << eco.summary.iterations << " vs cold " << cold.iterations;
}

TEST(IncrementalSizer, UneditedNetlistReusesEverything) {
  const LogicNetlist base =
      netlist::generate_circuit(netlist::spec_for_profile("c432", 1));
  const core::FlowOptions options = eco_flow_options();

  api::SizingSession session(base, options);
  ASSERT_TRUE(session.run_all().ok());
  const core::FlowSummary cold = session.summary();
  const core::FlowResult result = session.take_result();

  const runtime::EcoIndex index = eco::build_eco_index(base, result);
  EXPECT_FALSE(index.empty());
  EXPECT_EQ(index.num_nodes, result.circuit.num_nodes());

  // Round trip: diffing the unedited netlist against its own snapshot finds
  // nothing dirty and recovers the full solution incl. multipliers.
  const eco::EcoSeed seed = eco::seed_from_index(base, options, index);
  EXPECT_EQ(seed.dirty_gates, 0);
  EXPECT_EQ(seed.clean_gates, base.num_gates_logic());
  EXPECT_FALSE(seed.multipliers.empty());
  EXPECT_EQ(seed.reused_nodes, static_cast<std::int64_t>(seed.sizes.size()));
  EXPECT_GT(seed.reused_nodes, 0);

  eco::IncrementalSizer incremental(index, options);
  eco::IncrementalSizer::Result eco;
  ASSERT_TRUE(incremental.resize(base, &eco).ok());
  EXPECT_TRUE(eco.summary.converged);
  // Restarting from the converged state re-certifies almost immediately.
  EXPECT_LE(eco.summary.iterations, 2);
  EXPECT_LT(eco.summary.iterations, cold.iterations);
}

// Acceptance: --buffer-long-wires output re-parses, re-hashes stably, and
// sizes feasibly on at least two ISCAS85 profiles.
TEST(Buffering, OutputReparsesRehashesStablyAndSizesFeasibly) {
  // The paper's 0.15·cap_init power squeeze is measured against the
  // *unbuffered* circuit; the inserted repeaters add irreducible gate cap,
  // so the feasibility check here budgets for them.
  core::FlowOptions options = eco_flow_options();
  options.bound_factors.power = 0.30;
  options.bound_factors.noise = 0.20;
  for (const char* profile : {"c432", "c880"}) {
    const LogicNetlist base =
        netlist::generate_circuit(netlist::spec_for_profile(profile, 1));

    eco::BufferingOptions buffering;
    buffering.length_threshold_um = 1200.0;  // low enough to trigger splicing
    const eco::BufferingResult result =
        eco::buffer_long_wires(base, options, buffering);
    EXPECT_GT(result.repeaters, 0) << profile;
    EXPECT_FALSE(result.nets.empty()) << profile;
    ASSERT_TRUE(result.netlist.finalized()) << profile;
    EXPECT_GT(result.netlist.num_gates_logic(), base.num_gates_logic())
        << profile;

    // Re-parses: the .bench round trip accepts the transformed netlist and
    // preserves its structure (cone hashes are definition-order-free).
    const std::string text = netlist::to_bench_string(result.netlist);
    const LogicNetlist reparsed = netlist::parse_bench_string(text);
    EXPECT_EQ(reparsed.num_gates_logic(), result.netlist.num_gates_logic());
    auto original_cones = netlist::cone_hashes(result.netlist);
    auto reparsed_cones = netlist::cone_hashes(reparsed);
    std::sort(original_cones.begin(), original_cones.end());
    std::sort(reparsed_cones.begin(), reparsed_cones.end());
    EXPECT_EQ(original_cones, reparsed_cones) << profile;

    // Re-hashes stably: writing the parsed form again is a fixed point, so
    // the cache key survives an export/import cycle.
    const std::string text2 = netlist::to_bench_string(reparsed);
    EXPECT_EQ(netlist::netlist_hash(reparsed),
              netlist::netlist_hash(netlist::parse_bench_string(text2)))
        << profile;

    // Sizes feasibly under the same flow options.
    const core::FlowSummary summary = run_cold(result.netlist, options);
    EXPECT_TRUE(summary.converged) << profile;
    EXPECT_LE(summary.max_violation, options.ogws.feas_tol) << profile;
  }
}

TEST(Buffering, ClosedFormGrowsWithLengthAndCoupling) {
  const core::FlowOptions options = eco_flow_options();
  int prev_k = -1;
  for (const double length : {500.0, 1500.0, 3000.0, 6000.0}) {
    int k = 0;
    double h = 0.0;
    eco::optimal_repeaters(length, options.tech, options.neighbors,
                           /*shielded=*/false, &k, &h);
    EXPECT_GE(k, prev_k) << length;  // k is non-decreasing in length
    EXPECT_GT(h, 0.0) << length;
    prev_k = k;
  }
  EXPECT_GT(prev_k, 0);

  // Shielded neighbors couple less, so the unshielded worst case buffers at
  // least as aggressively.
  int k_shielded = 0, k_unshielded = 0;
  double h_shielded = 0.0, h_unshielded = 0.0;
  eco::optimal_repeaters(4000.0, options.tech, options.neighbors, true,
                         &k_shielded, &h_shielded);
  eco::optimal_repeaters(4000.0, options.tech, options.neighbors, false,
                         &k_unshielded, &h_unshielded);
  EXPECT_GE(k_unshielded, k_shielded);
  EXPECT_GE(h_unshielded, h_shielded);
}

}  // namespace
