// KKT residual checks (Theorem 6) at and away from convergence.
#include <gtest/gtest.h>

#include "core/kkt.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

TEST(Kkt, FlowResidualZeroAfterProjection) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, core::BoundFactors{});
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  const auto res =
      core::check_kkt(f.circuit, coupling, m, bounds, f.circuit.sizes(), kMode);
  EXPECT_LT(res.flow, 1e-12);
}

TEST(Kkt, DetectsPrimalViolations) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  // Bounds far below the current metrics: everything must read as violated.
  core::Bounds bounds;
  bounds.delay_s = 1e-15;
  bounds.cap_f = 1e-18;
  bounds.noise_f = 1e-18;
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  const auto res =
      core::check_kkt(f.circuit, coupling, m, bounds, f.circuit.sizes(), kMode);
  EXPECT_GT(res.primal_delay, 1.0);
  EXPECT_GT(res.primal_power, 1.0);
  EXPECT_GT(res.primal_noise, 1.0);
}

TEST(Kkt, DetectsNonStationarySizes) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);  // arbitrary point: not a fixpoint
  const auto coupling = f.make_coupling();
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, core::BoundFactors{});
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  const auto res =
      core::check_kkt(f.circuit, coupling, m, bounds, f.circuit.sizes(), kMode);
  EXPECT_GT(res.stationarity, 0.01);
}

TEST(Kkt, SmallResidualsAtOgwsSolution) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                                          kMode, core::BoundFactors{});
  const auto result = core::run_ogws(f.circuit, coupling, bounds);
  ASSERT_TRUE(result.converged);

  // Rebuild the multiplier state OGWS would have ended with is internal;
  // here we verify the primal side: feasibility within tolerance.
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  const auto res = core::check_kkt(f.circuit, coupling, m, bounds, result.sizes,
                                   kMode);
  EXPECT_LT(res.primal_delay, 0.02);
  EXPECT_LT(res.primal_power, 0.02);
  EXPECT_LT(res.primal_noise, 0.02);
  EXPECT_LT(res.flow, 1e-12);
}

TEST(Kkt, MaxResidualIsTheMaximum) {
  core::KktResiduals r;
  r.flow = 0.1;
  r.stationarity = 0.5;
  r.complementary = 0.2;
  r.primal_delay = 0.05;
  EXPECT_DOUBLE_EQ(r.max_residual(), 0.5);
}

}  // namespace
