// OGWS: convergence, feasibility, optimality vs brute force, weak duality.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

struct Problem {
  netlist::Circuit circuit;
  layout::CouplingSet coupling;
  core::Bounds bounds;
};

Problem chain_problem(const core::BoundFactors& factors) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  auto coupling = test_support::no_coupling(c.circuit);
  const auto bounds =
      core::derive_bounds(c.circuit, coupling, c.circuit.sizes(), kMode, factors);
  return Problem{std::move(c.circuit), std::move(coupling), bounds};
}

Problem fig1_problem(const core::BoundFactors& factors) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  auto coupling = f.make_coupling();
  const auto bounds =
      core::derive_bounds(f.circuit, coupling, f.circuit.sizes(), kMode, factors);
  return Problem{std::move(f.circuit), std::move(coupling), bounds};
}

TEST(Ogws, ConvergesOnFig1) {
  auto p = fig1_problem(core::BoundFactors{});
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.max_violation, 0.011);
  EXPECT_LE(result.rel_gap, 0.011);
}

TEST(Ogws, SolutionIsFeasible) {
  auto p = fig1_problem(core::BoundFactors{});
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds);
  const auto m = timing::compute_metrics(p.circuit, p.coupling, result.sizes, kMode);
  EXPECT_LE(m.delay_s, p.bounds.delay_s * 1.02);
  EXPECT_LE(m.cap_f, p.bounds.cap_f * 1.02);
  EXPECT_LE(m.noise_f, p.bounds.noise_f * 1.02);
}

TEST(Ogws, SizesWithinBox) {
  auto p = fig1_problem(core::BoundFactors{});
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds);
  for (netlist::NodeId v = p.circuit.first_component(); v < p.circuit.end_component();
       ++v) {
    EXPECT_GE(result.sizes[static_cast<std::size_t>(v)],
              p.circuit.lower_bound(v) - 1e-12);
    EXPECT_LE(result.sizes[static_cast<std::size_t>(v)],
              p.circuit.upper_bound(v) + 1e-12);
  }
}

TEST(Ogws, MatchesBruteForceOnChain) {
  // 3 sized components: exhaustive grid search is the ground truth.
  core::BoundFactors factors;
  factors.delay = 0.9;
  factors.power = 0.5;
  factors.noise = 0.5;  // noise trivially satisfied (no coupling pairs)
  auto p = chain_problem(factors);

  // Log-spaced grid over [0.1, 10].
  const int steps = 24;
  std::vector<double> grid(steps);
  for (int k = 0; k < steps; ++k) {
    grid[static_cast<std::size_t>(k)] =
        0.1 * std::pow(100.0, static_cast<double>(k) / (steps - 1));
  }
  auto x = p.circuit.sizes();
  double best_area = 1e300;
  const netlist::NodeId c0 = p.circuit.first_component();
  for (double a : grid) {
    for (double b : grid) {
      for (double c : grid) {
        x[static_cast<std::size_t>(c0)] = a;
        x[static_cast<std::size_t>(c0 + 1)] = b;
        x[static_cast<std::size_t>(c0 + 2)] = c;
        const auto m = timing::compute_metrics(p.circuit, p.coupling, x, kMode);
        if (m.delay_s <= p.bounds.delay_s && m.cap_f <= p.bounds.cap_f) {
          best_area = std::min(best_area, m.area_um2);
        }
      }
    }
  }
  ASSERT_LT(best_area, 1e299) << "grid found no feasible point";

  core::OgwsOptions options;
  options.max_iterations = 600;
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds, options);
  const auto m = timing::compute_metrics(p.circuit, p.coupling, result.sizes, kMode);
  EXPECT_LE(m.delay_s, p.bounds.delay_s * 1.02);
  // Within 10% of the exhaustive optimum (grid resolution + 1% tolerance).
  EXPECT_LE(m.area_um2, best_area * 1.10);
  // Weak duality: the dual value never exceeds a feasible primal area.
  EXPECT_LE(result.dual, best_area * 1.02);
}

TEST(Ogws, NoiseConstraintIsActiveAtTenPercent) {
  // The Table 1 shape: with X0 = 0.1 × init, the noise bound binds and the
  // final noise sits at the bound.
  auto p = fig1_problem(core::BoundFactors{});
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds);
  const auto m = timing::compute_metrics(p.circuit, p.coupling, result.sizes, kMode);
  EXPECT_LE(m.noise_f, p.bounds.noise_f * 1.02);
  EXPECT_GE(m.noise_f, p.bounds.noise_f * 0.5);  // not far below: bound binds
}

TEST(Ogws, LooserNoiseBoundNeverIncreasesArea) {
  core::BoundFactors tight;
  tight.noise = 0.10;
  core::BoundFactors loose;
  loose.noise = 0.80;
  auto pt = fig1_problem(tight);
  auto pl = fig1_problem(loose);
  const auto rt = core::run_ogws(pt.circuit, pt.coupling, pt.bounds);
  const auto rl = core::run_ogws(pl.circuit, pl.coupling, pl.bounds);
  const auto mt = timing::compute_metrics(pt.circuit, pt.coupling, rt.sizes, kMode);
  const auto ml = timing::compute_metrics(pl.circuit, pl.coupling, rl.sizes, kMode);
  EXPECT_LE(ml.area_um2, mt.area_um2 * 1.05);
}

TEST(Ogws, TighterDelayBoundCostsArea) {
  core::BoundFactors relaxed;
  relaxed.delay = 1.3;
  core::BoundFactors tight;
  tight.delay = 0.8;
  auto pr = fig1_problem(relaxed);
  auto pt = fig1_problem(tight);
  const auto rr = core::run_ogws(pr.circuit, pr.coupling, pr.bounds);
  const auto rt = core::run_ogws(pt.circuit, pt.coupling, pt.bounds);
  const auto mr = timing::compute_metrics(pr.circuit, pr.coupling, rr.sizes, kMode);
  const auto mt = timing::compute_metrics(pt.circuit, pt.coupling, rt.sizes, kMode);
  EXPECT_GE(mt.area_um2, mr.area_um2 * 0.999);
}

TEST(Ogws, DeterministicAcrossRuns) {
  auto p = fig1_problem(core::BoundFactors{});
  const auto a = core::run_ogws(p.circuit, p.coupling, p.bounds);
  const auto b = core::run_ogws(p.circuit, p.coupling, p.bounds);
  ASSERT_EQ(a.sizes.size(), b.sizes.size());
  for (std::size_t i = 0; i < a.sizes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sizes[i], b.sizes[i]);
  }
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Ogws, HistoryRecordsEveryIteration) {
  auto p = fig1_problem(core::BoundFactors{});
  core::OgwsOptions options;
  options.record_history = true;
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds, options);
  ASSERT_EQ(result.history.size(), static_cast<std::size_t>(result.iterations));
  for (std::size_t k = 0; k < result.history.size(); ++k) {
    EXPECT_EQ(result.history[k].k, static_cast<int>(k) + 1);
    EXPECT_GT(result.history[k].area, 0.0);
    EXPECT_GE(result.history[k].seconds, 0.0);
  }
  EXPECT_GT(result.workspace_bytes, 0u);
}

TEST(Ogws, DualNeverExceedsFinalAreaMuch) {
  // Weak duality at the returned iterate (gap tolerance applies).
  auto p = fig1_problem(core::BoundFactors{});
  const auto result = core::run_ogws(p.circuit, p.coupling, p.bounds);
  EXPECT_LE(result.dual, result.area * 1.02);
}

}  // namespace
