// Unit tests for src/util: RNG determinism, memory tracking, tables, stats.
#include <gtest/gtest.h>

#include <sstream>

#include "util/memtrack.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lrsizer;

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, NextBelowCoversRangeWithoutBias) {
  util::Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  util::Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(MemoryTracker, AccumulatesByCategory) {
  util::MemoryTracker t;
  t.add("a", 100);
  t.add("b", 50);
  t.add("a", 25);
  EXPECT_EQ(t.category_bytes("a"), 125u);
  EXPECT_EQ(t.category_bytes("b"), 50u);
  EXPECT_EQ(t.category_bytes("missing"), 0u);
  EXPECT_EQ(t.tracked_bytes(), 175u);
  EXPECT_EQ(t.total_bytes(), util::MemoryTracker::kBaseBytes + 175u);
}

TEST(MemoryTracker, ClearResets) {
  util::MemoryTracker t;
  t.add("a", 10);
  t.clear();
  EXPECT_EQ(t.tracked_bytes(), 0u);
}

TEST(MemoryTracker, VectorBytesUsesCapacity) {
  std::vector<double> v;
  v.reserve(10);
  EXPECT_EQ(util::vector_bytes(v), 10 * sizeof(double));
}

TEST(TextTable, FormatsAlignedColumns) {
  util::TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "22.25"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvOutput) {
  util::TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(util::TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::TextTable::num(2.0, 0), "2");
  EXPECT_EQ(util::TextTable::integer(42), "42");
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(util::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(util::stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(Stats, PerfectLinearFit) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 2x + 1
  const auto fit = util::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, NoisyFitHasLowerR2) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  const std::vector<double> ys = {1, 9, 2, 8, 3, 10};
  const auto fit = util::fit_line(xs, ys);
  EXPECT_LT(fit.r_squared, 0.9);
}

TEST(Timer, MeasuresElapsedTimeMonotonically) {
  util::WallTimer t;
  volatile double sink = 0.0;
  // `sink += ...` on a volatile operand is deprecated in C++20.
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double first = t.seconds();
  const double second = t.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  t.reset();
  EXPECT_LE(t.seconds(), second + 1.0);
}

}  // namespace
