// Tests for the serving stack: netlist hashing, the result cache (including
// in-flight dedupe), the lrsizer-serve-v1 protocol, the Server loop, and
// shard-report merging. Every message type docs/SERVING.md specifies is
// exercised here (hello, accepted, progress, result, cancelled, error;
// size, cancel, shutdown).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "netlist/hash.hpp"
#include "runtime/batch.hpp"
#include "runtime/cache.hpp"
#include "runtime/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace lrsizer {
namespace {

using runtime::Json;

netlist::GeneratorSpec tiny_spec(std::uint64_t seed) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 30;
  spec.num_wires = 60;
  spec.num_inputs = 6;
  spec.num_outputs = 3;
  spec.depth = 5;
  spec.seed = seed;
  return spec;
}

core::FlowOptions fast_options() {
  core::FlowOptions options;
  options.num_vectors = 8;
  return options;
}

// ---- netlist hashing --------------------------------------------------------

TEST(NetlistHash, EqualStructuresHashEqual) {
  const auto a = netlist::generate_circuit(tiny_spec(1));
  const auto b = netlist::generate_circuit(tiny_spec(1));
  EXPECT_EQ(netlist::netlist_hash(a), netlist::netlist_hash(b));
}

TEST(NetlistHash, DifferentSeedsHashDifferent) {
  const auto a = netlist::generate_circuit(tiny_spec(1));
  const auto b = netlist::generate_circuit(tiny_spec(2));
  EXPECT_NE(netlist::netlist_hash(a), netlist::netlist_hash(b));
}

// ---- cache keys -------------------------------------------------------------

TEST(CacheKey, ThreadsDoNotSplitTheKey) {
  // The bit-determinism contract: any --threads value produces the same
  // result, so it must map to the same cache key.
  const auto nl = netlist::generate_circuit(tiny_spec(1));
  core::FlowOptions a = fast_options();
  core::FlowOptions b = fast_options();
  a.threads = 1;
  b.threads = 8;
  EXPECT_EQ(runtime::cache_key(nl, a).key, runtime::cache_key(nl, b).key);
}

TEST(CacheKey, AnyOtherOptionInvalidatesTheKey) {
  const auto nl = netlist::generate_circuit(tiny_spec(1));
  const auto base = runtime::cache_key(nl, fast_options());
  core::FlowOptions tweaked = fast_options();
  tweaked.bound_factors.noise = 0.17;
  const auto other = runtime::cache_key(nl, tweaked);
  EXPECT_NE(base.key, other.key);
  // Same circuit, different solver/bound knobs: same warm-start class.
  EXPECT_EQ(base.warm_prefix, other.warm_prefix);

  core::FlowOptions reelab = fast_options();
  reelab.elab.seed = 99;
  // A different elaboration is a different circuit: new warm class too.
  EXPECT_NE(runtime::cache_key(nl, reelab).warm_prefix, base.warm_prefix);
}

// ---- ResultCache ------------------------------------------------------------

runtime::CachedEntry make_entry(const std::string& marker) {
  runtime::CachedEntry entry;
  entry.job = Json::object();
  entry.job.set("name", marker);
  entry.sizes = {{7, 1.25}, {8, 2.5}};
  return entry;
}

TEST(ResultCache, StoreLookupAndWarmLookup) {
  runtime::ResultCache cache;
  runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  runtime::CacheKey sibling{"nA-eB-o2", "nA-eB"};
  runtime::CacheKey stranger{"nC-eD-o1", "nC-eD"};

  EXPECT_EQ(cache.lookup(key.key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.store(key, make_entry("first"));
  const auto hit = cache.lookup(key.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->job.at("name").as_string(), "first");
  EXPECT_EQ(hit->sizes.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);

  // Warm lookup: a *different* key in the same class finds it; the same
  // key and an unrelated class do not.
  ASSERT_NE(cache.lookup_warm(sibling), nullptr);
  EXPECT_EQ(cache.lookup_warm(key), nullptr);
  EXPECT_EQ(cache.lookup_warm(stranger), nullptr);
}

TEST(ResultCache, InFlightDedupePublishAndAbandon) {
  runtime::ResultCache cache;
  runtime::CacheKey key{"nA-eB-o1", "nA-eB"};

  std::shared_ptr<const runtime::CachedEntry> hit;
  EXPECT_EQ(cache.acquire(key, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);

  // Identical job while the owner runs: registered as a follower.
  std::vector<std::shared_ptr<const runtime::CachedEntry>> seen;
  const auto follow = [&seen](std::shared_ptr<const runtime::CachedEntry> e) {
    seen.push_back(std::move(e));
  };
  EXPECT_EQ(cache.acquire(key, &hit, follow),
            runtime::ResultCache::Acquire::kFollower);
  EXPECT_EQ(cache.acquire(key, &hit, follow),
            runtime::ResultCache::Acquire::kFollower);
  EXPECT_TRUE(seen.empty());

  // Owner publishes: both followers fire with the entry, and later
  // acquires hit directly.
  cache.publish(key, make_entry("published"));
  ASSERT_EQ(seen.size(), 2u);
  ASSERT_NE(seen[0], nullptr);
  EXPECT_EQ(seen[0]->job.at("name").as_string(), "published");
  EXPECT_EQ(cache.acquire(key, &hit, nullptr),
            runtime::ResultCache::Acquire::kHit);
  ASSERT_NE(hit, nullptr);

  // Abandon path: follower of a failed owner is woken with nullptr so it
  // can re-run (and becomes the new owner on re-acquire).
  runtime::CacheKey other{"nA-eB-o9", "nA-eB"};
  EXPECT_EQ(cache.acquire(other, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);
  seen.clear();
  EXPECT_EQ(cache.acquire(other, &hit, follow),
            runtime::ResultCache::Acquire::kFollower);
  cache.abandon(other);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], nullptr);
  EXPECT_EQ(cache.acquire(other, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);
}

TEST(ResultCache, DiskEntriesSurviveAcrossInstances) {
  const auto dir =
      std::filesystem::temp_directory_path() / "lrsizer_cache_test";
  std::filesystem::remove_all(dir);
  runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  {
    runtime::ResultCache cache(dir.string());
    cache.store(key, make_entry("persisted"));
  }
  runtime::ResultCache fresh(dir.string());
  const auto hit = fresh.lookup(key.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->job.at("name").as_string(), "persisted");
  EXPECT_EQ(hit->sizes, make_entry("persisted").sizes);

  // A corrupt file is a miss, not a crash.
  {
    std::ofstream out(dir / "nBAD-eBAD-oBAD.json");
    out << "{not json";
  }
  runtime::ResultCache corrupt(dir.string());
  EXPECT_EQ(corrupt.lookup("nBAD-eBAD-oBAD"), nullptr);
  std::filesystem::remove_all(dir);
}

// ---- run_batch + cache ------------------------------------------------------

TEST(BatchCache, DuplicateJobsDedupeBitIdentically) {
  // Three jobs, first two byte-identical: the duplicate must not re-run and
  // must share the owner's outcome bit for bit.
  auto make_jobs = [] {
    std::vector<runtime::BatchJob> jobs;
    for (int i = 0; i < 3; ++i) {
      runtime::BatchJob job;
      job.name = "job" + std::to_string(i);
      job.netlist = netlist::generate_circuit(tiny_spec(i < 2 ? 1 : 2));
      job.options = fast_options();
      jobs.push_back(std::move(job));
    }
    return jobs;
  };
  runtime::ResultCache cache;
  runtime::BatchOptions options;
  options.jobs = 1;
  options.cache = &cache;
  const auto batch = runtime::run_batch(make_jobs(), options);

  ASSERT_EQ(batch.jobs.size(), 3u);
  EXPECT_FALSE(batch.jobs[0].cache_hit);
  EXPECT_TRUE(batch.jobs[1].cache_hit);
  EXPECT_FALSE(batch.jobs[2].cache_hit);
  EXPECT_EQ(batch.num_cache_hits(), 1u);
  ASSERT_TRUE(batch.jobs[1].ok);
  ASSERT_TRUE(batch.jobs[1].flow.has_value());
  EXPECT_EQ(batch.jobs[0].flow->circuit.sizes(),
            batch.jobs[1].flow->circuit.sizes());
  EXPECT_EQ(batch.jobs[0].summary.iterations, batch.jobs[1].summary.iterations);
  EXPECT_EQ(batch.jobs[0].summary.final_metrics.area_um2,
            batch.jobs[1].summary.final_metrics.area_um2);
  const Json report = runtime::batch_json(batch);
  EXPECT_EQ(report.at("cache_hits").as_number(), 1.0);

  // Changed option: the same netlist is a different key, so nothing
  // dedupes in a fresh cache (no false sharing).
  runtime::ResultCache fresh;
  runtime::BatchOptions fresh_options;
  fresh_options.jobs = 1;
  fresh_options.cache = &fresh;
  auto tweaked = make_jobs();
  tweaked[1].options.bound_factors.noise = 0.17;
  const auto batch2 = runtime::run_batch(std::move(tweaked), fresh_options);
  EXPECT_EQ(batch2.num_cache_hits(), 0u)
      << "jobs with distinct options must all run";
}

TEST(BatchCache, CompletedEntriesAnswerAcrossBatches) {
  auto make_job = [] {
    runtime::BatchJob job;
    job.name = "repeat";
    job.netlist = netlist::generate_circuit(tiny_spec(1));
    job.options = fast_options();
    std::vector<runtime::BatchJob> jobs;
    jobs.push_back(std::move(job));
    return jobs;
  };
  runtime::ResultCache cache;
  runtime::BatchOptions options;
  options.jobs = 1;
  options.cache = &cache;
  const auto first = runtime::run_batch(make_job(), options);
  ASSERT_TRUE(first.jobs[0].ok);
  EXPECT_FALSE(first.jobs[0].cache_hit);

  const auto second = runtime::run_batch(make_job(), options);
  ASSERT_TRUE(second.jobs[0].ok);
  EXPECT_TRUE(second.jobs[0].cache_hit);
  // The served summary reproduces the original run field for field (their
  // job JSONs differ only in wall-clock seconds and the cache_hit marker).
  auto strip = [](Json j) {
    j.set("seconds", 0);
    j.set("cache_hit", false);
    return j.dump();
  };
  EXPECT_EQ(strip(runtime::job_json(first.jobs[0])),
            strip(runtime::job_json(second.jobs[0])));
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesASizeRequestWithOverrides) {
  serve::Request request;
  const api::Status st = serve::parse_request(
      R"({"type":"size","id":"j1","input":{"profile":"c17"},"seed":3,)"
      R"("options":{"vectors":16,"noise_bound":0.2,"max_iterations":40},)"
      R"("progress":5,"sizes":true,"warm_start":[[7,1.5]]})",
      core::FlowOptions{}, &request);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(request.kind, serve::Request::Kind::kSize);
  EXPECT_EQ(request.size.id, "j1");
  EXPECT_EQ(request.size.job.seed, 3u);
  EXPECT_EQ(request.size.job.options.elab.seed, 3u);
  EXPECT_EQ(request.size.job.options.num_vectors, 16);
  EXPECT_EQ(request.size.job.options.bound_factors.noise, 0.2);
  EXPECT_EQ(request.size.job.options.ogws.max_iterations, 40);
  EXPECT_EQ(request.size.progress_every, 5);
  EXPECT_TRUE(request.size.want_sizes);
  ASSERT_EQ(request.size.job.warm_sizes.size(), 1u);
  EXPECT_EQ(request.size.job.warm_sizes[0].first, 7);
  EXPECT_GT(request.size.job.netlist.num_gates_logic(), 0);
}

TEST(Protocol, DefaultSeedFollowsTheServersElabSeed) {
  // No request "seed": generation and elaboration both use the server's
  // seed — never a mixed pair the equivalent `lrsizer run --seed` could
  // not produce.
  core::FlowOptions base;
  base.elab.seed = 7;
  serve::Request request;
  const api::Status st = serve::parse_request(
      R"({"type":"size","id":"a","input":{"profile":"c17"}})", base, &request);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(request.size.job.seed, 7u);
  EXPECT_EQ(request.size.job.options.elab.seed, 7u);
}

TEST(Protocol, RejectsMalformedRequests) {
  serve::Request request;
  const core::FlowOptions base;
  EXPECT_FALSE(serve::parse_request("not json", base, &request).ok());
  EXPECT_FALSE(serve::parse_request(R"({"type":"resize","id":"a"})", base,
                                    &request).ok());
  EXPECT_FALSE(serve::parse_request(R"({"type":"size"})", base, &request).ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c9999"}})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"bogus_knob":1}})",
                   base, &request)
                   .ok());
  // Validation catches consistent-but-impossible options too.
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"vectors":-4}})",
                   base, &request)
                   .ok());
  // Out-of-range numbers are rejected before any narrowing cast (the cast
  // would be undefined; the ASan+UBSan CI job runs this suite).
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("seed":-1})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"vectors":1e300}})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("progress":1e12})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("warm_start":[[-2,1.0]]})",
                   base, &request)
                   .ok());
  // cancel and shutdown parse.
  ASSERT_TRUE(
      serve::parse_request(R"({"type":"cancel","id":"a"})", base, &request).ok());
  EXPECT_EQ(request.kind, serve::Request::Kind::kCancel);
  EXPECT_EQ(request.cancel_id, "a");
  ASSERT_TRUE(serve::parse_request(R"({"type":"shutdown"})", base, &request).ok());
  EXPECT_EQ(request.kind, serve::Request::Kind::kShutdown);
}

// ---- server -----------------------------------------------------------------

/// Thread-safe response collector: the test-side Sink.
struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Json> lines;

  serve::Server::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(Json::parse(line));
      cv.notify_all();
    };
  }

  std::vector<Json> of_type(const std::string& type) {
    const std::lock_guard<std::mutex> lock(mutex);
    std::vector<Json> matching;
    for (const Json& line : lines) {
      if (line.at("type").as_string() == type) matching.push_back(line);
    }
    return matching;
  }

  /// Wait until at least `n` responses of `type` arrived (fails the test on
  /// timeout rather than hanging).
  bool wait_for(const std::string& type, std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(60), [&] {
      std::size_t count = 0;
      for (const Json& line : lines) {
        if (line.at("type").as_string() == type) ++count;
      }
      return count >= n;
    });
  }
};

std::string size_request(const std::string& id, const std::string& profile,
                         const std::string& extra = "") {
  return R"({"type":"size","id":")" + id + R"(","input":{"profile":")" +
         profile + R"("},"options":{"vectors":8})" + extra + "}";
}

TEST(Server, JsonlRoundTripMatchesADirectRun) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  options.version = "test";
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(size_request("a", "c17") + "\n");
    server.serve_stream(in);
  }
  ASSERT_EQ(collector.of_type("hello").size(), 1u);
  EXPECT_EQ(collector.of_type("hello")[0].at("schema").as_string(),
            "lrsizer-serve-v1");
  ASSERT_EQ(collector.of_type("accepted").size(), 1u);
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].at("cache_hit").as_bool());

  // The served job object equals a direct run_job report byte for byte
  // (wall-clock fields aside).
  runtime::BatchJob job;
  job.name = "a";
  job.netlist = netlist::parse_bench_string(netlist::kIscas85C17);
  core::FlowOptions direct_options;
  direct_options.num_vectors = 8;
  job.options = direct_options;
  const auto outcome = runtime::run_job(std::move(job));
  ASSERT_TRUE(outcome.ok);
  auto strip = [](Json j) {
    j.set("seconds", 0);
    j.set("stage1_seconds", 0);
    j.set("stage2_seconds", 0);
    return j.dump();
  };
  EXPECT_EQ(strip(results[0].at("job")), strip(runtime::job_json(outcome)));
}

TEST(Server, DuplicateJobsAnswerFromCacheByteIdentically) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(size_request("a", "c17", R"(,"sizes":true)") + "\n" +
                          size_request("b", "c17", R"(,"sizes":true)") + "\n" +
                          size_request("c", "c17",
                                       R"(,"sizes":true,"seed":9)") +
                          "\n");
    server.serve_stream(in);
  }
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 3u);
  Json by_id[3];
  for (const Json& r : results) {
    by_id[r.at("id").as_string()[0] - 'a'] = r;
  }
  // Exactly the duplicate is a hit, with a byte-identical job payload
  // (including its sizes).
  EXPECT_FALSE(by_id[0].at("cache_hit").as_bool());
  EXPECT_TRUE(by_id[1].at("cache_hit").as_bool());
  EXPECT_EQ(by_id[0].at("job").dump(), by_id[1].at("job").dump());
  EXPECT_EQ(by_id[0].at("sizes").dump(), by_id[1].at("sizes").dump());
  // Different seed = different netlist: a miss that re-runs.
  EXPECT_FALSE(by_id[2].at("cache_hit").as_bool());
  EXPECT_NE(by_id[0].at("job").dump(), by_id[2].at("job").dump());
}

TEST(Server, CancelMidJobYieldsACancelledResponse) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  // c432 runs hundreds of OGWS iterations; progress every iteration gives a
  // deterministic "the job is mid-OGWS now" signal to cancel on.
  ASSERT_TRUE(server.handle_line(size_request("x", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(collector.wait_for("progress", 1)) << "job never started";
  ASSERT_TRUE(server.handle_line(R"({"type":"cancel","id":"x"})"));
  server.drain();

  const auto cancelled = collector.of_type("cancelled");
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0].at("id").as_string(), "x");
  // The cancel landed mid-OGWS, so the partial result rides along.
  ASSERT_NE(cancelled[0].find("job"), nullptr);
  EXPECT_TRUE(cancelled[0].at("job").at("cancelled").as_bool());
  EXPECT_TRUE(collector.of_type("result").empty());
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Server, ShutdownStopsReadingFurtherRequests) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(size_request("a", "c17") + "\n" +
                          R"({"type":"shutdown"})" + "\n" +
                          size_request("late", "c17") + "\n");
    server.serve_stream(in);
  }
  // "a" completes (shutdown drains in-flight work); "late" is never read.
  ASSERT_EQ(collector.of_type("result").size(), 1u);
  EXPECT_EQ(collector.of_type("accepted").size(), 1u);
}

TEST(Server, MalformedAndUnknownRequestsGetErrorResponses) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(std::string("this is not json\n") +
                          R"({"type":"cancel","id":"ghost"})" + "\n" +
                          size_request("a", "c9999") + "\n");
    server.serve_stream(in);
  }
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_TRUE(collector.of_type("result").empty());
  EXPECT_EQ(collector.lines.size(), 4u);  // hello + 3 errors
  // Whenever the line parsed far enough to carry an id, the error echoes
  // it; a fully unparseable line cannot.
  EXPECT_EQ(errors[0].find("id"), nullptr);
  EXPECT_EQ(errors[1].at("id").as_string(), "ghost");
  EXPECT_EQ(errors[2].at("id").as_string(), "a");
}

TEST(Server, BackpressureRejectsBeyondMaxPending) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  options.max_pending = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  // First job occupies the single pending slot while it runs...
  ASSERT_TRUE(server.handle_line(size_request("a", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(collector.wait_for("progress", 1));
  // ...so the second is rejected with a backpressure error.
  ASSERT_TRUE(server.handle_line(size_request("b", "c17")));
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("id").as_string(), "b");
  EXPECT_NE(errors[0].at("message").as_string().find("backpressure"),
            std::string::npos);
  ASSERT_TRUE(server.handle_line(R"({"type":"cancel","id":"a"})"));
  server.drain();
}

// ---- merge ------------------------------------------------------------------

/// Null out every wall-clock-derived field so reports from different runs
/// compare byte-for-byte on everything deterministic.
Json normalize_walltimes(Json report) {
  report.set("wall_seconds", nullptr);
  report.set("total_job_seconds", nullptr);
  report.set("speedup", nullptr);
  Json jobs = Json::array();
  for (Json job : report.at("jobs").as_array()) {
    job.set("seconds", nullptr);
    if (job.find("stage1_seconds")) {
      job.set("stage1_seconds", nullptr);
      job.set("stage2_seconds", nullptr);
    }
    jobs.push_back(job);
  }
  report.set("jobs", jobs);
  return report;
}

std::vector<runtime::BatchJob> sweep_jobs(int count) {
  std::vector<runtime::BatchJob> jobs;
  for (int i = 0; i < count; ++i) {
    runtime::BatchJob job;
    job.name = "point" + std::to_string(i);
    job.netlist = netlist::generate_circuit(tiny_spec(1));
    job.options = fast_options();
    job.options.bound_factors.noise = 0.10 + 0.02 * i;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(Merge, TwoDisjointShardsEqualTheUnshardedReport) {
  runtime::BatchOptions options;
  options.jobs = 1;
  auto unsharded = runtime::run_batch(sweep_jobs(5), options);
  const Json full = runtime::batch_json(unsharded);

  // Shard k runs global indices ≡ k (mod 2), exactly like `--shard k/2`.
  std::vector<Json> shard_reports;
  for (int k = 0; k < 2; ++k) {
    auto all = sweep_jobs(5);
    std::vector<runtime::BatchJob> part;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (i % 2 == static_cast<std::size_t>(k)) part.push_back(std::move(all[i]));
    }
    auto shard = runtime::run_batch(std::move(part), options);
    shard.shard_index = k;
    shard.shard_count = 2;
    shard_reports.push_back(runtime::batch_json(shard));
  }

  const Json merged = runtime::merge_batch_reports(shard_reports);
  EXPECT_EQ(merged.find("shard"), nullptr) << "merged reports are unsharded";
  EXPECT_EQ(normalize_walltimes(merged).dump(),
            normalize_walltimes(full).dump());
}

TEST(Merge, RejectsOutOfRangeShardFields) {
  // Hand-edited/corrupt shard fields must reject readably, not cast
  // undefined doubles to size_t.
  Json bad = Json::parse(
      R"({"schema":"lrsizer-batch-v1","shard":{"index":-1,"count":2},"jobs":[]})");
  EXPECT_THROW(runtime::merge_batch_reports({bad, bad}), std::invalid_argument);
  Json huge = Json::parse(
      R"({"schema":"lrsizer-batch-v1","shard":{"index":0,"count":1e18},"jobs":[]})");
  EXPECT_THROW(runtime::merge_batch_reports({huge}), std::invalid_argument);
}

TEST(Merge, RejectsInconsistentShardFamilies) {
  runtime::BatchOptions options;
  options.jobs = 1;
  auto batch = runtime::run_batch(sweep_jobs(2), options);
  const Json unsharded = runtime::batch_json(batch);
  batch.shard_index = 0;
  batch.shard_count = 2;
  const Json shard0 = runtime::batch_json(batch);
  batch.shard_index = 1;
  const Json shard1 = runtime::batch_json(batch);

  EXPECT_THROW(runtime::merge_batch_reports({}), std::invalid_argument);
  // Unannotated report.
  EXPECT_THROW(runtime::merge_batch_reports({unsharded, shard1}),
               std::invalid_argument);
  // Duplicate index.
  EXPECT_THROW(runtime::merge_batch_reports({shard0, shard0}),
               std::invalid_argument);
  // Wrong family size (count says 2, one given).
  EXPECT_THROW(runtime::merge_batch_reports({shard0}), std::invalid_argument);
  // Not a batch report at all.
  Json bogus = Json::object();
  bogus.set("schema", "something-else");
  EXPECT_THROW(runtime::merge_batch_reports({bogus, shard1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lrsizer
