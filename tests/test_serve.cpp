// Tests for the serving stack: netlist hashing, the result cache (including
// in-flight dedupe and LRU eviction), the lrsizer-serve-v3 protocol, the
// multi-client Server, the TCP event loop, and shard-report merging. Every
// message type docs/SERVING.md specifies is exercised here (hello, accepted,
// progress, result, cancelled, stats, error; size, cancel, stats, shutdown),
// and the concurrent-client stress test pins the determinism contract: every
// result payload byte-identical to a serial run. This suite carries the
// `parallel` ctest label so the TSan CI job covers the event loop.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#endif

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/logic_netlist.hpp"
#include "obs/registry.hpp"
#include "netlist/generator.hpp"
#include "netlist/hash.hpp"
#include "runtime/batch.hpp"
#include "runtime/cache.hpp"
#include "runtime/json.hpp"
#include "serve/listen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

namespace lrsizer {
namespace {

using runtime::Json;

netlist::GeneratorSpec tiny_spec(std::uint64_t seed) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 30;
  spec.num_wires = 60;
  spec.num_inputs = 6;
  spec.num_outputs = 3;
  spec.depth = 5;
  spec.seed = seed;
  return spec;
}

core::FlowOptions fast_options() {
  core::FlowOptions options;
  options.num_vectors = 8;
  return options;
}

// ---- netlist hashing --------------------------------------------------------

TEST(NetlistHash, EqualStructuresHashEqual) {
  const auto a = netlist::generate_circuit(tiny_spec(1));
  const auto b = netlist::generate_circuit(tiny_spec(1));
  EXPECT_EQ(netlist::netlist_hash(a), netlist::netlist_hash(b));
}

TEST(NetlistHash, DifferentSeedsHashDifferent) {
  const auto a = netlist::generate_circuit(tiny_spec(1));
  const auto b = netlist::generate_circuit(tiny_spec(2));
  EXPECT_NE(netlist::netlist_hash(a), netlist::netlist_hash(b));
}

// ---- cache keys -------------------------------------------------------------

TEST(CacheKey, ThreadsDoNotSplitTheKey) {
  // The bit-determinism contract: any --threads value produces the same
  // result, so it must map to the same cache key.
  const auto nl = netlist::generate_circuit(tiny_spec(1));
  core::FlowOptions a = fast_options();
  core::FlowOptions b = fast_options();
  a.threads = 1;
  b.threads = 8;
  EXPECT_EQ(runtime::cache_key(nl, a).key, runtime::cache_key(nl, b).key);
}

TEST(CacheKey, AnyOtherOptionInvalidatesTheKey) {
  const auto nl = netlist::generate_circuit(tiny_spec(1));
  const auto base = runtime::cache_key(nl, fast_options());
  core::FlowOptions tweaked = fast_options();
  tweaked.bound_factors.noise = 0.17;
  const auto other = runtime::cache_key(nl, tweaked);
  EXPECT_NE(base.key, other.key);
  // Same circuit, different solver/bound knobs: same warm-start class.
  EXPECT_EQ(base.warm_prefix, other.warm_prefix);

  core::FlowOptions reelab = fast_options();
  reelab.elab.seed = 99;
  // A different elaboration is a different circuit: new warm class too.
  EXPECT_NE(runtime::cache_key(nl, reelab).warm_prefix, base.warm_prefix);
}

// ---- ResultCache ------------------------------------------------------------

runtime::CachedEntry make_entry(const std::string& marker) {
  runtime::CachedEntry entry;
  entry.job = Json::object();
  entry.job.set("name", marker);
  entry.sizes = {{7, 1.25}, {8, 2.5}};
  return entry;
}

TEST(ResultCache, StoreLookupAndWarmLookup) {
  runtime::ResultCache cache;
  runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  runtime::CacheKey sibling{"nA-eB-o2", "nA-eB"};
  runtime::CacheKey stranger{"nC-eD-o1", "nC-eD"};

  EXPECT_EQ(cache.lookup(key.key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.store(key, make_entry("first"));
  const auto hit = cache.lookup(key.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->job.at("name").as_string(), "first");
  EXPECT_EQ(hit->sizes.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);

  // Warm lookup: a *different* key in the same class finds it; the same
  // key and an unrelated class do not.
  ASSERT_NE(cache.lookup_warm(sibling), nullptr);
  EXPECT_EQ(cache.lookup_warm(key), nullptr);
  EXPECT_EQ(cache.lookup_warm(stranger), nullptr);
}

TEST(ResultCache, EcoLookupsVoteOnConeOverlapAndCountAsEcoHits) {
  runtime::ResultCache cache;
  runtime::CacheKey k1{"nA-eB-o1", "nA-eB"};
  runtime::CacheKey k2{"nC-eD-o1", "nC-eD"};
  auto with_cones = [](const std::string& marker,
                       std::vector<std::uint64_t> cones) {
    runtime::CachedEntry entry = make_entry(marker);
    entry.eco.nets.push_back({cones[0], {1.0}});
    entry.eco.output_cones = std::move(cones);
    return entry;
  };
  cache.store(k1, with_cones("one", {10, 20, 30}));
  cache.store(k2, with_cones("two", {10, 99}));

  // The near-miss probe picks the entry sharing the most output cones.
  std::string base_key;
  auto base = cache.lookup_eco({10, 20, 31}, "", &base_key);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->job.at("name").as_string(), "one");
  EXPECT_EQ(base_key, k1.key);
  // Excluding the winner (the request's own key) falls back to the runner-up.
  base = cache.lookup_eco({10, 20, 31}, k1.key, &base_key);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base_key, k2.key);
  // No shared cone at all: no base.
  EXPECT_EQ(cache.lookup_eco({7, 8}, "", nullptr), nullptr);

  // A client-named base resolves by exact key but counts as an ECO hit,
  // not an exact hit — the hit kinds stay disjoint.
  ASSERT_NE(cache.lookup_eco_base(k1.key), nullptr);
  EXPECT_EQ(cache.lookup_eco_base("nZ-eZ-o9"), nullptr);
  EXPECT_EQ(cache.stats().eco_hits, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().warm_hits, 0u);
}

TEST(ResultCache, InFlightDedupePublishAndAbandon) {
  runtime::ResultCache cache;
  runtime::CacheKey key{"nA-eB-o1", "nA-eB"};

  std::shared_ptr<const runtime::CachedEntry> hit;
  EXPECT_EQ(cache.acquire(key, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);

  // Identical job while the owner runs: registered as a follower.
  std::vector<std::shared_ptr<const runtime::CachedEntry>> seen;
  const auto follow = [&seen](std::shared_ptr<const runtime::CachedEntry> e) {
    seen.push_back(std::move(e));
  };
  EXPECT_EQ(cache.acquire(key, &hit, follow),
            runtime::ResultCache::Acquire::kFollower);
  EXPECT_EQ(cache.acquire(key, &hit, follow),
            runtime::ResultCache::Acquire::kFollower);
  EXPECT_TRUE(seen.empty());

  // Owner publishes: both followers fire with the entry, and later
  // acquires hit directly.
  cache.publish(key, make_entry("published"));
  ASSERT_EQ(seen.size(), 2u);
  ASSERT_NE(seen[0], nullptr);
  EXPECT_EQ(seen[0]->job.at("name").as_string(), "published");
  EXPECT_EQ(cache.acquire(key, &hit, nullptr),
            runtime::ResultCache::Acquire::kHit);
  ASSERT_NE(hit, nullptr);

  // Abandon path: follower of a failed owner is woken with nullptr so it
  // can re-run (and becomes the new owner on re-acquire).
  runtime::CacheKey other{"nA-eB-o9", "nA-eB"};
  EXPECT_EQ(cache.acquire(other, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);
  seen.clear();
  EXPECT_EQ(cache.acquire(other, &hit, follow),
            runtime::ResultCache::Acquire::kFollower);
  cache.abandon(other);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], nullptr);
  EXPECT_EQ(cache.acquire(other, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);
}

TEST(ResultCache, DiskEntriesSurviveAcrossInstances) {
  const auto dir =
      std::filesystem::temp_directory_path() / "lrsizer_cache_test";
  std::filesystem::remove_all(dir);
  runtime::CacheKey key{"nA-eB-o1", "nA-eB"};
  {
    runtime::ResultCache cache(dir.string());
    cache.store(key, make_entry("persisted"));
  }
  runtime::ResultCache fresh(dir.string());
  const auto hit = fresh.lookup(key.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->job.at("name").as_string(), "persisted");
  EXPECT_EQ(hit->sizes, make_entry("persisted").sizes);

  // A corrupt file is a miss, not a crash.
  {
    std::ofstream out(dir / "nBAD-eBAD-oBAD.json");
    out << "{not json";
  }
  runtime::ResultCache corrupt(dir.string());
  EXPECT_EQ(corrupt.lookup("nBAD-eBAD-oBAD"), nullptr);
  std::filesystem::remove_all(dir);
}

// ---- cache eviction ---------------------------------------------------------

TEST(CacheEviction, LruEvictsOldestFirstAndLookupRefreshes) {
  runtime::CacheLimits limits;
  limits.max_entries = 2;
  runtime::ResultCache cache("", limits);
  runtime::CacheKey k1{"nA-eA-o1", "nA-eA"};
  runtime::CacheKey k2{"nB-eB-o1", "nB-eB"};
  runtime::CacheKey k3{"nC-eC-o1", "nC-eC"};
  cache.store(k1, make_entry("one"));
  cache.store(k2, make_entry("two"));
  EXPECT_EQ(cache.entries(), 2u);
  // Touch k1: it becomes most-recent, so the third store evicts k2.
  ASSERT_NE(cache.lookup(k1.key), nullptr);
  cache.store(k3, make_entry("three"));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.lookup(k1.key), nullptr);
  EXPECT_EQ(cache.lookup(k2.key), nullptr) << "LRU entry must be the one evicted";
  EXPECT_NE(cache.lookup(k3.key), nullptr);
}

TEST(CacheEviction, MaxEntriesZeroStoresNothingButStillDedupes) {
  runtime::CacheLimits limits;
  limits.max_entries = 0;
  runtime::ResultCache cache("", limits);
  runtime::CacheKey key{"nA-eA-o1", "nA-eA"};
  cache.store(key, make_entry("rejected"));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(key.key), nullptr);

  // In-flight dedupe is storage-free and must keep working at budget 0.
  std::shared_ptr<const runtime::CachedEntry> hit;
  EXPECT_EQ(cache.acquire(key, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);
  std::shared_ptr<const runtime::CachedEntry> shared;
  EXPECT_EQ(cache.acquire(
                key, &hit,
                [&shared](std::shared_ptr<const runtime::CachedEntry> e) {
                  shared = std::move(e);
                }),
            runtime::ResultCache::Acquire::kFollower);
  cache.publish(key, make_entry("published"));
  // The follower shares the owner's result even though nothing was stored.
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->job.at("name").as_string(), "published");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.acquire(key, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner)
      << "nothing completed may linger at max_entries=0";
  cache.abandon(key);
}

TEST(CacheEviction, MaxEntriesOneKeepsOnlyTheNewest) {
  runtime::CacheLimits limits;
  limits.max_entries = 1;
  runtime::ResultCache cache("", limits);
  runtime::CacheKey k1{"nA-eA-o1", "nA-eA"};
  runtime::CacheKey k2{"nB-eB-o1", "nB-eB"};
  cache.store(k1, make_entry("one"));
  cache.store(k2, make_entry("two"));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(k1.key), nullptr);
  ASSERT_NE(cache.lookup(k2.key), nullptr);
}

TEST(CacheEviction, ByteBudgetEvictsOldestFirstAndRejectsOversized) {
  // Calibrate one entry's accounted bytes with an unlimited cache (the
  // accounting covers key + serialized job + size pairs, so it is the same
  // for the equal-length keys below).
  runtime::CacheKey k1{"nA-eA-o1", "nA-eA"};
  runtime::CacheKey k2{"nB-eB-o1", "nB-eB"};
  runtime::CacheKey k3{"nC-eC-o1", "nC-eC"};
  std::size_t per_entry = 0;
  {
    runtime::ResultCache probe;
    probe.store(k1, make_entry("x"));
    per_entry = probe.bytes();
    ASSERT_GT(per_entry, 0u);
  }

  runtime::CacheLimits limits;
  limits.max_bytes = per_entry * 2;  // room for two entries, not three
  runtime::ResultCache cache("", limits);
  cache.store(k1, make_entry("x"));
  cache.store(k2, make_entry("x"));
  EXPECT_EQ(cache.entries(), 2u);
  cache.store(k3, make_entry("x"));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_LE(cache.bytes(), limits.max_bytes);
  EXPECT_EQ(cache.lookup(k1.key), nullptr) << "oldest entry pays for the third";
  EXPECT_NE(cache.lookup(k2.key), nullptr);
  EXPECT_NE(cache.lookup(k3.key), nullptr);

  // An entry that alone exceeds the budget is rejected outright and does
  // not wipe what is already cached.
  runtime::CacheLimits tiny;
  tiny.max_bytes = per_entry - 1;
  runtime::ResultCache small("", tiny);
  small.store(k1, make_entry("x"));
  EXPECT_EQ(small.entries(), 0u);
  EXPECT_EQ(small.evictions(), 1u);
  EXPECT_EQ(small.lookup(k1.key), nullptr);
}

TEST(CacheEviction, InFlightRegistrationsSurviveEvictionPressure) {
  runtime::CacheLimits limits;
  limits.max_entries = 1;
  runtime::ResultCache cache("", limits);
  runtime::CacheKey inflight{"nA-eA-o1", "nA-eA"};
  runtime::CacheKey k2{"nB-eB-o1", "nB-eB"};
  runtime::CacheKey k3{"nC-eC-o1", "nC-eC"};

  std::shared_ptr<const runtime::CachedEntry> hit;
  ASSERT_EQ(cache.acquire(inflight, &hit, nullptr),
            runtime::ResultCache::Acquire::kOwner);
  std::shared_ptr<const runtime::CachedEntry> shared;
  ASSERT_EQ(cache.acquire(
                inflight, &hit,
                [&shared](std::shared_ptr<const runtime::CachedEntry> e) {
                  shared = std::move(e);
                }),
            runtime::ResultCache::Acquire::kFollower);

  // Hammer the completed side hard enough to evict everything evictable.
  cache.store(k2, make_entry("two"));
  cache.store(k3, make_entry("three"));
  EXPECT_GE(cache.evictions(), 1u);

  // The in-flight owner/follower pair is untouched: publishing still fires
  // the follower with the shared entry.
  cache.publish(inflight, make_entry("landed"));
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->job.at("name").as_string(), "landed");
  ASSERT_NE(cache.lookup(inflight.key), nullptr)
      << "publish counts as most-recent, so it must survive the store";
}

TEST(CacheEviction, DiskEvictionRemovesFilesAndARestartSeesAMiss) {
  const auto dir =
      std::filesystem::temp_directory_path() / "lrsizer_cache_evict_test";
  std::filesystem::remove_all(dir);
  runtime::CacheKey k1{"nA-eA-o1", "nA-eA"};
  runtime::CacheKey k2{"nB-eB-o1", "nB-eB"};
  {
    runtime::CacheLimits limits;
    limits.max_entries = 1;
    runtime::ResultCache cache(dir.string(), limits);
    cache.store(k1, make_entry("one"));
    EXPECT_TRUE(std::filesystem::exists(dir / (k1.key + ".json")));
    cache.store(k2, make_entry("two"));
    // Eviction unlinks the evicted entry's file, not just its memory slot.
    EXPECT_FALSE(std::filesystem::exists(dir / (k1.key + ".json")));
    EXPECT_TRUE(std::filesystem::exists(dir / (k2.key + ".json")));
  }
  // A fresh (unlimited) instance over the same directory: the evicted key
  // is gone for good, the survivor still answers.
  runtime::ResultCache fresh(dir.string());
  EXPECT_EQ(fresh.lookup(k1.key), nullptr);
  ASSERT_NE(fresh.lookup(k2.key), nullptr);
  std::filesystem::remove_all(dir);
}

// ---- run_batch + cache ------------------------------------------------------

TEST(BatchCache, DuplicateJobsDedupeBitIdentically) {
  // Three jobs, first two byte-identical: the duplicate must not re-run and
  // must share the owner's outcome bit for bit.
  auto make_jobs = [] {
    std::vector<runtime::BatchJob> jobs;
    for (int i = 0; i < 3; ++i) {
      runtime::BatchJob job;
      job.name = "job" + std::to_string(i);
      job.netlist = netlist::generate_circuit(tiny_spec(i < 2 ? 1 : 2));
      job.options = fast_options();
      jobs.push_back(std::move(job));
    }
    return jobs;
  };
  runtime::ResultCache cache;
  runtime::BatchOptions options;
  options.jobs = 1;
  options.cache = &cache;
  const auto batch = runtime::run_batch(make_jobs(), options);

  ASSERT_EQ(batch.jobs.size(), 3u);
  EXPECT_FALSE(batch.jobs[0].cache_hit);
  EXPECT_TRUE(batch.jobs[1].cache_hit);
  EXPECT_FALSE(batch.jobs[2].cache_hit);
  EXPECT_EQ(batch.num_cache_hits(), 1u);
  ASSERT_TRUE(batch.jobs[1].ok);
  ASSERT_TRUE(batch.jobs[1].flow.has_value());
  EXPECT_EQ(batch.jobs[0].flow->circuit.sizes(),
            batch.jobs[1].flow->circuit.sizes());
  EXPECT_EQ(batch.jobs[0].summary.iterations, batch.jobs[1].summary.iterations);
  EXPECT_EQ(batch.jobs[0].summary.final_metrics.area_um2,
            batch.jobs[1].summary.final_metrics.area_um2);
  const Json report = runtime::batch_json(batch);
  EXPECT_EQ(report.at("cache_hits").as_number(), 1.0);

  // Changed option: the same netlist is a different key, so nothing
  // dedupes in a fresh cache (no false sharing).
  runtime::ResultCache fresh;
  runtime::BatchOptions fresh_options;
  fresh_options.jobs = 1;
  fresh_options.cache = &fresh;
  auto tweaked = make_jobs();
  tweaked[1].options.bound_factors.noise = 0.17;
  const auto batch2 = runtime::run_batch(std::move(tweaked), fresh_options);
  EXPECT_EQ(batch2.num_cache_hits(), 0u)
      << "jobs with distinct options must all run";
}

TEST(BatchCache, CompletedEntriesAnswerAcrossBatches) {
  auto make_job = [] {
    runtime::BatchJob job;
    job.name = "repeat";
    job.netlist = netlist::generate_circuit(tiny_spec(1));
    job.options = fast_options();
    std::vector<runtime::BatchJob> jobs;
    jobs.push_back(std::move(job));
    return jobs;
  };
  runtime::ResultCache cache;
  runtime::BatchOptions options;
  options.jobs = 1;
  options.cache = &cache;
  const auto first = runtime::run_batch(make_job(), options);
  ASSERT_TRUE(first.jobs[0].ok);
  EXPECT_FALSE(first.jobs[0].cache_hit);

  const auto second = runtime::run_batch(make_job(), options);
  ASSERT_TRUE(second.jobs[0].ok);
  EXPECT_TRUE(second.jobs[0].cache_hit);
  // The served summary reproduces the original run field for field (their
  // job JSONs differ only in wall-clock seconds and the cache_hit marker).
  auto strip = [](Json j) {
    j.set("seconds", 0);
    j.set("cache_hit", false);
    return j.dump();
  };
  EXPECT_EQ(strip(runtime::job_json(first.jobs[0])),
            strip(runtime::job_json(second.jobs[0])));
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesASizeRequestWithOverrides) {
  serve::Request request;
  const api::Status st = serve::parse_request(
      R"({"type":"size","id":"j1","input":{"profile":"c17"},"seed":3,)"
      R"("options":{"vectors":16,"noise_bound":0.2,"max_iterations":40},)"
      R"("progress":5,"sizes":true,"warm_start":[[7,1.5]]})",
      core::FlowOptions{}, &request);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(request.kind, serve::Request::Kind::kSize);
  EXPECT_EQ(request.size.id, "j1");
  EXPECT_EQ(request.size.job.seed, 3u);
  EXPECT_EQ(request.size.job.options.elab.seed, 3u);
  EXPECT_EQ(request.size.job.options.num_vectors, 16);
  EXPECT_EQ(request.size.job.options.bound_factors.noise, 0.2);
  EXPECT_EQ(request.size.job.options.ogws.max_iterations, 40);
  EXPECT_EQ(request.size.progress_every, 5);
  EXPECT_TRUE(request.size.want_sizes);
  ASSERT_EQ(request.size.job.warm_sizes.size(), 1u);
  EXPECT_EQ(request.size.job.warm_sizes[0].first, 7);
  EXPECT_GT(request.size.job.netlist.num_gates_logic(), 0);
}

TEST(Protocol, DefaultSeedFollowsTheServersElabSeed) {
  // No request "seed": generation and elaboration both use the server's
  // seed — never a mixed pair the equivalent `lrsizer run --seed` could
  // not produce.
  core::FlowOptions base;
  base.elab.seed = 7;
  serve::Request request;
  const api::Status st = serve::parse_request(
      R"({"type":"size","id":"a","input":{"profile":"c17"}})", base, &request);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(request.size.job.seed, 7u);
  EXPECT_EQ(request.size.job.options.elab.seed, 7u);
}

TEST(Protocol, EcoBaseParsesAndExcludesWarmStart) {
  serve::Request request;
  const core::FlowOptions base;
  ASSERT_TRUE(serve::parse_request(
                  R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                  R"("eco_base":"nA-eB-o1"})",
                  base, &request)
                  .ok());
  EXPECT_EQ(request.size.eco_base, "nA-eB-o1");

  // Must be a non-empty string.
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("eco_base":""})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("eco_base":7})",
                   base, &request)
                   .ok());
  // An ECO seed is a warm start: the two are mutually exclusive, in either
  // key order.
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("warm_start":[[0,1.0]],"eco_base":"nA-eB-o1"})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("eco_base":"nA-eB-o1","warm_start":[[0,1.0]]})",
                   base, &request)
                   .ok());
}

TEST(Protocol, RejectsMalformedRequests) {
  serve::Request request;
  const core::FlowOptions base;
  EXPECT_FALSE(serve::parse_request("not json", base, &request).ok());
  EXPECT_FALSE(serve::parse_request(R"({"type":"resize","id":"a"})", base,
                                    &request).ok());
  EXPECT_FALSE(serve::parse_request(R"({"type":"size"})", base, &request).ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c9999"}})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"bogus_knob":1}})",
                   base, &request)
                   .ok());
  // Validation catches consistent-but-impossible options too.
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"vectors":-4}})",
                   base, &request)
                   .ok());
  // Out-of-range numbers are rejected before any narrowing cast (the cast
  // would be undefined; the ASan+UBSan CI job runs this suite).
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("seed":-1})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"vectors":1e300}})",
                   base, &request)
                   .ok());
  // Fractional values must be rejected, not silently truncated: the fuzz
  // battery caught "seed":0.5 slipping through checked_integer as seed 0.
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("seed":0.5})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("options":{"vectors":1.5}})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("progress":1e12})",
                   base, &request)
                   .ok());
  EXPECT_FALSE(serve::parse_request(
                   R"({"type":"size","id":"a","input":{"profile":"c17"},)"
                   R"("warm_start":[[-2,1.0]]})",
                   base, &request)
                   .ok());
  // cancel and shutdown parse.
  ASSERT_TRUE(
      serve::parse_request(R"({"type":"cancel","id":"a"})", base, &request).ok());
  EXPECT_EQ(request.kind, serve::Request::Kind::kCancel);
  EXPECT_EQ(request.cancel_id, "a");
  ASSERT_TRUE(serve::parse_request(R"({"type":"shutdown"})", base, &request).ok());
  EXPECT_EQ(request.kind, serve::Request::Kind::kShutdown);
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, HistogramPercentilesInterpolateWithinBuckets) {
  obs::Histogram h({0.1, 0.5, 2.5});
  EXPECT_EQ(serve::histogram_percentile(h, 50.0), 0.0)
      << "empty histogram reports 0";
  // 10 observations in the (0, 0.1] bucket, 10 in (0.1, 0.5].
  for (int i = 0; i < 10; ++i) h.observe(0.05);
  for (int i = 0; i < 10; ++i) h.observe(0.3);
  // rank(p50) = 10 = the first bucket's last observation → its upper bound.
  EXPECT_DOUBLE_EQ(serve::histogram_percentile(h, 50.0), 0.1);
  // rank(p99) = 20 = the second bucket's last observation.
  EXPECT_DOUBLE_EQ(serve::histogram_percentile(h, 99.0), 0.5);
  // rank(p25) = 5: halfway through the first bucket by interpolation.
  EXPECT_DOUBLE_EQ(serve::histogram_percentile(h, 25.0), 0.05);
  // p0 maps to rank 1 — strictly positive once anything was observed (the
  // serve soak asserts p99 >= p50 > 0 after a non-empty run).
  EXPECT_DOUBLE_EQ(serve::histogram_percentile(h, 0.0), 0.01);

  // Observations in the +Inf overflow bucket report the largest finite
  // bound — the Prometheus histogram_quantile convention.
  obs::Histogram over({0.1, 0.5});
  over.observe(9.0);
  EXPECT_DOUBLE_EQ(serve::histogram_percentile(over, 99.0), 0.5);
}

TEST(Stats, StatsRequestParsesWithOptionalIdAndResponseRoundTrips) {
  serve::Request request;
  const core::FlowOptions base;
  ASSERT_TRUE(serve::parse_request(R"({"type":"stats"})", base, &request).ok());
  EXPECT_EQ(request.kind, serve::Request::Kind::kStats);
  EXPECT_TRUE(request.stats_id.empty());
  ASSERT_TRUE(
      serve::parse_request(R"({"type":"stats","id":"q"})", base, &request).ok());
  EXPECT_EQ(request.stats_id, "q");
  EXPECT_FALSE(
      serve::parse_request(R"({"type":"stats","id":7})", base, &request).ok());

  serve::StatsSnapshot snapshot;
  snapshot.accepted = 3;
  snapshot.cache_lookup_hits = 1;
  snapshot.cache_lookup_misses = 1;
  snapshot.latency_p50_s = 0.25;
  EXPECT_DOUBLE_EQ(serve::cache_hit_rate(snapshot), 0.5);
  const Json j = serve::stats_json("q", snapshot);
  EXPECT_EQ(j.at("type").as_string(), "stats");
  EXPECT_EQ(j.at("id").as_string(), "q");
  EXPECT_EQ(j.at("jobs").at("accepted").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(j.at("cache").at("hit_rate").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(j.at("latency").at("p50_ms").as_number(), 250.0);
  EXPECT_EQ(j.at("cache").at("mode").as_string(), "memory");
  // Without an id the field is omitted, not emitted empty.
  EXPECT_EQ(serve::stats_json("", snapshot).find("id"), nullptr);

  // The --stats-dump text renders the same counters.
  const std::string text = serve::format_stats_text(snapshot);
  EXPECT_NE(text.find("accepted=3"), std::string::npos);
  EXPECT_NE(text.find("hit_rate=0.500"), std::string::npos);
  EXPECT_NE(text.find("p50_ms=250.000"), std::string::npos);
}

// ---- server -----------------------------------------------------------------

/// Thread-safe response collector: the test-side Sink.
struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Json> lines;

  serve::Server::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(Json::parse(line));
      cv.notify_all();
    };
  }

  std::vector<Json> of_type(const std::string& type) {
    const std::lock_guard<std::mutex> lock(mutex);
    std::vector<Json> matching;
    for (const Json& line : lines) {
      if (line.at("type").as_string() == type) matching.push_back(line);
    }
    return matching;
  }

  /// Wait until at least `n` responses of `type` arrived (fails the test on
  /// timeout rather than hanging).
  bool wait_for(const std::string& type, std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(60), [&] {
      std::size_t count = 0;
      for (const Json& line : lines) {
        if (line.at("type").as_string() == type) ++count;
      }
      return count >= n;
    });
  }
};

std::string size_request(const std::string& id, const std::string& profile,
                         const std::string& extra = "") {
  return R"({"type":"size","id":")" + id + R"(","input":{"profile":")" +
         profile + R"("},"options":{"vectors":8})" + extra + "}";
}

TEST(Server, JsonlRoundTripMatchesADirectRun) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  options.version = "test";
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(size_request("a", "c17") + "\n");
    server.serve_stream(in);
  }
  ASSERT_EQ(collector.of_type("hello").size(), 1u);
  EXPECT_EQ(collector.of_type("hello")[0].at("schema").as_string(),
            "lrsizer-serve-v3");
  ASSERT_EQ(collector.of_type("accepted").size(), 1u);
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].at("cache_hit").as_bool());

  // The served job object equals a direct run_job report byte for byte
  // (wall-clock fields aside).
  runtime::BatchJob job;
  job.name = "a";
  job.netlist = netlist::parse_bench_string(netlist::kIscas85C17);
  core::FlowOptions direct_options;
  direct_options.num_vectors = 8;
  job.options = direct_options;
  const auto outcome = runtime::run_job(std::move(job));
  ASSERT_TRUE(outcome.ok);
  auto strip = [](Json j) {
    j.set("seconds", 0);
    j.set("stage1_seconds", 0);
    j.set("stage2_seconds", 0);
    return j.dump();
  };
  EXPECT_EQ(strip(results[0].at("job")), strip(runtime::job_json(outcome)));
}

TEST(Server, DuplicateJobsAnswerFromCacheByteIdentically) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(size_request("a", "c17", R"(,"sizes":true)") + "\n" +
                          size_request("b", "c17", R"(,"sizes":true)") + "\n" +
                          size_request("c", "c17",
                                       R"(,"sizes":true,"seed":9)") +
                          "\n");
    server.serve_stream(in);
  }
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 3u);
  Json by_id[3];
  for (const Json& r : results) {
    by_id[r.at("id").as_string()[0] - 'a'] = r;
  }
  // Exactly the duplicate is a hit, with a byte-identical job payload
  // (including its sizes).
  EXPECT_FALSE(by_id[0].at("cache_hit").as_bool());
  EXPECT_TRUE(by_id[1].at("cache_hit").as_bool());
  EXPECT_EQ(by_id[0].at("job").dump(), by_id[1].at("job").dump());
  EXPECT_EQ(by_id[0].at("sizes").dump(), by_id[1].at("sizes").dump());
  // Different seed = different netlist: a miss that re-runs.
  EXPECT_FALSE(by_id[2].at("cache_hit").as_bool());
  EXPECT_NE(by_id[0].at("job").dump(), by_id[2].at("job").dump());
}

/// Inline-.bench size request (the ECO flow needs two *different* netlists
/// that share structure, which profile inputs cannot express).
std::string bench_request(const std::string& id,
                          const netlist::LogicNetlist& netlist,
                          const std::string& eco_base = "") {
  Json request = Json::object();
  request.set("type", "size");
  request.set("id", id);
  Json input = Json::object();
  input.set("bench", netlist::to_bench_string(netlist));
  request.set("input", input);
  Json options = Json::object();
  options.set("vectors", 8);
  request.set("options", options);
  request.set("sizes", true);
  if (!eco_base.empty()) request.set("eco_base", eco_base);
  return request.dump();
}

TEST(Server, EcoBaseSeedsFromTheNamedBaseAndRepeatsAreByteIdentical) {
  const netlist::LogicNetlist base =
      netlist::parse_bench_string(netlist::kIscas85C17);
  // One-gate ECO: flip the op of the last primary-output NAND. Same arity,
  // so the base's multiplier state transfers too.
  netlist::LogicNetlist edited;
  std::int32_t edit = -1;
  for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
    if (base.is_primary_output(g) &&
        base.gate(g).op == netlist::LogicOp::kNand) {
      edit = g;
    }
  }
  ASSERT_GE(edit, 0);
  for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
    const netlist::LogicGate& gate = base.gate(g);
    if (gate.op == netlist::LogicOp::kInput) {
      edited.add_input(gate.name);
    } else {
      edited.add_gate(gate.name,
                      g == edit ? netlist::LogicOp::kNor : gate.op,
                      gate.fanin);
    }
    if (base.is_primary_output(g)) edited.mark_output(g);
  }
  edited.finalize();

  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());

  // Cold base run; its accepted "key" is the handle ECO clients name.
  ASSERT_TRUE(server.handle_line(bench_request("a", base)));
  server.drain();
  const auto accepted = collector.of_type("accepted");
  ASSERT_EQ(accepted.size(), 1u);
  const std::string key = accepted[0].at("key").as_string();
  ASSERT_FALSE(key.empty());

  // The revision, warm-started from the named base — then resubmitted.
  ASSERT_TRUE(server.handle_line(bench_request("b", edited, key)));
  server.drain();
  ASSERT_TRUE(server.handle_line(bench_request("c", edited, key)));
  server.drain();
  ASSERT_TRUE(server.handle_line(R"({"type":"stats","id":"s"})"));
  server.drain();

  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 3u);
  std::map<std::string, Json> by_id;
  for (const Json& r : results) by_id[r.at("id").as_string()] = r;

  // The base ran cold, without an eco block.
  EXPECT_FALSE(by_id.at("a").at("cache_hit").as_bool());
  EXPECT_EQ(by_id.at("a").at("job").find("eco"), nullptr);

  // The ECO job reports its provenance inside the job object.
  const Json& eco_job = by_id.at("b").at("job");
  EXPECT_FALSE(by_id.at("b").at("cache_hit").as_bool());
  const Json* eco = eco_job.find("eco");
  ASSERT_NE(eco, nullptr);
  EXPECT_EQ(eco->at("base_hash").as_string(), key);
  EXPECT_GT(eco->at("reused_nodes").as_number(), 0.0);
  EXPECT_GT(eco->at("dirty_nodes").as_number(), 0.0);

  // Resubmitting the identical ECO request answers from the cache with a
  // byte-identical job payload — eco block included.
  EXPECT_TRUE(by_id.at("c").at("cache_hit").as_bool());
  EXPECT_EQ(by_id.at("c").at("job").dump(), eco_job.dump());
  EXPECT_EQ(by_id.at("c").at("sizes").dump(), by_id.at("b").at("sizes").dump());

  // Stats: one ECO-seeded job, one exact hit, disjoint kinds.
  const auto stats = collector.of_type("stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].at("jobs").at("eco").as_number(), 1.0);
  EXPECT_EQ(stats[0].at("jobs").at("cache_hits").as_number(), 1.0);
  EXPECT_EQ(stats[0].at("cache").at("hits").as_number(), 1.0);
  EXPECT_EQ(stats[0].at("cache").at("eco_hits").as_number(), 1.0);
  EXPECT_EQ(stats[0].at("cache").at("warm_hits").as_number(), 0.0);
}

TEST(Server, CancelMidJobYieldsACancelledResponse) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  // c432 runs hundreds of OGWS iterations; progress every iteration gives a
  // deterministic "the job is mid-OGWS now" signal to cancel on.
  ASSERT_TRUE(server.handle_line(size_request("x", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(collector.wait_for("progress", 1)) << "job never started";
  ASSERT_TRUE(server.handle_line(R"({"type":"cancel","id":"x"})"));
  server.drain();

  const auto cancelled = collector.of_type("cancelled");
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0].at("id").as_string(), "x");
  // The cancel landed mid-OGWS, so the partial result rides along.
  ASSERT_NE(cancelled[0].find("job"), nullptr);
  EXPECT_TRUE(cancelled[0].at("job").at("cancelled").as_bool());
  EXPECT_TRUE(collector.of_type("result").empty());
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Server, ShutdownStopsReadingFurtherRequests) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(size_request("a", "c17") + "\n" +
                          R"({"type":"shutdown"})" + "\n" +
                          size_request("late", "c17") + "\n");
    server.serve_stream(in);
  }
  // "a" completes (shutdown drains in-flight work); "late" is never read.
  ASSERT_EQ(collector.of_type("result").size(), 1u);
  EXPECT_EQ(collector.of_type("accepted").size(), 1u);
}

TEST(Server, MalformedAndUnknownRequestsGetErrorResponses) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    std::istringstream in(std::string("this is not json\n") +
                          R"({"type":"cancel","id":"ghost"})" + "\n" +
                          size_request("a", "c9999") + "\n");
    server.serve_stream(in);
  }
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_TRUE(collector.of_type("result").empty());
  EXPECT_EQ(collector.lines.size(), 4u);  // hello + 3 errors
  // Whenever the line parsed far enough to carry an id, the error echoes
  // it; a fully unparseable line cannot.
  EXPECT_EQ(errors[0].find("id"), nullptr);
  EXPECT_EQ(errors[1].at("id").as_string(), "ghost");
  EXPECT_EQ(errors[2].at("id").as_string(), "a");
}

TEST(Server, BackpressureRejectsBeyondMaxPending) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  options.max_pending = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  // First job occupies the single pending slot while it runs...
  ASSERT_TRUE(server.handle_line(size_request("a", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(collector.wait_for("progress", 1));
  // ...so the second is rejected with a backpressure error.
  ASSERT_TRUE(server.handle_line(size_request("b", "c17")));
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("id").as_string(), "b");
  EXPECT_NE(errors[0].at("message").as_string().find("backpressure"),
            std::string::npos);
  // v3: machine-readable rejection — an "overloaded" code plus a
  // retry_after_ms hint, so clients can back off without parsing prose.
  EXPECT_EQ(errors[0].at("code").as_string(), "overloaded");
  EXPECT_GE(errors[0].at("retry_after_ms").as_number(), 50.0);
  EXPECT_LE(errors[0].at("retry_after_ms").as_number(), 10000.0);
  ASSERT_TRUE(server.handle_line(R"({"type":"cancel","id":"a"})"));
  server.drain();
  // Shed jobs are tallied separately from ordinary errors.
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(Server, PerClientCapShedsTheGreedyClientNotItsNeighbor) {
  serve::ServerOptions options;
  options.jobs = 1;
  options.max_pending_per_client = 1;
  serve::Server server(options);
  Collector greedy, modest;
  const auto cg = server.add_client(greedy.sink());
  const auto cm = server.add_client(modest.sink());
  // The greedy client fills its one slot with a long job...
  ASSERT_TRUE(
      server.handle_line(cg, size_request("a", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(greedy.wait_for("progress", 1)) << "job never started";
  // ...so its second request is shed, while the other client's request is
  // admitted even though the global queue is not empty.
  ASSERT_TRUE(server.handle_line(cg, size_request("b", "c17")));
  ASSERT_TRUE(server.handle_line(cm, size_request("x", "c17")));
  const auto errors = greedy.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("id").as_string(), "b");
  EXPECT_EQ(errors[0].at("code").as_string(), "overloaded");
  EXPECT_TRUE(modest.of_type("error").empty());
  ASSERT_EQ(modest.of_type("accepted").size(), 1u);
  ASSERT_TRUE(server.handle_line(cg, R"({"type":"cancel","id":"a"})"));
  server.drain();
  // With the long job gone the greedy client's slot is free again.
  ASSERT_TRUE(server.handle_line(cg, size_request("c", "c17")));
  server.drain();
  ASSERT_EQ(greedy.of_type("result").size(), 1u);
  ASSERT_EQ(modest.of_type("result").size(), 1u);
}

TEST(Server, QueueCostBudgetAdmitsByNodeCountNotJobCount) {
  serve::ServerOptions options;
  options.jobs = 1;
  // A budget smaller than any job: the empty-queue rule still admits the
  // first request (otherwise big jobs could never run at all), and the
  // budget then sheds everything behind it.
  options.max_queue_cost = 1;
  serve::Server server(options);
  Collector collector;
  const auto client = server.add_client(collector.sink());
  ASSERT_TRUE(
      server.handle_line(client, size_request("a", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(collector.wait_for("progress", 1)) << "job never started";
  ASSERT_TRUE(server.handle_line(client, size_request("b", "c17")));
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("id").as_string(), "b");
  EXPECT_EQ(errors[0].at("code").as_string(), "overloaded");
  EXPECT_NE(errors[0].at("message").as_string().find("cost"),
            std::string::npos);
  EXPECT_GT(errors[0].at("retry_after_ms").as_number(), 0.0);
  ASSERT_TRUE(server.handle_line(client, R"({"type":"cancel","id":"a"})"));
  server.drain();
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(Server, DeadlineCutsAJobToAPartialResultMarkedTimeout) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  // c6288 at 256 vectors runs well past any 600 ms deadline. Where the
  // deadline lands depends on machine speed: mid-OGWS (the common case,
  // answered with a timeout-marked partial result) or still in elaboration
  // under heavy slowdown (answered with a "deadline" error). Both shapes
  // are the contract; both tally as a timeout, never as a cancellation.
  ASSERT_TRUE(server.handle_line(
      R"({"type":"size","id":"x","input":{"profile":"c6288"},)"
      R"("options":{"vectors":256},"deadline_ms":600})"));
  server.drain();

  const auto results = collector.of_type("result");
  if (!results.empty()) {
    // The deadline fired mid-OGWS: the job answers with a *result* carrying
    // its best partial solution (KKT state included), marked timeout.
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].at("id").as_string(), "x");
    EXPECT_TRUE(results[0].at("timeout").as_bool());
    EXPECT_FALSE(results[0].at("cache_hit").as_bool());
    EXPECT_TRUE(results[0].at("job").at("cancelled").as_bool());
    EXPECT_GT(results[0].at("job").at("iterations").as_number(), 0.0);
  } else {
    // The deadline beat the sizing stage: no partial exists, so the job
    // answers with a machine-readable deadline error instead.
    const auto errors = collector.of_type("error");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].at("id").as_string(), "x");
    EXPECT_EQ(errors[0].at("code").as_string(), "deadline");
  }
  EXPECT_TRUE(collector.of_type("cancelled").empty());
  EXPECT_EQ(server.stats().timeouts, 1u);
  EXPECT_EQ(server.stats().cancelled, 0u);

  // The server is fully alive afterwards — and the partial was never
  // cached, so the same job re-runs rather than serving a truncated
  // answer.
  ASSERT_TRUE(server.handle_line(size_request("y", "c17")));
  server.drain();
  const auto after = collector.of_type("result");
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after.back().at("id").as_string(), "y");
  // Untimed results never carry the timeout key (byte-identity with v2).
  EXPECT_EQ(after.back().find("timeout"), nullptr);
}

TEST(Server, DefaultDeadlineAppliesWhenTheRequestNamesNone) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  options.default_deadline_ms = 300;
  serve::Server server(options, collector.sink());
  server.hello();
  ASSERT_TRUE(server.handle_line(
      R"({"type":"size","id":"x","input":{"profile":"c6288"},)"
      R"("options":{"vectors":256}})"));
  server.drain();
  // Timeout-marked partial or deadline error — either way the server
  // default cut the job and tallied it (see DeadlineCutsAJob... above).
  const auto results = collector.of_type("result");
  if (!results.empty()) {
    EXPECT_TRUE(results[0].at("timeout").as_bool());
  } else {
    const auto errors = collector.of_type("error");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].at("code").as_string(), "deadline");
  }
  EXPECT_EQ(server.stats().timeouts, 1u);

  // An explicit "deadline_ms": 0 opts out of the server default: c17
  // completes normally well within any deadline race.
  ASSERT_TRUE(server.handle_line(size_request("y", "c17", R"(,"deadline_ms":0)")));
  server.drain();
  const auto after = collector.of_type("result");
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after.back().at("id").as_string(), "y");
  EXPECT_EQ(after.back().find("timeout"), nullptr);
}

TEST(Server, DrainRefusesNewWorkFinishesInFlightAndReportsState) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  ASSERT_TRUE(server.handle_line(size_request("a", "c17")));
  EXPECT_FALSE(server.draining());
  server.begin_drain();
  EXPECT_TRUE(server.draining());
  // Post-drain requests are refused with the machine-readable shutdown
  // code; the in-flight job still runs to completion.
  ASSERT_TRUE(server.handle_line(size_request("late", "c17", R"(,"seed":9)")));
  server.drain();
  EXPECT_TRUE(server.idle());
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("id").as_string(), "late");
  EXPECT_EQ(errors[0].at("code").as_string(), "shutdown");
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("id").as_string(), "a");
  // The stats surface says so, for both pollers and --stats-dump readers.
  ASSERT_TRUE(server.handle_line(R"({"type":"stats","id":"s"})"));
  const auto stats = collector.of_type("stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].at("server").at("state").as_string(), "draining");
  EXPECT_NE(serve::format_stats_text(server.stats_snapshot())
                .find("state=draining"),
            std::string::npos);
}

TEST(Server, ErrorCodesIdentifyTheFailureClass) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options, collector.sink());
  server.hello();
  ASSERT_TRUE(server.handle_line("this is not json"));
  ASSERT_TRUE(server.handle_line(R"({"type":"cancel","id":"ghost"})"));
  // Hold "dup" in flight (c432 runs for seconds) so its id collision is
  // deterministic, not a race against completion.
  ASSERT_TRUE(server.handle_line(size_request("dup", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(collector.wait_for("progress", 1)) << "job never started";
  ASSERT_TRUE(server.handle_line(size_request("dup", "c17")));
  ASSERT_TRUE(server.handle_line(R"({"type":"cancel","id":"dup"})"));
  server.drain();
  const auto errors = collector.of_type("error");
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].at("code").as_string(), "parse");
  EXPECT_EQ(errors[1].at("code").as_string(), "not_found");
  EXPECT_EQ(errors[2].at("code").as_string(), "duplicate_id");
  EXPECT_EQ(errors[2].at("id").as_string(), "dup");
}

TEST(Server, StatsRequestReportsReconcilableCountersAndLatency) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  options.version = "test";
  serve::Server server(options, collector.sink());
  server.hello();
  // Two identical jobs: one runs, its twin answers from the cache (as a
  // direct hit or an in-flight follower, depending on timing — either way
  // it counts as a cache-served completion).
  ASSERT_TRUE(server.handle_line(size_request("a", "c17")));
  ASSERT_TRUE(server.handle_line(size_request("b", "c17")));
  server.drain();
  ASSERT_TRUE(server.handle_line(R"({"type":"stats","id":"s1"})"));

  const auto stats = collector.of_type("stats");
  ASSERT_EQ(stats.size(), 1u);
  const Json& s = stats[0];
  EXPECT_EQ(s.at("id").as_string(), "s1");
  EXPECT_EQ(s.at("jobs").at("accepted").as_number(), 2.0);
  EXPECT_EQ(s.at("jobs").at("completed").as_number(), 2.0);
  EXPECT_EQ(s.at("jobs").at("cache_hits").as_number(), 1.0);
  EXPECT_EQ(s.at("jobs").at("errors").as_number(), 0.0);
  EXPECT_EQ(s.at("jobs").at("queue_depth").as_number(), 0.0);
  EXPECT_EQ(s.at("clients").at("active").as_number(), 1.0);
  EXPECT_EQ(s.at("cache").at("entries").as_number(), 1.0);
  EXPECT_GT(s.at("cache").at("bytes").as_number(), 0.0);
  EXPECT_EQ(s.at("cache").at("mode").as_string(), "memory");
  // Both jobs finished, so both latencies are in the ring.
  EXPECT_EQ(s.at("latency").at("count").as_number(), 2.0);
  EXPECT_GE(s.at("latency").at("p99_ms").as_number(),
            s.at("latency").at("p50_ms").as_number());
  EXPECT_GT(s.at("latency").at("p99_ms").as_number(), 0.0);
}

/// Value of one series in a registry snapshot; NaN when absent. `labels`
/// must match the sample's full (sorted) label set.
double registry_value(const obs::Registry& registry, const std::string& name,
                      const obs::Labels& labels = {}) {
  for (const auto& family : registry.snapshot()) {
    if (family.name != name) continue;
    for (const auto& sample : family.samples) {
      if (sample.labels == labels) return sample.value;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

TEST(Server, StatsCarryServerIdentityAndDeriveFromTheRegistry) {
  Collector collector;
  obs::Registry registry;
  serve::ServerOptions options;
  options.jobs = 1;
  options.version = "test 1.2.3";
  options.registry = &registry;
  serve::Server server(options, collector.sink());
  server.hello();
  ASSERT_TRUE(server.handle_line(size_request("a", "c17")));
  ASSERT_TRUE(server.handle_line(size_request("b", "c17")));
  ASSERT_TRUE(server.handle_line("{not json"));  // one parse error
  server.drain();
  ASSERT_TRUE(server.handle_line(R"({"type":"stats","id":"s"})"));

  const auto stats = collector.of_type("stats");
  ASSERT_EQ(stats.size(), 1u);
  const Json& s = stats[0];
  // The v2-additive server block: identity plus clocks.
  EXPECT_EQ(s.at("server").at("version").as_string(), "test 1.2.3");
  EXPECT_GT(s.at("server").at("start_time_unix_s").as_number(), 0.0);
  EXPECT_GE(s.at("server").at("uptime_s").as_number(), 0.0);

  // The jsonl counters and the metrics registry are one source of truth:
  // every number in the stats response is a registry read.
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_accepted_total"),
            s.at("jobs").at("accepted").as_number());
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_responses_total",
                           {{"type", "result"}}),
            s.at("jobs").at("completed").as_number());
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_cache_hits_total"),
            s.at("jobs").at("cache_hits").as_number());
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_responses_total",
                           {{"type", "error"}}),
            s.at("jobs").at("errors").as_number());
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_responses_total",
                           {{"type", "cancelled"}}),
            s.at("jobs").at("cancelled").as_number());
  EXPECT_EQ(registry_value(registry, "lrsizer_cache_entries"),
            s.at("cache").at("entries").as_number());
  EXPECT_EQ(registry_value(registry, "lrsizer_build_info",
                           {{"version", "test 1.2.3"}}),
            1.0);
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_accepted_total"), 2.0);
  EXPECT_EQ(registry_value(registry, "lrsizer_serve_responses_total",
                           {{"type", "error"}}),
            1.0);
}

TEST(Server, TraceOptInAttachesATraceToColdResultsOnly) {
  Collector collector;
  serve::ServerOptions options;
  options.jobs = 1;
  {
    serve::Server server(options, collector.sink());
    // Two identical traced jobs: the first runs cold and carries a trace,
    // the twin answers from the cache (stored report — no trace), and an
    // untraced request never grows one.
    ASSERT_TRUE(
        server.handle_line(size_request("a", "c17", R"(,"trace":true)")));
    ASSERT_TRUE(
        server.handle_line(size_request("b", "c17", R"(,"trace":true)")));
    ASSERT_TRUE(
        server.handle_line(size_request("c", "c17", R"(,"seed":9)")));
    server.drain();
  }
  const auto results = collector.of_type("result");
  ASSERT_EQ(results.size(), 3u);
  Json by_id[3];
  for (const Json& r : results) by_id[r.at("id").as_string()[0] - 'a'] = r;

  ASSERT_FALSE(by_id[0].at("cache_hit").as_bool());
  const Json* trace = by_id[0].find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->at("schema").as_string(), "lrsizer-trace-v1");
  const auto& events = trace->at("traceEvents").as_array();
  EXPECT_FALSE(events.empty());
  std::size_t stage_spans = 0, iteration_spans = 0;
  for (const Json& event : events) {
    const std::string& name = event.at("name").as_string();
    if (name == "size" || name == "elaborate") ++stage_spans;
    if (name == "ogws_iteration") ++iteration_spans;
  }
  EXPECT_EQ(stage_spans, 2u);
  EXPECT_GT(iteration_spans, 0u);

  EXPECT_TRUE(by_id[1].at("cache_hit").as_bool());
  EXPECT_EQ(by_id[1].find("trace"), nullptr);
  EXPECT_FALSE(by_id[2].at("cache_hit").as_bool());
  EXPECT_EQ(by_id[2].find("trace"), nullptr);
  // Tracing never perturbs the answer: traced and cached results agree byte
  // for byte on the job payload.
  EXPECT_EQ(by_id[0].at("job").dump(), by_id[1].at("job").dump());
}

// ---- multi-client server ----------------------------------------------------

TEST(Server, ClientsHaveIndependentIdNamespaces) {
  serve::ServerOptions options;
  options.jobs = 2;
  serve::Server server(options);
  Collector a, b;
  const auto ca = server.add_client(a.sink());
  const auto cb = server.add_client(b.sink());
  EXPECT_EQ(server.active_clients(), 2u);
  server.hello(ca);
  server.hello(cb);
  // The same id on two clients is not a duplicate: both jobs run and each
  // client receives exactly its own responses.
  ASSERT_TRUE(server.handle_line(ca, size_request("x", "c17")));
  ASSERT_TRUE(server.handle_line(cb, size_request("x", "c17")));
  server.drain();
  EXPECT_EQ(a.of_type("hello").size(), 1u);
  EXPECT_EQ(a.of_type("result").size(), 1u);
  EXPECT_EQ(b.of_type("result").size(), 1u);
  EXPECT_TRUE(a.of_type("error").empty());
  EXPECT_TRUE(b.of_type("error").empty());
  // Same-client reuse of an id while active is still rejected.
  ASSERT_TRUE(server.handle_line(ca, size_request("y", "c432")));
  ASSERT_TRUE(server.handle_line(ca, size_request("y", "c17")));
  ASSERT_TRUE(a.wait_for("error", 1));
  ASSERT_TRUE(server.handle_line(ca, R"({"type":"cancel","id":"y"})"));
  server.drain();
  server.remove_client(ca);
  server.remove_client(cb);
  EXPECT_EQ(server.active_clients(), 0u);
}

TEST(Server, CancelIsScopedToTheRequestingClient) {
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options);
  Collector a, b;
  const auto ca = server.add_client(a.sink());
  const auto cb = server.add_client(b.sink());
  ASSERT_TRUE(
      server.handle_line(ca, size_request("x", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(a.wait_for("progress", 1)) << "job never started";
  // B cancelling "x" must not reach A's job: B just gets an error.
  ASSERT_TRUE(server.handle_line(cb, R"({"type":"cancel","id":"x"})"));
  ASSERT_TRUE(b.wait_for("error", 1));
  EXPECT_TRUE(a.of_type("cancelled").empty());
  // A cancelling its own job works as before.
  ASSERT_TRUE(server.handle_line(ca, R"({"type":"cancel","id":"x"})"));
  server.drain();
  EXPECT_EQ(a.of_type("cancelled").size(), 1u);
  EXPECT_TRUE(b.of_type("cancelled").empty());
}

TEST(Server, RemoveClientCancelsItsJobsAndDropsItsResponses) {
  serve::ServerOptions options;
  options.jobs = 1;
  serve::Server server(options);
  Collector a;
  const auto ca = server.add_client(a.sink());
  ASSERT_TRUE(
      server.handle_line(ca, size_request("x", "c432", R"(,"progress":1)")));
  ASSERT_TRUE(a.wait_for("progress", 1)) << "job never started";
  server.remove_client(ca);
  // The orphaned job was cancelled, so drain() returns promptly instead of
  // waiting out hundreds of OGWS iterations.
  server.drain();
  EXPECT_EQ(server.active_clients(), 0u);
  EXPECT_EQ(server.stats().cancelled, 1u);
  // No response of any kind reached the removed client's sink.
  EXPECT_TRUE(a.of_type("cancelled").empty());
  EXPECT_TRUE(a.of_type("result").empty());
}

// ---- TCP event loop ---------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

/// A listening server on an ephemeral port, its event loop on its own
/// thread; the destructor requests stop and joins.
struct TcpServer {
  serve::ServerOptions options;
  std::stop_source stop;
  std::unique_ptr<serve::Server> server;
  std::atomic<std::uint16_t> port{0};
  std::atomic<std::uint16_t> metrics_port{0};
  std::atomic<bool> done{false};
  std::thread thread;

  explicit TcpServer(serve::ServerOptions opts, bool with_metrics = false)
      : options(std::move(opts)) {
    options.stop = stop.get_token();
    server = std::make_unique<serve::Server>(options);
    thread = std::thread([this, with_metrics] {
      serve::ListenOptions listen;
      listen.port = 0;
      listen.metrics_port = with_metrics ? 0 : -1;
      listen.bound_port = &port;
      listen.metrics_bound_port = &metrics_port;
      serve::listen_and_serve(listen, *server);
      done.store(true);
    });
    while ((port.load() == 0 ||
            (with_metrics && metrics_port.load() == 0)) &&
           !done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ~TcpServer() {
    stop.request_stop();
    thread.join();
  }
};

/// Blocking line-oriented test client (60 s receive timeout so a stalled
/// server fails the test instead of hanging it).
struct TcpClient {
  int fd = -1;
  std::string buffer;

  explicit TcpClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval timeout{60, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~TcpClient() {
    if (fd >= 0) ::close(fd);
  }
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  bool ok() const { return fd >= 0; }

  void send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
#if defined(MSG_NOSIGNAL)
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
#endif
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }
  void send_line(const std::string& line) { send_raw(line + "\n"); }

  std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t newline = buffer.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Read responses until one of `type` arrives; nullopt on EOF/timeout.
  std::optional<Json> read_until(const std::string& type) {
    for (;;) {
      const auto line = read_line();
      if (!line) return std::nullopt;
      Json j = Json::parse(*line);
      if (j.at("type").as_string() == type) return j;
    }
  }
};

/// Everything nondeterministic (wall clock) or request-specific (name,
/// cache routing) nulled out: what must be byte-identical between a served
/// result and a direct serial run of the same job.
std::string normalized_job(Json job) {
  job.set("name", "x");
  job.set("cache_hit", false);
  job.set("seconds", 0);
  job.set("stage1_seconds", 0);
  job.set("stage2_seconds", 0);
  return job.dump();
}

/// Direct serial run of the c17 job the TCP tests request (vectors 8,
/// elaboration seed `seed`), normalized.
std::string serial_baseline(std::uint64_t seed) {
  runtime::BatchJob job;
  job.name = "x";
  job.seed = seed;
  job.netlist = netlist::parse_bench_string(netlist::kIscas85C17);
  job.options = fast_options();
  job.options.elab.seed = seed;
  const auto outcome = runtime::run_job(std::move(job));
  EXPECT_TRUE(outcome.ok);
  return normalized_job(runtime::job_json(outcome));
}

TEST(ServeTcp, MultiClientStressMatchesSerialRunsAndStatsReconcile) {
  // Serial ground truth, one run per seed, before the server exists.
  std::map<std::uint64_t, std::string> baseline;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    baseline[seed] = serial_baseline(seed);
  }

  serve::ServerOptions options;
  options.jobs = 2;
  options.version = "test";
  // A deliberately tight cache: eviction churns underneath the concurrent
  // clients, and results must still be byte-identical to serial runs.
  options.cache_limits.max_entries = 2;
  TcpServer ts(options);
  ASSERT_NE(ts.port.load(), 0);

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      TcpClient client(ts.port.load());
      if (!client.ok()) {
        ++failures;
        return;
      }
      const auto hello = client.read_until("hello");
      if (!hello || hello->at("schema").as_string() != "lrsizer-serve-v3") {
        ++failures;
        return;
      }
      // Ids deliberately collide across clients ("j0".."j5" everywhere):
      // per-client namespaces must keep them apart. Interleave a bogus
      // cancel and a stats poll between the size requests.
      for (int k = 0; k < kJobsPerClient; ++k) {
        const std::uint64_t seed = static_cast<std::uint64_t>(k % 3) + 1;
        client.send_line(size_request("j" + std::to_string(k), "c17",
                                      ",\"seed\":" + std::to_string(seed)));
        if (k == 2) client.send_line(R"({"type":"cancel","id":"ghost"})");
        if (k == 4) client.send_line(R"({"type":"stats"})");
      }
      int results = 0, errors = 0, stats = 0;
      while (results < kJobsPerClient || errors < 1 || stats < 1) {
        const auto line = client.read_line();
        if (!line) {
          ++failures;  // EOF/timeout before all responses arrived
          return;
        }
        const Json j = Json::parse(*line);
        const std::string& type = j.at("type").as_string();
        if (type == "result") {
          ++results;
          const std::string id = j.at("id").as_string();
          const std::uint64_t seed =
              static_cast<std::uint64_t>((id[1] - '0') % 3) + 1;
          if (normalized_job(j.at("job")) != baseline[seed]) ++failures;
        } else if (type == "error") {
          ++errors;  // exactly the ghost cancel
          if (j.at("id").as_string() != "ghost") ++failures;
        } else if (type == "stats") {
          ++stats;
        } else if (type != "accepted" && type != "hello") {
          ++failures;  // no cancelled/progress was requested
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  // Fleet-level reconciliation from a fresh client: every counter adds up
  // across all four clients, and the budget was never exceeded.
  TcpClient auditor(ts.port.load());
  ASSERT_TRUE(auditor.ok());
  ASSERT_TRUE(auditor.read_until("hello").has_value());
  auditor.send_line(R"({"type":"stats","id":"audit"})");
  const auto reply = auditor.read_until("stats");
  ASSERT_TRUE(reply.has_value());
  const Json& s = *reply;
  EXPECT_EQ(s.at("jobs").at("accepted").as_number(), 1.0 * kClients * kJobsPerClient);
  EXPECT_EQ(s.at("jobs").at("completed").as_number(), 1.0 * kClients * kJobsPerClient);
  EXPECT_EQ(s.at("jobs").at("errors").as_number(), 1.0 * kClients);
  EXPECT_EQ(s.at("jobs").at("cancelled").as_number(), 0.0);
  EXPECT_EQ(s.at("jobs").at("queue_depth").as_number(), 0.0);
  EXPECT_EQ(s.at("clients").at("active").as_number(), 1.0);
  EXPECT_LE(s.at("cache").at("entries").as_number(), 2.0);
  EXPECT_GT(s.at("cache").at("evictions").as_number(), 0.0);
  EXPECT_EQ(s.at("latency").at("count").as_number(), 1.0 * kClients * kJobsPerClient);
  EXPECT_GT(s.at("latency").at("p99_ms").as_number(), 0.0);
}

TEST(ServeTcp, PartialLinesFromASlowWriterAssembleIntoOneRequest) {
  serve::ServerOptions options;
  options.jobs = 1;
  TcpServer ts(options);
  TcpClient client(ts.port.load());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.read_until("hello").has_value());
  // Dribble one request across several writes with pauses: the per-client
  // buffer must assemble it, not treat each fragment as a line.
  const std::string request = size_request("slow", "c17");
  for (std::size_t off = 0; off < request.size(); off += 11) {
    client.send_raw(request.substr(off, 11));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  client.send_raw("\n");
  const auto result = client.read_until("result");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->at("id").as_string(), "slow");
}

TEST(ServeTcp, OversizedLineIsRejectedWithoutBufferingOrDisconnect) {
  serve::ServerOptions options;
  options.jobs = 1;
  options.max_line_bytes = 256;
  TcpServer ts(options);
  TcpClient client(ts.port.load());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.read_until("hello").has_value());
  // 8 KB with no newline: rejected once the buffer passes 256 bytes, the
  // rest discarded, the connection kept.
  client.send_raw(std::string(8192, 'x'));
  const auto error = client.read_until("error");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->at("message").as_string().find("exceeds"),
            std::string::npos);
  // Terminate the oversized line; the same connection then works normally.
  client.send_raw("\n");
  client.send_line(size_request("after", "c17"));
  const auto result = client.read_until("result");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->at("id").as_string(), "after");
}

TEST(ServeTcp, MidJobDisconnectCancelsTheJobAndServesOtherClients) {
  serve::ServerOptions options;
  options.jobs = 1;
  TcpServer ts(options);
  {
    TcpClient doomed(ts.port.load());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(doomed.read_until("hello").has_value());
    // c6288 at 64 vectors runs for many seconds: the abrupt close below
    // reliably lands mid-job (a c17-sized job would finish before the
    // server could even notice the EOF).
    doomed.send_line(
        R"({"type":"size","id":"x","input":{"profile":"c6288"},)"
        R"("options":{"vectors":64},"progress":1})");
    // The job is mid-OGWS (progress is flowing) when the client vanishes:
    // pending responses hit a closed socket — the server must survive (no
    // SIGPIPE) and cancel the orphaned job.
    ASSERT_TRUE(doomed.read_until("progress").has_value());
  }
  TcpClient survivor(ts.port.load());
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(survivor.read_until("hello").has_value());
  survivor.send_line(size_request("y", "c17"));
  const auto result = survivor.read_until("result");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->at("id").as_string(), "y");
  // The orphan was reaped: poll stats until the cancel lands (the reap is
  // asynchronous with the survivor's connect).
  bool cancelled = false;
  for (int i = 0; i < 600 && !cancelled; ++i) {
    survivor.send_line(R"({"type":"stats"})");
    const auto stats = survivor.read_until("stats");
    ASSERT_TRUE(stats.has_value());
    cancelled = stats->at("jobs").at("cancelled").as_number() >= 1.0;
    if (!cancelled) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(cancelled);
}

TEST(ServeTcp, ShutdownFromOneClientStopsTheWholeService) {
  serve::ServerOptions options;
  options.jobs = 1;
  TcpServer ts(options);
  TcpClient client(ts.port.load());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.read_until("hello").has_value());
  client.send_line(R"({"type":"shutdown"})");
  // The event loop exits on its own — no stop token involved.
  for (int i = 0; i < 600 && !ts.done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(ts.done.load());
}

// ---- metrics endpoint -------------------------------------------------------

/// One HTTP exchange against the metrics port: send `request` raw, read to
/// EOF (the endpoint is Connection: close), return the whole response.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  TcpClient client(port);
  if (!client.ok()) return "";
  client.send_raw(request);
  std::string response = client.buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(client.fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response;
}

/// Parse a Prometheus text body into {"name{labels}" or "name"} -> value.
std::map<std::string, double> parse_exposition(const std::string& body) {
  std::map<std::string, double> samples;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eol = body.find('\n', pos);
    const std::string line = body.substr(pos, eol - pos);
    pos = (eol == std::string::npos) ? body.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

TEST(ServeTcp, MetricsEndpointMatchesJsonlStatsAndServesHealthz) {
  serve::ServerOptions options;
  options.jobs = 1;
  options.version = "tcp-test";
  TcpServer ts(options, /*with_metrics=*/true);
  ASSERT_NE(ts.port.load(), 0);
  ASSERT_NE(ts.metrics_port.load(), 0);

  TcpClient client(ts.port.load());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.read_until("hello").has_value());
  client.send_line(size_request("a", "c17"));
  ASSERT_TRUE(client.read_until("result").has_value());
  client.send_line(size_request("b", "c17"));
  ASSERT_TRUE(client.read_until("result").has_value());

  // Quiescent instant (no jobs in flight): the jsonl stats response and a
  // /metrics scrape read the same registry and must agree exactly.
  client.send_line(R"({"type":"stats","id":"s"})");
  const auto stats = client.read_until("stats");
  ASSERT_TRUE(stats.has_value());
  const std::string response = http_exchange(
      ts.metrics_port.load(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(
      response.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
      std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const auto samples = parse_exposition(response.substr(body_at + 4));

  ASSERT_TRUE(samples.count("lrsizer_serve_accepted_total"));
  EXPECT_EQ(samples.at("lrsizer_serve_accepted_total"),
            stats->at("jobs").at("accepted").as_number());
  EXPECT_EQ(samples.at("lrsizer_serve_responses_total{type=\"result\"}"),
            stats->at("jobs").at("completed").as_number());
  EXPECT_EQ(samples.at("lrsizer_serve_cache_hits_total"),
            stats->at("jobs").at("cache_hits").as_number());
  EXPECT_EQ(samples.at("lrsizer_cache_entries"),
            stats->at("cache").at("entries").as_number());
  EXPECT_EQ(samples.at("lrsizer_build_info{version=\"tcp-test\"}"), 1.0);
  EXPECT_EQ(samples.at("lrsizer_serve_clients"), 1.0);
  // Histogram invariants on the wire: +Inf bucket == count == completions.
  EXPECT_EQ(
      samples.at("lrsizer_serve_job_latency_seconds_bucket{le=\"+Inf\"}"),
      samples.at("lrsizer_serve_job_latency_seconds_count"));
  EXPECT_EQ(samples.at("lrsizer_serve_job_latency_seconds_count"), 2.0);

  // Routing: health probe, unknown path, non-GET method.
  const std::string health = http_exchange(
      ts.metrics_port.load(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(health.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_EQ(health.substr(health.find("\r\n\r\n") + 4), "ok\n");
  EXPECT_EQ(http_exchange(ts.metrics_port.load(),
                          "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
                .rfind("HTTP/1.1 404 Not Found\r\n", 0),
            0u);
  EXPECT_EQ(http_exchange(ts.metrics_port.load(),
                          "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                .rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0),
            0u);

  // The jsonl side is untouched by the scrapes: a job still round-trips.
  client.send_line(size_request("c", "c17", R"(,"seed":5)"));
  const auto after = client.read_until("result");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->at("id").as_string(), "c");
}

TEST(ServeTcp, DrainTurnsHealthz503RefusesNewClientsAndExitsCleanly) {
  serve::ServerOptions options;
  options.jobs = 1;
  TcpServer ts(options, /*with_metrics=*/true);
  ASSERT_NE(ts.port.load(), 0);
  TcpClient client(ts.port.load());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.read_until("hello").has_value());
  // c6288 at 64 vectors runs for roughly a second — a wide-open drain
  // window (a small job would finish before the probes below get a look).
  client.send_line(
      R"({"type":"size","id":"x","input":{"profile":"c6288"},)"
      R"("options":{"vectors":64},"progress":1})");
  ASSERT_TRUE(client.read_until("progress").has_value());

  // Drain mid-job: the SIGTERM path minus the signal.
  ts.server->begin_drain();

  // /healthz flips to 503 at once so load balancers route away, while
  // /metrics keeps answering (lrsizer_serve_draining = 1) for the ops side.
  const std::string health = http_exchange(
      ts.metrics_port.load(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(health.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_EQ(health.substr(health.find("\r\n\r\n") + 4), "draining\n");
  const std::string scrape = http_exchange(
      ts.metrics_port.load(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_EQ(scrape.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  const auto samples =
      parse_exposition(scrape.substr(scrape.find("\r\n\r\n") + 4));
  EXPECT_EQ(samples.at("lrsizer_serve_draining"), 1.0);

  // New jsonl connections are turned away without a greeting.
  TcpClient late(ts.port.load());
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late.read_line().has_value());

  // The in-flight job still reaches its terminal response; once the last
  // job is done the event loop exits on its own — no stop token involved —
  // which is what lets the CLI exit 0 after a SIGTERM drain.
  client.send_line(R"({"type":"cancel","id":"x"})");
  ASSERT_TRUE(client.read_until("cancelled").has_value());
  for (int i = 0; i < 600 && !ts.done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(ts.done.load());
}

#endif  // sockets

// ---- merge ------------------------------------------------------------------

/// Null out every wall-clock-derived field so reports from different runs
/// compare byte-for-byte on everything deterministic.
Json normalize_walltimes(Json report) {
  report.set("wall_seconds", nullptr);
  report.set("total_job_seconds", nullptr);
  report.set("speedup", nullptr);
  Json jobs = Json::array();
  for (Json job : report.at("jobs").as_array()) {
    job.set("seconds", nullptr);
    if (job.find("stage1_seconds")) {
      job.set("stage1_seconds", nullptr);
      job.set("stage2_seconds", nullptr);
    }
    jobs.push_back(job);
  }
  report.set("jobs", jobs);
  return report;
}

std::vector<runtime::BatchJob> sweep_jobs(int count) {
  std::vector<runtime::BatchJob> jobs;
  for (int i = 0; i < count; ++i) {
    runtime::BatchJob job;
    job.name = "point" + std::to_string(i);
    job.netlist = netlist::generate_circuit(tiny_spec(1));
    job.options = fast_options();
    job.options.bound_factors.noise = 0.10 + 0.02 * i;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(Merge, TwoDisjointShardsEqualTheUnshardedReport) {
  runtime::BatchOptions options;
  options.jobs = 1;
  auto unsharded = runtime::run_batch(sweep_jobs(5), options);
  const Json full = runtime::batch_json(unsharded);

  // Shard k runs global indices ≡ k (mod 2), exactly like `--shard k/2`.
  std::vector<Json> shard_reports;
  for (int k = 0; k < 2; ++k) {
    auto all = sweep_jobs(5);
    std::vector<runtime::BatchJob> part;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (i % 2 == static_cast<std::size_t>(k)) part.push_back(std::move(all[i]));
    }
    auto shard = runtime::run_batch(std::move(part), options);
    shard.shard_index = k;
    shard.shard_count = 2;
    shard_reports.push_back(runtime::batch_json(shard));
  }

  const Json merged = runtime::merge_batch_reports(shard_reports);
  EXPECT_EQ(merged.find("shard"), nullptr) << "merged reports are unsharded";
  EXPECT_EQ(normalize_walltimes(merged).dump(),
            normalize_walltimes(full).dump());
}

TEST(Merge, RejectsOutOfRangeShardFields) {
  // Hand-edited/corrupt shard fields must reject readably, not cast
  // undefined doubles to size_t.
  Json bad = Json::parse(
      R"({"schema":"lrsizer-batch-v1","shard":{"index":-1,"count":2},"jobs":[]})");
  EXPECT_THROW(runtime::merge_batch_reports({bad, bad}), std::invalid_argument);
  Json huge = Json::parse(
      R"({"schema":"lrsizer-batch-v1","shard":{"index":0,"count":1e18},"jobs":[]})");
  EXPECT_THROW(runtime::merge_batch_reports({huge}), std::invalid_argument);
}

TEST(Merge, RejectsInconsistentShardFamilies) {
  runtime::BatchOptions options;
  options.jobs = 1;
  auto batch = runtime::run_batch(sweep_jobs(2), options);
  const Json unsharded = runtime::batch_json(batch);
  batch.shard_index = 0;
  batch.shard_count = 2;
  const Json shard0 = runtime::batch_json(batch);
  batch.shard_index = 1;
  const Json shard1 = runtime::batch_json(batch);

  EXPECT_THROW(runtime::merge_batch_reports({}), std::invalid_argument);
  // Unannotated report.
  EXPECT_THROW(runtime::merge_batch_reports({unsharded, shard1}),
               std::invalid_argument);
  // Duplicate index.
  EXPECT_THROW(runtime::merge_batch_reports({shard0, shard0}),
               std::invalid_argument);
  // Wrong family size (count says 2, one given).
  EXPECT_THROW(runtime::merge_batch_reports({shard0}), std::invalid_argument);
  // Not a batch report at all.
  Json bogus = Json::object();
  bogus.set("schema", "something-else");
  EXPECT_THROW(runtime::merge_batch_reports({bogus, shard1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lrsizer
