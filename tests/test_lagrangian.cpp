// Lagrangian evaluation and duality properties.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lagrangian.hpp"
#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

struct Harness {
  Fig1Circuit f = Fig1Circuit::make();
  layout::CouplingSet coupling;
  core::Bounds bounds;
  core::MultiplierState multipliers;
  std::vector<double> mu;

  Harness() : coupling(f.make_coupling()), multipliers(f.circuit) {
    f.circuit.set_uniform_size(1.0);
    core::BoundFactors factors;
    factors.delay = 1.1;
    factors.power = 0.5;
    factors.noise = 0.5;
    bounds = core::derive_bounds(f.circuit, coupling, f.circuit.sizes(), kMode,
                                 factors);
    multipliers.init_default(f.circuit);
    const double scale =
        timing::total_area(f.circuit, f.circuit.sizes()) / bounds.delay_s;
    for (double& l : multipliers.lambda) l *= scale;
    multipliers.compute_mu(f.circuit, mu);
  }

  double value(const std::vector<double>& x, double beta = 0.0,
               const core::NoiseMultipliers& gamma = 0.0) const {
    return core::lagrangian_value(f.circuit, coupling, x, mu,
                                  multipliers.sink_mu(f.circuit), beta, gamma,
                                  bounds, kMode);
  }
};

TEST(Lagrangian, ReducesToAreaPlusWeightedDelayAtZeroBetaGamma) {
  Harness s;
  const auto& x = s.f.circuit.sizes();
  // Compute the expected value by hand: Σαx + Σ μ_i D_i − μ_sink·A0.
  timing::LoadAnalysis loads;
  timing::compute_loads(s.f.circuit, s.coupling, x, kMode, loads);
  double expected = timing::total_area(s.f.circuit, x);
  for (netlist::NodeId v = 1; v < s.f.circuit.sink(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    expected += s.mu[i] * s.f.circuit.resistance(v, x[i]) * loads.cap_delay[i];
  }
  expected -= s.multipliers.sink_mu(s.f.circuit) * s.bounds.delay_s;
  EXPECT_NEAR(s.value(x), expected, 1e-9 * std::abs(expected));
}

TEST(Lagrangian, BetaTermIsLinearInBeta) {
  Harness s;
  const auto& x = s.f.circuit.sizes();
  const double cap_slack = timing::total_cap(s.f.circuit, x) - s.bounds.cap_f;
  const double l0 = s.value(x, 0.0);
  const double l1 = s.value(x, 1e9);
  EXPECT_NEAR(l1 - l0, 1e9 * cap_slack, 1e-6 * std::abs(l1 - l0) + 1e-12);
}

TEST(Lagrangian, GammaTermIsLinearInGamma) {
  Harness s;
  const auto& x = s.f.circuit.sizes();
  const double noise_slack = s.coupling.noise_linear(x) - s.bounds.noise_f;
  const double l0 = s.value(x);
  const double l1 = s.value(x, 0.0, 2e18);
  EXPECT_NEAR(l1 - l0, 2e18 * noise_slack, 1e-6 * std::abs(l1 - l0) + 1e-12);
}

TEST(Lagrangian, PerNetTermsMatchManualSum) {
  Harness s;
  s.bounds.per_net_noise_f.assign(
      static_cast<std::size_t>(s.f.circuit.num_nodes()), 0.0);
  std::vector<double> gamma_net(
      static_cast<std::size_t>(s.f.circuit.num_nodes()), 0.0);
  double expected_extra = 0.0;
  const auto& x = s.f.circuit.sizes();
  for (netlist::NodeId v = s.f.circuit.first_component();
       v < s.f.circuit.end_component(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (s.coupling.owned_pairs(v).empty()) continue;
    s.bounds.per_net_noise_f[i] = 0.5 * s.coupling.owned_noise_linear(v, x);
    gamma_net[i] = 1e17;
    expected_extra +=
        1e17 * (s.coupling.owned_noise_linear(v, x) - s.bounds.per_net_noise_f[i]);
  }
  const double l0 = s.value(x);
  const double l1 = s.value(x, 0.0, core::NoiseMultipliers(0.0, &gamma_net));
  EXPECT_NEAR(l1 - l0, expected_extra, 1e-6 * std::abs(expected_extra) + 1e-12);
}

TEST(Lagrangian, WeakDualityAgainstRandomFeasiblePoints) {
  // D(λ,β,γ) = min_x L ≤ area of any feasible x. Use the LRS minimizer as
  // min_x L, then compare with random points filtered for feasibility.
  Harness s;
  auto x_star = s.f.circuit.sizes();
  core::LrsWorkspace ws;
  core::LrsOptions options;
  options.tol = 1e-9;
  options.max_passes = 500;
  core::run_lrs(s.f.circuit, s.coupling, s.mu, 0.0, 0.0, options, x_star, ws);
  const double dual = s.value(x_star);

  util::Rng rng(31);
  int feasible_found = 0;
  for (int trial = 0; trial < 500 && feasible_found < 25; ++trial) {
    auto x = s.f.circuit.sizes();
    for (netlist::NodeId v = s.f.circuit.first_component();
         v < s.f.circuit.end_component(); ++v) {
      x[static_cast<std::size_t>(v)] =
          std::exp(rng.uniform(std::log(0.1), std::log(4.0)));
    }
    const auto m = timing::compute_metrics(s.f.circuit, s.coupling, x, kMode);
    if (m.delay_s > s.bounds.delay_s || m.cap_f > s.bounds.cap_f ||
        m.noise_f > s.bounds.noise_f) {
      continue;
    }
    ++feasible_found;
    EXPECT_LE(dual, m.area_um2 * (1.0 + 1e-9))
        << "weak duality violated at trial " << trial;
  }
  ASSERT_GT(feasible_found, 0) << "sampler found no feasible points";
}

TEST(Lagrangian, DualIncreasesWhenConstraintTermsAreActive) {
  // With a violated power bound, raising β raises L at fixed x.
  Harness s;
  auto x = s.f.circuit.sizes();  // unit sizes: cap > P0 = 0.5 cap_init? no —
  // cap(init) vs bound 0.5 cap(init): violated by 2x.
  EXPECT_GT(timing::total_cap(s.f.circuit, x), s.bounds.cap_f);
  EXPECT_LT(s.value(x, 0.0), s.value(x, 1e6));
}

}  // namespace
