// LRS subroutine: Theorem 5 stationarity, global optimality of the
// subproblem, and behavioral properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/lagrangian.hpp"
#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "test_helpers.hpp"
#include "timing/loads.hpp"
#include "timing/upstream.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

core::Bounds loose_bounds() {
  core::Bounds b;
  b.delay_s = 1.0;   // constants only shift L; any positive value works here
  b.cap_f = 1.0;
  b.noise_f = 1.0;
  return b;
}

/// μ vector from a KCL-consistent multiplier state scaled to `scale`.
std::vector<double> make_mu(const netlist::Circuit& circuit, double scale) {
  core::MultiplierState m(circuit);
  m.init_default(circuit);
  std::vector<double> mu;
  m.compute_mu(circuit, mu);
  for (double& v : mu) v *= scale;
  return mu;
}

TEST(Lrs, ZeroMuCollapsesToLowerBounds) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  std::vector<double> mu(static_cast<std::size_t>(f.circuit.num_nodes()), 0.0);
  auto x = f.circuit.sizes();
  core::LrsWorkspace ws;
  core::run_lrs(f.circuit, coupling, mu, 0.0, 0.0, core::LrsOptions{}, x, ws);
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(v)], f.circuit.lower_bound(v));
  }
}

TEST(Lrs, ConvergesToFixpoint) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  const auto mu = make_mu(f.circuit, 1e13);
  auto x = f.circuit.sizes();
  core::LrsWorkspace ws;
  const auto stats =
      core::run_lrs(f.circuit, coupling, mu, 0.0, 0.0, core::LrsOptions{}, x, ws);
  EXPECT_LT(stats.max_rel_change, 1e-4);
  EXPECT_LT(stats.passes, 100);
}

TEST(Lrs, FixpointSatisfiesTheorem5) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  const auto mu = make_mu(f.circuit, 1e13);
  auto x = f.circuit.sizes();
  core::LrsWorkspace ws;
  core::LrsOptions options;
  options.tol = 1e-9;
  options.max_passes = 500;
  core::run_lrs(f.circuit, coupling, mu, 1e10, 1e10, options, x, ws);

  timing::LoadAnalysis loads;
  timing::compute_loads(f.circuit, coupling, x, options.mode, loads);
  std::vector<double> r_up;
  timing::compute_weighted_upstream(f.circuit, x, mu, r_up);
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    const double opt = core::optimal_resize(f.circuit, coupling, mu, 1e10, 1e10, x,
                                            loads, r_up, v);
    const double target =
        std::clamp(opt, f.circuit.lower_bound(v), f.circuit.upper_bound(v));
    EXPECT_NEAR(x[static_cast<std::size_t>(v)], target,
                1e-5 * target)
        << "node " << v;
  }
}

TEST(Lrs, InteriorStationarityAgainstNumericGradient) {
  // Without coupling, Theorem 5 is the exact stationarity condition of L:
  // the numeric gradient of lagrangian_value at the LRS solution must
  // vanish for every interior component.
  auto f = Fig1Circuit::make();
  const auto coupling = test_support::no_coupling(f.circuit);
  const auto mu = make_mu(f.circuit, 1e13);
  const auto bounds = loose_bounds();

  auto x = f.circuit.sizes();
  core::LrsWorkspace ws;
  core::LrsOptions options;
  options.tol = 1e-10;
  options.max_passes = 1000;
  core::run_lrs(f.circuit, coupling, mu, 1e9, 0.0, options, x, ws);

  const auto mode = options.mode;
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    const auto i = static_cast<std::size_t>(v);
    const double lo = f.circuit.lower_bound(v);
    const double hi = f.circuit.upper_bound(v);
    if (x[i] < lo * 1.001 || x[i] > hi * 0.999) continue;  // boundary: skip
    const double h = 1e-5 * x[i];
    auto xp = x;
    xp[i] += h;
    auto xm = x;
    xm[i] -= h;
    const double lp = core::lagrangian_value(f.circuit, coupling, xp, mu, 1.0, 1e9,
                                             0.0, bounds, mode);
    const double lm = core::lagrangian_value(f.circuit, coupling, xm, mu, 1.0, 1e9,
                                             0.0, bounds, mode);
    const double l0 = core::lagrangian_value(f.circuit, coupling, x, mu, 1.0, 1e9,
                                             0.0, bounds, mode);
    EXPECT_LT(std::abs(lp - lm) / (2.0 * h), 1e-4 * std::abs(l0) / x[i])
        << "gradient not ~0 at node " << v;
  }
}

TEST(Lrs, GlobalMinimumOfSubproblem) {
  // The subproblem is convex: no random point may beat the LRS solution.
  auto f = Fig1Circuit::make();
  const auto coupling = test_support::no_coupling(f.circuit);
  const auto mu = make_mu(f.circuit, 1e13);
  const auto bounds = loose_bounds();

  auto x = f.circuit.sizes();
  core::LrsWorkspace ws;
  core::LrsOptions options;
  options.tol = 1e-9;
  options.max_passes = 500;
  core::run_lrs(f.circuit, coupling, mu, 1e9, 0.0, options, x, ws);
  const double l_opt = core::lagrangian_value(f.circuit, coupling, x, mu, 1.0, 1e9,
                                              0.0, bounds, options.mode);

  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    auto xr = x;
    for (netlist::NodeId v = f.circuit.first_component();
         v < f.circuit.end_component(); ++v) {
      xr[static_cast<std::size_t>(v)] =
          std::exp(rng.uniform(std::log(0.1), std::log(10.0)));
    }
    const double lr = core::lagrangian_value(f.circuit, coupling, xr, mu, 1.0, 1e9,
                                             0.0, bounds, options.mode);
    EXPECT_GE(lr, l_opt - 1e-9 * std::abs(l_opt));
  }
}

TEST(Lrs, WarmStartReachesSameFixpoint) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  const auto mu = make_mu(f.circuit, 1e13);
  core::LrsWorkspace ws;

  core::LrsOptions cold;
  cold.tol = 1e-9;
  cold.max_passes = 500;
  auto x_cold = f.circuit.sizes();
  core::run_lrs(f.circuit, coupling, mu, 0.0, 0.0, cold, x_cold, ws);

  core::LrsOptions warm = cold;
  warm.warm_start = true;
  auto x_warm = x_cold;
  for (auto& v : x_warm) v *= 1.5;  // perturb, then re-solve warm
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    auto& xv = x_warm[static_cast<std::size_t>(v)];
    xv = std::clamp(xv, f.circuit.lower_bound(v), f.circuit.upper_bound(v));
  }
  core::run_lrs(f.circuit, coupling, mu, 0.0, 0.0, warm, x_warm, ws);

  for (std::size_t i = 0; i < x_cold.size(); ++i) {
    EXPECT_NEAR(x_warm[i], x_cold[i], 1e-4 * std::max(1.0, x_cold[i]));
  }
}

TEST(Lrs, HigherMuGrowsSizes) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  core::LrsWorkspace ws;

  auto x_small = f.circuit.sizes();
  core::run_lrs(f.circuit, coupling, make_mu(f.circuit, 1e12), 0.0, 0.0,
                core::LrsOptions{}, x_small, ws);
  auto x_large = f.circuit.sizes();
  core::run_lrs(f.circuit, coupling, make_mu(f.circuit, 1e14), 0.0, 0.0,
                core::LrsOptions{}, x_large, ws);

  double sum_small = 0.0;
  double sum_large = 0.0;
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    sum_small += x_small[static_cast<std::size_t>(v)];
    sum_large += x_large[static_cast<std::size_t>(v)];
  }
  EXPECT_GT(sum_large, sum_small);
}

TEST(Lrs, GammaShrinksCoupledWires) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  const auto mu = make_mu(f.circuit, 1e13);
  core::LrsWorkspace ws;

  auto x_free = f.circuit.sizes();
  core::run_lrs(f.circuit, coupling, mu, 0.0, 0.0, core::LrsOptions{}, x_free, ws);
  auto x_taxed = f.circuit.sizes();
  core::run_lrs(f.circuit, coupling, mu, 0.0, 1e18, core::LrsOptions{}, x_taxed, ws);

  double wires_free = 0.0;
  double wires_taxed = 0.0;
  for (netlist::NodeId w : f.wires) {
    wires_free += x_free[static_cast<std::size_t>(w)];
    wires_taxed += x_taxed[static_cast<std::size_t>(w)];
  }
  EXPECT_LT(wires_taxed, wires_free);
}

}  // namespace
