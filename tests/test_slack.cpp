// Required times and slacks: consistency with arrivals and path structure.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "timing/arrival.hpp"
#include "timing/loads.hpp"
#include "timing/slack.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

struct Analyzed {
  timing::LoadAnalysis loads;
  timing::ArrivalAnalysis arrivals;
  timing::SlackAnalysis slacks;
};

Analyzed analyze(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 double bound) {
  Analyzed a;
  timing::compute_loads(circuit, coupling, circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, a.loads);
  timing::compute_arrivals(circuit, circuit.sizes(), a.loads, a.arrivals);
  timing::compute_slacks(circuit, a.arrivals, bound, a.slacks);
  return a;
}

TEST(Slack, ChainSlackEqualsBoundMinusDelayEverywhere) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  // On a single path, every node's slack equals bound - critical delay.
  const auto probe = analyze(c.circuit, coupling, 1.0);
  const double bound = 1.25 * probe.arrivals.critical_delay;
  const auto a = analyze(c.circuit, coupling, bound);
  const double expected = bound - a.arrivals.critical_delay;
  for (netlist::NodeId v = 1; v < c.circuit.sink(); ++v) {
    EXPECT_NEAR(a.slacks.slack[static_cast<std::size_t>(v)], expected,
                1e-12 * bound);
  }
  EXPECT_NEAR(a.slacks.worst_slack, expected, 1e-12 * bound);
}

TEST(Slack, CriticalPathHasWorstSlack) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto probe = analyze(f.circuit, coupling, 1.0);
  const double bound = probe.arrivals.critical_delay;  // tight bound
  const auto a = analyze(f.circuit, coupling, bound);

  // Worst slack is 0 at a tight bound (within roundoff).
  EXPECT_NEAR(a.slacks.worst_slack, 0.0, 1e-12 * bound);
  // Every critical-path node carries the worst slack.
  for (netlist::NodeId v : timing::critical_path(f.circuit, a.arrivals)) {
    EXPECT_NEAR(a.slacks.slack[static_cast<std::size_t>(v)], a.slacks.worst_slack,
                1e-12 * bound);
  }
}

TEST(Slack, NegativeWhenBoundIsViolated) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto probe = analyze(f.circuit, coupling, 1.0);
  const double bound = 0.5 * probe.arrivals.critical_delay;
  const auto a = analyze(f.circuit, coupling, bound);
  EXPECT_LT(a.slacks.worst_slack, 0.0);
  EXPECT_NEAR(a.slacks.worst_slack, bound - probe.arrivals.critical_delay,
              1e-12 * bound);
}

TEST(Slack, SlackIsRequiredMinusArrival) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(2.0);
  const auto coupling = f.make_coupling();
  const auto probe = analyze(f.circuit, coupling, 1.0);
  const auto a = analyze(f.circuit, coupling, 1.1 * probe.arrivals.critical_delay);
  for (netlist::NodeId v = 1; v < f.circuit.sink(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    EXPECT_DOUBLE_EQ(a.slacks.slack[i], a.slacks.required[i] - a.arrivals.arrival[i]);
  }
}

TEST(Slack, RequiredTimesAreEdgeConsistent) {
  // req_j <= req_i - D_i for every edge (j, i): no consumer can demand later.
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto probe = analyze(f.circuit, coupling, 1.0);
  const auto a = analyze(f.circuit, coupling, probe.arrivals.critical_delay);
  for (netlist::NodeId v = 1; v < f.circuit.sink(); ++v) {
    for (netlist::NodeId j : f.circuit.inputs(v)) {
      if (j == f.circuit.source()) continue;
      EXPECT_LE(a.slacks.required[static_cast<std::size_t>(j)],
                a.slacks.required[static_cast<std::size_t>(v)] -
                    a.arrivals.delay[static_cast<std::size_t>(v)] + 1e-21);
    }
  }
}

TEST(Slack, CriticalityOrderStartsWithCriticalPath) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto probe = analyze(f.circuit, coupling, 1.0);
  const auto a = analyze(f.circuit, coupling, probe.arrivals.critical_delay);
  const auto order = timing::nodes_by_criticality(f.circuit, a.slacks);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(f.circuit.num_nodes() - 2));
  // Ascending slack.
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LE(a.slacks.slack[static_cast<std::size_t>(order[k - 1])],
              a.slacks.slack[static_cast<std::size_t>(order[k])] + 1e-21);
  }
}

}  // namespace
