// Physical elaboration: wire counts, routing topology, mapping tables.
#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"

namespace {

using namespace lrsizer;

netlist::LogicNetlist tiny() {
  return netlist::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\ny = NOT(m)\n");
}

TEST(Elaborator, TinyNetlistShape) {
  const auto logic = tiny();
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, {});
  // 2 drivers, 2 gates; wires: a->nand, b->nand, m->not, y->load = 4.
  EXPECT_EQ(elab.circuit.num_drivers(), 2);
  EXPECT_EQ(elab.circuit.num_gates(), 2);
  EXPECT_EQ(elab.circuit.num_wires(), 4);
  EXPECT_EQ(netlist::count_wires(logic, {}), 4);
}

TEST(Elaborator, CountWiresMatchesElaboration) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 120;
  spec.num_wires = 260;
  spec.num_inputs = 14;
  spec.num_outputs = 9;
  const auto logic = netlist::generate_circuit(spec);
  for (int star = 2; star <= 12; star += 5) {
    netlist::ElabOptions options;
    options.max_star_fanout = star;
    const auto elab = netlist::elaborate(logic, netlist::TechParams{}, options);
    EXPECT_EQ(static_cast<std::int64_t>(elab.circuit.num_wires()),
              netlist::count_wires(logic, options))
        << "star=" << star;
  }
}

TEST(Elaborator, StarRoutingHitsWireTargetExactly) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 120;
  spec.num_wires = 260;
  spec.num_inputs = 14;
  spec.num_outputs = 9;
  const auto logic = netlist::generate_circuit(spec);
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, {});
  // Default options use pure star routing for fanout <= 8; generator caps
  // fanin at 5 but fanout is unbounded — high-fanout nets may add trunks.
  // The generator accounts for that; the target must hold exactly when no
  // net exceeds the star threshold, and within the trunk allowance always.
  EXPECT_EQ(elab.circuit.num_wires(), netlist::count_wires(logic, {}));
}

TEST(Elaborator, TrunkTreeForHighFanout) {
  // One input driving 20 NOT gates -> fanout 20 > star threshold 8.
  std::string text = "INPUT(a)\n";
  for (int i = 0; i < 20; ++i) {
    text += "OUTPUT(y" + std::to_string(i) + ")\n";
  }
  for (int i = 0; i < 20; ++i) {
    text += "y" + std::to_string(i) + " = NOT(a)\n";
  }
  const auto logic = netlist::parse_bench_string(text);
  netlist::ElabOptions options;
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, options);
  // Net a: 20 pins -> trunks split recursively; every y_i net: 1 pin.
  // count_wires is the oracle; elaborate must agree (asserted internally
  // too) and produce wire->wire edges (a trunk drives leaf wires).
  EXPECT_EQ(static_cast<std::int64_t>(elab.circuit.num_wires()),
            netlist::count_wires(logic, options));
  bool wire_drives_wire = false;
  const auto& c = elab.circuit;
  for (netlist::NodeId v = c.first_component(); v < c.end_component(); ++v) {
    if (!c.is_wire(v)) continue;
    for (netlist::NodeId o : c.outputs(v)) {
      if (o != c.sink() && c.is_wire(o)) wire_drives_wire = true;
    }
  }
  EXPECT_TRUE(wire_drives_wire);
}

TEST(Elaborator, SegmentsPerWireMultipliesCount) {
  const auto logic = tiny();
  netlist::ElabOptions options;
  options.segments_per_wire = 3;
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, options);
  EXPECT_EQ(elab.circuit.num_wires(), 12);  // 4 sink pins × 3 segments
}

TEST(Elaborator, NetOfNodeMapsWiresToTheirNet) {
  const auto logic = tiny();
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, {});
  const auto& c = elab.circuit;
  // Every wire maps to a net whose driver is a PI or gate; gate nodes map
  // to their own index.
  for (netlist::NodeId v = c.first_component(); v < c.end_component(); ++v) {
    const std::int32_t net = elab.net_of_node[static_cast<std::size_t>(v)];
    ASSERT_GE(net, 0);
    ASSERT_LT(net, logic.num_gates_logic());
  }
  for (std::int32_t g = 0; g < logic.num_gates_logic(); ++g) {
    const netlist::NodeId v = elab.node_of_gate[static_cast<std::size_t>(g)];
    EXPECT_EQ(elab.net_of_node[static_cast<std::size_t>(v)], g);
    if (logic.gate(g).op == netlist::LogicOp::kInput) {
      EXPECT_TRUE(c.is_driver(v));
    } else {
      EXPECT_TRUE(c.is_gate(v));
    }
  }
}

TEST(Elaborator, WireLengthsWithinConfiguredRange) {
  const auto logic = tiny();
  netlist::ElabOptions options;
  options.min_wire_length = 50.0;
  options.max_wire_length = 60.0;
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, options);
  const auto& c = elab.circuit;
  for (netlist::NodeId v = c.first_component(); v < c.end_component(); ++v) {
    if (!c.is_wire(v)) continue;
    EXPECT_GE(c.wire_length(v), 50.0);
    EXPECT_LT(c.wire_length(v), 60.0);
  }
}

TEST(Elaborator, DeterministicForSameSeed) {
  const auto logic = tiny();
  const auto a = netlist::elaborate(logic, netlist::TechParams{}, {});
  const auto b = netlist::elaborate(logic, netlist::TechParams{}, {});
  ASSERT_EQ(a.circuit.num_nodes(), b.circuit.num_nodes());
  for (netlist::NodeId v = 0; v < a.circuit.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(a.circuit.wire_length(v), b.circuit.wire_length(v));
  }
}

TEST(Elaborator, PrimaryOutputWiresCarryLoad) {
  const auto logic = tiny();
  const netlist::TechParams tech;
  const auto elab = netlist::elaborate(logic, tech, {});
  const auto& c = elab.circuit;
  double total_load = 0.0;
  for (netlist::NodeId v = c.first_component(); v < c.end_component(); ++v) {
    total_load += c.pin_load(v);
  }
  EXPECT_DOUBLE_EQ(total_load, tech.output_load);  // one PO
}

TEST(Elaborator, GeneratedCircuitValidates) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 300;
  spec.num_wires = 640;
  spec.num_inputs = 30;
  spec.num_outputs = 20;
  spec.depth = 20;
  const auto logic = netlist::generate_circuit(spec);
  const auto elab = netlist::elaborate(logic, netlist::TechParams{}, {});
  elab.circuit.validate();  // aborts on violation
  EXPECT_EQ(elab.circuit.num_gates(), 300);
  EXPECT_EQ(elab.circuit.num_wires(), 640);
}

}  // namespace
