// Shared fixtures for the test suite: small hand-built circuits with known
// structure, used across the timing/core tests.
#pragma once

#include <vector>

#include "layout/neighbors.hpp"
#include "netlist/builder.hpp"
#include "netlist/circuit.hpp"

namespace lrsizer::test_support {

/// driver -> wire -> gate -> wire(PO). The smallest end-to-end chain:
/// exercises every node kind once.
struct ChainCircuit {
  netlist::Circuit circuit;
  netlist::NodeId driver, wire_in, gate, wire_out;

  static ChainCircuit make(const netlist::TechParams& tech = netlist::TechParams{}) {
    netlist::CircuitBuilder b(tech);
    const auto d = b.add_driver();
    const auto w1 = b.add_wire(200.0);
    const auto g = b.add_gate();
    const auto w2 = b.add_wire(300.0);
    b.connect(d, w1);
    b.connect(w1, g);
    b.connect(g, w2);
    b.mark_primary_output(w2);
    ChainCircuit c{b.finalize(), 0, 0, 0, 0};
    c.driver = b.node_of(d);
    c.wire_in = b.node_of(w1);
    c.gate = b.node_of(g);
    c.wire_out = b.node_of(w2);
    return c;
  }
};

/// The paper's Figure 1 circuit: 3 drivers, 3 gates, 7 wires, 1 load.
struct Fig1Circuit {
  netlist::Circuit circuit;
  std::vector<netlist::NodeId> drivers;  // d1..d3
  std::vector<netlist::NodeId> wires;    // w1..w7
  std::vector<netlist::NodeId> gates;    // gA..gC

  static Fig1Circuit make(const netlist::TechParams& tech = netlist::TechParams{}) {
    netlist::CircuitBuilder b(tech);
    const auto d1 = b.add_driver();
    const auto d2 = b.add_driver();
    const auto d3 = b.add_driver();
    const auto w1 = b.add_wire(300.0);
    const auto w2 = b.add_wire(250.0);
    const auto w3 = b.add_wire(400.0);
    const auto ga = b.add_gate();
    const auto w4 = b.add_wire(350.0);
    const auto w5 = b.add_wire(200.0);
    const auto gb = b.add_gate();
    const auto w6 = b.add_wire(300.0);
    const auto gc = b.add_gate();
    const auto w7 = b.add_wire(450.0);
    b.connect(d1, w1);
    b.connect(d2, w2);
    b.connect(d3, w3);
    b.connect(w1, ga);
    b.connect(w2, ga);
    b.connect(ga, w4);
    b.connect(ga, w5);
    b.connect(w3, gb);
    b.connect(w4, gb);
    b.connect(gb, w6);
    b.connect(w5, gc);
    b.connect(w6, gc);
    b.connect(gc, w7);
    b.mark_primary_output(w7);

    Fig1Circuit c{b.finalize(), {}, {}, {}};
    c.drivers = {b.node_of(d1), b.node_of(d2), b.node_of(d3)};
    c.wires = {b.node_of(w1), b.node_of(w2), b.node_of(w3), b.node_of(w4),
               b.node_of(w5), b.node_of(w6), b.node_of(w7)};
    c.gates = {b.node_of(ga), b.node_of(gb), b.node_of(gc)};
    return c;
  }

  /// Two channels like examples/quickstart: {w1,w2,w3} and {w4..w7}.
  layout::CouplingSet make_coupling(const layout::NeighborOptions& options =
                                        layout::NeighborOptions{}) const {
    const std::vector<std::vector<netlist::NodeId>> channels = {
        {wires[0], wires[1], wires[2]},
        {wires[3], wires[4], wires[5], wires[6]},
    };
    layout::NeighborOptions opt = options;
    opt.fold_miller = false;
    return layout::build_coupling_set(circuit, channels, opt);
  }
};

/// Empty coupling set (no adjacent wires) for a circuit.
inline layout::CouplingSet no_coupling(const netlist::Circuit& circuit) {
  return layout::CouplingSet(circuit.num_nodes(), {});
}

}  // namespace lrsizer::test_support
