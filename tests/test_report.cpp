// OGWS reporting helpers: CSV history export and the summary line.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::Fig1Circuit;

core::OgwsResult run_fig1() {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto bounds =
      core::derive_bounds(f.circuit, coupling, f.circuit.sizes(),
                          timing::CouplingLoadMode::kLocalOnly, core::BoundFactors{});
  return core::run_ogws(f.circuit, coupling, bounds);
}

TEST(Report, CsvHasHeaderAndOneRowPerIteration) {
  const auto result = run_fig1();
  std::ostringstream os;
  core::write_history_csv(result, os);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, result.history.size() + 1);
  EXPECT_EQ(csv.rfind("k,area_um2,", 0), 0u);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);  // first iteration row
}

TEST(Report, CsvIsNumericallyParseable) {
  const auto result = run_fig1();
  std::ostringstream os;
  core::write_history_csv(result, os);
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);  // first row
  double area = 0.0;
  int k = 0;
  ASSERT_EQ(std::sscanf(line.c_str(), "%d,%lf", &k, &area), 2);
  EXPECT_EQ(k, 1);
  EXPECT_NEAR(area, result.history.front().area, 1e-3 * area);
}

TEST(Report, SummaryMentionsConvergenceAndArea) {
  const auto result = run_fig1();
  const std::string s = core::summarize(result);
  EXPECT_NE(s.find(result.converged ? "converged" : "stopped"), std::string::npos);
  EXPECT_NE(s.find("area"), std::string::npos);
  EXPECT_NE(s.find("iterations"), std::string::npos);
}

}  // namespace
