// Channel assignment: level bucketing, width caps, determinism.
#include <gtest/gtest.h>

#include <set>

#include "layout/channels.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"

namespace {

using namespace lrsizer;

struct Fixture {
  netlist::LogicNetlist logic;
  netlist::ElabResult elab;

  static Fixture make(std::int32_t gates = 150, std::int32_t wires = 320,
                      std::uint64_t seed = 3) {
    netlist::GeneratorSpec spec;
    spec.num_gates = gates;
    spec.num_wires = wires;
    spec.num_inputs = 16;
    spec.num_outputs = 10;
    spec.depth = 10;
    spec.seed = seed;
    auto logic = netlist::generate_circuit(spec);
    auto elab = netlist::elaborate(logic, netlist::TechParams{}, spec.elab);
    return Fixture{std::move(logic), std::move(elab)};
  }
};

TEST(Channels, EveryWireInExactlyOneChannelOrDropped) {
  const auto f = Fixture::make();
  const auto assignment =
      layout::assign_channels(f.elab.circuit, f.elab.net_of_node, f.logic);
  std::set<netlist::NodeId> seen;
  for (const auto& ch : assignment.channels) {
    for (netlist::NodeId w : ch) {
      EXPECT_TRUE(f.elab.circuit.is_wire(w));
      EXPECT_TRUE(seen.insert(w).second) << "wire in two channels";
    }
  }
  // Single-track leftovers may be merged or dropped, but the vast majority
  // of wires must be covered.
  EXPECT_GT(static_cast<double>(seen.size()),
            0.9 * static_cast<double>(f.elab.circuit.num_wires()));
}

TEST(Channels, RespectsWidthCap) {
  const auto f = Fixture::make();
  layout::ChannelOptions options;
  options.max_channel_width = 8;
  const auto assignment = layout::assign_channels(f.elab.circuit, f.elab.net_of_node,
                                                  f.logic, options);
  for (const auto& ch : assignment.channels) {
    EXPECT_LE(ch.size(), 9u);  // cap + possibly one merged leftover
    EXPECT_GE(ch.size(), 2u);  // no single-track channels
  }
}

TEST(Channels, WiresInAChannelShareALevelBand) {
  const auto f = Fixture::make();
  const auto assignment =
      layout::assign_channels(f.elab.circuit, f.elab.net_of_node, f.logic);
  for (const auto& ch : assignment.channels) {
    std::set<std::int32_t> levels;
    for (netlist::NodeId w : ch) {
      levels.insert(
          f.logic.level(f.elab.net_of_node[static_cast<std::size_t>(w)]));
    }
    // A channel may absorb one merged leftover from the next level split,
    // but it never spans more than two adjacent levels.
    EXPECT_LE(levels.size(), 2u);
  }
}

TEST(Channels, DeterministicForSeed) {
  const auto f = Fixture::make();
  layout::ChannelOptions options;
  options.seed = 77;
  const auto a = layout::assign_channels(f.elab.circuit, f.elab.net_of_node, f.logic,
                                         options);
  const auto b = layout::assign_channels(f.elab.circuit, f.elab.net_of_node, f.logic,
                                         options);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    EXPECT_EQ(a.channels[i], b.channels[i]);
  }
}

TEST(Channels, SeedShufflesPlacement) {
  const auto f = Fixture::make();
  layout::ChannelOptions a_opt;
  a_opt.seed = 1;
  layout::ChannelOptions b_opt;
  b_opt.seed = 2;
  const auto a = layout::assign_channels(f.elab.circuit, f.elab.net_of_node, f.logic,
                                         a_opt);
  const auto b = layout::assign_channels(f.elab.circuit, f.elab.net_of_node, f.logic,
                                         b_opt);
  bool any_diff = a.channels.size() != b.channels.size();
  for (std::size_t i = 0; !any_diff && i < a.channels.size(); ++i) {
    any_diff = a.channels[i] != b.channels[i];
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
