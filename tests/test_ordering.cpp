// WOSS (paper Figure 7) vs the exhaustive optimum and random baselines.
#include <gtest/gtest.h>

#include <algorithm>

#include "layout/ordering.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;

layout::DenseWeights random_weights(std::int32_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      const double v = rng.uniform(0.0, 2.0);  // Miller-weight range
      w[static_cast<std::size_t>(a * n + b)] = v;
      w[static_cast<std::size_t>(b * n + a)] = v;
    }
  }
  return layout::DenseWeights(n, std::move(w));
}

TEST(Ordering, CostOfKnownSequence) {
  // 3 wires: w(0,1)=1, w(0,2)=5, w(1,2)=2.
  layout::DenseWeights w(3, {0, 1, 5, 1, 0, 2, 5, 2, 0});
  EXPECT_DOUBLE_EQ(layout::ordering_cost(w, {0, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(layout::ordering_cost(w, {1, 0, 2}), 6.0);
  EXPECT_DOUBLE_EQ(layout::ordering_cost(w, {0, 2, 1}), 7.0);
}

TEST(Ordering, WossIsAPermutation) {
  const auto w = random_weights(12, 5);
  const auto order = layout::woss_ordering(w);
  ASSERT_EQ(order.size(), 12u);
  std::vector<bool> seen(12, false);
  for (std::int32_t v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 12);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Ordering, WossStartsWithGlobalMinimumEdge) {
  // Figure 7, step A1: the chain is seeded with the min-weight edge.
  layout::DenseWeights w(4, {0, 9, 9, 9,
                             9, 0, 1, 9,
                             9, 1, 0, 9,
                             9, 9, 9, 0});
  const auto order = layout::woss_ordering(w);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Ordering, WossFindsObviousChain) {
  // Weights encode a path 0-1-2-3 with cheap links, everything else dear.
  layout::DenseWeights w(4, {0.0, 0.1, 5.0, 5.0,
                             0.1, 0.0, 0.2, 5.0,
                             5.0, 0.2, 0.0, 0.3,
                             5.0, 5.0, 0.3, 0.0});
  const auto order = layout::woss_ordering(w);
  EXPECT_NEAR(layout::ordering_cost(w, order), 0.6, 1e-12);
}

TEST(Ordering, BruteForceIsOptimalOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto w = random_weights(7, seed);
    const auto best = layout::optimal_ordering_bruteforce(w);
    const double best_cost = layout::ordering_cost(w, best);
    // No random ordering may beat it.
    for (std::uint64_t s2 = 0; s2 < 50; ++s2) {
      const auto rnd = layout::random_ordering(7, s2);
      EXPECT_GE(layout::ordering_cost(w, rnd), best_cost - 1e-12);
    }
  }
}

TEST(Ordering, WossNeverWorseThanOptimalAndOftenClose) {
  double woss_total = 0.0;
  double opt_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto w = random_weights(9, seed);
    const double woss_cost = layout::ordering_cost(w, layout::woss_ordering(w));
    const double opt_cost =
        layout::ordering_cost(w, layout::optimal_ordering_bruteforce(w));
    EXPECT_GE(woss_cost, opt_cost - 1e-12);  // optimum is a lower bound
    woss_total += woss_cost;
    opt_total += opt_cost;
  }
  // The greedy heuristic should be within 2x of optimal on these sizes.
  EXPECT_LT(woss_total, 2.0 * opt_total);
}

TEST(Ordering, WossBeatsRandomOnAverage) {
  double woss_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto w = random_weights(16, seed);
    woss_total += layout::ordering_cost(w, layout::woss_ordering(w));
    random_total += layout::ordering_cost(w, layout::random_ordering(16, seed + 100));
  }
  EXPECT_LT(woss_total, random_total);
}

TEST(Ordering, EdgeCases) {
  const auto w0 = layout::DenseWeights(0, {});
  EXPECT_TRUE(layout::woss_ordering(w0).empty());
  const auto w1 = layout::DenseWeights(1, {0.0});
  EXPECT_EQ(layout::woss_ordering(w1), (std::vector<std::int32_t>{0}));
  EXPECT_EQ(layout::optimal_ordering_bruteforce(w1), (std::vector<std::int32_t>{0}));
  const auto w2 = layout::DenseWeights(2, {0.0, 1.0, 1.0, 0.0});
  EXPECT_EQ(layout::woss_ordering(w2).size(), 2u);
}

TEST(Ordering, RandomOrderingIsSeededPermutation) {
  const auto a = layout::random_ordering(20, 9);
  const auto b = layout::random_ordering(20, 9);
  const auto c = layout::random_ordering(20, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::vector<bool> seen(20, false);
  for (std::int32_t v : a) seen[static_cast<std::size_t>(v)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Ordering, HeldKarpMatchesExhaustiveOnTiny) {
  // Cross-check the DP against explicit enumeration for n = 5.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto w = random_weights(5, seed);
    const auto dp = layout::optimal_ordering_bruteforce(w);
    std::vector<std::int32_t> perm = {0, 1, 2, 3, 4};
    double best = 1e99;
    do {
      best = std::min(best, layout::ordering_cost(w, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(layout::ordering_cost(w, dp), best, 1e-12);
  }
}

}  // namespace
