// Load passes: hand-computed π-model values on the chain circuit, coupling
// attachment modes, C' exclusion rules.
#include <gtest/gtest.h>

#include "layout/neighbors.hpp"
#include "test_helpers.hpp"
#include "timing/loads.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

TEST(Loads, HandComputedChainAtUnitSizes) {
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);

  timing::LoadAnalysis loads;
  timing::compute_loads(c.circuit, coupling, c.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);

  // w2 (300 µm, PO with C_L): half-cap + load.
  const double c_w2 = tech.wire_cap_per_um * 300.0;
  const double f_w2 = tech.wire_fringe_per_um * 300.0;
  const double half_w2 = 0.5 * (c_w2 + f_w2);
  const auto i_w2 = static_cast<std::size_t>(c.wire_out);
  EXPECT_NEAR(loads.cap_delay[i_w2], half_w2 + tech.output_load, 1e-21);
  EXPECT_NEAR(loads.cap_prime[i_w2], 0.5 * f_w2 + tech.output_load, 1e-21);
  EXPECT_NEAR(loads.load_in[i_w2], c_w2 + f_w2 + tech.output_load, 1e-21);

  // gate: sees w2's full load; presents its input cap.
  const auto i_g = static_cast<std::size_t>(c.gate);
  EXPECT_NEAR(loads.cap_delay[i_g], loads.load_in[i_w2], 1e-21);
  EXPECT_NEAR(loads.cap_prime[i_g], loads.cap_delay[i_g], 1e-21);
  EXPECT_NEAR(loads.load_in[i_g], tech.gate_unit_cap, 1e-21);

  // w1 (200 µm): half-cap + gate input cap.
  const double c_w1 = tech.wire_cap_per_um * 200.0;
  const double f_w1 = tech.wire_fringe_per_um * 200.0;
  const auto i_w1 = static_cast<std::size_t>(c.wire_in);
  EXPECT_NEAR(loads.cap_delay[i_w1], 0.5 * (c_w1 + f_w1) + tech.gate_unit_cap, 1e-21);
  EXPECT_NEAR(loads.cap_prime[i_w1], 0.5 * f_w1 + tech.gate_unit_cap, 1e-21);

  // driver: sees w1's two halves + downstream.
  const auto i_d = static_cast<std::size_t>(c.driver);
  EXPECT_NEAR(loads.cap_delay[i_d], c_w1 + f_w1 + tech.gate_unit_cap, 1e-21);
}

TEST(Loads, GateIsolatesDownstreamStage) {
  // The driver's load must not contain anything beyond the gate's input cap
  // (the gate resistance isolates w2 and the output load).
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  timing::LoadAnalysis loads;
  timing::compute_loads(c.circuit, coupling, c.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  const auto i_d = static_cast<std::size_t>(c.driver);
  EXPECT_LT(loads.cap_delay[i_d], 6e-15);  // w1 caps + 0.16 fF, not 20 fF C_L
}

TEST(Loads, CapPrimeExcludesOwnSizeTerms) {
  // C'_i must not change when x_i changes (all x_i-proportional terms are
  // stripped); C_i must grow.
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  timing::LoadAnalysis base;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, base);

  const netlist::NodeId w = f.wires[3];  // coupled wire in channel 2
  auto x = f.circuit.sizes();
  x[static_cast<std::size_t>(w)] = 2.0;
  timing::LoadAnalysis bumped;
  timing::compute_loads(f.circuit, coupling, x,
                        timing::CouplingLoadMode::kLocalOnly, bumped);

  EXPECT_NEAR(bumped.cap_prime[static_cast<std::size_t>(w)],
              base.cap_prime[static_cast<std::size_t>(w)], 1e-24);
  EXPECT_GT(bumped.cap_delay[static_cast<std::size_t>(w)],
            base.cap_delay[static_cast<std::size_t>(w)]);
}

TEST(Loads, CouplingEntersVictimDelayCap) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto uncoupled = test_support::no_coupling(f.circuit);
  const auto coupled = f.make_coupling();

  timing::LoadAnalysis without;
  timing::compute_loads(f.circuit, uncoupled, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, without);
  timing::LoadAnalysis with;
  timing::compute_loads(f.circuit, coupled, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, with);

  const auto i = static_cast<std::size_t>(f.wires[1]);  // w2: two neighbors
  double expected_extra = 0.0;
  for (const auto& nb : coupled.neighbors(f.wires[1])) {
    expected_extra += nb.c_tilde + nb.c_hat * 2.0;  // x_i = x_j = 1
  }
  EXPECT_NEAR(with.cap_delay[i] - without.cap_delay[i], expected_extra, 1e-21);
}

TEST(Loads, LocalOnlyHidesCouplingFromUpstream) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();

  timing::LoadAnalysis local;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, local);
  timing::LoadAnalysis prop;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kPropagateUpstream, prop);

  // w1 couples to w2; its parent is driver d1. In local mode the driver's
  // load is coupling-free, in propagate mode it is strictly larger.
  const auto i_d1 = static_cast<std::size_t>(f.drivers[0]);
  EXPECT_GT(prop.cap_delay[i_d1], local.cap_delay[i_d1]);
  // The victim's own delay cap is identical in both modes.
  const auto i_w1 = static_cast<std::size_t>(f.wires[0]);
  EXPECT_NEAR(prop.cap_delay[i_w1], local.cap_delay[i_w1], 1e-24);
}

TEST(Loads, NeighborSizeRaisesVictimLoad) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  timing::LoadAnalysis base;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, base);

  auto x = f.circuit.sizes();
  x[static_cast<std::size_t>(f.wires[1])] = 4.0;  // fatten w2
  timing::LoadAnalysis bumped;
  timing::compute_loads(f.circuit, coupling, x,
                        timing::CouplingLoadMode::kLocalOnly, bumped);

  // w1's delay cap grows by ĉ_12 * Δx_2.
  const auto i_w1 = static_cast<std::size_t>(f.wires[0]);
  const auto nb = coupling.neighbors(f.wires[0]);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_NEAR(bumped.cap_delay[i_w1] - base.cap_delay[i_w1], nb[0].c_hat * 3.0,
              1e-21);
}

TEST(Loads, FanoutSumsChildLoads) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(f.circuit);
  timing::LoadAnalysis loads;
  timing::compute_loads(f.circuit, coupling, f.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  // gate A drives w4 and w5: its delay cap is the sum of both wire loads.
  const auto i = static_cast<std::size_t>(f.gates[0]);
  EXPECT_NEAR(loads.cap_delay[i],
              loads.load_in[static_cast<std::size_t>(f.wires[3])] +
                  loads.load_in[static_cast<std::size_t>(f.wires[4])],
              1e-21);
}

}  // namespace
