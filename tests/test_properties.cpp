// Parameterized property sweeps across seeds, circuit sizes and options:
// the invariants that must hold for *any* instance, not just the fixtures.
#include <gtest/gtest.h>

#include <cmath>

#include "core/flow.hpp"
#include "layout/ordering.hpp"
#include "netlist/generator.hpp"
#include "sim/patterns.hpp"
#include "sim/similarity.hpp"
#include "sim/simulator.hpp"
#include "timing/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;

// ---------------------------------------------------------------------------
// Flow invariants over random circuits.
// ---------------------------------------------------------------------------

struct FlowCase {
  std::int32_t gates;
  std::int32_t wires;
  std::int32_t inputs;
  std::int32_t outputs;
  std::int32_t depth;
  std::uint64_t seed;
};

class FlowProperty : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FlowProperty, ConstraintsAndImprovementHold) {
  const FlowCase& p = GetParam();
  netlist::GeneratorSpec spec;
  spec.num_gates = p.gates;
  spec.num_wires = p.wires;
  spec.num_inputs = p.inputs;
  spec.num_outputs = p.outputs;
  spec.depth = p.depth;
  spec.seed = p.seed;
  const auto logic = netlist::generate_circuit(spec);
  const auto flow = core::run_two_stage_flow(logic, {});

  // Structure matches the spec exactly.
  EXPECT_EQ(flow.circuit.num_gates(), p.gates);
  EXPECT_EQ(flow.circuit.num_wires(), p.wires);

  // Feasibility within the solver tolerance.
  EXPECT_LE(flow.final_metrics.delay_s, flow.bounds.delay_s * 1.03);
  EXPECT_LE(flow.final_metrics.cap_f, flow.bounds.cap_f * 1.03);
  EXPECT_LE(flow.final_metrics.noise_f, flow.bounds.noise_f * 1.03);

  // The optimizer never makes things worse than the starting point.
  EXPECT_LE(flow.final_metrics.area_um2, flow.init_metrics.area_um2);
  EXPECT_LE(flow.final_metrics.noise_f, flow.init_metrics.noise_f);

  // Sizes stay inside the box.
  for (netlist::NodeId v = flow.circuit.first_component();
       v < flow.circuit.end_component(); ++v) {
    EXPECT_GE(flow.circuit.size(v), flow.circuit.lower_bound(v) - 1e-12);
    EXPECT_LE(flow.circuit.size(v), flow.circuit.upper_bound(v) + 1e-12);
  }

  // Stage 1 never increases the effective loading.
  EXPECT_LE(flow.ordering_cost_woss, flow.ordering_cost_initial + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlowProperty,
    ::testing::Values(FlowCase{60, 140, 10, 6, 8, 1}, FlowCase{60, 140, 10, 6, 8, 2},
                      FlowCase{120, 250, 14, 9, 12, 3},
                      FlowCase{120, 280, 14, 9, 12, 4},
                      FlowCase{200, 420, 20, 12, 16, 5},
                      FlowCase{200, 380, 20, 12, 24, 6},
                      FlowCase{320, 680, 30, 16, 20, 7}),
    [](const ::testing::TestParamInfo<FlowCase>& info) {
      return "g" + std::to_string(info.param.gates) + "s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Similarity is a proper correlation over random simulations.
// ---------------------------------------------------------------------------

class SimilarityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimilarityProperty, BoundedSymmetricReflexive) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 40;
  spec.num_wires = 90;
  spec.num_inputs = 8;
  spec.num_outputs = 5;
  spec.seed = GetParam();
  const auto logic = netlist::generate_circuit(spec);
  const auto result =
      sim::simulate(logic, sim::random_vectors(8, 24, GetParam() * 13 + 1));
  std::vector<std::int32_t> nets;
  for (std::int32_t g = 0; g < logic.num_gates_logic(); ++g) nets.push_back(g);
  const sim::SimilarityMatrix m(result, nets);
  for (std::int32_t a = 0; a < m.size(); ++a) {
    EXPECT_DOUBLE_EQ(m.at(a, a), 1.0);
    for (std::int32_t b = 0; b < m.size(); ++b) {
      EXPECT_DOUBLE_EQ(m.at(a, b), m.at(b, a));
      EXPECT_GE(m.at(a, b), -1.0 - 1e-12);
      EXPECT_LE(m.at(a, b), 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// WOSS quality across random weight matrices.
// ---------------------------------------------------------------------------

class WossProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WossProperty, WithinTwoXOfOptimumOnSmallInstances) {
  util::Rng rng(GetParam());
  const std::int32_t n = 10;
  std::vector<double> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      const double v = rng.uniform(0.0, 2.0);
      w[static_cast<std::size_t>(a * n + b)] = v;
      w[static_cast<std::size_t>(b * n + a)] = v;
    }
  }
  const layout::DenseWeights view(n, std::move(w));
  const double woss = layout::ordering_cost(view, layout::woss_ordering(view));
  const double opt =
      layout::ordering_cost(view, layout::optimal_ordering_bruteforce(view));
  EXPECT_GE(woss, opt - 1e-12);
  EXPECT_LE(woss, 2.5 * opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WossProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

// ---------------------------------------------------------------------------
// Posynomial truncation error (Theorem 1) across u and k.
// ---------------------------------------------------------------------------

struct TruncCase {
  double u;
  int k;
};

class TruncationProperty : public ::testing::TestWithParam<TruncCase> {};

TEST_P(TruncationProperty, ErrorRatioIsUToTheK) {
  const auto [u, k] = GetParam();
  layout::CouplingGeometry geom;
  geom.overlap_um = 100.0;
  geom.pitch_um = 1.0;            // xi + xj = 2u at pitch 1
  geom.fringe_per_um = 1e-15;
  const double xi = u;            // coupling_ratio = (u + u)/2 = u
  const double xj = u;
  const double exact = layout::exact_coupling_cap(geom, xi, xj);
  const double approx = layout::posynomial_coupling_cap(geom, xi, xj, k);
  EXPECT_NEAR((exact - approx) / exact, std::pow(u, k), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TruncationProperty,
    ::testing::Values(TruncCase{0.1, 2}, TruncCase{0.1, 3}, TruncCase{0.25, 2},
                      TruncCase{0.25, 3}, TruncCase{0.25, 4}, TruncCase{0.25, 5},
                      TruncCase{0.5, 2}, TruncCase{0.5, 4}, TruncCase{0.75, 3},
                      TruncCase{0.9, 2}));

// ---------------------------------------------------------------------------
// Generator structural invariants across a seed sweep.
// ---------------------------------------------------------------------------

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, StructureInvariants) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 180;
  spec.num_wires = 390;
  spec.num_inputs = 22;
  spec.num_outputs = 15;
  spec.depth = 14;
  spec.seed = GetParam();
  const auto n = netlist::generate_circuit(spec);
  EXPECT_EQ(n.num_real_gates(), spec.num_gates);
  EXPECT_EQ(netlist::count_wires(n, spec.elab), spec.num_wires);
  EXPECT_EQ(n.primary_outputs().size(), static_cast<std::size_t>(spec.num_outputs));
  // Fanins always reference earlier gates (acyclic by construction).
  for (std::int32_t g = 0; g < n.num_gates_logic(); ++g) {
    for (std::int32_t f : n.gate(g).fanin) EXPECT_LT(f, g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
