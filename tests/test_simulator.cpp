// Event-driven logic simulator: truth tables, propagation, glitching.
#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/logic_netlist.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace lrsizer;
using netlist::LogicOp;

TEST(LogicOps, TruthTables) {
  using netlist::eval_logic_op;
  EXPECT_EQ(eval_logic_op(LogicOp::kAnd, {1, 1}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kAnd, {1, 0}), 0);
  EXPECT_EQ(eval_logic_op(LogicOp::kNand, {1, 1}), 0);
  EXPECT_EQ(eval_logic_op(LogicOp::kNand, {0, 1}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kOr, {0, 0}), 0);
  EXPECT_EQ(eval_logic_op(LogicOp::kOr, {0, 1}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kNor, {0, 0}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kXor, {1, 0}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kXor, {1, 1}), 0);
  EXPECT_EQ(eval_logic_op(LogicOp::kXnor, {1, 1}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kNot, {1}), 0);
  EXPECT_EQ(eval_logic_op(LogicOp::kBuf, {1}), 1);
  // Multi-input forms.
  EXPECT_EQ(eval_logic_op(LogicOp::kAnd, {1, 1, 1}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kAnd, {1, 1, 0}), 0);
  EXPECT_EQ(eval_logic_op(LogicOp::kXor, {1, 1, 1}), 1);
  EXPECT_EQ(eval_logic_op(LogicOp::kNor, {0, 0, 0, 0}), 1);
}

TEST(Simulator, SettlesInitialVector) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n");
  const auto result = sim::simulate(logic, {{1, 1}});
  // y = NAND(1,1) = 0 from the start, no transitions.
  EXPECT_EQ(result.waveforms[2].initial_value(), 0);
  EXPECT_TRUE(result.waveforms[2].toggles().empty());
}

TEST(Simulator, PropagatesInputChangeWithGateDelay) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  sim::SimOptions options;
  options.vector_period = 10;
  options.gate_delay = 3;
  const auto result = sim::simulate(logic, {{0}, {1}}, options);
  // a: 0 -> 1 at t=10; y: 1 -> 0 at t=13.
  ASSERT_EQ(result.waveforms[0].toggles().size(), 1u);
  EXPECT_EQ(result.waveforms[0].toggles()[0], 10);
  ASSERT_EQ(result.waveforms[1].toggles().size(), 1u);
  EXPECT_EQ(result.waveforms[1].toggles()[0], 13);
  EXPECT_EQ(result.waveforms[1].initial_value(), 1);
}

TEST(Simulator, ChainAccumulatesDelay) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nm1 = NOT(a)\nm2 = NOT(m1)\ny = NOT(m2)\n");
  sim::SimOptions options;
  options.vector_period = 32;
  options.gate_delay = 2;
  const auto result = sim::simulate(logic, {{0}, {1}}, options);
  // y toggles 3 gate delays after the input edge at t=32.
  ASSERT_EQ(result.waveforms[3].toggles().size(), 1u);
  EXPECT_EQ(result.waveforms[3].toggles()[0], 32 + 3 * 2);
}

TEST(Simulator, NoChangeNoEvent) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n");
  // b flips but a=1 keeps y=1 throughout.
  const auto result = sim::simulate(logic, {{1, 0}, {1, 1}, {1, 0}});
  EXPECT_TRUE(result.waveforms[2].toggles().empty());
}

TEST(Simulator, ReconvergentGlitch) {
  // y = AND(a, NOT(a)): statically 0, but a rising edge on `a` creates a
  // transient 1-glitch of one gate delay (transport delay model).
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)\n");
  sim::SimOptions options;
  options.vector_period = 20;
  options.gate_delay = 2;
  const auto result = sim::simulate(logic, {{0}, {1}}, options);
  const auto& y = result.waveforms[2];
  // Glitch: up at 22 (AND sees a=1, n still 1), down at 24 (n falls at 22).
  ASSERT_EQ(y.toggles().size(), 2u);
  EXPECT_EQ(y.toggles()[0], 22);
  EXPECT_EQ(y.toggles()[1], 24);
}

TEST(Simulator, HorizonCoversAllVectors) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n");
  sim::SimOptions options;
  options.vector_period = 16;
  const auto result = sim::simulate(logic, {{0}, {1}, {0}, {1}}, options);
  EXPECT_EQ(result.horizon, 4 * 16);
}

TEST(Simulator, C17RandomVectorsProduceActivity) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto vectors = sim::random_vectors(5, 32, 11);
  const auto result = sim::simulate(logic, vectors);
  std::int64_t total_toggles = 0;
  for (const auto& w : result.waveforms) {
    total_toggles += static_cast<std::int64_t>(w.toggles().size());
  }
  EXPECT_GT(total_toggles, 50);  // plenty of switching over 32 vectors
  EXPECT_GT(result.total_events, total_toggles);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto vectors = sim::random_vectors(5, 16, 3);
  const auto a = sim::simulate(logic, vectors);
  const auto b = sim::simulate(logic, vectors);
  for (std::size_t i = 0; i < a.waveforms.size(); ++i) {
    EXPECT_EQ(a.waveforms[i].toggles(), b.waveforms[i].toggles());
  }
}

TEST(Patterns, RandomVectorsShapeAndDeterminism) {
  const auto a = sim::random_vectors(8, 20, 5);
  const auto b = sim::random_vectors(8, 20, 5);
  ASSERT_EQ(a.size(), 20u);
  ASSERT_EQ(a[0].size(), 8u);
  EXPECT_EQ(a, b);
  int ones = 0;
  for (const auto& row : a) {
    for (int bit : row) {
      EXPECT_TRUE(bit == 0 || bit == 1);
      ones += bit;
    }
  }
  EXPECT_GT(ones, 40);   // roughly half of 160
  EXPECT_LT(ones, 120);
}

TEST(Patterns, BiasedVectorsToggleRarely) {
  const auto rows = sim::biased_vectors(4, 100, 0.05, 17);
  int toggles = 0;
  for (std::size_t k = 1; k < rows.size(); ++k) {
    for (std::size_t i = 0; i < rows[k].size(); ++i) {
      toggles += rows[k][i] != rows[k - 1][i] ? 1 : 0;
    }
  }
  EXPECT_LT(toggles, 60);  // 400 opportunities at 5%
}

}  // namespace
