// Weighted upstream resistance: stage-locality and the μ weighting.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "timing/upstream.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

TEST(Upstream, ChainHandComputed) {
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  std::vector<double> mu(static_cast<std::size_t>(c.circuit.num_nodes()), 0.0);
  mu[static_cast<std::size_t>(c.driver)] = 2.0;
  mu[static_cast<std::size_t>(c.wire_in)] = 3.0;
  mu[static_cast<std::size_t>(c.gate)] = 5.0;
  mu[static_cast<std::size_t>(c.wire_out)] = 7.0;

  std::vector<double> r_up;
  timing::compute_weighted_upstream(c.circuit, c.circuit.sizes(), mu, r_up);

  // Driver has nothing upstream.
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(c.driver)], 0.0);
  // w1: upstream = driver.
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(c.wire_in)], 2.0 * tech.driver_res);
  // gate: upstream = w1 chain + driver.
  const double r_w1 = tech.wire_res_per_um * 200.0;  // x = 1
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(c.gate)],
                   3.0 * r_w1 + 2.0 * tech.driver_res);
  // w2: the gate isolates its stage — only the gate's resistance counts.
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(c.wire_out)],
                   5.0 * tech.gate_unit_res);
}

TEST(Upstream, StageLocalityExcludesEverythingBeyondDrivingGate) {
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  // Enormous μ on the driver must not leak into w2's upstream.
  std::vector<double> mu(static_cast<std::size_t>(c.circuit.num_nodes()), 1.0);
  mu[static_cast<std::size_t>(c.driver)] = 1e9;
  std::vector<double> r_up;
  timing::compute_weighted_upstream(c.circuit, c.circuit.sizes(), mu, r_up);
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(c.wire_out)], tech.gate_unit_res);
}

TEST(Upstream, ScalesWithComponentSizes) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  std::vector<double> mu(static_cast<std::size_t>(c.circuit.num_nodes()), 1.0);
  std::vector<double> r1;
  timing::compute_weighted_upstream(c.circuit, c.circuit.sizes(), mu, r1);

  c.circuit.set_uniform_size(2.0);
  std::vector<double> r2;
  timing::compute_weighted_upstream(c.circuit, c.circuit.sizes(), mu, r2);

  // Doubling sizes halves the sized resistances; driver resistance fixed.
  const auto i_g = static_cast<std::size_t>(c.gate);
  const netlist::TechParams tech;
  const double r_w1 = tech.wire_res_per_um * 200.0;
  EXPECT_DOUBLE_EQ(r1[i_g], r_w1 + tech.driver_res);
  EXPECT_DOUBLE_EQ(r2[i_g], r_w1 / 2.0 + tech.driver_res);
}

TEST(Upstream, MultiFaninGateSumsAllStages) {
  const netlist::TechParams tech;
  auto f = Fig1Circuit::make(tech);
  f.circuit.set_uniform_size(1.0);
  std::vector<double> mu(static_cast<std::size_t>(f.circuit.num_nodes()), 1.0);
  std::vector<double> r_up;
  timing::compute_weighted_upstream(f.circuit, f.circuit.sizes(), mu, r_up);

  // gate A has fanins w1 (300 µm, driver d1) and w2 (250 µm, driver d2):
  // R = (r_w1 + R_D1) + (r_w2 + R_D2).
  const double expected = (tech.wire_res_per_um * 300.0 + tech.driver_res) +
                          (tech.wire_res_per_um * 250.0 + tech.driver_res);
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(f.gates[0])], expected);
}

TEST(Upstream, WireAfterWireChains) {
  // d -> wa -> wb -> g: wb's upstream includes wa and the driver.
  const netlist::TechParams tech;
  netlist::CircuitBuilder b(tech);
  const auto d = b.add_driver();
  const auto wa = b.add_wire(100.0);
  const auto wb = b.add_wire(150.0);
  const auto g = b.add_gate();
  const auto wo = b.add_wire(100.0);
  b.connect(d, wa);
  b.connect(wa, wb);
  b.connect(wb, g);
  b.connect(g, wo);
  b.mark_primary_output(wo);
  auto circuit = b.finalize();
  circuit.set_uniform_size(1.0);

  std::vector<double> mu(static_cast<std::size_t>(circuit.num_nodes()), 1.0);
  std::vector<double> r_up;
  timing::compute_weighted_upstream(circuit, circuit.sizes(), mu, r_up);
  const double expected = tech.driver_res + tech.wire_res_per_um * 100.0;
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(b.node_of(wb))], expected);
  EXPECT_DOUBLE_EQ(r_up[static_cast<std::size_t>(b.node_of(g))],
                   expected + tech.wire_res_per_um * 150.0);
}

TEST(Upstream, ZeroMuZeroesTheWeights) {
  auto c = ChainCircuit::make();
  c.circuit.set_uniform_size(1.0);
  std::vector<double> mu(static_cast<std::size_t>(c.circuit.num_nodes()), 0.0);
  std::vector<double> r_up;
  timing::compute_weighted_upstream(c.circuit, c.circuit.sizes(), mu, r_up);
  for (double r : r_up) EXPECT_DOUBLE_EQ(r, 0.0);
}

}  // namespace
