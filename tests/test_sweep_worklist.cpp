// Differential convergence-equivalence battery for the worklist LRS sweep
// (core::SweepMode::kWorklist, docs/ARCHITECTURE.md §Parallel kernels).
//
// The worklist sweep is NOT bit-identical to the dense reference — it skips
// ε-stationary components — so these tests pin down the equivalence that IS
// promised: both modes converge to the same fixpoint within tolerance, with
// comparable iteration counts, while the worklist does strictly less work.
// The battery runs whole OGWS optimizations in both modes across ISCAS
// profiles, seeded generator variants, both coupling-load modes and both
// noise-bound shapes (total-only and distributed per-net), plus warm starts;
// a probe-driven property test certifies the dirty-set logic (every skipped
// node really was stationary), and a resume-sequence test re-checks the
// thread bit-determinism contract for this sweep specifically.
//
// Divergence margins are calibrated ~30x above measured worst cases
// (sizes ≤ 3.1e-5 rel, area ≤ 8.3e-6 rel, identical iteration counts on all
// calibration configs), so a failure here means a real regression, not noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "api/options.hpp"
#include "core/kkt.hpp"
#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "layout/channels.hpp"
#include "layout/coloring.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"
#include "netlist/levels.hpp"
#include "runtime/pool.hpp"
#include "timing/loads.hpp"
#include "util/parallel.hpp"

namespace {

using namespace lrsizer;

constexpr auto kLocal = timing::CouplingLoadMode::kLocalOnly;
constexpr auto kUpstream = timing::CouplingLoadMode::kPropagateUpstream;

struct Problem {
  netlist::Circuit circuit;
  layout::CouplingSet coupling;
  core::Bounds bounds;
};

/// Elaborated, channel-routed instance with bounds derived at uniform size 1.
Problem build_problem(const std::string& profile, int seed,
                      timing::CouplingLoadMode mode, double per_net) {
  const auto spec = netlist::spec_for_profile(profile, seed);
  const auto logic = netlist::generate_circuit(spec);
  auto elab = netlist::elaborate(logic, netlist::TechParams{}, spec.elab);
  const auto channels =
      layout::assign_channels(elab.circuit, elab.net_of_node, logic);
  auto coupling = layout::build_coupling_set(elab.circuit, channels.channels,
                                             layout::NeighborOptions{});
  elab.circuit.set_uniform_size(1.0);
  core::BoundFactors factors;
  factors.per_net_noise = per_net;
  const auto bounds = core::derive_bounds(elab.circuit, coupling,
                                          elab.circuit.sizes(), mode, factors);
  return Problem{std::move(elab.circuit), std::move(coupling), bounds};
}

core::OgwsResult run_mode(const Problem& p, timing::CouplingLoadMode mode,
                          core::SweepMode sweep, int max_iterations = 60,
                          const core::OgwsWarmStart* warm = nullptr,
                          bool capture_warm = false) {
  core::OgwsOptions options;
  options.max_iterations = max_iterations;
  options.lrs.mode = mode;
  options.lrs.sweep = sweep;
  core::OgwsControl control;
  control.warm_start = warm;
  control.capture_warm_start = capture_warm;
  return core::run_ogws(p.circuit, p.coupling, p.bounds, options, control);
}

/// μ vector the way the OGWS loop produces it (flow-conserving default λ),
/// scaled into the regime where Theorem 5's resize moves the sizes.
std::vector<double> default_mu(const netlist::Circuit& circuit) {
  core::MultiplierState m(circuit);
  m.init_default(circuit);
  std::vector<double> mu;
  m.compute_mu(circuit, mu);
  for (double& v : mu) v *= 1e13;
  return mu;
}

// ---- differential battery: worklist vs dense over whole OGWS runs ----------

TEST(SweepWorklist, MatchesDenseAcrossProfilesModesAndBounds) {
  struct Config {
    const char* profile;
    int seed;
    timing::CouplingLoadMode mode;
    double per_net;
  };
  // ISCAS profiles under every (coupling mode × bound shape) combination,
  // plus seeded generator variants so the battery is not wedded to the
  // canonical netlists.
  const Config configs[] = {
      {"c432", 1, kLocal, 0.0},  {"c432", 1, kLocal, 0.5},
      {"c432", 1, kUpstream, 0.0}, {"c432", 1, kUpstream, 0.5},
      {"c499", 1, kLocal, 0.0},  {"c499", 1, kUpstream, 0.5},
      {"c432", 7, kUpstream, 0.0}, {"c499", 13, kLocal, 0.5},
  };

  for (const auto& cfg : configs) {
    SCOPED_TRACE(std::string(cfg.profile) + " seed " + std::to_string(cfg.seed) +
                 (cfg.mode == kLocal ? " local" : " upstream") + " per_net " +
                 std::to_string(cfg.per_net));
    const Problem p = build_problem(cfg.profile, cfg.seed, cfg.mode, cfg.per_net);
    const auto dense = run_mode(p, cfg.mode, core::SweepMode::kDense);
    const auto wl = run_mode(p, cfg.mode, core::SweepMode::kWorklist);

    // Same convergence verdict, near-identical trajectory length.
    EXPECT_EQ(dense.converged, wl.converged);
    EXPECT_LE(std::abs(dense.iterations - wl.iterations), 5)
        << "dense " << dense.iterations << " vs worklist " << wl.iterations;

    // Same certificate, within calibrated slack.
    EXPECT_LE(std::abs(dense.area - wl.area),
              1e-4 * std::max(std::abs(dense.area), 1e-12))
        << "area dense " << dense.area << " vs worklist " << wl.area;
    EXPECT_LE(std::abs(dense.max_violation - wl.max_violation),
              1e-3 * std::max(1.0, std::abs(dense.max_violation)));

    // Same sizes, node by node. On failure, dump both the first and the
    // worst diverging node so the regression is immediately localizable.
    ASSERT_EQ(dense.sizes.size(), wl.sizes.size());
    constexpr double kSizeTol = 1e-3;
    std::size_t worst = 0, first_bad = 0;
    double worst_rel = 0.0;
    bool has_bad = false;
    for (netlist::NodeId v = p.circuit.first_component();
         v < p.circuit.end_component(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      const double rel = std::abs(dense.sizes[i] - wl.sizes[i]) /
                         std::max(std::abs(dense.sizes[i]), 1e-12);
      if (rel > worst_rel) {
        worst_rel = rel;
        worst = i;
      }
      if (rel >= kSizeTol && !has_bad) {
        has_bad = true;
        first_bad = i;
      }
    }
    EXPECT_LT(worst_rel, kSizeTol)
        << "first diverging node " << first_bad << " (dense "
        << dense.sizes[first_bad] << ", worklist " << wl.sizes[first_bad]
        << "); worst node " << worst << " rel " << worst_rel << " (dense "
        << dense.sizes[worst] << ", worklist " << wl.sizes[worst] << ")";

    // The equivalence must not be vacuous: the worklist has to have actually
    // skipped work to earn its keep.
    long long dense_nodes = 0, wl_nodes = 0;
    for (const auto& it : dense.history) dense_nodes += it.lrs_nodes_processed;
    for (const auto& it : wl.history) wl_nodes += it.lrs_nodes_processed;
    EXPECT_GT(wl_nodes, 0);
    EXPECT_LT(wl_nodes, (dense_nodes * 4) / 5)
        << "worklist evaluated " << wl_nodes << " of dense " << dense_nodes;
  }
}

TEST(SweepWorklist, WarmStartedWorklistReconvergesAndSatisfiesKkt) {
  const Problem p = build_problem("c499", 1, kUpstream, 0.0);
  const auto dense =
      run_mode(p, kUpstream, core::SweepMode::kDense, 60, nullptr, true);
  ASSERT_TRUE(dense.converged);
  ASSERT_FALSE(dense.warm.empty());

  // Seed a worklist run from the dense certificate: it must re-converge in
  // at most as many iterations, to the same area, and stay feasible.
  const auto wl = run_mode(p, kUpstream, core::SweepMode::kWorklist, 60,
                           &dense.warm, true);
  EXPECT_TRUE(wl.converged);
  EXPECT_LE(wl.iterations, dense.iterations);
  EXPECT_LE(wl.max_violation, 0.011);
  EXPECT_LE(std::abs(wl.area - dense.area), 1e-3 * dense.area);

  // KKT residuals at the returned iterate, under the best-dual multipliers
  // (the run's own capture when present, else the seed's).
  const core::OgwsWarmStart& cert = wl.warm.empty() ? dense.warm : wl.warm;
  core::MultiplierState m(p.circuit);
  m.lambda = cert.lambda;
  m.beta = cert.beta;
  m.gamma = cert.gamma;
  m.gamma_net = cert.gamma_net;
  const auto kkt =
      core::check_kkt(p.circuit, p.coupling, m, p.bounds, wl.sizes, kUpstream);
  EXPECT_LE(kkt.flow, 1e-9);  // projection invariant survives the sweep mode
  EXPECT_LE(kkt.primal_delay, 0.011);
  EXPECT_LE(kkt.primal_power, 0.011);
  EXPECT_LE(kkt.primal_noise, 0.011);
}

// ---- dirty-set correctness: skipped nodes really were stationary -----------

TEST(SweepWorklist, SkippedNodesAreStationaryOnRandomizedCircuits) {
  for (const int seed : {3, 5, 9}) {
    SCOPED_TRACE("generator seed " + std::to_string(seed));
    const Problem p = build_problem("c432", seed, kLocal, 0.0);
    auto mu = default_mu(p.circuit);
    const double beta = 0.25;
    const core::NoiseMultipliers gamma(0.125);

    core::LrsOptions options;
    options.sweep = core::SweepMode::kWorklist;
    options.warm_start = true;
    options.mode = kLocal;

    // Frozen pass-start state: exactly what the sweep will read for pass
    // `pass` (on_pass_begin fires after seeding, before any resize).
    struct Frozen {
      int pass = -1;
      std::vector<double> x;
      std::vector<double> r_up;
      timing::LoadAnalysis loads;
      std::vector<unsigned char> pending;
    } frozen;
    long long skipped_checked = 0;

    core::LrsProbe probe;
    probe.on_pass_begin = [&](int pass, const std::vector<double>& x_now,
                              const timing::LoadAnalysis& loads,
                              const std::vector<double>& r_up,
                              const std::vector<unsigned char>& pending) {
      frozen.pass = pass;
      frozen.x = x_now;
      frozen.loads = loads;
      frozen.r_up = r_up;
      frozen.pending = pending;
    };
    probe.on_pass_end = [&](int pass,
                            const std::vector<unsigned char>& processed) {
      ASSERT_EQ(pass, frozen.pass);
      for (netlist::NodeId v = p.circuit.first_component();
           v < p.circuit.end_component(); ++v) {
        const auto i = static_cast<std::size_t>(v);
        if (frozen.pending[i] != 0) {
          // The sweep honors the frontier exactly.
          EXPECT_EQ(processed[i], 1) << "pending node " << v
                                     << " not evaluated on pass " << pass;
          continue;
        }
        // A clean node may still get evaluated this pass when an
        // earlier-index mover flags it mid-sweep; only genuinely skipped
        // nodes carry the stationarity obligation.
        if (processed[i] != 0) continue;
        const double opt =
            core::optimal_resize(p.circuit, p.coupling, mu, beta, gamma,
                                 frozen.x, frozen.loads, frozen.r_up, v);
        const double clamped = std::clamp(opt, p.circuit.lower_bound(v),
                                          p.circuit.upper_bound(v));
        const double rel = std::abs(clamped - frozen.x[i]) / frozen.x[i];
        EXPECT_LT(rel, options.tol)
            << "skipped node " << v << " would have moved " << rel
            << " on pass " << pass << " (x " << frozen.x[i] << " -> "
            << clamped << ")";
        ++skipped_checked;
      }
    };

    core::LrsRuntime runtime;
    runtime.probe = &probe;
    std::vector<double> x(mu.size(), 1.0);
    core::LrsWorkspace ws;
    core::run_lrs(p.circuit, p.coupling, mu, beta, gamma, options, x, ws,
                  runtime);
    // Perturbation rounds: nudge scattered μ entries (what an OGWS dual step
    // does) and resume — the frontier must stay honest while mostly empty.
    for (int round = 0; round < 3; ++round) {
      const double f = (round % 2 == 0) ? 1.004 : 0.997;
      for (std::size_t i = static_cast<std::size_t>(3 + round); i < mu.size();
           i += 41) {
        mu[i] *= f;
      }
      core::run_lrs(p.circuit, p.coupling, mu, beta, gamma, options, x, ws,
                    runtime);
    }
    EXPECT_GT(skipped_checked, 0) << "property test never exercised a skip";
  }
}

// ---- thread bit-determinism of resumed worklist sequences ------------------

TEST(SweepWorklist, ResumedSweepsBitIdenticalAcrossThreads) {
  const Problem p = build_problem("c499", 1, kUpstream, 0.0);
  const auto mu0 = default_mu(p.circuit);

  struct SequenceOut {
    std::vector<std::vector<double>> xs;
    std::vector<core::LrsStats> stats;
    std::vector<double> load_in;
  };
  // Cold call + three perturbed resumes — the exact shape the OGWS loop
  // drives — recording every intermediate x and the persisted loads.
  auto run_sequence = [&](util::Executor* exec,
                          const netlist::LevelSchedule* colors) {
    SequenceOut out;
    auto mu = mu0;
    std::vector<double> x(mu.size(), 1.0);
    core::LrsWorkspace ws;
    core::LrsOptions options;
    options.sweep = core::SweepMode::kWorklist;
    options.warm_start = true;
    options.mode = kUpstream;
    core::LrsRuntime runtime;
    runtime.executor = exec;
    runtime.colors = colors;
    for (int call = 0; call < 4; ++call) {
      if (call > 0) {
        const double f = (call % 2 == 1) ? 1.015 : 1.0 / 1.013;
        for (std::size_t i = static_cast<std::size_t>(call); i < mu.size();
             i += 67) {
          mu[i] *= f;
        }
      }
      out.stats.push_back(core::run_lrs(p.circuit, p.coupling, mu, 0.3,
                                        core::NoiseMultipliers(0.1), options,
                                        x, ws, runtime));
      out.xs.push_back(x);
    }
    out.load_in = ws.loads.load_in;
    return out;
  };

  const SequenceOut serial = run_sequence(nullptr, nullptr);
  const auto colors = layout::build_coupling_colors(p.circuit, p.coupling);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    runtime::KernelTeam team(threads);
    const SequenceOut par = run_sequence(&team, &colors);
    ASSERT_EQ(serial.xs.size(), par.xs.size());
    for (std::size_t call = 0; call < serial.xs.size(); ++call) {
      SCOPED_TRACE("call " + std::to_string(call));
      EXPECT_EQ(serial.xs[call], par.xs[call]);
      EXPECT_EQ(serial.stats[call].passes, par.stats[call].passes);
      EXPECT_EQ(serial.stats[call].nodes_processed,
                par.stats[call].nodes_processed);
      EXPECT_EQ(serial.stats[call].max_rel_change,
                par.stats[call].max_rel_change);
    }
    // The incrementally maintained loads are part of the hand-back contract.
    EXPECT_EQ(serial.load_in, par.load_in);
  }
}

// ---- acceptance: the frontier stays small on a large profile ---------------

TEST(SweepWorklist, FrontierStaysSmallOnLargeProfile) {
  const Problem p = build_problem("c7552", 1, kUpstream, 0.0);
  ASSERT_GE(p.circuit.num_nodes(), 5000);
  const auto components = static_cast<long long>(p.circuit.num_components());
  const auto mu0 = default_mu(p.circuit);

  core::LrsOptions options;
  options.sweep = core::SweepMode::kWorklist;
  options.warm_start = true;
  options.mode = kUpstream;

  std::vector<long long> per_pass;
  core::LrsProbe probe;
  probe.on_pass_end = [&](int, const std::vector<unsigned char>& processed) {
    long long count = 0;
    for (const unsigned char f : processed) count += f;
    per_pass.push_back(count);
  };
  core::LrsRuntime runtime;
  runtime.probe = &probe;

  // Cold solve: the first passes sweep everything (the frontier starts
  // full), then it drains — the final third of the solve's passes must
  // reprocess < 25% of the components per pass (measured: ~3%).
  auto mu = mu0;
  std::vector<double> x(mu.size(), 1.0);
  core::LrsWorkspace ws;
  core::run_lrs(p.circuit, p.coupling, mu, 0.3, core::NoiseMultipliers(0.1),
                options, x, ws, runtime);
  ASSERT_GE(per_pass.size(), 9u);
  const std::size_t start = per_pass.size() - per_pass.size() / 3;
  long long cold_tail = 0;
  for (std::size_t k = start; k < per_pass.size(); ++k) cold_tail += per_pass[k];
  const double cold_fraction =
      static_cast<double>(cold_tail) /
      static_cast<double>(static_cast<long long>(per_pass.size() - start) *
                          components);
  EXPECT_LT(cold_fraction, 0.25)
      << cold_tail << " node evaluations over the final "
      << (per_pass.size() - start) << " of " << per_pass.size() << " passes";

  // Resumed solves (the shape of a near-converged OGWS iteration: a sparse
  // μ nudge): every pass, first included, must stay under 25% (measured:
  // ~1-2%).
  per_pass.clear();
  long long resumed_nodes = 0, resumed_passes = 0;
  for (int round = 0; round < 3; ++round) {
    const double f = (round % 2 == 0) ? 1.01 : 1.0 / 1.01;
    for (std::size_t i = 7; i < mu.size(); i += 97) mu[i] *= f;
    const auto stats = core::run_lrs(p.circuit, p.coupling, mu, 0.3,
                                     core::NoiseMultipliers(0.1), options, x,
                                     ws, runtime);
    resumed_nodes += stats.nodes_processed;
    resumed_passes += std::max(stats.passes, 1);
  }
  for (const long long count : per_pass) {
    EXPECT_LT(count, components / 4) << "a resumed pass swept " << count
                                     << " of " << components << " components";
  }
  const double resumed_fraction =
      static_cast<double>(resumed_nodes) /
      static_cast<double>(resumed_passes * components);
  EXPECT_LT(resumed_fraction, 0.25)
      << resumed_nodes << " node evaluations over " << resumed_passes
      << " resumed passes";
}

// ---- option surface --------------------------------------------------------

TEST(SweepWorklist, OptionsRoundTripAndValidate) {
  EXPECT_STREQ(core::sweep_mode_name(core::SweepMode::kDense), "dense");
  EXPECT_STREQ(core::sweep_mode_name(core::SweepMode::kWorklist), "worklist");

  core::FlowOptions out;
  const api::Status ok = api::FlowOptionsBuilder()
                             .sweep_mode(core::SweepMode::kWorklist)
                             .worklist_eps(1e-5)
                             .build(out);
  ASSERT_TRUE(ok.ok()) << ok.message();
  EXPECT_EQ(out.ogws.lrs.sweep, core::SweepMode::kWorklist);
  EXPECT_EQ(out.ogws.lrs.worklist_eps, 1e-5);

  // worklist_eps must stay strictly below the fixpoint tolerance.
  const api::Status bad =
      api::FlowOptionsBuilder().worklist_eps(1e-4).build(out);
  EXPECT_EQ(bad.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("worklist_eps"), std::string::npos);
}

}  // namespace
