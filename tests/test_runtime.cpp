// Tests for the parallel batch-flow runtime: thread-pool scheduling,
// batch determinism across worker counts, and JSON schema round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "runtime/batch.hpp"
#include "runtime/json.hpp"
#include "runtime/pool.hpp"
#include "util/memtrack.hpp"

namespace lrsizer {
namespace {

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, ReturnsResultsThroughFutures) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 64; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  runtime::ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  runtime::ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, WaitIdleDrainsAllSubmittedWork) {
  runtime::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, SubmitFromInsideATaskCompletes) {
  runtime::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &done] {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, UnevenTasksAllComplete) {
  // A few slow tasks next to many fast ones: with per-worker FIFO deques the
  // fast tasks land behind slow ones and only stealing lets siblings drain
  // them; everything must still complete promptly.
  runtime::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&done, i] {
      if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
  EXPECT_GE(pool.steal_count(), 0);
}

TEST(ThreadPool, DestructorWaitsForQueuedTasks) {
  std::atomic<int> done{0};
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SharedMemoryTrackerStaysConsistent) {
  // The memtrack satellite: concurrent adds to one tracker must not lose
  // updates or corrupt the category list.
  util::MemoryTracker tracker;
  runtime::ThreadPool pool(4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&tracker] {
      tracker.add("shared", 10);
      tracker.add("other", 1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(tracker.category_bytes("shared"), 2000u);
  EXPECT_EQ(tracker.category_bytes("other"), 200u);
  EXPECT_EQ(tracker.tracked_bytes(), 2200u);
  EXPECT_EQ(tracker.categories().size(), 2u);

  util::MemoryTracker rollup;
  rollup.add("other", 5);
  rollup.merge(tracker);
  EXPECT_EQ(rollup.category_bytes("other"), 205u);
  EXPECT_EQ(rollup.tracked_bytes(), 2205u);
}

// ---- batch flow -------------------------------------------------------------

netlist::GeneratorSpec small_spec(std::uint64_t seed) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 40;
  spec.num_wires = 80;
  spec.num_inputs = 8;
  spec.num_outputs = 4;
  spec.depth = 6;
  spec.seed = seed;
  return spec;
}

runtime::BatchOptions batch_options(int jobs, bool keep_flow_results = true) {
  runtime::BatchOptions options;
  options.jobs = jobs;
  options.keep_flow_results = keep_flow_results;
  return options;
}

std::vector<runtime::BatchJob> small_jobs(int count) {
  std::vector<runtime::BatchJob> jobs;
  for (int i = 0; i < count; ++i) {
    runtime::BatchJob job;
    job.name = "job" + std::to_string(i);
    job.seed = static_cast<std::uint64_t>(i + 1);
    job.netlist = netlist::generate_circuit(small_spec(job.seed));
    job.options.num_vectors = 8;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(Batch, ResultsStayInSubmitOrder) {
  auto batch = runtime::run_batch(small_jobs(4), batch_options(2));
  ASSERT_EQ(batch.jobs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.jobs[static_cast<std::size_t>(i)].name,
              "job" + std::to_string(i));
    EXPECT_TRUE(batch.jobs[static_cast<std::size_t>(i)].ok);
  }
  EXPECT_EQ(batch.num_failed(), 0u);
  EXPECT_EQ(batch.num_workers, 2);
}

TEST(Batch, DeterministicAcrossWorkerCounts) {
  // The headline contract: per-job results are bit-identical whether the
  // batch runs sequentially or on 8 oversubscribed workers.
  auto sequential = runtime::run_batch(small_jobs(6), batch_options(1));
  auto parallel = runtime::run_batch(small_jobs(6), batch_options(8));
  ASSERT_EQ(sequential.jobs.size(), parallel.jobs.size());
  for (std::size_t i = 0; i < sequential.jobs.size(); ++i) {
    const auto& a = sequential.jobs[i];
    const auto& b = parallel.jobs[i];
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_TRUE(a.flow.has_value());
    ASSERT_TRUE(b.flow.has_value());
    // Bit-exact size vectors (no tolerance).
    EXPECT_EQ(a.flow->circuit.sizes(), b.flow->circuit.sizes());
    EXPECT_EQ(a.summary.iterations, b.summary.iterations);
    EXPECT_EQ(a.summary.final_metrics.delay_s, b.summary.final_metrics.delay_s);
    EXPECT_EQ(a.summary.final_metrics.noise_f, b.summary.final_metrics.noise_f);
    EXPECT_EQ(a.summary.final_metrics.area_um2, b.summary.final_metrics.area_um2);
    // The serialized report (timings excluded) must also match byte for byte.
    auto strip_timing = [](runtime::Json j) {
      j.set("seconds", 0);
      j.set("stage1_seconds", 0);
      j.set("stage2_seconds", 0);
      return j.dump();
    };
    EXPECT_EQ(strip_timing(runtime::job_json(a)), strip_timing(runtime::job_json(b)));
  }
}

TEST(Batch, RollupsAggregatePerJobNumbers) {
  auto batch = runtime::run_batch(small_jobs(3), batch_options(2));
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.total_job_seconds, 0.0);
  EXPECT_GT(batch.speedup(), 0.0);
  std::size_t total = 0;
  std::size_t peak = 0;
  for (const auto& job : batch.jobs) {
    total += job.summary.memory_bytes;
    peak = std::max(peak, job.summary.memory_bytes);
  }
  EXPECT_EQ(batch.total_memory_bytes, total);
  EXPECT_EQ(batch.peak_memory_bytes, peak);
}

TEST(Batch, FailedJobIsReportedNotFatal) {
  auto jobs = small_jobs(2);
  runtime::BatchJob bad;
  bad.name = "bad";
  // Netlist never finalized: the job must fail with an error message while
  // the rest of the batch completes.
  jobs.push_back(std::move(bad));
  auto batch = runtime::run_batch(std::move(jobs), batch_options(2));
  EXPECT_EQ(batch.num_failed(), 1u);
  EXPECT_TRUE(batch.jobs[0].ok);
  EXPECT_TRUE(batch.jobs[1].ok);
  EXPECT_FALSE(batch.jobs[2].ok);
  EXPECT_NE(batch.jobs[2].error.find("not finalized"), std::string::npos);
  const runtime::Json report = runtime::batch_json(batch);
  EXPECT_EQ(report.at("failed").as_number(), 1.0);
}

TEST(Batch, KeepFlowResultsFalseDropsHeavyState) {
  auto batch = runtime::run_batch(small_jobs(1), batch_options(1, false));
  ASSERT_TRUE(batch.jobs[0].ok);
  EXPECT_FALSE(batch.jobs[0].flow.has_value());
  // The summary survives.
  EXPECT_GT(batch.jobs[0].summary.iterations, 0);
}

TEST(Batch, ProfileJobMatchesDirectFlowRun) {
  // make_profile_job + run_batch must reproduce a direct library call.
  core::FlowOptions options;
  options.num_vectors = 8;
  const auto logic =
      netlist::generate_circuit(netlist::spec_for_profile("c432", 1));
  const auto direct = core::run_two_stage_flow(logic, options);

  std::vector<runtime::BatchJob> jobs;
  jobs.push_back(runtime::make_profile_job("c432", 1, options));
  auto batch = runtime::run_batch(std::move(jobs), batch_options(1));
  ASSERT_TRUE(batch.jobs[0].ok);
  EXPECT_EQ(batch.jobs[0].flow->circuit.sizes(), direct.circuit.sizes());
  EXPECT_EQ(batch.jobs[0].summary.iterations, direct.ogws.iterations);
}

// ---- JSON -------------------------------------------------------------------

TEST(Json, DumpAndParseRoundTrip) {
  runtime::Json doc = runtime::Json::object();
  doc.set("string", "hello \"world\"\n");
  doc.set("int", 42);
  doc.set("negative", -17.25);
  doc.set("tiny", 1.9835457330398077e-12);
  doc.set("bool", true);
  doc.set("null", nullptr);
  runtime::Json arr = runtime::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(runtime::Json::object());
  doc.set("arr", arr);

  for (int indent : {0, 2}) {
    const runtime::Json parsed = runtime::Json::parse(doc.dump(indent));
    EXPECT_EQ(parsed, doc) << "indent=" << indent;
  }
}

TEST(Json, NumbersRoundTripBitExact) {
  for (double value : {0.1, 1.0 / 3.0, 1.9835457330398077e-12, -6.02e23,
                       1747.003523931482, 0.0}) {
    const runtime::Json parsed = runtime::Json::parse(runtime::Json(value).dump());
    EXPECT_EQ(parsed.as_number(), value);
  }
}

TEST(Json, ObjectPreservesInsertionOrder) {
  runtime::Json doc = runtime::Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("m", 3);
  EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  doc.set("a", 9);  // overwrite keeps the slot
  EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(runtime::Json::parse("{"), runtime::JsonParseError);
  EXPECT_THROW(runtime::Json::parse("[1,]2"), runtime::JsonParseError);
  EXPECT_THROW(runtime::Json::parse("\"unterminated"), runtime::JsonParseError);
  EXPECT_THROW(runtime::Json::parse("{\"a\" 1}"), runtime::JsonParseError);
  EXPECT_THROW(runtime::Json::parse("tru"), runtime::JsonParseError);
  EXPECT_THROW(runtime::Json::parse("1 2"), runtime::JsonParseError);
  EXPECT_THROW(runtime::Json::parse(""), runtime::JsonParseError);
}

TEST(Json, ParseHandlesEscapesAndWhitespace) {
  const runtime::Json doc =
      runtime::Json::parse(" { \"a\\tb\" : [ true , null , \"\\u0041\" ] } ");
  const auto& arr = doc.at("a\tb").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "A");
}

TEST(Json, BatchReportSchemaRoundTrips) {
  auto batch = runtime::run_batch(small_jobs(2), batch_options(2));
  const runtime::Json report = runtime::batch_json(batch);
  EXPECT_EQ(report.at("schema").as_string(), "lrsizer-batch-v1");
  EXPECT_EQ(report.at("workers").as_number(), 2.0);
  EXPECT_EQ(report.at("jobs").size(), 2u);

  // Serialize -> parse -> re-serialize is a fixed point.
  const std::string text = report.dump(2);
  const runtime::Json parsed = runtime::Json::parse(text);
  EXPECT_EQ(parsed, report);
  EXPECT_EQ(parsed.dump(2), text);

  // And the per-job summary survives the round-trip field for field.
  const runtime::Json& job0 = parsed.at("jobs").as_array()[0];
  const core::FlowSummary restored = runtime::summary_from_json(job0);
  const core::FlowSummary& original = batch.jobs[0].summary;
  EXPECT_EQ(restored.num_gates, original.num_gates);
  EXPECT_EQ(restored.num_wires, original.num_wires);
  EXPECT_EQ(restored.iterations, original.iterations);
  EXPECT_EQ(restored.converged, original.converged);
  EXPECT_EQ(restored.final_metrics.delay_s, original.final_metrics.delay_s);
  EXPECT_EQ(restored.final_metrics.noise_f, original.final_metrics.noise_f);
  EXPECT_EQ(restored.final_metrics.area_um2, original.final_metrics.area_um2);
  EXPECT_EQ(restored.memory_bytes, original.memory_bytes);
  EXPECT_EQ(restored.cancelled, original.cancelled);
}

// ---- cancellation + progress ------------------------------------------------

TEST(Batch, PreCancelledTokenDrainsEveryJobAsCancelled) {
  std::stop_source source;
  source.request_stop();
  auto options = batch_options(2);
  options.stop = source.get_token();
  auto batch = runtime::run_batch(small_jobs(3), options);

  EXPECT_EQ(batch.num_cancelled(), 3u);
  EXPECT_EQ(batch.num_failed(), 0u);  // cancelled is not failed
  for (const auto& job : batch.jobs) {
    EXPECT_TRUE(job.cancelled);
    EXPECT_FALSE(job.ok);  // stopped before sizing produced anything
    EXPECT_NE(job.error.find("cancelled"), std::string::npos);
  }
  const runtime::Json report = runtime::batch_json(batch);
  EXPECT_EQ(report.at("cancelled").as_number(), 3.0);
  EXPECT_EQ(report.at("failed").as_number(), 0.0);
}

TEST(Batch, MidRunCancellationKeepsThePartialSummary) {
  // One worker so job0 is sizing while job1 queues; stop after a few OGWS
  // iterations. job0 must come back ok+cancelled with a usable partial
  // summary, job1 cancelled without one.
  std::stop_source source;
  std::atomic<int> iterations{0};
  auto options = batch_options(1);
  options.stop = source.get_token();
  options.observer = [&](const std::string&, const core::OgwsIterate&) {
    if (iterations.fetch_add(1, std::memory_order_relaxed) == 2) {
      source.request_stop();
    }
  };
  auto batch = runtime::run_batch(small_jobs(2), options);

  ASSERT_EQ(batch.jobs.size(), 2u);
  const auto& partial = batch.jobs[0];
  EXPECT_TRUE(partial.ok);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_TRUE(partial.summary.cancelled);
  EXPECT_FALSE(partial.summary.converged);
  EXPECT_GT(partial.summary.final_metrics.area_um2, 0.0);
  EXPECT_GT(partial.summary.memory_bytes, 0u);

  const auto& queued = batch.jobs[1];
  EXPECT_FALSE(queued.ok);
  EXPECT_TRUE(queued.cancelled);
  EXPECT_EQ(batch.num_failed(), 0u);

  // The JSON report carries the partial job with its cancelled marker.
  const runtime::Json report = runtime::batch_json(batch);
  const auto& jobs = report.at("jobs").as_array();
  EXPECT_TRUE(jobs[0].at("ok").as_bool());
  EXPECT_TRUE(jobs[0].at("cancelled").as_bool());
  EXPECT_FALSE(jobs[1].at("ok").as_bool());
}

TEST(Batch, ObserverReceivesProgressFromEveryJob) {
  std::mutex mutex;
  std::map<std::string, int> events;
  auto options = batch_options(2);
  options.observer = [&](const std::string& job, const core::OgwsIterate& it) {
    EXPECT_GE(it.k, 1);
    const std::lock_guard<std::mutex> lock(mutex);
    ++events[job];
  };
  auto batch = runtime::run_batch(small_jobs(3), options);

  ASSERT_EQ(events.size(), 3u);
  for (const auto& job : batch.jobs) {
    ASSERT_TRUE(job.ok);
    EXPECT_EQ(events.at(job.name), job.summary.iterations)
        << "observer events must match the reported iteration count";
  }
}

TEST(Batch, WarmSizesFeedTheSessionWarmStart) {
  // Size once cold, replay the final sizes as a sparse warm start: the
  // second batch must converge in fewer iterations. Loosen the bounds so
  // the cold run actually converges on this small generated circuit.
  auto loosen = [](std::vector<runtime::BatchJob> jobs) {
    for (auto& job : jobs) {
      job.options.bound_factors.delay = 1.2;
      job.options.bound_factors.noise = 0.2;
    }
    return jobs;
  };
  auto cold = runtime::run_batch(loosen(small_jobs(1)), batch_options(1));
  ASSERT_TRUE(cold.jobs[0].ok);
  ASSERT_TRUE(cold.jobs[0].flow.has_value());
  ASSERT_TRUE(cold.jobs[0].summary.converged);

  const netlist::Circuit& circuit = cold.jobs[0].flow->circuit;
  auto warm_jobs = loosen(small_jobs(1));
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    warm_jobs[0].warm_sizes.emplace_back(v, circuit.size(v));
  }
  auto warm = runtime::run_batch(std::move(warm_jobs), batch_options(1));
  ASSERT_TRUE(warm.jobs[0].ok);
  EXPECT_LT(warm.jobs[0].summary.iterations, cold.jobs[0].summary.iterations);
}

TEST(Batch, CsvHasOneRowPerJobPlusHeader) {
  auto batch = runtime::run_batch(small_jobs(3), batch_options(1));
  const std::string csv = runtime::batch_csv(batch);
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);  // header + 3 jobs
  EXPECT_EQ(csv.find("name,seed,ok"), 0u);
  EXPECT_NE(csv.find("job0,1,1,"), std::string::npos);
}

}  // namespace
}  // namespace lrsizer
