// Tests for the observability subsystem (src/obs/): registry data-model
// validation and idempotence, histogram invariants, Prometheus text
// exposition 0.0.4 (escaping, value formatting, cumulative buckets, a golden
// scrape of a hand-built registry), the HTTP/1.1 request parser's defensive
// posture, and trace-event JSON — including the contract that tracing never
// perturbs the flow (FlowResult bit-identical with tracing on vs off).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "obs/gzip.hpp"
#include "obs/http.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/json.hpp"

namespace {

using namespace lrsizer;
using obs::Registry;

// ---- data-model validation --------------------------------------------------

TEST(ObsRegistry, MetricNameValidation) {
  EXPECT_TRUE(Registry::valid_metric_name("lrsizer_serve_accepted_total"));
  EXPECT_TRUE(Registry::valid_metric_name("a"));
  EXPECT_TRUE(Registry::valid_metric_name("_leading_underscore"));
  EXPECT_TRUE(Registry::valid_metric_name("ns:subsystem:name"));
  EXPECT_TRUE(Registry::valid_metric_name(":colon_first"));
  EXPECT_FALSE(Registry::valid_metric_name(""));
  EXPECT_FALSE(Registry::valid_metric_name("0leading_digit"));
  EXPECT_FALSE(Registry::valid_metric_name("has-dash"));
  EXPECT_FALSE(Registry::valid_metric_name("has space"));
  EXPECT_FALSE(Registry::valid_metric_name("unicode_\xc3\xa9"));
}

TEST(ObsRegistry, LabelNameValidation) {
  EXPECT_TRUE(Registry::valid_label_name("outcome"));
  EXPECT_TRUE(Registry::valid_label_name("_private"));
  EXPECT_TRUE(Registry::valid_label_name("le"));  // valid name, just reserved
  EXPECT_FALSE(Registry::valid_label_name(""));
  EXPECT_FALSE(Registry::valid_label_name("9starts_with_digit"));
  EXPECT_FALSE(Registry::valid_label_name("with:colon"));  // labels: no colons
  EXPECT_FALSE(Registry::valid_label_name("with-dash"));
}

TEST(ObsRegistry, InvalidNamesThrowAtRegistration) {
  Registry reg;
  EXPECT_THROW((void)reg.counter("bad-name", "h"), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("1bad", "h"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("ok_total", "h", {{"bad-label", "v"}}),
               std::invalid_argument);
  // 'le' is reserved for the histogram renderer on every metric kind.
  EXPECT_THROW((void)reg.counter("ok_total", "h", {{"le", "v"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("h_seconds", "h", {1.0}, {{"le", "v"}}),
               std::invalid_argument);
}

TEST(ObsRegistry, HistogramBoundsMustBeAscendingAndFinite) {
  Registry reg;
  EXPECT_THROW((void)reg.histogram("h1", "h", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("h2", "h", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)reg.histogram("h3", "h",
                          {1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
  EXPECT_NO_THROW((void)reg.histogram("h4", "h", {0.5, 1.0, 2.0}));
}

// ---- registration semantics -------------------------------------------------

TEST(ObsRegistry, RegistrationIsIdempotentPerNameAndLabels) {
  Registry reg;
  obs::Counter* a = reg.counter("jobs_total", "Jobs.", {{"outcome", "ok"}});
  obs::Counter* again = reg.counter("jobs_total", "Jobs.", {{"outcome", "ok"}});
  EXPECT_EQ(a, again);  // same series: same instrument, accumulates
  obs::Counter* other =
      reg.counter("jobs_total", "Jobs.", {{"outcome", "failed"}});
  EXPECT_NE(a, other);
  // Label order is not identity: {a,b} and {b,a} are one series.
  obs::Counter* ab =
      reg.counter("pair_total", "P.", {{"a", "1"}, {"b", "2"}});
  obs::Counter* ba =
      reg.counter("pair_total", "P.", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
}

TEST(ObsRegistry, TypeAndHelpCollisionsThrow) {
  Registry reg;
  (void)reg.counter("jobs_total", "Jobs.");
  EXPECT_THROW((void)reg.gauge("jobs_total", "Jobs."), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("jobs_total", "Jobs.", {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.counter("jobs_total", "Different help."),
               std::invalid_argument);
  // Histogram bucket layout is per-family: a second series must match.
  (void)reg.histogram("lat_seconds", "L.", {0.1, 1.0}, {{"k", "a"}});
  EXPECT_THROW(
      (void)reg.histogram("lat_seconds", "L.", {0.5, 1.0}, {{"k", "b"}}),
      std::invalid_argument);
}

TEST(ObsRegistry, CallbackMetricsReplaceAndRemoveByOwner) {
  Registry reg;
  const int owner_a = 0, owner_b = 0;
  reg.gauge_fn("depth", "D.", {}, [] { return 1.0; }, &owner_a);
  reg.gauge_fn("depth", "D.", {}, [] { return 2.0; }, &owner_a);  // replaces
  reg.counter_fn("ticks_total", "T.", {}, [] { return 7.0; }, &owner_b);

  auto value_of = [&](const std::string& name) -> double {
    for (const auto& family : reg.snapshot()) {
      if (family.name == name && !family.samples.empty()) {
        return family.samples[0].value;
      }
    }
    return std::nan("");
  };
  EXPECT_EQ(value_of("depth"), 2.0);
  EXPECT_EQ(value_of("ticks_total"), 7.0);

  reg.remove_owner(&owner_a);
  bool depth_present = false;
  for (const auto& family : reg.snapshot()) {
    if (family.name == "depth" && !family.samples.empty()) {
      depth_present = true;
    }
  }
  EXPECT_FALSE(depth_present);
  EXPECT_EQ(value_of("ticks_total"), 7.0);  // other owner untouched
}

TEST(ObsRegistry, SnapshotIsSortedByFamilyName) {
  Registry reg;
  (void)reg.counter("zz_total", "z");
  (void)reg.counter("aa_total", "a");
  (void)reg.gauge("mm", "m");
  const auto families = reg.snapshot();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aa_total");
  EXPECT_EQ(families[1].name, "mm");
  EXPECT_EQ(families[2].name, "zz_total");
}

// ---- histogram invariants ---------------------------------------------------

TEST(ObsHistogram, BucketAssignmentAndTotals) {
  Registry reg;
  obs::Histogram* h = reg.histogram("lat_seconds", "L.", {0.1, 1.0, 10.0});
  // le is inclusive: an observation exactly on a bound lands in that bucket.
  h->observe(0.1);
  h->observe(0.05);
  h->observe(0.5);
  h->observe(100.0);  // +Inf overflow bucket
  EXPECT_EQ(h->bucket_count(0), 2u);  // <= 0.1
  EXPECT_EQ(h->bucket_count(1), 1u);  // (0.1, 1.0]
  EXPECT_EQ(h->bucket_count(2), 0u);  // (1.0, 10.0]
  EXPECT_EQ(h->bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.1 + 0.05 + 0.5 + 100.0);
}

TEST(ObsHistogram, SnapshotBucketsSumToCount) {
  Registry reg;
  obs::Histogram* h = reg.histogram("lat_seconds", "L.", {1.0, 2.0});
  for (int i = 0; i < 100; ++i) h->observe(static_cast<double>(i % 4));
  const auto families = reg.snapshot();
  ASSERT_EQ(families.size(), 1u);
  const auto& hv = families[0].samples[0].histogram;
  ASSERT_TRUE(hv.has_value());
  ASSERT_EQ(hv->counts.size(), hv->bounds.size() + 1);  // +Inf slot
  std::uint64_t total = 0;
  for (const std::uint64_t c : hv->counts) total += c;
  EXPECT_EQ(total, hv->count);  // cumulative +Inf bucket == _count invariant
  EXPECT_EQ(hv->count, 100u);
}

// ---- Prometheus exposition --------------------------------------------------

TEST(ObsPrometheus, EscapingRules) {
  EXPECT_EQ(obs::escape_help("plain"), "plain");
  EXPECT_EQ(obs::escape_help("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(obs::escape_help("say \"hi\""), "say \"hi\"");  // quotes pass
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(ObsPrometheus, FormatValue) {
  EXPECT_EQ(obs::format_value(0.0), "0");
  EXPECT_EQ(obs::format_value(1.0), "1");
  EXPECT_EQ(obs::format_value(-3.0), "-3");
  EXPECT_EQ(obs::format_value(1e15), "1000000000000000");
  EXPECT_EQ(obs::format_value(0.5), "0.5");
  EXPECT_EQ(obs::format_value(0.005), "0.005");
  EXPECT_EQ(obs::format_value(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::format_value(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(obs::format_value(std::nan("")), "NaN");
}

TEST(ObsPrometheus, GoldenExposition) {
  // A hand-built registry with every metric kind and every escaping hazard;
  // the render must match this golden byte for byte. Families sort by name,
  // labels sort by label name, histogram buckets are cumulative with +Inf.
  Registry reg;
  obs::Histogram* lat =
      reg.histogram("demo_latency_seconds", "Latency.", {0.1, 0.5, 2.5});
  lat->observe(0.05);
  lat->observe(0.3);
  lat->observe(0.3);
  lat->observe(9.0);
  reg.counter("demo_jobs_total", "Jobs done, by outcome.",
              {{"outcome", "ok"}})
      ->inc(41);
  reg.counter("demo_jobs_total", "Jobs done, by outcome.",
              {{"outcome", "failed"}})
      ->inc();
  reg.gauge("demo_build_info", "Build metadata; value 1.\nSecond line \\ :)",
            {{"version", "lrsizer \"0.6.0\""}})
      ->set(1.0);

  const std::string expected =
      "# HELP demo_build_info Build metadata; value 1.\\nSecond line \\\\ :)\n"
      "# TYPE demo_build_info gauge\n"
      "demo_build_info{version=\"lrsizer \\\"0.6.0\\\"\"} 1\n"
      "# HELP demo_jobs_total Jobs done, by outcome.\n"
      "# TYPE demo_jobs_total counter\n"
      "demo_jobs_total{outcome=\"ok\"} 41\n"
      "demo_jobs_total{outcome=\"failed\"} 1\n"
      "# HELP demo_latency_seconds Latency.\n"
      "# TYPE demo_latency_seconds histogram\n"
      "demo_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "demo_latency_seconds_bucket{le=\"0.5\"} 3\n"
      "demo_latency_seconds_bucket{le=\"2.5\"} 3\n"
      "demo_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "demo_latency_seconds_sum 9.65\n"
      "demo_latency_seconds_count 4\n";
  EXPECT_EQ(obs::render_prometheus(reg.snapshot()), expected);
}

TEST(ObsPrometheus, RenderedNamesAndLabelsAreAlwaysValid) {
  // Render a registry exercising odd-but-legal shapes and re-check every
  // sample line against the data-model grammar.
  Registry reg;
  (void)reg.counter("a:b_total", "h", {{"_x", "weird \" value\n"}});
  obs::Histogram* h = reg.histogram("h_seconds", "h", {1.0});
  h->observe(0.5);
  const std::string text = obs::render_prometheus(reg.snapshot());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(Registry::valid_metric_name(line.substr(0, name_end))) << line;
  }
}

// ---- HTTP request parser ----------------------------------------------------

obs::HttpRequestParser::State feed_string(obs::HttpRequestParser& parser,
                                          const std::string& bytes) {
  return parser.feed(bytes.data(), bytes.size());
}

TEST(ObsHttp, ParsesAWellFormedGet) {
  obs::HttpRequestParser parser;
  const auto state = feed_string(
      parser, "GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
  ASSERT_EQ(state, obs::HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
}

TEST(ObsHttp, ParsesIncrementallyByteByByte) {
  obs::HttpRequestParser parser;
  const std::string request = "GET /healthz HTTP/1.0\r\n\r\n";
  for (std::size_t i = 0; i + 1 < request.size(); ++i) {
    ASSERT_EQ(parser.feed(&request[i], 1),
              obs::HttpRequestParser::State::kIncomplete)
        << "completed early at byte " << i;
  }
  EXPECT_EQ(parser.feed(&request[request.size() - 1], 1),
            obs::HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/healthz");
}

TEST(ObsHttp, BareLfIsRejected) {
  obs::HttpRequestParser parser;
  EXPECT_EQ(feed_string(parser, "GET /metrics HTTP/1.1\n\n"),
            obs::HttpRequestParser::State::kBad);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ObsHttp, OversizedHeaderSectionIsRejected) {
  obs::HttpRequestParser small(64);
  EXPECT_EQ(feed_string(small, std::string(65, 'A')),
            obs::HttpRequestParser::State::kBad);
  EXPECT_EQ(small.error_status(), 400);
  // Default cap: an endless request line stops buffering at 8 KiB.
  obs::HttpRequestParser parser;
  EXPECT_EQ(feed_string(parser, "GET /" + std::string(9000, 'a')),
            obs::HttpRequestParser::State::kBad);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ObsHttp, MalformedRequestLinesAreRejected) {
  const std::vector<std::string> bad = {
      "\r\n\r\n",                          // empty request line
      "GET\r\n\r\n",                       // one token
      "GET /metrics\r\n\r\n",              // two tokens
      "GET /metrics HTTP/1.1 extra\r\n\r\n",
      "GET /metrics FTP/1.1\r\n\r\n",      // not an HTTP version
      "G@T /metrics HTTP/1.1\r\n\r\n",     // non-token byte in method
      " GET /metrics HTTP/1.1\r\n\r\n",    // leading space
  };
  for (const std::string& request : bad) {
    obs::HttpRequestParser parser;
    EXPECT_EQ(feed_string(parser, request),
              obs::HttpRequestParser::State::kBad)
        << request;
    EXPECT_EQ(parser.error_status(), 400) << request;
    EXPECT_FALSE(parser.error_reason().empty()) << request;
  }
}

TEST(ObsHttp, NonGetMethodsParseAndRoutingRejectsThem) {
  // Any token is a valid method at the parse layer (405 is routing's job) —
  // so the parser must complete, not 400.
  obs::HttpRequestParser parser;
  ASSERT_EQ(feed_string(parser, "DELETE /metrics HTTP/1.1\r\n\r\n"),
            obs::HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "DELETE");
}

TEST(ObsHttp, StateLatchesAfterCompletion) {
  obs::HttpRequestParser parser;
  ASSERT_EQ(feed_string(parser, "GET / HTTP/1.1\r\n\r\n"),
            obs::HttpRequestParser::State::kComplete);
  // One request per connection: trailing bytes don't reset or corrupt.
  EXPECT_EQ(feed_string(parser, "GET /other HTTP/1.1\r\n\r\n"),
            obs::HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/");
}

TEST(ObsHttp, ResponseHasContentLengthAndConnectionClose) {
  const std::string response =
      obs::http_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  const std::size_t body = response.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  EXPECT_EQ(response.substr(body + 4), "ok\n");
}

// ---- gzip /metrics path -----------------------------------------------------

TEST(ObsHttp, AcceptGzipScansAcceptEncodingHeaders) {
  struct Case {
    const char* headers;
    bool expect;
  };
  const Case cases[] = {
      {"Host: x\r\n", false},                                // header absent
      {"Accept-Encoding: gzip\r\n", true},                   // plain
      {"accept-encoding: GZIP\r\n", true},                   // case-insensitive
      {"Accept-Encoding: deflate, gzip;q=0.5\r\n", true},    // listed with q
      {"Accept-Encoding: gzip;q=0\r\n", false},              // explicitly refused
      {"Accept-Encoding: gzip; q=0.000\r\n", false},         // q with spaces
      {"Accept-Encoding: x-gzip\r\n", true},                 // legacy alias
      {"Accept-Encoding: deflate, br\r\n", false},           // other codings only
      {"Accept-Encoding: mygzip\r\n", false},                // not a token match
  };
  for (const Case& c : cases) {
    obs::HttpRequestParser parser;
    const auto state = feed_string(
        parser, std::string("GET /metrics HTTP/1.1\r\n") + c.headers + "\r\n");
    ASSERT_EQ(state, obs::HttpRequestParser::State::kComplete) << c.headers;
    EXPECT_EQ(parser.accept_gzip(), c.expect) << c.headers;
  }
}

TEST(ObsGzip, CompressDecompressRoundTrip) {
  if (!obs::gzip_available()) GTEST_SKIP() << "built without zlib";
  // A repetitive Prometheus-shaped payload: must round-trip exactly and
  // actually shrink.
  std::string body;
  for (int i = 0; i < 200; ++i) {
    body += "lrsizer_jobs_total{status=\"ok\",profile=\"c432\"} " +
            std::to_string(i) + "\n";
  }
  std::string gzipped;
  ASSERT_TRUE(obs::gzip_compress(body, &gzipped));
  ASSERT_GE(gzipped.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(gzipped[0]), 0x1f);  // gzip magic
  EXPECT_EQ(static_cast<unsigned char>(gzipped[1]), 0x8b);
  EXPECT_LT(gzipped.size(), body.size());
  std::string restored;
  ASSERT_TRUE(obs::gzip_decompress(gzipped, &restored));
  EXPECT_EQ(restored, body);

  // Garbage is rejected, not crashed on.
  std::string out;
  EXPECT_FALSE(obs::gzip_decompress("definitely not gzip", &out));
}

TEST(ObsHttp, MetricsScrapeRoundTripsThroughGzipResponse) {
  if (!obs::gzip_available()) GTEST_SKIP() << "built without zlib";
  // End-to-end shape of the serve /metrics gzip arm: negotiate via the
  // parser, compress the exposition, splice the encoding headers, then play
  // the client and recover the body from the response bytes.
  obs::HttpRequestParser parser;
  ASSERT_EQ(feed_string(parser,
                        "GET /metrics HTTP/1.1\r\nHost: x\r\n"
                        "Accept-Encoding: deflate, gzip\r\n\r\n"),
            obs::HttpRequestParser::State::kComplete);
  ASSERT_TRUE(parser.accept_gzip());

  const std::string body = "# TYPE lrsizer_up gauge\nlrsizer_up 1\n";
  std::string gzipped;
  ASSERT_TRUE(obs::gzip_compress(body, &gzipped));
  const std::string response = obs::http_response(
      200, "OK", "text/plain; version=0.0.4; charset=utf-8", gzipped,
      "Content-Encoding: gzip\r\nVary: Accept-Encoding\r\n");

  EXPECT_NE(response.find("Content-Encoding: gzip\r\n"), std::string::npos);
  EXPECT_NE(response.find("Vary: Accept-Encoding\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: " + std::to_string(gzipped.size()) +
                          "\r\n"),
            std::string::npos);
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  std::string restored;
  ASSERT_TRUE(obs::gzip_decompress(response.substr(split + 4), &restored));
  EXPECT_EQ(restored, body);
}

// ---- tracing ----------------------------------------------------------------

TEST(ObsTrace, NullSessionScopedSpanIsANoOp) {
  obs::ScopedSpan span(nullptr, "x", "y");
  span.arg("k", 1.0);
  span.finish();  // must not crash; nothing to record into
}

TEST(ObsTrace, DumpJsonIsValidChromeTraceFormat) {
  obs::TraceSession trace;
  {
    obs::ScopedSpan span(&trace, "outer", "test");
    span.arg("k", 3.0);
  }
  trace.record("inner", "test", 1, 2, {{"dual", 0.25}});
  ASSERT_EQ(trace.span_count(), 2u);

  const runtime::Json doc = runtime::Json::parse(trace.dump_json());
  EXPECT_EQ(doc.at("schema").as_string(), "lrsizer-trace-v1");
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& event : events) {
    EXPECT_EQ(event.at("ph").as_string(), "X");  // complete spans only
    EXPECT_TRUE(event.at("ts").is_number());
    EXPECT_TRUE(event.at("dur").is_number());
    EXPECT_TRUE(event.at("pid").is_number());
    EXPECT_TRUE(event.at("tid").is_number());
  }
  EXPECT_EQ(events[1].at("name").as_string(), "inner");
  EXPECT_DOUBLE_EQ(events[1].at("args").at("dual").as_number(), 0.25);
}

netlist::LogicNetlist traced_test_circuit() {
  netlist::GeneratorSpec spec;
  spec.num_gates = 60;
  spec.num_wires = 140;
  spec.num_inputs = 10;
  spec.num_outputs = 6;
  spec.seed = 11;
  return netlist::generate_circuit(spec);
}

TEST(ObsTrace, FlowTracingCoversStagesIterationsAndPasses) {
  obs::TraceSession trace;
  api::SizingSession session(traced_test_circuit(), {});
  session.set_trace(&trace);
  ASSERT_TRUE(session.run_all().ok());
  const auto& result = session.result();

  std::size_t iterations = 0, passes = 0;
  std::set<std::string> names;
  bool iteration_has_metadata = false;
  for (const auto& span : trace.spans()) {
    names.insert(span.name);
    if (span.name == "ogws_iteration") {
      ++iterations;
      bool has_dual = false, has_kkt = false;
      for (const auto& [key, value] : span.args) {
        if (key == "dual") has_dual = true;
        if (key == "max_kkt_violation") has_kkt = true;
        (void)value;
      }
      iteration_has_metadata = iteration_has_metadata || (has_dual && has_kkt);
    }
    if (span.name == "lrs_pass") ++passes;
  }
  // One span per stage of the staged flow.
  for (const char* stage : {"elaborate", "simulate_and_order", "derive_bounds",
                            "size"}) {
    EXPECT_EQ(names.count(stage), 1u) << "missing stage span: " << stage;
  }
  // One span per OGWS iteration, each carrying its dual/KKT metadata, and at
  // least one LRS pass inside every iteration.
  EXPECT_EQ(iterations, static_cast<std::size_t>(result.ogws.iterations));
  EXPECT_TRUE(iteration_has_metadata);
  EXPECT_GE(passes, iterations);
}

TEST(ObsTrace, TracingDoesNotPerturbTheFlowBitIdentically) {
  const auto logic = traced_test_circuit();
  api::SizingSession plain(logic, {});
  ASSERT_TRUE(plain.run_all().ok());

  obs::TraceSession trace;
  api::SizingSession traced(logic, {});
  traced.set_trace(&trace);
  ASSERT_TRUE(traced.run_all().ok());
  EXPECT_GT(trace.span_count(), 0u);

  const core::FlowResult& a = plain.result();
  const core::FlowResult& b = traced.result();
  EXPECT_EQ(a.circuit.sizes(), b.circuit.sizes());  // bit-exact doubles
  EXPECT_EQ(a.ogws.iterations, b.ogws.iterations);
  EXPECT_EQ(a.ogws.converged, b.ogws.converged);
  EXPECT_EQ(a.final_metrics.delay_s, b.final_metrics.delay_s);
  EXPECT_EQ(a.final_metrics.area_um2, b.final_metrics.area_um2);
}

}  // namespace
