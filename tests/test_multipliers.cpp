// Multiplier state: flow conservation (Theorem 3), projection, μ extraction.
#include <gtest/gtest.h>

#include "core/multipliers.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

TEST(Multipliers, DefaultInitSatisfiesKcl) {
  const auto f = Fig1Circuit::make();
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  EXPECT_LT(m.flow_residual(f.circuit), 1e-12);
  // Sink in-edges were seeded at 1.
  EXPECT_DOUBLE_EQ(m.sink_mu(f.circuit), 1.0);
}

TEST(Multipliers, ProjectionRestoresKclAfterRandomPerturbation) {
  const auto f = Fig1Circuit::make();
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  util::Rng rng(3);
  for (double& l : m.lambda) l += rng.uniform(0.0, 2.0);
  EXPECT_GT(m.flow_residual(f.circuit), 0.01);  // perturbed
  m.project_flow(f.circuit);
  EXPECT_LT(m.flow_residual(f.circuit), 1e-12);
}

TEST(Multipliers, ProjectionPreservesSinkEdges) {
  // Sink in-edges are the A0-constraint multipliers — the projection must
  // not rescale them (they are the boundary values that drive everything).
  const auto f = Fig1Circuit::make();
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  for (netlist::EdgeId e : f.circuit.input_edges(f.circuit.sink())) {
    m.lambda[static_cast<std::size_t>(e)] = 3.5;
  }
  m.project_flow(f.circuit);
  for (netlist::EdgeId e : f.circuit.input_edges(f.circuit.sink())) {
    EXPECT_DOUBLE_EQ(m.lambda[static_cast<std::size_t>(e)], 3.5);
  }
  EXPECT_LT(m.flow_residual(f.circuit), 1e-12);
}

TEST(Multipliers, SinkPressurePropagatesToSource) {
  // Scaling the sink edges by 10 must scale every multiplier by 10 after
  // projection (total flow is set at the sink boundary).
  const auto f = Fig1Circuit::make();
  core::MultiplierState a(f.circuit);
  a.init_default(f.circuit);
  core::MultiplierState b(f.circuit);
  b.init_default(f.circuit);
  for (netlist::EdgeId e : f.circuit.input_edges(f.circuit.sink())) {
    b.lambda[static_cast<std::size_t>(e)] *= 10.0;
  }
  b.project_flow(f.circuit);
  for (netlist::EdgeId e = 0; e < f.circuit.num_edges(); ++e) {
    EXPECT_NEAR(b.lambda[static_cast<std::size_t>(e)],
                10.0 * a.lambda[static_cast<std::size_t>(e)], 1e-12);
  }
}

TEST(Multipliers, ZeroInEdgesGetEqualShares) {
  const auto c = ChainCircuit::make();
  core::MultiplierState m(c.circuit);
  std::fill(m.lambda.begin(), m.lambda.end(), 0.0);
  for (netlist::EdgeId e : c.circuit.input_edges(c.circuit.sink())) {
    m.lambda[static_cast<std::size_t>(e)] = 4.0;
  }
  m.project_flow(c.circuit);
  EXPECT_LT(m.flow_residual(c.circuit), 1e-12);
  // The chain has one path: every edge carries the full flow.
  for (netlist::EdgeId e = 0; e < c.circuit.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(m.lambda[static_cast<std::size_t>(e)], 4.0);
  }
}

TEST(Multipliers, ComputeMuSumsInEdges) {
  const auto f = Fig1Circuit::make();
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  std::vector<double> mu;
  m.compute_mu(f.circuit, mu);
  ASSERT_EQ(mu.size(), static_cast<std::size_t>(f.circuit.num_nodes()));
  EXPECT_DOUBLE_EQ(mu[0], 0.0);  // source has no in-edges
  for (netlist::NodeId v = 1; v < f.circuit.num_nodes(); ++v) {
    double manual = 0.0;
    for (netlist::EdgeId e : f.circuit.input_edges(v)) {
      manual += m.lambda[static_cast<std::size_t>(e)];
    }
    EXPECT_DOUBLE_EQ(mu[static_cast<std::size_t>(v)], manual);
  }
  // KCL in μ form: μ_i equals the out-sum for internal nodes — so total
  // sink μ equals total source outflow.
  EXPECT_NEAR(m.sink_mu(f.circuit), 1.0, 1e-12);
}

TEST(Multipliers, ClampNonnegative) {
  const auto c = ChainCircuit::make();
  core::MultiplierState m(c.circuit);
  m.lambda[0] = -5.0;
  m.beta = -1.0;
  m.gamma = -2.0;
  m.clamp_nonnegative();
  EXPECT_DOUBLE_EQ(m.lambda[0], 0.0);
  EXPECT_DOUBLE_EQ(m.beta, 0.0);
  EXPECT_DOUBLE_EQ(m.gamma, 0.0);
}

TEST(Multipliers, FlowConservationMeansMuInEqualsOut) {
  // After projection, μ_i = Σ out-edges for every component: Theorem 3.
  const auto f = Fig1Circuit::make();
  core::MultiplierState m(f.circuit);
  m.init_default(f.circuit);
  util::Rng rng(5);
  for (double& l : m.lambda) l *= rng.uniform(0.5, 2.0);
  m.project_flow(f.circuit);
  std::vector<double> mu;
  m.compute_mu(f.circuit, mu);
  for (netlist::NodeId v = 1; v < f.circuit.sink(); ++v) {
    double out = 0.0;
    for (netlist::EdgeId e : f.circuit.output_edges(v)) {
      out += m.lambda[static_cast<std::size_t>(e)];
    }
    EXPECT_NEAR(mu[static_cast<std::size_t>(v)], out,
                1e-12 * std::max(1.0, out));
  }
}

}  // namespace
