// Fanin-cone hashes (netlist/cone_hash.hpp) against netlist_hash: what each
// is invariant to, and the Merkle property that a single edit dirties
// exactly its fan-out cone — the contract eco::DeltaAnalyzer builds on.
#include <algorithm>
#include <cstdint>
#include <queue>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "eco/delta.hpp"
#include "netlist/cone_hash.hpp"
#include "netlist/generator.hpp"
#include "netlist/hash.hpp"
#include "netlist/iscas_profiles.hpp"
#include "netlist/logic_netlist.hpp"

namespace {

using namespace lrsizer;
using netlist::LogicNetlist;
using netlist::LogicOp;

// a,b,c inputs; g=AND(a,b), h=OR(b,c), i=XOR(g,h) PO, j=NAND(g,c) PO.
// Indices: a0 b1 c2 g3 h4 i5 j6.
LogicNetlist diamond() {
  LogicNetlist n;
  n.add_input("a");
  n.add_input("b");
  n.add_input("c");
  n.add_gate("g", LogicOp::kAnd, {0, 1});
  n.add_gate("h", LogicOp::kOr, {1, 2});
  n.add_gate("i", LogicOp::kXor, {3, 4});
  n.add_gate("j", LogicOp::kNand, {3, 2});
  n.mark_output(5);
  n.mark_output(6);
  n.finalize();
  return n;
}

/// Gates whose cone hash differs between two same-size netlists.
std::set<std::int32_t> changed_cones(const LogicNetlist& a, const LogicNetlist& b) {
  const auto ca = netlist::cone_hashes(a);
  const auto cb = netlist::cone_hashes(b);
  EXPECT_EQ(ca.size(), cb.size());
  std::set<std::int32_t> changed;
  for (std::size_t g = 0; g < ca.size(); ++g) {
    if (ca[g] != cb[g]) changed.insert(static_cast<std::int32_t>(g));
  }
  return changed;
}

/// `root` plus its transitive fan-out, via an explicit BFS over fanins —
/// the oracle the Merkle property is checked against.
std::set<std::int32_t> fanout_closure(const LogicNetlist& n, std::int32_t root) {
  std::vector<std::vector<std::int32_t>> fanout(
      static_cast<std::size_t>(n.num_gates_logic()));
  for (std::int32_t g = 0; g < n.num_gates_logic(); ++g) {
    for (const std::int32_t f : n.gate(g).fanin) {
      fanout[static_cast<std::size_t>(f)].push_back(g);
    }
  }
  std::set<std::int32_t> seen{root};
  std::queue<std::int32_t> work;
  work.push(root);
  while (!work.empty()) {
    const std::int32_t g = work.front();
    work.pop();
    for (const std::int32_t s : fanout[static_cast<std::size_t>(g)]) {
      if (seen.insert(s).second) work.push(s);
    }
  }
  return seen;
}

TEST(ConeHash, DeterministicAcrossRebuilds) {
  const LogicNetlist a = diamond();
  const LogicNetlist b = diamond();
  EXPECT_EQ(netlist::netlist_hash(a), netlist::netlist_hash(b));
  EXPECT_EQ(netlist::cone_hashes(a), netlist::cone_hashes(b));
}

TEST(ConeHash, IgnoresDefinitionOrderUnlikeNetlistHash) {
  const LogicNetlist a = diamond();
  // Same structure with h defined before g: h3 g4 i5 j6.
  LogicNetlist b;
  b.add_input("a");
  b.add_input("b");
  b.add_input("c");
  b.add_gate("h", LogicOp::kOr, {1, 2});
  b.add_gate("g", LogicOp::kAnd, {0, 1});
  b.add_gate("i", LogicOp::kXor, {4, 3});
  b.add_gate("j", LogicOp::kNand, {4, 2});
  b.mark_output(5);
  b.mark_output(6);
  b.finalize();

  // netlist_hash keys the cache on definition order; cone hashes see only
  // the structure behind each gate.
  EXPECT_NE(netlist::netlist_hash(a), netlist::netlist_hash(b));
  auto ca = netlist::cone_hashes(a);
  auto cb = netlist::cone_hashes(b);
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  EXPECT_EQ(ca, cb);
}

TEST(ConeHash, RenameDirtiesExactlyTheFanoutCone) {
  const LogicNetlist a = diamond();
  LogicNetlist b;
  b.add_input("a");
  b.add_input("b");
  b.add_input("c");
  b.add_gate("g2", LogicOp::kAnd, {0, 1});  // renamed
  b.add_gate("h", LogicOp::kOr, {1, 2});
  b.add_gate("i", LogicOp::kXor, {3, 4});
  b.add_gate("j", LogicOp::kNand, {3, 2});
  b.mark_output(5);
  b.mark_output(6);
  b.finalize();

  EXPECT_NE(netlist::netlist_hash(a), netlist::netlist_hash(b));
  EXPECT_EQ(changed_cones(a, b), (std::set<std::int32_t>{3, 5, 6}));
}

TEST(ConeHash, OutputMarkFlipDirtiesTheGateAndItsFanout) {
  const LogicNetlist a = diamond();
  LogicNetlist b = diamond();
  // Rebuild with g additionally marked as a primary output.
  LogicNetlist c;
  c.add_input("a");
  c.add_input("b");
  c.add_input("c");
  c.add_gate("g", LogicOp::kAnd, {0, 1});
  c.add_gate("h", LogicOp::kOr, {1, 2});
  c.add_gate("i", LogicOp::kXor, {3, 4});
  c.add_gate("j", LogicOp::kNand, {3, 2});
  c.mark_output(3);
  c.mark_output(5);
  c.mark_output(6);
  c.finalize();

  EXPECT_NE(netlist::netlist_hash(a), netlist::netlist_hash(c));
  EXPECT_EQ(changed_cones(a, c), (std::set<std::int32_t>{3, 5, 6}));
}

TEST(ConeHash, FaninReorderDirtiesTheFanoutCone) {
  const LogicNetlist a = diamond();
  LogicNetlist b;
  b.add_input("a");
  b.add_input("b");
  b.add_input("c");
  b.add_gate("g", LogicOp::kAnd, {1, 0});  // swapped fanin order
  b.add_gate("h", LogicOp::kOr, {1, 2});
  b.add_gate("i", LogicOp::kXor, {3, 4});
  b.add_gate("j", LogicOp::kNand, {3, 2});
  b.mark_output(5);
  b.mark_output(6);
  b.finalize();

  EXPECT_NE(netlist::netlist_hash(a), netlist::netlist_hash(b));
  EXPECT_EQ(changed_cones(a, b), (std::set<std::int32_t>{3, 5, 6}));
}

TEST(ConeHash, OutputConeHashesFollowPrimaryOutputOrder) {
  const LogicNetlist n = diamond();
  const auto cones = netlist::cone_hashes(n);
  const auto outputs = netlist::output_cone_hashes(n);
  ASSERT_EQ(outputs.size(), n.primary_outputs().size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i],
              cones[static_cast<std::size_t>(n.primary_outputs()[i])]);
  }
}

// The Merkle property on seeded generator circuits: flip one gate's op and
// the changed cones are exactly the gate plus its transitive fan-out, and
// DeltaAnalyzer reports the same partition with the edit as the sole root.
TEST(ConeHash, SingleEditDirtiesExactlyTheFanoutConeOnGeneratedCircuits) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const LogicNetlist base =
        netlist::generate_circuit(netlist::spec_for_profile("c432", seed));

    // First AND gate in definition order — deterministic, mid-circuit.
    std::int32_t edit = -1;
    for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
      if (base.gate(g).op == LogicOp::kAnd) {
        edit = g;
        break;
      }
    }
    ASSERT_GE(edit, 0) << "seed " << seed;

    LogicNetlist revised;
    for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
      const netlist::LogicGate& gate = base.gate(g);
      if (gate.op == LogicOp::kInput) {
        revised.add_input(gate.name);
      } else {
        revised.add_gate(gate.name, g == edit ? LogicOp::kOr : gate.op,
                         gate.fanin);
      }
      if (base.is_primary_output(g)) revised.mark_output(g);
    }
    revised.finalize();

    const std::set<std::int32_t> expected = fanout_closure(base, edit);
    EXPECT_EQ(changed_cones(base, revised), expected) << "seed " << seed;

    const eco::DeltaAnalyzer analyzer(base);
    const eco::Delta delta = analyzer.diff(revised);
    EXPECT_EQ(std::set<std::int32_t>(delta.dirty.begin(), delta.dirty.end()),
              expected)
        << "seed " << seed;
    EXPECT_EQ(delta.modified, std::vector<std::int32_t>{edit}) << "seed " << seed;
    EXPECT_EQ(delta.num_clean(),
              static_cast<std::size_t>(base.num_gates_logic()) - expected.size())
        << "seed " << seed;
    // Names are unique, so every clean gate matches its own index.
    for (std::int32_t g = 0; g < revised.num_gates_logic(); ++g) {
      if (expected.count(g) == 0) {
        EXPECT_EQ(delta.matched_base[static_cast<std::size_t>(g)], g);
      }
    }
  }
}

}  // namespace
