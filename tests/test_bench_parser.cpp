// ISCAS85 .bench parser: happy path (c17), formats, and error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_parser.hpp"
#include "netlist/logic_netlist.hpp"

namespace {

using namespace lrsizer;
using netlist::LogicOp;

TEST(BenchParser, ParsesC17) {
  const auto n = netlist::parse_bench_string(netlist::kIscas85C17);
  EXPECT_EQ(n.primary_inputs().size(), 5u);
  EXPECT_EQ(n.primary_outputs().size(), 2u);
  EXPECT_EQ(n.num_real_gates(), 6);
  EXPECT_EQ(n.depth(), 3);  // c17's longest path is 3 NAND levels
}

TEST(BenchParser, C17GateTypesAreNand) {
  const auto n = netlist::parse_bench_string(netlist::kIscas85C17);
  int nands = 0;
  for (const auto& g : n.gates()) {
    if (g.op == LogicOp::kNand) ++nands;
  }
  EXPECT_EQ(nands, 6);
}

TEST(BenchParser, HandlesForwardReferences) {
  // out is defined before its fanin.
  const auto n = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(out)\nout = NOT(mid)\nmid = BUF(a)\n");
  EXPECT_EQ(n.num_real_gates(), 2);
  EXPECT_EQ(n.depth(), 2);
}

TEST(BenchParser, AllGateTypes) {
  const auto n = netlist::parse_bench_string(
      "INPUT(a)\nINPUT(b)\n"
      "OUTPUT(o1)\nOUTPUT(o2)\nOUTPUT(o3)\nOUTPUT(o4)\n"
      "OUTPUT(o5)\nOUTPUT(o6)\nOUTPUT(o7)\nOUTPUT(o8)\n"
      "o1 = AND(a, b)\no2 = NAND(a, b)\no3 = OR(a, b)\no4 = NOR(a, b)\n"
      "o5 = XOR(a, b)\no6 = XNOR(a, b)\no7 = NOT(a)\no8 = BUFF(b)\n");
  const LogicOp expected[] = {LogicOp::kAnd, LogicOp::kNand, LogicOp::kOr,
                              LogicOp::kNor, LogicOp::kXor, LogicOp::kXnor,
                              LogicOp::kNot, LogicOp::kBuf};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(n.gate(2 + i).op, expected[i]) << "gate " << i;
  }
}

TEST(BenchParser, CommentsAndBlankLines) {
  const auto n = netlist::parse_bench_string(
      "# header comment\n\nINPUT(x)  # trailing comment\n\nOUTPUT(y)\n"
      "y = NOT(x)\n");
  EXPECT_EQ(n.num_real_gates(), 1);
}

TEST(BenchParser, CaseInsensitiveOps) {
  const auto n = netlist::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = nand(a, b)\n");
  EXPECT_EQ(n.gate(2).op, LogicOp::kNand);
}

TEST(BenchParser, SingleInputAndDegeneratesToBuf) {
  const auto n =
      netlist::parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n");
  EXPECT_EQ(n.gate(1).op, LogicOp::kBuf);
}

TEST(BenchParser, SingleInputNandDegeneratesToNot) {
  const auto n =
      netlist::parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = NAND(a)\n");
  EXPECT_EQ(n.gate(1).op, LogicOp::kNot);
}

TEST(BenchParser, ErrorUnknownOp) {
  EXPECT_THROW(
      netlist::parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"),
      netlist::BenchParseError);
}

TEST(BenchParser, ErrorUndefinedSignal) {
  try {
    netlist::parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n");
    FAIL() << "expected BenchParseError";
  } catch (const netlist::BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(BenchParser, ErrorDoubleDefinition) {
  EXPECT_THROW(netlist::parse_bench_string(
                   "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"),
               netlist::BenchParseError);
}

TEST(BenchParser, ErrorCombinationalCycle) {
  EXPECT_THROW(netlist::parse_bench_string(
                   "INPUT(a)\nOUTPUT(p)\np = NOT(q)\nq = NOT(p)\n"),
               netlist::BenchParseError);
}

TEST(BenchParser, ErrorMalformedLine) {
  EXPECT_THROW(netlist::parse_bench_string("INPUT(a)\nOUTPUT(y)\ny NOT(a)\n"),
               netlist::BenchParseError);
}

TEST(BenchParser, ErrorNoInputs) {
  EXPECT_THROW(netlist::parse_bench_string("OUTPUT(y)\ny = NOT(y)\n"),
               netlist::BenchParseError);
}

TEST(BenchParser, ErrorOutputUndefined) {
  EXPECT_THROW(netlist::parse_bench_string("INPUT(a)\nOUTPUT(nope)\n"),
               netlist::BenchParseError);
}

TEST(BenchParser, ErrorReportsLineNumber) {
  try {
    netlist::parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const netlist::BenchParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(BenchParser, ReadsSizeAnnotations) {
  // The shape `lrsizer --out` appends; ordinary comments are skipped, and
  // "# size" prose (non-integer third token) stays an ordinary comment.
  std::istringstream in(
      "# sized by lrsizer: c17 seed 1\n"
      "INPUT(a)\n"
      "#\n"
      "# size annotations follow\n"
      "# component sizes: node kind net size\n"
      "# size 4 gate G10 1.25\n"
      "# size 5 wire G10 0.5\n");
  const auto sizes = netlist::read_size_annotations(in);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0].first, 4);
  EXPECT_DOUBLE_EQ(sizes[0].second, 1.25);
  EXPECT_EQ(sizes[1].first, 5);
  EXPECT_DOUBLE_EQ(sizes[1].second, 0.5);
}

TEST(BenchParser, RejectsMalformedSizeAnnotations) {
  std::istringstream truncated("# size 4 gate\n");
  EXPECT_THROW(netlist::read_size_annotations(truncated), netlist::BenchParseError);
  std::istringstream negative("# size -2 gate G1 1.0\n");
  EXPECT_THROW(netlist::read_size_annotations(negative), netlist::BenchParseError);
  std::istringstream zero("# size 4 gate G1 0\n");
  EXPECT_THROW(netlist::read_size_annotations(zero), netlist::BenchParseError);
}

}  // namespace
