// Gate-type electrical differentiation (logical-effort-style complexity).
#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/builder.hpp"
#include "netlist/elaborator.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using netlist::LogicOp;

TEST(GateComplexity, InverterIsUnity) {
  EXPECT_DOUBLE_EQ(netlist::gate_complexity(LogicOp::kNot, 1), 1.0);
  EXPECT_DOUBLE_EQ(netlist::gate_complexity(LogicOp::kBuf, 1), 1.0);
}

TEST(GateComplexity, StacksGrowWithFanin) {
  EXPECT_LT(netlist::gate_complexity(LogicOp::kNand, 2),
            netlist::gate_complexity(LogicOp::kNand, 4));
  EXPECT_LT(netlist::gate_complexity(LogicOp::kNor, 2),
            netlist::gate_complexity(LogicOp::kNor, 4));
}

TEST(GateComplexity, NorCostsMoreThanNand) {
  // PMOS stacks are weaker: the NOR is the heavier cell at equal fanin.
  EXPECT_GT(netlist::gate_complexity(LogicOp::kNor, 2),
            netlist::gate_complexity(LogicOp::kNand, 2));
}

TEST(GateComplexity, AndOrIncludeTheExtraInverter) {
  EXPECT_GT(netlist::gate_complexity(LogicOp::kAnd, 2),
            netlist::gate_complexity(LogicOp::kNand, 2));
  EXPECT_GT(netlist::gate_complexity(LogicOp::kOr, 2),
            netlist::gate_complexity(LogicOp::kNor, 2));
}

TEST(GateComplexity, XorIsHeaviest) {
  EXPECT_GT(netlist::gate_complexity(LogicOp::kXor, 2),
            netlist::gate_complexity(LogicOp::kNor, 2));
}

TEST(Builder, ComplexityScalesElectricalWeights) {
  const netlist::TechParams tech;
  netlist::CircuitBuilder b(tech);
  const auto d = b.add_driver();
  const auto w = b.add_wire(100.0);
  const auto g = b.add_gate(0.0, 2.5);
  const auto w2 = b.add_wire(100.0);
  b.connect(d, w);
  b.connect(w, g);
  b.connect(g, w2);
  b.mark_primary_output(w2);
  const auto c = b.finalize();
  const auto v = b.node_of(g);
  EXPECT_DOUBLE_EQ(c.unit_res(v), tech.gate_unit_res * 2.5);
  EXPECT_DOUBLE_EQ(c.unit_cap(v), tech.gate_unit_cap * 2.5);
  EXPECT_DOUBLE_EQ(c.area_weight(v), tech.gate_area_per_size * 2.5);
}

TEST(Elaborator, DifferentiatedGatesAreHeavierThanUniform) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  netlist::ElabOptions uniform;
  uniform.differentiate_gate_types = false;
  netlist::ElabOptions typed;
  typed.differentiate_gate_types = true;
  const auto a = netlist::elaborate(logic, netlist::TechParams{}, uniform);
  const auto b = netlist::elaborate(logic, netlist::TechParams{}, typed);

  // c17 is all 2-input NANDs: complexity (2+2)/3 = 4/3 on every gate.
  const netlist::TechParams tech;
  for (netlist::NodeId v = b.circuit.first_component();
       v < b.circuit.end_component(); ++v) {
    if (!b.circuit.is_gate(v)) continue;
    EXPECT_NEAR(b.circuit.unit_res(v), tech.gate_unit_res * 4.0 / 3.0, 1e-9);
  }
  for (netlist::NodeId v = a.circuit.first_component();
       v < a.circuit.end_component(); ++v) {
    if (!a.circuit.is_gate(v)) continue;
    EXPECT_DOUBLE_EQ(a.circuit.unit_res(v), tech.gate_unit_res);
  }
}

TEST(Elaborator, DifferentiationSlowsTheUnsizedCircuit) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  netlist::ElabOptions uniform;
  netlist::ElabOptions typed;
  typed.differentiate_gate_types = true;
  auto a = netlist::elaborate(logic, netlist::TechParams{}, uniform);
  auto b = netlist::elaborate(logic, netlist::TechParams{}, typed);
  a.circuit.set_uniform_size(1.0);
  b.circuit.set_uniform_size(1.0);
  const layout::CouplingSet none_a(a.circuit.num_nodes(), {});
  const layout::CouplingSet none_b(b.circuit.num_nodes(), {});
  const auto ma = timing::compute_metrics(a.circuit, none_a, a.circuit.sizes(),
                                          timing::CouplingLoadMode::kLocalOnly);
  const auto mb = timing::compute_metrics(b.circuit, none_b, b.circuit.sizes(),
                                          timing::CouplingLoadMode::kLocalOnly);
  EXPECT_GT(mb.delay_s, ma.delay_s);
  EXPECT_GT(mb.area_um2, ma.area_um2);
}

}  // namespace
