// TILOS-style greedy baseline: meets reachable bounds, loses to LR on area.
#include <gtest/gtest.h>

#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "core/tilos.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

constexpr auto kMode = timing::CouplingLoadMode::kLocalOnly;

TEST(Tilos, TrivialBoundNeedsNoMoves) {
  auto c = ChainCircuit::make();
  const auto coupling = test_support::no_coupling(c.circuit);
  const auto result = core::run_tilos(c.circuit, coupling, 1.0 /*1 s*/);
  EXPECT_TRUE(result.met_bound);
  EXPECT_EQ(result.moves, 0);
  for (netlist::NodeId v = c.circuit.first_component(); v < c.circuit.end_component();
       ++v) {
    EXPECT_DOUBLE_EQ(result.sizes[static_cast<std::size_t>(v)],
                     c.circuit.lower_bound(v));
  }
}

TEST(Tilos, MeetsAReachableBound) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  // Bound: delay at uniform size 1 (reachable: min sizes are slower).
  f.circuit.set_uniform_size(1.0);
  const double bound =
      timing::compute_metrics(f.circuit, coupling, f.circuit.sizes(), kMode).delay_s;
  const auto result = core::run_tilos(f.circuit, coupling, bound);
  EXPECT_TRUE(result.met_bound);
  EXPECT_GT(result.moves, 0);
  EXPECT_LE(result.delay_s, bound);
}

TEST(Tilos, SizesStayInBox) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  f.circuit.set_uniform_size(1.0);
  const double bound =
      0.9 *
      timing::compute_metrics(f.circuit, coupling, f.circuit.sizes(), kMode).delay_s;
  const auto result = core::run_tilos(f.circuit, coupling, bound);
  for (netlist::NodeId v = f.circuit.first_component(); v < f.circuit.end_component();
       ++v) {
    EXPECT_GE(result.sizes[static_cast<std::size_t>(v)], f.circuit.lower_bound(v));
    EXPECT_LE(result.sizes[static_cast<std::size_t>(v)], f.circuit.upper_bound(v));
  }
}

TEST(Tilos, StopsGracefullyOnUnreachableBound) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  const auto result = core::run_tilos(f.circuit, coupling, 1e-15 /*1 fs*/);
  EXPECT_FALSE(result.met_bound);
  EXPECT_GT(result.delay_s, 1e-15);
}

TEST(Tilos, LrMatchesOrBeatsTilosArea) {
  // At the same delay bound (power/noise relaxed), the LR optimum must not
  // be worse than the greedy heuristic (allowing the 1% solver tolerance).
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  core::BoundFactors factors;
  factors.delay = 0.95;
  factors.power = 100.0;
  factors.noise = 100.0;
  const auto bounds =
      core::derive_bounds(f.circuit, coupling, f.circuit.sizes(), kMode, factors);

  const auto tilos = core::run_tilos(f.circuit, coupling, bounds.delay_s);
  ASSERT_TRUE(tilos.met_bound);
  const auto lr = core::run_ogws(f.circuit, coupling, bounds);
  const auto lr_metrics = timing::compute_metrics(f.circuit, coupling, lr.sizes, kMode);
  EXPECT_LE(lr_metrics.delay_s, bounds.delay_s * 1.02);
  EXPECT_LE(lr_metrics.area_um2, tilos.area_um2 * 1.02);
}

TEST(Tilos, DeterministicAcrossRuns) {
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  f.circuit.set_uniform_size(1.0);
  const double bound =
      timing::compute_metrics(f.circuit, coupling, f.circuit.sizes(), kMode).delay_s;
  const auto a = core::run_tilos(f.circuit, coupling, bound);
  const auto b = core::run_tilos(f.circuit, coupling, bound);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.sizes, b.sizes);
}

}  // namespace
