// SimilarityMatrix and Miller weights over simulated netlists.
#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "sim/patterns.hpp"
#include "sim/similarity.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace lrsizer;

TEST(SimilarityMatrix, DiagonalIsOne) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = sim::simulate(logic, sim::random_vectors(5, 16, 1));
  const sim::SimilarityMatrix m(result, {0, 1, 2, 3});
  for (std::int32_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(m.at(i, i), 1.0);
}

TEST(SimilarityMatrix, SymmetricAndBounded) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = sim::simulate(logic, sim::random_vectors(5, 32, 2));
  std::vector<std::int32_t> nets;
  for (std::int32_t g = 0; g < logic.num_gates_logic(); ++g) nets.push_back(g);
  const sim::SimilarityMatrix m(result, nets);
  for (std::int32_t a = 0; a < m.size(); ++a) {
    for (std::int32_t b = 0; b < m.size(); ++b) {
      EXPECT_DOUBLE_EQ(m.at(a, b), m.at(b, a));
      EXPECT_GE(m.at(a, b), -1.0);
      EXPECT_LE(m.at(a, b), 1.0);
    }
  }
}

TEST(SimilarityMatrix, MillerWeightComplementsSimilarity) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = sim::simulate(logic, sim::random_vectors(5, 16, 3));
  const sim::SimilarityMatrix m(result, {0, 1, 2});
  for (std::int32_t a = 0; a < 3; ++a) {
    for (std::int32_t b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(m.miller_weight(a, b), 1.0 - m.at(a, b));
      EXPECT_GE(m.miller_weight(a, b), 0.0);
      EXPECT_LE(m.miller_weight(a, b), 2.0);
    }
  }
}

TEST(SimilarityMatrix, BufferTracksItsInput) {
  // A buffered net and its source switch near-identically (one gate delay
  // apart), so their similarity must be high; an inverted copy must be low.
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(p)\nOUTPUT(q)\np = BUF(a)\nq = NOT(a)\n");
  sim::SimOptions options;
  options.vector_period = 64;
  options.gate_delay = 1;
  const auto result =
      sim::simulate(logic, sim::random_vectors(1, 64, 7), options);
  const sim::SimilarityMatrix m(result, {0, 1, 2});  // a, p, q
  EXPECT_GT(m.at(0, 1), 0.9);    // buffer ≈ source
  EXPECT_LT(m.at(0, 2), -0.9);   // inverter ≈ anti-source
  EXPECT_LT(m.at(1, 2), -0.9);
}

TEST(SimilarityMatrix, WaveformConstructorMatchesSimResultPath) {
  const auto logic = netlist::parse_bench_string(netlist::kIscas85C17);
  const auto result = sim::simulate(logic, sim::random_vectors(5, 16, 4));
  const sim::SimilarityMatrix from_result(result, {1, 3, 5});
  const std::vector<sim::Waveform> waves = {result.waveforms[1], result.waveforms[3],
                                            result.waveforms[5]};
  const sim::SimilarityMatrix from_waves(waves, result.horizon);
  for (std::int32_t a = 0; a < 3; ++a) {
    for (std::int32_t b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(from_result.at(a, b), from_waves.at(a, b));
    }
  }
}

}  // namespace
