// Tests for the staged session API (api/session.hpp): stage-by-stage
// equivalence with the one-shot shim, option validation, progress
// observation, cooperative cancellation, and warm-starting.
#include <gtest/gtest.h>

#include <cmath>
#include <stop_token>
#include <string>
#include <vector>

#include "api/options.hpp"
#include "api/session.hpp"
#include "core/flow.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"

namespace {

using namespace lrsizer;

/// c17 with the feasible bound factors (the Table-1 defaults are marginally
/// infeasible on a circuit this shallow; see test_flow.cpp).
core::FlowOptions c17_options() {
  core::FlowOptions options;
  options.bound_factors.delay = 1.15;
  options.bound_factors.noise = 0.12;
  return options;
}

netlist::LogicNetlist c17() {
  return netlist::parse_bench_string(netlist::kIscas85C17);
}

netlist::LogicNetlist small_generated(std::uint64_t seed = 3) {
  netlist::GeneratorSpec spec;
  spec.num_gates = 60;
  spec.num_wires = 140;
  spec.num_inputs = 10;
  spec.num_outputs = 6;
  spec.seed = seed;
  return netlist::generate_circuit(spec);
}

// ---- stage-by-stage equivalence ---------------------------------------------

TEST(Session, StageByStageMatchesOneShotBitIdentically) {
  const auto logic = small_generated();
  const auto one_shot = core::run_two_stage_flow(logic, {});

  api::SizingSession session(logic, {});
  EXPECT_EQ(session.next_stage(), api::SizingSession::Stage::kElaborate);
  ASSERT_TRUE(session.elaborate().ok());
  EXPECT_EQ(session.next_stage(), api::SizingSession::Stage::kSimulateAndOrder);
  ASSERT_TRUE(session.simulate_and_order().ok());
  EXPECT_EQ(session.next_stage(), api::SizingSession::Stage::kDeriveBounds);
  ASSERT_TRUE(session.derive_bounds().ok());
  EXPECT_EQ(session.next_stage(), api::SizingSession::Stage::kSize);
  ASSERT_TRUE(session.size().ok());
  EXPECT_TRUE(session.finished());
  ASSERT_TRUE(session.has_result());

  const core::FlowResult& staged = session.result();
  // Bit-exact: same code path, same order of operations.
  EXPECT_EQ(staged.circuit.sizes(), one_shot.circuit.sizes());
  EXPECT_EQ(staged.ogws.iterations, one_shot.ogws.iterations);
  EXPECT_EQ(staged.ogws.converged, one_shot.ogws.converged);
  EXPECT_EQ(staged.final_metrics.area_um2, one_shot.final_metrics.area_um2);
  EXPECT_EQ(staged.final_metrics.noise_f, one_shot.final_metrics.noise_f);
  EXPECT_EQ(staged.final_metrics.delay_s, one_shot.final_metrics.delay_s);
  EXPECT_EQ(staged.init_metrics.area_um2, one_shot.init_metrics.area_um2);
  EXPECT_EQ(staged.bounds.delay_s, one_shot.bounds.delay_s);
  EXPECT_EQ(staged.bounds.noise_f, one_shot.bounds.noise_f);
  EXPECT_EQ(staged.ordering_cost_initial, one_shot.ordering_cost_initial);
  EXPECT_EQ(staged.ordering_cost_woss, one_shot.ordering_cost_woss);
  EXPECT_EQ(staged.memory_bytes, one_shot.memory_bytes);
  EXPECT_EQ(staged.net_of_node, one_shot.net_of_node);
}

TEST(Session, RunAllMatchesStageByStage) {
  const auto logic = c17();
  api::SizingSession all(logic, c17_options());
  ASSERT_TRUE(all.run_all().ok());

  api::SizingSession staged(logic, c17_options());
  ASSERT_TRUE(staged.elaborate().ok());
  ASSERT_TRUE(staged.run_all().ok());  // picks up from the next stage

  EXPECT_EQ(all.result().circuit.sizes(), staged.result().circuit.sizes());
  EXPECT_EQ(all.summary().iterations, staged.summary().iterations);
}

// ---- stage-order and input discipline ---------------------------------------

TEST(Session, OutOfOrderStagesAreRejected) {
  api::SizingSession session(c17(), c17_options());
  const api::Status premature = session.size();
  EXPECT_EQ(premature.code(), api::StatusCode::kFailedPrecondition);
  EXPECT_NE(premature.message().find("elaborate"), std::string::npos);

  ASSERT_TRUE(session.elaborate().ok());
  const api::Status repeat = session.elaborate();
  EXPECT_EQ(repeat.code(), api::StatusCode::kFailedPrecondition);

  ASSERT_TRUE(session.run_all().ok());
  const api::Status after_done = session.derive_bounds();
  EXPECT_EQ(after_done.code(), api::StatusCode::kFailedPrecondition);
  EXPECT_NE(after_done.message().find("one-shot"), std::string::npos);
}

TEST(Session, UnfinalizedNetlistIsAStatusNotACrash) {
  api::SizingSession session(netlist::LogicNetlist{}, {});
  const api::Status status = session.elaborate();
  EXPECT_EQ(status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("not finalized"), std::string::npos);
  EXPECT_FALSE(session.has_result());
}

TEST(Session, InvalidOptionsAreAStatusNotACrash) {
  core::FlowOptions options;
  options.bound_factors.noise = -0.1;
  api::SizingSession session(c17(), options);
  const api::Status status = session.elaborate();
  EXPECT_EQ(status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bound_factors.noise"), std::string::npos);
}

// ---- options builder --------------------------------------------------------

TEST(OptionsBuilder, BuildsValidatedOptions) {
  core::FlowOptions options;
  const api::Status status = api::FlowOptionsBuilder()
                                 .vectors(16)
                                 .delay_bound(1.15)
                                 .noise_bound(0.12)
                                 .use_woss(false)
                                 .build(options);
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(options.num_vectors, 16);
  EXPECT_DOUBLE_EQ(options.bound_factors.delay, 1.15);
  EXPECT_DOUBLE_EQ(options.bound_factors.noise, 0.12);
  EXPECT_FALSE(options.use_woss);
}

TEST(OptionsBuilder, RejectsInconsistentParamsWithReadableMessages) {
  core::FlowOptions out;

  const api::Status bad_noise = api::FlowOptionsBuilder().noise_bound(0.0).build(out);
  EXPECT_EQ(bad_noise.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(bad_noise.message().find("bound_factors.noise"), std::string::npos);
  EXPECT_NE(bad_noise.message().find("got 0"), std::string::npos);

  netlist::TechParams inverted_box;
  inverted_box.min_size = 5.0;
  inverted_box.max_size = 1.0;
  const api::Status bad_box = api::FlowOptionsBuilder().tech(inverted_box).build(out);
  EXPECT_EQ(bad_box.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(bad_box.message().find("size box"), std::string::npos);

  const api::Status bad_vectors = api::FlowOptionsBuilder().vectors(0).build(out);
  EXPECT_EQ(bad_vectors.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(bad_vectors.message().find("num_vectors"), std::string::npos);

  const api::Status bad_init = api::FlowOptionsBuilder().initial_size(50.0).build(out);
  EXPECT_EQ(bad_init.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(bad_init.message().find("initial_size"), std::string::npos);

  // A failed build leaves the output untouched.
  EXPECT_EQ(out.num_vectors, core::FlowOptions{}.num_vectors);
}

// ---- progress observation ---------------------------------------------------

TEST(Session, ObserverSeesEveryIterationInOrder) {
  api::SizingSession session(c17(), c17_options());
  std::vector<core::OgwsIterate> seen;
  session.set_observer([&seen](const core::OgwsIterate& it) { seen.push_back(it); });
  ASSERT_TRUE(session.run_all().ok());

  const core::FlowSummary summary = session.summary();
  ASSERT_EQ(static_cast<int>(seen.size()), summary.iterations);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].k, static_cast<int>(i) + 1);
    EXPECT_GT(seen[i].area, 0.0);
  }
  // The last observed iterate carries the converged certificate.
  EXPECT_LE(seen.back().rel_gap, session.options().ogws.gap_tol);
  EXPECT_EQ(seen.back().dual, summary.dual);
}

// ---- cancellation -----------------------------------------------------------

TEST(Session, CancelMidOgwsYieldsUsablePartialSummary) {
  std::stop_source source;
  api::SizingSession session(c17(), c17_options());
  session.set_stop_token(source.get_token());
  int iterations_seen = 0;
  session.set_observer([&](const core::OgwsIterate&) {
    if (++iterations_seen == 3) source.request_stop();
  });

  const api::Status status = session.run_all();
  EXPECT_EQ(status.code(), api::StatusCode::kCancelled);
  EXPECT_TRUE(session.cancelled());
  ASSERT_TRUE(session.has_result());

  // The partial summary is fully populated and flagged.
  const core::FlowSummary partial = session.summary();
  EXPECT_TRUE(partial.cancelled);
  EXPECT_FALSE(partial.converged);
  EXPECT_EQ(partial.iterations, 3);
  EXPECT_GT(partial.final_metrics.area_um2, 0.0);
  EXPECT_GT(partial.final_metrics.delay_s, 0.0);
  EXPECT_GT(partial.memory_bytes, 0u);

  // The partial sizes respect the box bounds (a usable iterate, not junk).
  const netlist::Circuit& circuit = session.result().circuit;
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    EXPECT_GE(circuit.size(v), circuit.lower_bound(v) - 1e-12);
    EXPECT_LE(circuit.size(v), circuit.upper_bound(v) + 1e-12);
  }
}

TEST(Session, RawOgwsPreCancelledStillDescribesItsReturnedSizes) {
  // A stop that lands before the first OGWS iteration (only reachable
  // through raw run_ogws — the session checks the token at the stage
  // boundary first) must still return metric fields that describe the
  // returned sizes, with the certificate gap marked unknown.
  api::SizingSession session(c17(), c17_options());
  ASSERT_TRUE(session.run_all().ok());
  netlist::Circuit circuit = session.result().circuit;
  circuit.set_uniform_size(1.0);

  std::stop_source stopped;
  stopped.request_stop();
  core::OgwsControl control;
  control.stop = stopped.get_token();
  const core::OgwsResult result =
      core::run_ogws(circuit, session.result().coupling, session.result().bounds,
                     core::OgwsOptions{}, control);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.sizes, circuit.sizes());
  EXPECT_GT(result.area, 0.0);           // area of the returned sizes, not 0
  EXPECT_GT(result.max_violation, 0.0);  // unit sizes violate the noise bound
  EXPECT_TRUE(std::isinf(result.rel_gap));  // no certificate computed
}

TEST(Session, PreCancelledTokenStopsAtTheStageBoundary) {
  std::stop_source source;
  source.request_stop();
  api::SizingSession session(c17(), c17_options());
  session.set_stop_token(source.get_token());

  const api::Status status = session.elaborate();
  EXPECT_EQ(status.code(), api::StatusCode::kCancelled);
  EXPECT_TRUE(session.cancelled());
  EXPECT_FALSE(session.has_result());
  // The pipeline did not advance.
  EXPECT_EQ(session.next_stage(), api::SizingSession::Stage::kElaborate);
}

// ---- warm start -------------------------------------------------------------

TEST(Session, WarmStartReconvergesWithinTwoIterations) {
  const auto logic = c17();
  api::SizingSession cold(logic, c17_options());
  ASSERT_TRUE(cold.run_all().ok());
  ASSERT_TRUE(cold.summary().converged);
  ASSERT_GT(cold.summary().iterations, 2);  // the speedup is meaningful

  api::SizingSession warm(logic, c17_options());
  ASSERT_TRUE(warm.warm_start_from(cold.result()).ok());
  ASSERT_TRUE(warm.run_all().ok());

  const core::FlowSummary rerun = warm.summary();
  EXPECT_TRUE(rerun.converged);
  // Identical options: the seeded incumbent + best-dual multipliers
  // reproduce the certificate immediately.
  EXPECT_LE(rerun.iterations, 2);
  EXPECT_LE(rerun.final_metrics.area_um2,
            cold.summary().final_metrics.area_um2 * (1.0 + 1e-9));
}

TEST(Session, WarmStartSurvivesAnOptionsTweak) {
  const auto logic = small_generated(11);
  api::SizingSession cold(logic, {});
  ASSERT_TRUE(cold.run_all().ok());

  // Loosen the noise bound slightly: the warm session must still produce a
  // valid solution (and may converge in fewer iterations than from cold).
  core::FlowOptions tweaked;
  tweaked.bound_factors.noise = 0.12;
  api::SizingSession warm(logic, tweaked);
  ASSERT_TRUE(warm.warm_start_from(cold.result()).ok());
  ASSERT_TRUE(warm.run_all().ok());
  EXPECT_GT(warm.summary().final_metrics.area_um2, 0.0);
  EXPECT_LE(warm.summary().max_violation, 0.05);
}

TEST(Session, WarmStartFromMismatchedCircuitIsRejected) {
  api::SizingSession donor(small_generated(5), {});
  ASSERT_TRUE(donor.run_all().ok());

  api::SizingSession session(c17(), c17_options());
  ASSERT_TRUE(session.warm_start_from(donor.result()).ok());  // defers validation
  ASSERT_TRUE(session.elaborate().ok());
  ASSERT_TRUE(session.simulate_and_order().ok());
  ASSERT_TRUE(session.derive_bounds().ok());
  const api::Status status = session.size();
  EXPECT_EQ(status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("same netlist"), std::string::npos);
  EXPECT_FALSE(session.has_result());
}

TEST(Session, SparseWarmSizesSeedTheRun) {
  const auto logic = c17();
  api::SizingSession cold(logic, c17_options());
  ASSERT_TRUE(cold.run_all().ok());

  // Rebuild the sparse (node, size) list a sized .bench would carry.
  std::vector<std::pair<std::int32_t, double>> entries;
  const netlist::Circuit& circuit = cold.result().circuit;
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    entries.emplace_back(v, circuit.size(v));
  }

  api::SizingSession warm(logic, c17_options());
  ASSERT_TRUE(warm.warm_start_sizes(entries).ok());
  ASSERT_TRUE(warm.run_all().ok());
  // Sizes-only warm start (no multipliers) still cuts the iteration count.
  EXPECT_LT(warm.summary().iterations, cold.summary().iterations);

  // Out-of-range node ids are rejected with the offending id named.
  api::SizingSession bad(logic, c17_options());
  ASSERT_TRUE(bad.warm_start_sizes({{99999, 1.0}}).ok());
  const api::Status status = bad.run_all();
  EXPECT_EQ(status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("99999"), std::string::npos);
}

// ---- shim -------------------------------------------------------------------

TEST(Session, ShimSummaryCarriesNoCancellation) {
  const auto flow = core::run_two_stage_flow(c17(), c17_options());
  EXPECT_FALSE(flow.ogws.cancelled);
  EXPECT_FALSE(core::summarize_flow(flow).cancelled);
  // The shim's result feeds warm starts like any session result.
  api::SizingSession warm(c17(), c17_options());
  EXPECT_TRUE(warm.warm_start_from(flow).ok());
}

}  // namespace
