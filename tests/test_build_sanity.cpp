// Build sanity smoke test: one end-to-end pass through the full two-stage
// pipeline, so ctest always exercises elaboration -> simulation/WOSS ->
// bounds -> OGWS even when run with a test filter. Kept deliberately small
// and assertion-light; the per-module suites carry the real coverage.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "netlist/bench_parser.hpp"
#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;

// Stage 0 + 1 + 2 through the one-call API on a 3-gate netlist.
TEST(BuildSanity, TwoStageFlowRunsEndToEnd) {
  const auto logic = netlist::parse_bench_string(
      "INPUT(a)\n"
      "INPUT(b)\n"
      "OUTPUT(y)\n"
      "u = NAND(a, b)\n"
      "v = NOT(u)\n"
      "y = NAND(u, v)\n");
  core::FlowOptions options;
  options.num_vectors = 8;
  options.bound_factors.delay = 1.2;
  options.bound_factors.noise = 0.5;
  const auto flow = core::run_two_stage_flow(logic, options);

  EXPECT_EQ(flow.circuit.num_gates(), 3);
  EXPECT_GT(flow.circuit.num_wires(), 0);
  EXPECT_GT(flow.bounds.delay_s, 0.0);
  EXPECT_GT(flow.final_metrics.area_um2, 0.0);
  // OGWS ran: it either converged or reports how close it got.
  EXPECT_GT(flow.ogws.iterations, 0);
  EXPECT_LE(flow.ogws.max_violation, 0.10);
}

// Stage 2 directly on the smallest hand-built fixture: bounds derivation
// plus OGWS on the driver -> wire -> gate -> wire chain.
TEST(BuildSanity, OgwsRunsOnChainFixture) {
  auto chain = test_support::ChainCircuit::make();
  chain.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(chain.circuit);
  core::BoundFactors factors;
  factors.delay = 1.2;
  factors.noise = 0.5;
  const auto bounds =
      core::derive_bounds(chain.circuit, coupling, chain.circuit.sizes(),
                          timing::CouplingLoadMode::kLocalOnly, factors);
  const auto result = core::run_ogws(chain.circuit, coupling, bounds);

  ASSERT_EQ(result.sizes.size(), chain.circuit.sizes().size());
  EXPECT_GT(result.sizes[static_cast<std::size_t>(chain.gate)], 0.0);
  const auto metrics = timing::compute_metrics(
      chain.circuit, coupling, result.sizes, timing::CouplingLoadMode::kLocalOnly);
  EXPECT_LE(metrics.delay_s, bounds.delay_s * 1.02);
}

}  // namespace
