// Metric bundle: area/power/noise/delay definitions and scaling behavior.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "timing/metrics.hpp"

namespace {

using namespace lrsizer;
using lrsizer::test_support::ChainCircuit;
using lrsizer::test_support::Fig1Circuit;

TEST(Metrics, AreaIsWeightedSizeSum) {
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  // Two wires at the paper-style unit area, one gate at α = 25.
  const double per_unit = 2.0 * tech.wire_area_per_size + tech.gate_area_per_size;
  EXPECT_DOUBLE_EQ(timing::total_area(c.circuit, c.circuit.sizes()), per_unit);
  c.circuit.set_uniform_size(2.0);
  EXPECT_DOUBLE_EQ(timing::total_area(c.circuit, c.circuit.sizes()), 2.0 * per_unit);
}

TEST(Metrics, PhysicalWireAreaModeUsesLength) {
  netlist::TechParams tech;
  tech.wire_area_per_size = 0.0;  // physical mode: area = length · width
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  EXPECT_DOUBLE_EQ(timing::total_area(c.circuit, c.circuit.sizes()),
                   200.0 + 300.0 + tech.gate_area_per_size);
}

TEST(Metrics, CapIncludesFringing) {
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  const double expected = (tech.wire_cap_per_um * 500.0) +  // both wires
                          (tech.wire_fringe_per_um * 500.0) + tech.gate_unit_cap;
  EXPECT_NEAR(timing::total_cap(c.circuit, c.circuit.sizes()), expected, 1e-21);
}

TEST(Metrics, PowerIsVSquaredFTimesCap) {
  const netlist::TechParams tech;
  auto c = ChainCircuit::make(tech);
  c.circuit.set_uniform_size(1.0);
  const auto coupling = test_support::no_coupling(c.circuit);
  const auto m = timing::compute_metrics(c.circuit, coupling, c.circuit.sizes(),
                                         timing::CouplingLoadMode::kLocalOnly);
  EXPECT_NEAR(m.power_w, tech.power_per_farad() * m.cap_f, 1e-18);
  EXPECT_NEAR(m.power_w, 3.3 * 3.3 * 200e6 * m.cap_f, 1e-18);
}

TEST(Metrics, FringingBreaksPerfectPowerScaling) {
  // Shrinking 1.0 -> 0.1 cuts ĉ·x by 10 but leaves fringing; the paper's
  // 86.8% power improvement (not 90%) comes exactly from this.
  auto f = Fig1Circuit::make();
  const auto coupling = f.make_coupling();
  f.circuit.set_uniform_size(1.0);
  const double cap1 = timing::total_cap(f.circuit, f.circuit.sizes());
  f.circuit.set_uniform_size(0.1);
  const double cap01 = timing::total_cap(f.circuit, f.circuit.sizes());
  EXPECT_GT(cap01, 0.1 * cap1);
  EXPECT_LT(cap01, 0.2 * cap1);
}

TEST(Metrics, NoiseMatchesCouplingSet) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto m = timing::compute_metrics(f.circuit, coupling, f.circuit.sizes(),
                                         timing::CouplingLoadMode::kLocalOnly);
  EXPECT_DOUBLE_EQ(m.noise_f, coupling.noise_linear(f.circuit.sizes()));
  EXPECT_DOUBLE_EQ(m.noise_exact_f, coupling.noise_exact(f.circuit.sizes()));
  EXPECT_GT(m.noise_exact_f, m.noise_f);  // exact includes the constant term
}

TEST(Metrics, DelayMatchesArrivalAnalysis) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto coupling = f.make_coupling();
  const auto m = timing::compute_metrics(f.circuit, coupling, f.circuit.sizes(),
                                         timing::CouplingLoadMode::kLocalOnly);
  EXPECT_GT(m.delay_s, 0.0);
  // Uniform down-sizing to 0.1: ĉ·x products are scale-free (r up 10x,
  // sized caps down 10x), but the constant caps (fringing, coupling c̃,
  // output loads) now see 10x the resistance — delay grows by a bounded
  // factor, well under the naive 10x.
  f.circuit.set_uniform_size(0.1);
  const auto m01 = timing::compute_metrics(f.circuit, coupling, f.circuit.sizes(),
                                           timing::CouplingLoadMode::kLocalOnly);
  EXPECT_LT(m01.delay_s, 8.0 * m.delay_s);
  EXPECT_GT(m01.delay_s, 0.3 * m.delay_s);
}

TEST(Metrics, CouplingRaisesDelay) {
  auto f = Fig1Circuit::make();
  f.circuit.set_uniform_size(1.0);
  const auto with = timing::compute_metrics(f.circuit, f.make_coupling(),
                                            f.circuit.sizes(),
                                            timing::CouplingLoadMode::kLocalOnly);
  const auto without = timing::compute_metrics(f.circuit,
                                               test_support::no_coupling(f.circuit),
                                               f.circuit.sizes(),
                                               timing::CouplingLoadMode::kLocalOnly);
  EXPECT_GT(with.delay_s, without.delay_s);
  EXPECT_DOUBLE_EQ(with.area_um2, without.area_um2);
  EXPECT_DOUBLE_EQ(with.cap_f, without.cap_f);
}

}  // namespace
