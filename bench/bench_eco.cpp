// ECO-vs-cold speedup trajectory (docs/ECO.md).
//
// Cold-sizes a seeded >=5k-node generator circuit once, then applies
// seeded op-flip edits of increasing size (0.5% .. 5% of the gates; flips
// stay within the AND/OR, NAND/NOR, XOR/XNOR pairs so arity and the
// elaborated structure are unchanged) and re-sizes every revision twice:
// cold, and ECO-warm-started from the base run through
// eco::IncrementalSizer. The committed bench/BENCH_eco.json
// (lrsizer-bench-eco-v1) records the iteration and wall-clock trajectory;
// CI's eco-smoke job re-generates and uploads it, and test_eco asserts the
// 1%-edit row's contract (ECO iterations <= 1/3 cold, same KKT tolerance)
// with slack.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "eco/incremental.hpp"
#include "runtime/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lrsizer;

/// Op flip that keeps arity (and, by differentiate_gate_types's default,
/// the elaborated circuit) unchanged.
netlist::LogicOp flipped(netlist::LogicOp op) {
  switch (op) {
    case netlist::LogicOp::kAnd: return netlist::LogicOp::kOr;
    case netlist::LogicOp::kOr: return netlist::LogicOp::kAnd;
    case netlist::LogicOp::kNand: return netlist::LogicOp::kNor;
    case netlist::LogicOp::kNor: return netlist::LogicOp::kNand;
    case netlist::LogicOp::kXor: return netlist::LogicOp::kXnor;
    case netlist::LogicOp::kXnor: return netlist::LogicOp::kXor;
    default: return op;
  }
}

/// Rebuild `base` with a seeded `fraction` of its flippable gates' ops
/// flipped. Gate names, order, fanins and output marks are preserved, so
/// the revision differs from the base in ops only.
netlist::LogicNetlist flip_ops(const netlist::LogicNetlist& base,
                               double fraction, std::uint64_t seed,
                               std::size_t* edited) {
  std::vector<std::int32_t> candidates;
  for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
    if (flipped(base.gate(g).op) != base.gate(g).op) candidates.push_back(g);
  }
  util::Rng rng(seed);
  for (std::size_t i = candidates.size(); i > 1; --i) {  // Fisher-Yates
    std::swap(candidates[i - 1], candidates[rng.next_below(i)]);
  }
  std::size_t num_edits = static_cast<std::size_t>(
      fraction * static_cast<double>(base.num_real_gates()) + 0.5);
  if (num_edits == 0) num_edits = 1;
  if (num_edits > candidates.size()) num_edits = candidates.size();
  const std::unordered_set<std::int32_t> edits(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(num_edits));

  netlist::LogicNetlist revised;
  for (std::int32_t g = 0; g < base.num_gates_logic(); ++g) {
    const netlist::LogicGate& gate = base.gate(g);
    if (gate.op == netlist::LogicOp::kInput) {
      revised.add_input(gate.name);
    } else {
      revised.add_gate(gate.name,
                       edits.count(g) != 0 ? flipped(gate.op) : gate.op,
                       gate.fanin);
    }
    if (base.is_primary_output(g)) revised.mark_output(g);
  }
  revised.finalize();
  *edited = num_edits;
  return revised;
}

struct Run {
  core::FlowSummary summary;
  double seconds = 0.0;
};

Run run_cold(const netlist::LogicNetlist& netlist,
             const core::FlowOptions& options) {
  Run run;
  util::WallTimer timer;
  api::SizingSession session(netlist, options);
  const api::Status status = session.run_all();
  LRSIZER_ASSERT_MSG(status.ok(), status.to_string().c_str());
  run.summary = session.summary();
  run.seconds = timer.seconds();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_eco.json";

  netlist::GeneratorSpec spec;
  spec.num_gates = 2000;
  spec.num_wires = 3200;
  spec.num_inputs = 64;
  spec.num_outputs = 32;
  spec.depth = 20;
  spec.seed = 7;
  const netlist::LogicNetlist base = netlist::generate_circuit(spec);
  const core::FlowOptions options = bench::paper_flow_options();

  std::printf("ECO re-sizing vs cold (docs/ECO.md)\n\n");
  util::WallTimer base_timer;
  api::SizingSession base_session(base, options);
  const api::Status base_status = base_session.run_all();
  LRSIZER_ASSERT_MSG(base_status.ok(), base_status.to_string().c_str());
  const core::FlowSummary base_summary = base_session.summary();
  const core::FlowResult base_result = base_session.take_result();
  const double base_seconds = base_timer.seconds();
  std::printf("base: #G=%d #W=%d, %lld circuit nodes, %d iterations, %.2f s\n\n",
              base_summary.num_gates, base_summary.num_wires,
              static_cast<long long>(base_result.circuit.num_nodes()),
              base_summary.iterations, base_seconds);
  LRSIZER_ASSERT_MSG(base_result.circuit.num_nodes() >= 5000,
                     "acceptance wants a >=5k-node circuit");

  const eco::IncrementalSizer incremental(base, options, base_result);

  runtime::Json rows = runtime::Json::array();
  util::TextTable table({"edit%", "edited", "dirty", "reused", "cold ite",
                         "eco ite", "ratio", "cold s", "eco s", "speedup"});
  for (const double fraction : {0.005, 0.01, 0.02, 0.05}) {
    std::size_t edited = 0;
    const netlist::LogicNetlist revised =
        flip_ops(base, fraction, 1000 + static_cast<std::uint64_t>(1e4 * fraction),
                 &edited);

    const Run cold = run_cold(revised, options);

    util::WallTimer eco_timer;
    eco::IncrementalSizer::Result eco;
    const api::Status status = incremental.resize(revised, &eco);
    LRSIZER_ASSERT_MSG(status.ok(), status.to_string().c_str());
    const double eco_seconds = eco_timer.seconds();

    const double ratio =
        cold.summary.iterations > 0
            ? static_cast<double>(eco.summary.iterations) /
                  static_cast<double>(cold.summary.iterations)
            : 0.0;
    table.add_row({util::TextTable::num(100.0 * fraction, 1),
                   util::TextTable::integer(static_cast<long long>(edited)),
                   util::TextTable::integer(eco.dirty_gates),
                   util::TextTable::integer(static_cast<long long>(eco.reused_nodes)),
                   util::TextTable::integer(cold.summary.iterations),
                   util::TextTable::integer(eco.summary.iterations),
                   util::TextTable::num(ratio, 3),
                   util::TextTable::num(cold.seconds, 2),
                   util::TextTable::num(eco_seconds, 2),
                   util::TextTable::num(
                       eco_seconds > 0.0 ? cold.seconds / eco_seconds : 0.0, 2)});

    runtime::Json row = runtime::Json::object();
    row.set("edit_fraction", fraction);
    row.set("edited_gates", static_cast<std::int64_t>(edited));
    row.set("dirty_gates", static_cast<std::int64_t>(eco.dirty_gates));
    row.set("clean_gates", static_cast<std::int64_t>(eco.clean_gates));
    row.set("reused_nodes", eco.reused_nodes);
    row.set("cold_iterations", static_cast<std::int64_t>(cold.summary.iterations));
    row.set("eco_iterations", static_cast<std::int64_t>(eco.summary.iterations));
    row.set("iteration_ratio", ratio);
    row.set("cold_seconds", cold.seconds);
    row.set("eco_seconds", eco_seconds);
    row.set("cold_max_violation", cold.summary.max_violation);
    row.set("eco_max_violation", eco.summary.max_violation);
    rows.push_back(row);
  }
  table.print(std::cout);

  runtime::Json circuit = runtime::Json::object();
  circuit.set("generator_seed", static_cast<std::int64_t>(spec.seed));
  circuit.set("gates", static_cast<std::int64_t>(base_summary.num_gates));
  circuit.set("wires", static_cast<std::int64_t>(base_summary.num_wires));
  circuit.set("nodes", base_result.circuit.num_nodes());
  circuit.set("edges", base_result.circuit.num_edges());

  runtime::Json doc = runtime::Json::object();
  doc.set("schema", "lrsizer-bench-eco-v1");
  doc.set("circuit", circuit);
  runtime::Json base_doc = runtime::Json::object();
  base_doc.set("iterations", static_cast<std::int64_t>(base_summary.iterations));
  base_doc.set("seconds", base_seconds);
  base_doc.set("max_violation", base_summary.max_violation);
  doc.set("base", base_doc);
  doc.set("rows", rows);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_eco: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
