// Shared helpers for the bench harnesses: profile-driven flow runs (single
// and batched through the parallel runtime) and percentage formatting.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"
#include "runtime/batch.hpp"
#include "util/assert.hpp"

namespace lrsizer::bench {

/// Default options used by every paper-reproduction bench (documented in
/// docs/ARCHITECTURE.md §Benches): unit-size start, A0 = D_init, P0 = 0.15·cap_init,
/// X0 = 0.10·noise_init.
inline core::FlowOptions paper_flow_options() {
  core::FlowOptions options;
  options.num_vectors = 32;
  options.bound_factors.delay = 1.0;
  options.bound_factors.power = 0.15;
  options.bound_factors.noise = 0.10;
  options.initial_size = 1.0;
  return options;
}

/// Run the full two-stage flow for one paper profile through the staged
/// session API (the same pipeline run_two_stage_flow shims over).
inline core::FlowResult run_profile(const std::string& name, std::uint64_t seed = 1,
                                    const core::FlowOptions& options =
                                        paper_flow_options()) {
  const auto spec = netlist::spec_for_profile(name, seed);
  api::SizingSession session(netlist::generate_circuit(spec), options);
  // Paper-reproduction measurements are fire-and-forget: skip the restart
  // snapshot so the timed loop matches the paper's per-iteration work.
  session.set_capture_warm_start(false);
  const api::Status status = session.run_all();
  LRSIZER_ASSERT_MSG(status.ok(), status.to_string().c_str());
  return session.take_result();
}

inline double improvement_pct(double init, double fin) {
  return init > 0.0 ? 100.0 * (init - fin) / init : 0.0;
}

/// One batch job per Table-1 profile (paper options, seed 1), in the
/// profiles' table order — the batch result's jobs are parallel to
/// iscas85_profiles().
inline std::vector<runtime::BatchJob> paper_profile_jobs(
    const core::FlowOptions& options = paper_flow_options()) {
  std::vector<runtime::BatchJob> jobs;
  for (const auto& profile : netlist::iscas85_profiles()) {
    jobs.push_back(runtime::make_profile_job(profile.name, 1, options));
  }
  return jobs;
}

/// Worker count for the benches: the LRSIZER_JOBS environment variable when
/// set, otherwise 0 (hardware concurrency).
inline int bench_jobs() {
  if (const char* env = std::getenv("LRSIZER_JOBS")) return std::atoi(env);
  return 0;
}

}  // namespace lrsizer::bench
