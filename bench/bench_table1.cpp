// Table 1 reproduction: Init vs Fin noise / delay / power / area for the
// ten ISCAS85-profile circuits, plus iterations, runtime, and memory, with
// the paper's published row printed underneath each measured row.
//
// The ten flows run concurrently through the batch runtime (runtime/batch);
// every per-circuit *result* (metrics, iterations, memory) is bit-identical
// to a sequential run. The time(s) column is each job's wall time inside
// its worker, so with more than one worker it includes contention from the
// sibling jobs — set LRSIZER_JOBS=1 for uncontended per-circuit timings.
//
// Expected shape (see docs/ARCHITECTURE.md §Benches): noise lands on the 10% bound
// (≈90% improvement), area and power drop by roughly an order of
// magnitude, delay stays within a few percent of its bound.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;
  using bench::improvement_pct;

  std::printf(
      "Table 1 — simultaneous noise/delay/power/area optimization (OGWS)\n"
      "bounds: A0 = 1.00 x init delay, P0 = 0.15 x init power, X0 = 0.10 x init "
      "noise\nrows: measured (this machine) / paper (SUN UltraSPARC-I, 1999)\n\n");

  runtime::BatchOptions batch_options;
  batch_options.jobs = bench::bench_jobs();
  const runtime::BatchResult batch =
      runtime::run_batch(bench::paper_profile_jobs(), batch_options);

  util::TextTable table({"Ckt", "row", "#G", "#W", "Noise I(pF)", "Noise F(pF)",
                         "Delay I(ps)", "Delay F(ps)", "Pow I(mW)", "Pow F(mW)",
                         "Area I(um2)", "Area F(um2)", "ite", "time(s)", "mem(KB)"});

  double impr_noise = 0.0;
  double impr_delay = 0.0;
  double impr_power = 0.0;
  double impr_area = 0.0;
  int rows = 0;

  const auto& profiles = netlist::iscas85_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const auto& job = batch.jobs[i];
    if (!job.ok) {
      std::fprintf(stderr, "%s FAILED: %s\n", profile.name.c_str(),
                   job.error.c_str());
      continue;
    }
    const auto& init = job.summary.init_metrics;
    const auto& fin = job.summary.final_metrics;
    table.add_row({profile.name, "meas", util::TextTable::integer(profile.num_gates),
                   util::TextTable::integer(profile.num_wires),
                   util::TextTable::num(init.noise_f * 1e12, 2),
                   util::TextTable::num(fin.noise_f * 1e12, 2),
                   util::TextTable::num(init.delay_s * 1e12, 1),
                   util::TextTable::num(fin.delay_s * 1e12, 1),
                   util::TextTable::num(init.power_w * 1e3, 1),
                   util::TextTable::num(fin.power_w * 1e3, 1),
                   util::TextTable::num(init.area_um2, 0),
                   util::TextTable::num(fin.area_um2, 0),
                   util::TextTable::integer(job.summary.iterations),
                   util::TextTable::num(job.seconds, 1),
                   util::TextTable::integer(
                       static_cast<long long>(job.summary.memory_bytes / 1024))});
    const auto& p = profile.paper;
    table.add_row({profile.name, "paper", "", "",
                   util::TextTable::num(p.noise_init_pf, 2),
                   util::TextTable::num(p.noise_fin_pf, 2),
                   util::TextTable::num(p.delay_init_ps, 1),
                   util::TextTable::num(p.delay_fin_ps, 1),
                   util::TextTable::num(p.power_init_mw, 1),
                   util::TextTable::num(p.power_fin_mw, 1),
                   util::TextTable::num(p.area_init_um2, 0),
                   util::TextTable::num(p.area_fin_um2, 0),
                   util::TextTable::integer(p.iterations),
                   util::TextTable::integer(p.time_sec),
                   util::TextTable::integer(p.mem_kb)});

    impr_noise += improvement_pct(init.noise_f, fin.noise_f);
    impr_delay += improvement_pct(init.delay_s, fin.delay_s);
    impr_power += improvement_pct(init.power_w, fin.power_w);
    impr_area += improvement_pct(init.area_um2, fin.area_um2);
    ++rows;
  }

  table.print(std::cout);

  std::printf("\naverage improvement (measured): noise %.2f%%  delay %.1f%%  "
              "power %.2f%%  area %.2f%%\n",
              impr_noise / rows, impr_delay / rows, impr_power / rows,
              impr_area / rows);
  std::printf("average improvement (paper):    noise 89.67%%  delay 5.3%%  "
              "power 86.82%%  area 87.90%%\n");
  std::printf("\nbatch: %d worker(s), wall %.2f s, Σ job %.2f s, speedup %.2fx "
              "(LRSIZER_JOBS overrides the worker count)\n",
              batch.num_workers, batch.wall_seconds, batch.total_job_seconds,
              batch.speedup());
  if (batch.num_workers > 1) {
    std::printf("note: per-circuit time(s) measured under concurrent execution; "
                "set LRSIZER_JOBS=1 for uncontended timings\n");
  }
  return batch.num_failed() == 0 ? 0 : 1;
}
