// Figure 10(a) reproduction: storage requirement vs circuit size
// (#gates + #wires). The paper shows ~1.0 MB at 640 components rising
// linearly to ~2.1 MB at 9656; the claim under test is *linearity* —
// we print the series, the least-squares fit, and R².
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;

  std::printf("Figure 10(a) — storage vs circuit size (#gates + #wires)\n\n");

  // Memory does not depend on how long OGWS runs; cap iterations to keep
  // this bench quick.
  auto options = bench::paper_flow_options();
  options.ogws.max_iterations = 3;
  options.ogws.record_history = false;

  util::TextTable table({"Ckt", "#G+#W", "tracked(KB)", "total(MB)", "paper(MB)"});
  std::vector<double> sizes;
  std::vector<double> bytes;
  for (const auto& profile : netlist::iscas85_profiles()) {
    const auto flow = bench::run_profile(profile.name, 1, options);
    const double total = profile.num_gates + profile.num_wires;
    const auto tracked =
        static_cast<double>(flow.memory_bytes - util::MemoryTracker::kBaseBytes);
    sizes.push_back(total);
    bytes.push_back(static_cast<double>(flow.memory_bytes));
    table.add_row({profile.name, util::TextTable::integer(static_cast<long long>(total)),
                   util::TextTable::num(tracked / 1024.0, 0),
                   util::TextTable::num(static_cast<double>(flow.memory_bytes) /
                                            (1024.0 * 1024.0),
                                        2),
                   util::TextTable::num(profile.paper.mem_kb / 1024.0, 2)});
  }
  table.print(std::cout);

  const auto fit = util::fit_line(sizes, bytes);
  std::printf("\nlinear fit: bytes = %.1f * size + %.0f   (R² = %.4f)\n", fit.slope,
              fit.intercept, fit.r_squared);
  std::printf("paper claim: storage grows linearly in #gates+#wires — %s\n",
              fit.r_squared > 0.98 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
