// Figure 6/7 evaluation: WOSS ordering quality (vs initial, random, and —
// on small instances — the exhaustive optimum) and its O(n²) runtime.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "layout/ordering.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lrsizer;

layout::DenseWeights random_weights(std::int32_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      const double v = rng.uniform(0.0, 2.0);  // Miller-weight range [0,2]
      w[static_cast<std::size_t>(a * n + b)] = v;
      w[static_cast<std::size_t>(b * n + a)] = v;
    }
  }
  return layout::DenseWeights(n, std::move(w));
}

}  // namespace

int main() {
  using namespace lrsizer;

  std::printf("WOSS (paper Figure 7) — ordering quality\n\n");
  util::TextTable quality({"n", "seeds", "initial", "random", "WOSS", "optimal",
                           "WOSS/opt"});
  for (const std::int32_t n : {6, 8, 10, 12, 14}) {
    double c_init = 0.0;
    double c_rand = 0.0;
    double c_woss = 0.0;
    double c_opt = 0.0;
    const int seeds = 10;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const auto w = random_weights(n, seed);
      std::vector<std::int32_t> identity(static_cast<std::size_t>(n));
      for (std::int32_t i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
      c_init += layout::ordering_cost(w, identity);
      c_rand += layout::ordering_cost(w, layout::random_ordering(n, seed + 50));
      c_woss += layout::ordering_cost(w, layout::woss_ordering(w));
      c_opt += layout::ordering_cost(w, layout::optimal_ordering_bruteforce(w));
    }
    quality.add_row({util::TextTable::integer(n), util::TextTable::integer(seeds),
                     util::TextTable::num(c_init / seeds, 3),
                     util::TextTable::num(c_rand / seeds, 3),
                     util::TextTable::num(c_woss / seeds, 3),
                     util::TextTable::num(c_opt / seeds, 3),
                     util::TextTable::num(c_woss / c_opt, 3)});
  }
  quality.print(std::cout);

  std::printf("\nWOSS runtime scaling (claim: O(n^2))\n\n");
  util::TextTable runtime({"n", "ms", "ms/n^2 x 1e6"});
  std::vector<double> log_n;
  std::vector<double> log_t;
  for (const std::int32_t n : {100, 200, 400, 800, 1600}) {
    const auto w = random_weights(n, 7);
    util::WallTimer timer;
    const auto order = layout::woss_ordering(w);
    const double ms = timer.milliseconds();
    if (order.size() != static_cast<std::size_t>(n)) return 1;
    runtime.add_row({util::TextTable::integer(n), util::TextTable::num(ms, 2),
                     util::TextTable::num(1e6 * ms / (static_cast<double>(n) * n), 3)});
    log_n.push_back(std::log(static_cast<double>(n)));
    log_t.push_back(std::log(ms + 1e-3));
  }
  runtime.print(std::cout);
  const auto fit = util::fit_line(log_n, log_t);
  std::printf("\nlog-log slope = %.2f (2.0 = quadratic, as Figure 7 claims)\n",
              fit.slope);
  return 0;
}
