// Figure 10(b) reproduction: runtime per OGWS iteration vs circuit size.
// The paper plots seconds/iteration growing linearly in #gates+#wires
// (their largest point ~350 s on a 1996 SPARC; ours are milliseconds —
// the reproduced claim is the linear *shape*, quantified by the fit R²).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;

  std::printf("Figure 10(b) — runtime per iteration vs circuit size\n\n");

  // Fixed iteration count and a fixed number of LRS passes per iteration so
  // every circuit does the same per-iteration work (the paper's own plot
  // scatters where circuit structure changes the pass count; see §5 "some
  // points deviate from the linear line").
  auto options = bench::paper_flow_options();
  options.ogws.max_iterations = 12;
  options.ogws.gap_tol = 0.0;  // never stop early
  options.ogws.record_history = true;
  options.ogws.lrs.max_passes = 6;
  options.ogws.lrs.tol = 0.0;  // always run all 6 passes

  util::TextTable table(
      {"Ckt", "#G+#W", "ms/iter", "lrs passes/iter", "paper s/iter"});
  std::vector<double> sizes;
  std::vector<double> per_iter;
  for (const auto& profile : netlist::iscas85_profiles()) {
    const auto flow = bench::run_profile(profile.name, 1, options);
    double seconds = 0.0;
    double passes = 0.0;
    for (const auto& it : flow.ogws.history) {
      seconds += it.seconds;
      passes += it.lrs_passes;
    }
    const auto iters = static_cast<double>(flow.ogws.history.size());
    const double total = profile.num_gates + profile.num_wires;
    sizes.push_back(total);
    per_iter.push_back(seconds / iters);
    table.add_row(
        {profile.name, util::TextTable::integer(static_cast<long long>(total)),
         util::TextTable::num(1e3 * seconds / iters, 3),
         util::TextTable::num(passes / iters, 1),
         util::TextTable::num(static_cast<double>(profile.paper.time_sec) /
                                  profile.paper.iterations,
                              1)});
  }
  table.print(std::cout);

  const auto fit = util::fit_line(sizes, per_iter);
  std::printf("\nlinear fit: s/iter = %.3g * size + %.3g   (R² = %.4f)\n", fit.slope,
              fit.intercept, fit.r_squared);
  std::printf("paper claim: runtime per iteration grows linearly — %s\n",
              fit.r_squared > 0.95 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
