// Figure 10(b) reproduction: runtime per OGWS iteration vs circuit size.
// The paper plots seconds/iteration growing linearly in #gates+#wires
// (their largest point ~350 s on a 1996 SPARC; ours are milliseconds —
// the reproduced claim is the linear *shape*, quantified by the fit R²).
//
// Two phases, both through the batch runtime (runtime/batch):
//   1. all ten profiles on ONE worker — uncontended per-iteration timings
//      feed the linear fit, and the per-job walls give a sequential baseline;
//   2. the four largest profiles on four workers — wall-clock speedup vs the
//      phase-1 baseline (the results themselves are bit-identical).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;

  std::printf("Figure 10(b) — runtime per iteration vs circuit size\n\n");

  // Fixed iteration count and a fixed number of LRS passes per iteration so
  // every circuit does the same per-iteration work (the paper's own plot
  // scatters where circuit structure changes the pass count; see §5 "some
  // points deviate from the linear line").
  auto options = bench::paper_flow_options();
  options.ogws.max_iterations = 12;
  options.ogws.gap_tol = 0.0;  // never stop early
  options.ogws.record_history = true;
  options.ogws.lrs.max_passes = 6;
  options.ogws.lrs.tol = 0.0;  // always run all 6 passes

  // ---- phase 1: sequential batch, per-iteration timings -------------------
  runtime::BatchOptions sequential_options;
  sequential_options.jobs = 1;
  const runtime::BatchResult sequential =
      runtime::run_batch(bench::paper_profile_jobs(options), sequential_options);

  util::TextTable table(
      {"Ckt", "#G+#W", "ms/iter", "lrs passes/iter", "paper s/iter"});
  std::vector<double> sizes;
  std::vector<double> per_iter;
  const auto& profiles = netlist::iscas85_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const auto& job = sequential.jobs[i];
    if (!job.ok || !job.flow.has_value()) {
      std::fprintf(stderr, "%s FAILED: %s\n", profile.name.c_str(),
                   job.error.c_str());
      return 1;
    }
    double seconds = 0.0;
    double passes = 0.0;
    for (const auto& it : job.flow->ogws.history) {
      seconds += it.seconds;
      passes += it.lrs_passes;
    }
    const auto iters = static_cast<double>(job.flow->ogws.history.size());
    const double total = profile.num_gates + profile.num_wires;
    sizes.push_back(total);
    per_iter.push_back(seconds / iters);
    table.add_row(
        {profile.name, util::TextTable::integer(static_cast<long long>(total)),
         util::TextTable::num(1e3 * seconds / iters, 3),
         util::TextTable::num(passes / iters, 1),
         util::TextTable::num(static_cast<double>(profile.paper.time_sec) /
                                  profile.paper.iterations,
                              1)});
  }
  table.print(std::cout);

  const auto fit = util::fit_line(sizes, per_iter);
  std::printf("\nlinear fit: s/iter = %.3g * size + %.3g   (R² = %.4f)\n", fit.slope,
              fit.intercept, fit.r_squared);
  std::printf("paper claim: runtime per iteration grows linearly — %s\n",
              fit.r_squared > 0.95 ? "REPRODUCED" : "NOT reproduced");

  // ---- phase 2: the four largest profiles on four workers -----------------
  const std::vector<std::string> large = {"c3540", "c5315", "c6288", "c7552"};
  double sequential_seconds = 0.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (const auto& name : large) {
      if (profiles[i].name == name) sequential_seconds += sequential.jobs[i].seconds;
    }
  }

  std::vector<runtime::BatchJob> large_jobs;
  for (const auto& name : large) {
    large_jobs.push_back(runtime::make_profile_job(name, 1, options));
  }
  runtime::BatchOptions parallel_options;
  parallel_options.jobs = 4;
  const runtime::BatchResult parallel =
      runtime::run_batch(std::move(large_jobs), parallel_options);

  const double speedup = parallel.wall_seconds > 0.0
                             ? sequential_seconds / parallel.wall_seconds
                             : 0.0;
  std::printf(
      "\nparallel batch (large profiles %s+%s+%s+%s, 4 workers):\n"
      "  sequential %.2f s -> batch wall %.2f s, speedup %.2fx, steals %lld\n",
      large[0].c_str(), large[1].c_str(), large[2].c_str(), large[3].c_str(),
      sequential_seconds, parallel.wall_seconds, speedup,
      static_cast<long long>(parallel.steals));
  std::printf("target > 2x at 4 workers: %s\n",
              speedup > 2.0
                  ? "PASS"
                  : "MISS (needs >= 4 hardware threads; results are still "
                    "bit-identical to the sequential run)");
  return 0;
}
