// Ablation bench (docs/ARCHITECTURE.md §Benches): the design choices the
// paper makes, each toggled on a fixed mid-size circuit (the c432 profile):
//
//   1. noise constraint on vs off (off = reference [3], delay-only LR)
//   2. stage-1 WOSS ordering on vs off
//   3. Miller weighting of the noise constraint on vs off
//   4. coupling load mode: victim-local (Theorem 5 exact) vs propagated
//   5. LRS cold start (paper S1) vs warm start
//   6. posynomial order k for the noise metric at the final sizes
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/tilos.hpp"
#include "timing/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lrsizer;

struct RunResult {
  timing::Metrics fin;
  int iterations;
  double lrs_passes_avg;
  double seconds;
  double noise_vs_bound;
};

RunResult run(const core::FlowOptions& options) {
  util::WallTimer timer;
  const auto spec = netlist::spec_for_profile("c432", 1);
  const auto logic = netlist::generate_circuit(spec);
  const auto flow = core::run_two_stage_flow(logic, options);
  double passes = 0.0;
  for (const auto& it : flow.ogws.history) passes += it.lrs_passes;
  return RunResult{flow.final_metrics, flow.ogws.iterations,
                   flow.ogws.history.empty()
                       ? 0.0
                       : passes / static_cast<double>(flow.ogws.history.size()),
                   timer.seconds(),
                   flow.final_metrics.noise_f / flow.bounds.noise_f};
}

void add_row(util::TextTable& t, const char* label, const RunResult& r) {
  t.add_row({label, util::TextTable::num(r.fin.area_um2, 0),
             util::TextTable::num(r.fin.delay_s * 1e12, 1),
             util::TextTable::num(r.fin.noise_f * 1e15, 1),
             util::TextTable::num(r.noise_vs_bound, 2),
             util::TextTable::integer(r.iterations),
             util::TextTable::num(r.lrs_passes_avg, 1),
             util::TextTable::num(r.seconds, 2)});
}

}  // namespace

int main() {
  using namespace lrsizer;

  std::printf("Ablations on the c432 profile (bounds as in Table 1)\n\n");
  util::TextTable table({"variant", "area(um2)", "delay(ps)", "noise(fF)",
                         "noise/X0", "ite", "lrs passes", "time(s)"});

  const auto base_options = bench::paper_flow_options();
  add_row(table, "full flow (paper)", run(base_options));

  {
    auto o = base_options;
    o.bound_factors.noise = 1e6;  // delay-only LR sizing = reference [3]
    o.bound_factors.power = 1e6;
    add_row(table, "delay-only LR [3]", run(o));
  }
  {
    auto o = base_options;
    o.use_woss = false;
    add_row(table, "no WOSS ordering", run(o));
  }
  {
    auto o = base_options;
    o.neighbors.fold_miller = false;
    add_row(table, "no Miller weighting", run(o));
  }
  {
    auto o = base_options;
    o.ogws.lrs.mode = timing::CouplingLoadMode::kPropagateUpstream;
    add_row(table, "coupling loads upstream", run(o));
  }
  {
    auto o = base_options;
    o.ogws.lrs.warm_start = true;
    add_row(table, "LRS warm start", run(o));
  }
  {
    auto o = base_options;
    o.bound_factors.per_net_noise = 0.10;  // distributed bounds (§4.1 note)
    add_row(table, "per-net noise bounds", run(o));
  }
  {
    auto o = base_options;
    o.ogws.step_rule = core::StepRule::kSubgradient;
    o.ogws.step0 = 0.25;
    add_row(table, "additive subgradient", run(o));
  }
  table.print(std::cout);

  // TILOS greedy baseline at the same delay bound (delay-only by nature).
  {
    const auto spec2 = netlist::spec_for_profile("c432", 1);
    const auto logic2 = netlist::generate_circuit(spec2);
    const auto flow2 = core::run_two_stage_flow(logic2, bench::paper_flow_options());
    util::WallTimer timer;
    const auto tilos = core::run_tilos(flow2.circuit, flow2.coupling,
                                       flow2.bounds.delay_s);
    std::vector<double> x = tilos.sizes;
    const auto m = timing::compute_metrics(flow2.circuit, flow2.coupling, x,
                                           timing::CouplingLoadMode::kLocalOnly);
    std::printf("\nTILOS greedy baseline (delay bound only): area %.0f um2, "
                "delay %.1f ps, noise %.1f fF (%.2f x X0), %d moves, %.2f s\n",
                m.area_um2, m.delay_s * 1e12, m.noise_f * 1e15,
                m.noise_f / flow2.bounds.noise_f, tilos.moves, timer.seconds());
  }

  // Posynomial order: evaluate the noise model error at the final sizes.
  std::printf("\nposynomial order (noise model at final sizes of the full flow):\n\n");
  const auto spec = netlist::spec_for_profile("c432", 1);
  const auto logic = netlist::generate_circuit(spec);
  const auto flow = core::run_two_stage_flow(logic, base_options);
  const auto& x = flow.circuit.sizes();
  const double exact = flow.coupling.noise_exact(x);
  util::TextTable posy({"k", "noise(fF)", "err vs exact %"});
  for (int k = 2; k <= 5; ++k) {
    const double v = flow.coupling.noise_posynomial(x, k);
    posy.add_row({util::TextTable::integer(k), util::TextTable::num(v * 1e15, 2),
                  util::TextTable::num(100.0 * (exact - v) / exact, 3)});
  }
  posy.print(std::cout);
  return 0;
}
