// Theorem 1 verification: the relative error of the order-k posynomial
// truncation of 1/(1-u) is exactly u^k. The paper quotes, at u = 0.25,
// errors below 6.3% / 1.6% / 0.4% / 0.1% for k = 2..5 — this bench prints
// the measured error of the capacitance model itself (Eq. 2 vs Eq. 3).
#include <cstdio>
#include <iostream>

#include "layout/coupling.hpp"
#include "util/table.hpp"

int main() {
  using namespace lrsizer;

  std::printf("Theorem 1 — truncation error of the coupling posynomial\n\n");

  layout::CouplingGeometry geom;
  geom.overlap_um = 200.0;
  geom.pitch_um = 1.0;
  geom.fringe_per_um = 0.25e-15;

  util::TextTable table({"u", "k", "measured err%", "u^k %", "paper quote %"});
  const double quotes[] = {6.3, 1.6, 0.4, 0.1};
  for (const double u : {0.1, 0.25, 0.5}) {
    for (int k = 2; k <= 5; ++k) {
      const double xi = u;  // coupling_ratio((u,u), pitch 1) = u
      const double exact = layout::exact_coupling_cap(geom, xi, xi);
      const double approx = layout::posynomial_coupling_cap(geom, xi, xi, k);
      const double measured = 100.0 * (exact - approx) / exact;
      const double predicted = 100.0 * layout::truncation_error_ratio(u, k);
      table.add_row({util::TextTable::num(u, 2), util::TextTable::integer(k),
                     util::TextTable::num(measured, 4),
                     util::TextTable::num(predicted, 4),
                     u == 0.25 ? util::TextTable::num(quotes[k - 2], 1) : "-"});
    }
  }
  table.print(std::cout);

  std::printf("\npaper quote (u=0.25): error < 6.3 / 1.6 / 0.4 / 0.1 %% for k=2..5 — "
              "matches u^k exactly.\n");
  return 0;
}
