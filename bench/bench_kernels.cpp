// google-benchmark micro-benchmarks of the O(|V|+|E|) kernels behind the
// paper's "linear runtime per iteration" claim (Figure 10b): the load pass,
// the upstream pass, arrivals, one full LRS pass, and the flow projection.
#include <benchmark/benchmark.h>

#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "layout/channels.hpp"
#include "layout/neighbors.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"
#include "timing/arrival.hpp"
#include "timing/loads.hpp"
#include "timing/upstream.hpp"

namespace {

using namespace lrsizer;

struct Instance {
  netlist::Circuit circuit;
  layout::CouplingSet coupling;
  std::vector<double> mu;
};

Instance make_instance(std::int64_t gates) {
  netlist::GeneratorSpec spec;
  spec.num_gates = static_cast<std::int32_t>(gates);
  spec.num_wires = static_cast<std::int32_t>(gates * 2 + 16);
  spec.num_inputs = 32;
  spec.num_outputs = 16;
  spec.depth = 20;
  spec.seed = 3;
  const auto logic = netlist::generate_circuit(spec);
  auto elab = netlist::elaborate(logic, netlist::TechParams{}, spec.elab);

  const auto channels =
      layout::assign_channels(elab.circuit, elab.net_of_node, logic);
  layout::NeighborOptions nopt;
  nopt.fold_miller = false;
  auto coupling = layout::build_coupling_set(elab.circuit, channels.channels, nopt);

  elab.circuit.set_uniform_size(1.0);
  core::MultiplierState m(elab.circuit);
  m.init_default(elab.circuit);
  std::vector<double> mu;
  m.compute_mu(elab.circuit, mu);
  for (double& v : mu) v *= 1e13;
  return Instance{std::move(elab.circuit), std::move(coupling), std::move(mu)};
}

void BM_LoadPass(benchmark::State& state) {
  const auto inst = make_instance(state.range(0));
  timing::LoadAnalysis loads;
  for (auto _ : state) {
    timing::compute_loads(inst.circuit, inst.coupling, inst.circuit.sizes(),
                          timing::CouplingLoadMode::kLocalOnly, loads);
    benchmark::DoNotOptimize(loads.cap_delay.data());
  }
  state.SetComplexityN(inst.circuit.num_nodes());
}
BENCHMARK(BM_LoadPass)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Complexity(benchmark::oN);

void BM_UpstreamPass(benchmark::State& state) {
  const auto inst = make_instance(state.range(0));
  std::vector<double> r_up;
  for (auto _ : state) {
    timing::compute_weighted_upstream(inst.circuit, inst.circuit.sizes(), inst.mu,
                                      r_up);
    benchmark::DoNotOptimize(r_up.data());
  }
  state.SetComplexityN(inst.circuit.num_nodes());
}
BENCHMARK(BM_UpstreamPass)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Complexity(benchmark::oN);

void BM_ArrivalPass(benchmark::State& state) {
  const auto inst = make_instance(state.range(0));
  timing::LoadAnalysis loads;
  timing::compute_loads(inst.circuit, inst.coupling, inst.circuit.sizes(),
                        timing::CouplingLoadMode::kLocalOnly, loads);
  timing::ArrivalAnalysis arrivals;
  for (auto _ : state) {
    timing::compute_arrivals(inst.circuit, inst.circuit.sizes(), loads, arrivals);
    benchmark::DoNotOptimize(arrivals.arrival.data());
  }
  state.SetComplexityN(inst.circuit.num_nodes());
}
BENCHMARK(BM_ArrivalPass)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Complexity(benchmark::oN);

void BM_LrsSolve(benchmark::State& state) {
  const auto inst = make_instance(state.range(0));
  core::LrsWorkspace ws;
  core::LrsOptions options;
  auto x = inst.circuit.sizes();
  for (auto _ : state) {
    core::run_lrs(inst.circuit, inst.coupling, inst.mu, 0.0, 0.0, options, x, ws);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetComplexityN(inst.circuit.num_nodes());
}
BENCHMARK(BM_LrsSolve)->Arg(500)->Arg(1000)->Arg(2000)->Complexity(benchmark::oN);

void BM_FlowProjection(benchmark::State& state) {
  const auto inst = make_instance(state.range(0));
  core::MultiplierState m(inst.circuit);
  m.init_default(inst.circuit);
  for (auto _ : state) {
    m.project_flow(inst.circuit);
    benchmark::DoNotOptimize(m.lambda.data());
  }
  state.SetComplexityN(inst.circuit.num_edges());
}
BENCHMARK(BM_FlowProjection)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Complexity(benchmark::oN);

void BM_NoiseMetric(benchmark::State& state) {
  const auto inst = make_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.coupling.noise_linear(inst.circuit.sizes()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.coupling.pairs().size()));
}
BENCHMARK(BM_NoiseMetric)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
