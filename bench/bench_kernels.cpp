// Micro-benchmarks of the O(|V|+|E|) kernels behind the paper's "linear
// runtime per iteration" claim (Figure 10b), extended with the
// level-parallel variants and the redundant-analysis elimination of the
// OGWS hot loop.
//
//   bench_kernels [--profile NAME] [--threads CSV] [--min-ms N] [--json FILE]
//
// For each kernel (load pass, upstream pass, arrival pass, full LRS solve,
// OGWS dual update A4+A5) the harness times threads = 1 plus every entry of
// --threads (default 1,2,4) on a runtime::KernelTeam, reporting ns/op and
// the speedup against the serial pass. Two serial rows compare the LRS
// sweep modes on a steady-state re-solve (perturb ~1% of μ, re-solve from
// the fixpoint): "lrs_sweep_dense" vs "lrs_sweep_worklist", the worklist
// row's speedup column anchored to dense. Two additional serial rows
// measure one OGWS iteration's
// analysis sequence with the pre-elimination redundancy ("ogws_iteration_
// legacy": the dual re-runs a full load pass with a fresh allocation, as the
// old loop did) against the current fused sequence — the single-thread win
// the redundancy fix buys on its own. The multiplier-update step A4/A5 is
// identical in both sequences and excluded.
//
// --json writes the machine-readable BENCH_kernels.json (schema
// lrsizer-bench-kernels-v1: git SHA, per-kernel ns, speedups) that CI
// uploads as a perf artifact; tools/bench_compare.py diffs two of them and
// flags >10% regressions.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lagrangian.hpp"
#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "layout/channels.hpp"
#include "layout/coloring.hpp"
#include "layout/neighbors.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"
#include "runtime/json.hpp"
#include "runtime/pool.hpp"
#include "timing/arrival.hpp"
#include "timing/loads.hpp"
#include "timing/metrics.hpp"
#include "timing/upstream.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lrsizer;

#ifndef LRSIZER_GIT_SHA
#define LRSIZER_GIT_SHA "unknown"
#endif

struct Args {
  std::string profile = "c7552";  // the largest Table-1 profile
  std::vector<int> threads = {1, 2, 4};
  double min_ms = 50.0;
  std::string json_path;
};

[[noreturn]] void usage_and_exit(int code) {
  std::cerr << "usage: bench_kernels [--profile NAME] [--threads CSV] "
               "[--min-ms N] [--json FILE]\n";
  std::exit(code);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(1);
      return argv[++i];
    };
    if (arg == "--profile") {
      args.profile = value();
    } else if (arg == "--threads") {
      args.threads.clear();
      std::stringstream ss(value());
      std::string part;
      while (std::getline(ss, part, ',')) {
        const int t = std::atoi(part.c_str());
        if (t < 1) usage_and_exit(1);
        args.threads.push_back(t);
      }
      if (args.threads.empty()) usage_and_exit(1);
    } else if (arg == "--min-ms") {
      args.min_ms = std::atof(value().c_str());
      if (args.min_ms <= 0.0) usage_and_exit(1);
    } else if (arg == "--json") {
      args.json_path = value();
    } else if (arg == "--help" || arg == "-h") {
      usage_and_exit(0);
    } else {
      std::cerr << "bench_kernels: unknown argument '" << arg << "'\n";
      usage_and_exit(1);
    }
  }
  return args;
}

struct Instance {
  netlist::Circuit circuit;
  layout::CouplingSet coupling;
  netlist::LevelSchedule colors;
  core::MultiplierState multipliers;
  std::vector<double> mu;
  core::Bounds bounds;
};

Instance make_instance(const std::string& profile) {
  const auto spec = netlist::spec_for_profile(profile, 1);
  const auto logic = netlist::generate_circuit(spec);
  auto elab = netlist::elaborate(logic, netlist::TechParams{}, spec.elab);
  const auto channels =
      layout::assign_channels(elab.circuit, elab.net_of_node, logic);
  layout::NeighborOptions nopt;
  nopt.fold_miller = false;
  auto coupling = layout::build_coupling_set(elab.circuit, channels.channels, nopt);
  elab.circuit.set_uniform_size(1.0);

  const auto bounds =
      core::derive_bounds(elab.circuit, coupling, elab.circuit.sizes(),
                          timing::CouplingLoadMode::kLocalOnly, core::BoundFactors{});

  // Realistic steady-state multipliers: snapshot a short real OGWS run (the
  // iteration-1 transient has ~3x the LRS pass count of steady state, which
  // would skew every per-iteration number).
  core::OgwsOptions warmup;
  warmup.max_iterations = 8;
  warmup.record_history = false;
  core::OgwsControl control;
  control.capture_warm_start = true;
  const auto warm = core::run_ogws(elab.circuit, coupling, bounds, warmup, control);

  core::MultiplierState m(elab.circuit);
  m.init_default(elab.circuit);
  m.lambda = warm.warm.lambda;
  m.beta = warm.warm.beta;
  m.gamma = warm.warm.gamma;
  std::vector<double> mu;
  m.compute_mu(elab.circuit, mu);

  auto colors = layout::build_coupling_colors(elab.circuit, coupling);
  return Instance{std::move(elab.circuit), std::move(coupling), std::move(colors),
                  std::move(m),            std::move(mu),       bounds};
}

/// Seconds per call: calibrate a batch size that runs >= min_ms, then take
/// the best of three batches (least-noise estimator).
template <typename Fn>
double seconds_per_op(double min_ms, Fn&& fn) {
  fn();  // warm up caches and lazy allocations
  std::int64_t iters = 1;
  for (;;) {
    util::WallTimer timer;
    for (std::int64_t i = 0; i < iters; ++i) fn();
    const double elapsed = timer.seconds();
    if (elapsed * 1e3 >= min_ms || iters > (std::int64_t{1} << 40)) {
      double best = elapsed / static_cast<double>(iters);
      for (int rep = 1; rep < 3; ++rep) {
        util::WallTimer t2;
        for (std::int64_t i = 0; i < iters; ++i) fn();
        best = std::min(best, t2.seconds() / static_cast<double>(iters));
      }
      return best;
    }
    const double target = min_ms / 1e3;
    iters = std::max(iters * 2,
                     static_cast<std::int64_t>(static_cast<double>(iters) *
                                               (1.2 * target / std::max(elapsed, 1e-9))));
  }
}

struct Row {
  std::string kernel;
  int threads = 1;
  double ns_per_op = 0.0;
  double speedup_vs_serial = 1.0;
};

/// Optimization barrier for benched values (file scope so -Wunused-but-set
/// stays quiet).
volatile double g_bench_sink = 0.0;

const char* git_sha() {
  if (const char* env = std::getenv("LRSIZER_GIT_SHA")) return env;
  if (const char* env = std::getenv("GITHUB_SHA")) return env;
  return LRSIZER_GIT_SHA;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  Instance inst = make_instance(args.profile);
  const auto& circuit = inst.circuit;
  const auto mode = timing::CouplingLoadMode::kLocalOnly;

  std::printf("bench_kernels: profile %s — %d nodes, %d edges, %zu pairs (git %s)\n",
              args.profile.c_str(), circuit.num_nodes(), circuit.num_edges(),
              inst.coupling.pairs().size(), git_sha());

  // Teams are built once per thread count and reused across kernels so the
  // timings exclude thread start-up. The serial run always goes first — it
  // anchors every speedup_vs_serial ratio.
  std::vector<int> thread_counts = {1};
  for (const int t : args.threads) {
    if (std::find(thread_counts.begin(), thread_counts.end(), t) ==
        thread_counts.end()) {
      thread_counts.push_back(t);
    }
  }
  std::vector<std::unique_ptr<runtime::KernelTeam>> teams;
  for (const int t : thread_counts) {
    teams.push_back(t > 1 ? std::make_unique<runtime::KernelTeam>(t) : nullptr);
  }

  std::vector<Row> rows;
  auto bench_threaded = [&](const std::string& kernel, auto&& make_fn) {
    double serial_ns = 0.0;
    for (std::size_t k = 0; k < thread_counts.size(); ++k) {
      util::Executor* exec = teams[k] != nullptr ? teams[k].get() : nullptr;
      const double ns = seconds_per_op(args.min_ms, make_fn(exec)) * 1e9;
      if (thread_counts[k] == 1) serial_ns = ns;
      rows.push_back({kernel, thread_counts[k], ns,
                      serial_ns > 0.0 && ns > 0.0 ? serial_ns / ns : 1.0});
    }
  };

  // ---- the per-iteration kernels, serial + level-parallel ----

  timing::LoadAnalysis loads;
  bench_threaded("loads", [&](util::Executor* exec) {
    return [&, exec] {
      timing::compute_loads(circuit, inst.coupling, circuit.sizes(), mode, loads,
                            exec);
    };
  });

  std::vector<double> r_up;
  bench_threaded("upstream", [&](util::Executor* exec) {
    return [&, exec] {
      timing::compute_weighted_upstream(circuit, circuit.sizes(), inst.mu, r_up,
                                        exec);
    };
  });

  timing::compute_loads(circuit, inst.coupling, circuit.sizes(), mode, loads);
  timing::ArrivalAnalysis arrivals;
  bench_threaded("arrivals", [&](util::Executor* exec) {
    return [&, exec] {
      timing::compute_arrivals(circuit, circuit.sizes(), loads, arrivals, exec);
    };
  });

  core::LrsWorkspace lrs_ws;
  core::LrsOptions lrs_options;
  const double beta = inst.multipliers.beta;
  const core::NoiseMultipliers gamma(inst.multipliers.gamma);
  std::vector<double> x = circuit.sizes();
  bench_threaded("lrs_solve", [&](util::Executor* exec) {
    const core::LrsRuntime runtime{exec, &inst.colors};
    return [&, runtime] {
      core::run_lrs(circuit, inst.coupling, inst.mu, beta, gamma, lrs_options, x,
                    lrs_ws, runtime);
    };
  });

  // ---- the OGWS dual step A4+A5, serial + level-parallel ----
  //
  // Each op restores λ/β/γ from the warmup snapshot first: the
  // multiplicative rule compounds, so unrestored repeats would walk the
  // state away from the regime being measured. The restore is an O(|E|)
  // copy, noise next to the pow()-heavy update itself. The arrivals/loads
  // computed above (at the uniform start sizes) are the fixed analysis
  // inputs; ρ is the warmup's steady-state step.
  const double area_ref =
      std::max(timing::total_area(circuit, circuit.sizes()), 1e-12);
  const core::DualScales dual_scales{area_ref, area_ref / inst.bounds.delay_s,
                                     area_ref / inst.bounds.cap_f,
                                     area_ref / inst.bounds.noise_f};
  core::OgwsOptions dual_options;
  const double dual_rho = dual_options.step0 / std::sqrt(8.0);
  const double cap_now = timing::total_cap(circuit, circuit.sizes());
  const double noise_now = inst.coupling.noise_linear(circuit.sizes());
  const std::vector<double> lambda0 = inst.multipliers.lambda;
  const double beta0 = inst.multipliers.beta;
  const double gamma0 = inst.multipliers.gamma;
  bench_threaded("dual_update", [&](util::Executor* exec) {
    return [&, exec] {
      inst.multipliers.lambda = lambda0;
      inst.multipliers.beta = beta0;
      inst.multipliers.gamma = gamma0;
      core::dual_ascent_step(circuit, inst.coupling, inst.bounds, dual_options,
                             arrivals, circuit.sizes(), cap_now, noise_now,
                             dual_rho, dual_scales, inst.multipliers, exec);
    };
  });
  inst.multipliers.lambda = lambda0;
  inst.multipliers.beta = beta0;
  inst.multipliers.gamma = gamma0;

  // ---- worklist vs dense LRS sweeps (steady-state re-solve) ----
  //
  // The scenario worklist mode exists for: a converged solve whose μ vector
  // is then perturbed a little, as one OGWS dual step does. Each op scales
  // ~1% of the μ entries by ×1.01 — alternating with ÷1.01 so repeats stay
  // bounded — and re-solves from the previous fixpoint. Dense warm-starts
  // but still prices every component each pass; worklist re-processes only
  // the seeded frontier. The worklist row's speedup column is
  // dense_ns / worklist_ns (both rows are serial).
  auto bench_sweep = [&](core::SweepMode sweep_mode) {
    core::LrsOptions opts;
    opts.warm_start = true;
    opts.sweep = sweep_mode;
    std::vector<double> mu_local = inst.mu;
    std::vector<double> x_local = circuit.sizes();
    core::LrsWorkspace ws;
    core::LrsOptions cold = opts;  // converge once: ops then measure the
    cold.warm_start = false;       // incremental regime, not the first solve
    core::run_lrs(circuit, inst.coupling, mu_local, beta, gamma, cold, x_local,
                  ws);
    std::int64_t toggle = 0;
    return seconds_per_op(args.min_ms, [&] {
             const double f = (toggle++ % 2 == 0) ? 1.01 : 1.0 / 1.01;
             for (std::size_t i = 7; i < mu_local.size(); i += 97) {
               mu_local[i] *= f;
             }
             core::run_lrs(circuit, inst.coupling, mu_local, beta, gamma, opts,
                           x_local, ws);
             g_bench_sink = x_local[x_local.size() / 2];
           }) *
           1e9;
  };
  const double dense_sweep_ns = bench_sweep(core::SweepMode::kDense);
  const double worklist_sweep_ns = bench_sweep(core::SweepMode::kWorklist);
  rows.push_back({"lrs_sweep_dense", 1, dense_sweep_ns, 1.0});
  rows.push_back({"lrs_sweep_worklist", 1, worklist_sweep_ns,
                  worklist_sweep_ns > 0.0 ? dense_sweep_ns / worklist_sweep_ns
                                          : 1.0});

  // ---- serial-only reference kernels (Figure 10b linearity set) ----

  rows.push_back({"flow_projection", 1,
                  seconds_per_op(args.min_ms,
                                 [&] { inst.multipliers.project_flow(circuit); }) *
                      1e9,
                  1.0});
  rows.push_back(
      {"noise_metric", 1,
       seconds_per_op(args.min_ms,
                      [&] {
                        g_bench_sink = inst.coupling.noise_linear(circuit.sizes());
                      }) *
           1e9,
       1.0});

  // ---- the redundancy elimination, measured on one OGWS iteration ----
  //
  // "legacy" replays the pre-elimination analysis sequence verbatim through
  // the public APIs: the old run_lrs (every pass re-zeroing its load/r_up
  // buffers and *not* handing loads back), then the old OGWS tail — a fresh
  // load pass, a re-zeroed arrival pass, a dual that re-runs loads in a
  // freshly allocated analysis plus the three scalar sweeps, and the scalar
  // metrics. "fused" is the current sequence: run_lrs hands its final-x
  // loads back, arrivals reuse them, and the dual reuses arrivals + the
  // scalar terms. The multiplier-update step A4/A5 (identical in both) is
  // excluded; both start from the same multipliers so the LRS pass counts
  // match.
  const double mu_sink = inst.multipliers.sink_mu(circuit);
  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  auto legacy_iteration = [&] {
    inst.multipliers.compute_mu(circuit, inst.mu);  // A2
    // Pre-elimination run_lrs: S1 reset, then per pass re-zeroed S2/S3
    // analyses and the index-order sweep, loads left stale on exit.
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      x[static_cast<std::size_t>(v)] = circuit.lower_bound(v);
    }
    for (int pass = 0; pass < lrs_options.max_passes; ++pass) {
      lrs_ws.loads.cap_delay.assign(n, 0.0);  // the old LoadAnalysis::resize
      lrs_ws.loads.cap_prime.assign(n, 0.0);
      lrs_ws.loads.load_in.assign(n, 0.0);
      timing::compute_loads(circuit, inst.coupling, x, mode, lrs_ws.loads);
      lrs_ws.r_up.assign(n, 0.0);  // the old compute_weighted_upstream entry
      timing::compute_weighted_upstream(circuit, x, inst.mu, lrs_ws.r_up);
      double max_rel_change = 0.0;
      for (netlist::NodeId v = circuit.first_component();
           v < circuit.end_component(); ++v) {
        const auto i = static_cast<std::size_t>(v);
        const double opt = core::optimal_resize(circuit, inst.coupling, inst.mu,
                                                beta, gamma, x, lrs_ws.loads,
                                                lrs_ws.r_up, v);
        const double next =
            std::clamp(opt, circuit.lower_bound(v), circuit.upper_bound(v));
        max_rel_change = std::max(max_rel_change, std::abs(next - x[i]) / x[i]);
        x[i] = next;
      }
      if (max_rel_change < lrs_options.tol) break;
    }
    // Old OGWS tail: recompute loads from scratch, re-zeroed arrivals, dual
    // via the load-pass overload (fresh allocation + three scalar sweeps
    // inside), then the iterate's scalar metrics.
    lrs_ws.loads.cap_delay.assign(n, 0.0);
    lrs_ws.loads.cap_prime.assign(n, 0.0);
    lrs_ws.loads.load_in.assign(n, 0.0);
    timing::compute_loads(circuit, inst.coupling, x, mode, lrs_ws.loads);
    arrivals.delay.assign(n, 0.0);
    arrivals.arrival.assign(n, 0.0);
    timing::compute_arrivals(circuit, x, lrs_ws.loads, arrivals);
    const double dual = core::lagrangian_value(circuit, inst.coupling, x, inst.mu,
                                               mu_sink, beta, gamma, inst.bounds,
                                               mode);
    const double area = timing::total_area(circuit, x);
    const double cap = timing::total_cap(circuit, x);
    const double noise = inst.coupling.noise_linear(x);
    g_bench_sink = dual + area + cap + noise + arrivals.critical_delay;
  };
  auto fused_iteration = [&] {
    inst.multipliers.compute_mu(circuit, inst.mu);  // A2
    core::run_lrs(circuit, inst.coupling, inst.mu, beta, gamma, lrs_options, x,
                  lrs_ws);
    timing::compute_arrivals(circuit, x, lrs_ws.loads, arrivals);
    const double area = timing::total_area(circuit, x);
    const double cap = timing::total_cap(circuit, x);
    const double noise = inst.coupling.noise_linear(x);
    const double dual = core::lagrangian_value(
        circuit, inst.coupling, x, inst.mu, mu_sink, beta, gamma, inst.bounds,
        arrivals, core::LagrangianTerms{area, cap, noise});
    g_bench_sink = dual + area + cap + noise + arrivals.critical_delay;
  };
  const double legacy_ns = seconds_per_op(args.min_ms, legacy_iteration) * 1e9;
  const double fused_ns = seconds_per_op(args.min_ms, fused_iteration) * 1e9;
  const double win_pct = 100.0 * (legacy_ns - fused_ns) / legacy_ns;
  rows.push_back({"ogws_iteration_legacy", 1, legacy_ns, 1.0});
  rows.push_back({"ogws_iteration", 1, fused_ns, legacy_ns / fused_ns});

  // ---- report ----

  util::TextTable table({"kernel", "threads", "ns/op", "speedup"});
  for (const auto& row : rows) {
    table.add_row({row.kernel, util::TextTable::integer(row.threads),
                   util::TextTable::num(row.ns_per_op, 0),
                   util::TextTable::num(row.speedup_vs_serial, 2)});
  }
  table.print(std::cout);
  std::printf("redundancy elimination: legacy %.0f ns -> fused %.0f ns "
              "(%.1f%% single-thread OGWS-iteration win)\n",
              legacy_ns, fused_ns, win_pct);

  if (!args.json_path.empty()) {
    runtime::Json j = runtime::Json::object();
    j.set("schema", "lrsizer-bench-kernels-v1");
    j.set("git_sha", git_sha());
    j.set("profile", args.profile);
    j.set("hardware_concurrency",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    j.set("nodes", static_cast<std::int64_t>(circuit.num_nodes()));
    j.set("edges", static_cast<std::int64_t>(circuit.num_edges()));
    j.set("pairs", static_cast<std::int64_t>(inst.coupling.pairs().size()));
    j.set("min_ms", args.min_ms);
    runtime::Json kernels = runtime::Json::array();
    for (const auto& row : rows) {
      runtime::Json entry = runtime::Json::object();
      entry.set("kernel", row.kernel);
      entry.set("threads", static_cast<std::int64_t>(row.threads));
      entry.set("ns_per_op", row.ns_per_op);
      entry.set("speedup_vs_serial", row.speedup_vs_serial);
      kernels.push_back(entry);
    }
    j.set("kernels", kernels);
    runtime::Json redundancy = runtime::Json::object();
    redundancy.set("legacy_ns", legacy_ns);
    redundancy.set("fused_ns", fused_ns);
    redundancy.set("win_pct", win_pct);
    j.set("redundancy", redundancy);

    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "bench_kernels: cannot write '" << args.json_path << "'\n";
      return 1;
    }
    out << j.dump(2) << "\n";
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}
