// Prometheus text exposition format 0.0.4 renderer for Registry snapshots —
// what GET /metrics returns.
//
// Escaping rules follow the format spec exactly: HELP text escapes backslash
// and newline; label values escape backslash, double-quote and newline.
// Histograms render the cumulative _bucket{le=...} series (the +Inf bucket
// always equals _count), then _sum and _count. Families arrive sorted by
// name from Registry::snapshot(), so the rendering is deterministic for a
// fixed registry state — the golden-file test relies on that.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace lrsizer::obs {

/// `\` → `\\`, newline → `\n` (HELP lines).
std::string escape_help(const std::string& text);

/// `\` → `\\`, `"` → `\"`, newline → `\n` (label values).
std::string escape_label_value(const std::string& text);

/// Shortest-round-trip sample value: integral values render without an
/// exponent or fraction, everything else through std::to_chars.
std::string format_value(double value);

/// Render one snapshot as text/plain; version=0.0.4 content.
std::string render_prometheus(const std::vector<MetricFamily>& families);

}  // namespace lrsizer::obs
