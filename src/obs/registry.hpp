// obs::Registry — the process-observability metrics registry.
//
// Instruments (Counter, Gauge, Histogram) are created once through the
// registry and then written through stable pointers: the hot path is one
// relaxed atomic op per event, no lock, no allocation — cheap enough to sit
// inside the serve loop's admission path and the pool's steal counter.
// snapshot() assembles one coherent picture under a single mutex; the
// Prometheus renderer (obs/prometheus.hpp) and the serve stats surface both
// read from it, so the two can never disagree about a counter's value.
//
// Two kinds of metrics:
//   * owned instruments (counter/gauge/histogram): the registry owns the
//     atomic storage; callers keep the returned pointer and write into it.
//     Registration is idempotent — the same (name, labels) hands back the
//     same instrument, so repeated wiring (e.g. run_batch called twice with
//     one registry) accumulates instead of colliding.
//   * callback metrics (counter_fn/gauge_fn): the value's source of truth
//     lives elsewhere (ResultCache::stats(), a queue depth under someone
//     else's mutex) and is read at snapshot() time. Re-registering the same
//     (name, labels) replaces the callback; remove_owner() drops every
//     callback tagged with an owner before that owner dies.
//
// Names and labels are validated against the Prometheus data-model rules
// (metric: [a-zA-Z_:][a-zA-Z0-9_:]*, label: [a-zA-Z_][a-zA-Z0-9_]*);
// violations throw std::invalid_argument at registration, never at write.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace lrsizer::obs {

/// Label set of one instrument: (name, value) pairs. Order-insensitive for
/// identity — the registry sorts a copy by label name when matching, and the
/// renderer emits them sorted, so {a=1,b=2} and {b=2,a=1} are one series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event counter. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value. set() is one relaxed store.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket distribution. Bucket upper bounds are set at registration
/// (ascending, finite); the implicit +Inf bucket catches the overflow.
/// observe() is a branchless-ish upper-bound search plus two relaxed atomic
/// adds — no lock.
class Histogram {
 public:
  /// `bounds` must be strictly ascending and finite (validated by the
  /// registry at registration).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Frozen histogram state inside a snapshot.
struct HistogramValue {
  std::vector<double> bounds;           ///< finite upper bounds, ascending
  std::vector<std::uint64_t> counts;    ///< per-bucket; last entry is +Inf
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// One labeled series inside a family.
struct Sample {
  Labels labels;  ///< sorted by label name
  double value = 0.0;
  std::optional<HistogramValue> histogram;  ///< engaged for histograms
};

/// Every series sharing one metric name, with its help text and type.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Sample> samples;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Owned instruments. The returned pointer is stable for the registry's
  /// lifetime. Same (name, labels) → same instrument; same name with a
  /// different type or help → std::invalid_argument.
  Counter* counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge* gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Callback metrics, evaluated at snapshot() time. `owner` (optional) tags
  /// the callback for remove_owner(). Re-registering an existing
  /// (name, labels) replaces the previous callback.
  void counter_fn(const std::string& name, const std::string& help,
                  Labels labels, std::function<double()> fn,
                  const void* owner = nullptr);
  void gauge_fn(const std::string& name, const std::string& help,
                Labels labels, std::function<double()> fn,
                const void* owner = nullptr);

  /// Drop every callback metric registered with this owner tag (call before
  /// the object the callbacks read from is destroyed). Owned instruments are
  /// never removed — their storage lives in the registry.
  void remove_owner(const void* owner);

  /// One coherent picture: families sorted by name, samples in registration
  /// order, callbacks evaluated now. Taken under one mutex.
  std::vector<MetricFamily> snapshot() const;

  // Prometheus data-model validation (exposed for tests).
  static bool valid_metric_name(const std::string& name);
  static bool valid_label_name(const std::string& name);

 private:
  struct Instrument {
    Labels labels;  ///< sorted by label name
    // Exactly one of these is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
    const void* owner = nullptr;  ///< callback metrics only
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<double> bounds;  ///< histograms: shared bucket layout
    std::vector<Instrument> instruments;
  };

  /// Locate/create the family, enforcing name/label validity and type/help
  /// consistency. Returns the instrument slot for (name, labels), creating
  /// it when new. Caller holds mutex_.
  Instrument* find_or_create(const std::string& name, const std::string& help,
                             MetricType type, Labels labels, bool* created);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;  ///< sorted: stable render order
};

}  // namespace lrsizer::obs
