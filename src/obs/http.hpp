// Minimal HTTP/1.1 GET front-end for the metrics endpoint — just enough of
// RFC 9112 to answer a scrape: an incremental request parser (request line +
// headers, headers ignored) and a Connection: close response builder. The
// serve event loop (serve/listen.cpp) feeds raw bytes in as they arrive and
// closes the connection after one response; there is no keep-alive, no
// body handling, no chunked anything.
//
// Defensive by construction (the metrics port faces the same untrusted
// peers as the jsonl port):
//   * total header bytes are capped (default 8 KiB) — an oversized or
//     newline-free request line turns into 400 instead of unbounded
//     buffering;
//   * a bare LF (missing CR) anywhere in the header section is 400 — no
//     lenient parsing that request-smuggling tricks rely on;
//   * a malformed request line (token count, HTTP version) is 400;
//   * slowloris-style dribble never blocks: the parser is pull-based and
//     stateless between feeds, and EOF before completion simply closes.
//
// Parsing lives here, free of sockets, so the fuzz battery can drive it
// byte-by-byte without a listener.
#pragma once

#include <cstddef>
#include <string>

namespace lrsizer::obs {

struct HttpRequest {
  std::string method;   ///< e.g. "GET" (any token accepted; routing rejects)
  std::string target;   ///< e.g. "/metrics" (query string included verbatim)
  std::string version;  ///< e.g. "HTTP/1.1"
};

class HttpRequestParser {
 public:
  enum class State {
    kIncomplete,  ///< need more bytes
    kComplete,    ///< request() is valid; headers were consumed and ignored
    kBad,         ///< protocol violation; error_status()/error_reason() set
  };

  explicit HttpRequestParser(std::size_t max_bytes = 8192)
      : max_bytes_(max_bytes) {}

  /// Consume `n` more bytes. Once kComplete or kBad is returned the parser
  /// stays in that state (one request per connection).
  State feed(const char* data, std::size_t n);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// True when the completed request's Accept-Encoding headers admit gzip:
  /// any `gzip` (or `x-gzip`) entry whose q-value is not 0. Headers stay
  /// buffered (they are otherwise ignored), so this is a post-hoc scan —
  /// only meaningful in kComplete.
  bool accept_gzip() const;

 private:
  State fail(int status, std::string reason) {
    state_ = State::kBad;
    error_status_ = status;
    error_reason_ = std::move(reason);
    return state_;
  }
  /// Parse the request line out of buffer_[0, line_end); kBad on violation.
  State parse_request_line(std::size_t line_end);

  std::size_t max_bytes_;
  std::string buffer_;
  State state_ = State::kIncomplete;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

/// One complete HTTP/1.1 response with Content-Length and
/// `Connection: close` — the writer's whole contract.
std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body);

/// Same, with extra header lines (each "Name: value\r\n") spliced in before
/// the blank line — the /metrics gzip path adds Content-Encoding + Vary.
std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body,
                          const std::string& extra_headers);

}  // namespace lrsizer::obs
