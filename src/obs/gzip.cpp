#include "obs/gzip.hpp"

#ifdef LRSIZER_HAVE_ZLIB
#include <zlib.h>

#include <cstring>
#endif

namespace lrsizer::obs {

#ifdef LRSIZER_HAVE_ZLIB

namespace {

/// windowBits 15 plus 16 selects gzip (not raw deflate / zlib) framing.
constexpr int kGzipWindowBits = 15 + 16;
constexpr std::size_t kChunk = 16384;

}  // namespace

bool gzip_available() { return true; }

bool gzip_compress(const std::string& in, std::string* out) {
  z_stream zs;
  std::memset(&zs, 0, sizeof(zs));
  if (deflateInit2(&zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED, kGzipWindowBits, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return false;
  }
  out->clear();
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(in.data()));
  zs.avail_in = static_cast<uInt>(in.size());
  char buffer[kChunk];
  int rc = Z_OK;
  do {
    zs.next_out = reinterpret_cast<Bytef*>(buffer);
    zs.avail_out = kChunk;
    rc = deflate(&zs, Z_FINISH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      deflateEnd(&zs);
      return false;
    }
    out->append(buffer, kChunk - zs.avail_out);
  } while (rc != Z_STREAM_END);
  deflateEnd(&zs);
  return true;
}

bool gzip_decompress(const std::string& in, std::string* out) {
  z_stream zs;
  std::memset(&zs, 0, sizeof(zs));
  if (inflateInit2(&zs, kGzipWindowBits) != Z_OK) return false;
  out->clear();
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(in.data()));
  zs.avail_in = static_cast<uInt>(in.size());
  char buffer[kChunk];
  int rc = Z_OK;
  do {
    zs.next_out = reinterpret_cast<Bytef*>(buffer);
    zs.avail_out = kChunk;
    rc = inflate(&zs, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      inflateEnd(&zs);
      return false;
    }
    out->append(buffer, kChunk - zs.avail_out);
  } while (rc != Z_STREAM_END && zs.avail_in > 0);
  inflateEnd(&zs);
  // Truncated input never reaches Z_STREAM_END; reject it.
  return rc == Z_STREAM_END;
}

#else  // !LRSIZER_HAVE_ZLIB

bool gzip_available() { return false; }
bool gzip_compress(const std::string&, std::string*) { return false; }
bool gzip_decompress(const std::string&, std::string*) { return false; }

#endif

}  // namespace lrsizer::obs
