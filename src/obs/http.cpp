#include "obs/http.hpp"

#include <cstdlib>

namespace lrsizer::obs {

namespace {

std::string trimmed_lower(const std::string& s, std::size_t begin,
                          std::size_t end) {
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  std::string out = s.substr(begin, end - begin);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// One Accept-Encoding list entry ("gzip", "gzip;q=0.5", ...): true when it
/// names gzip with a nonzero q-value.
bool entry_admits_gzip(const std::string& entry) {
  const std::size_t semi = entry.find(';');
  const std::string coding = trimmed_lower(entry, 0, semi == std::string::npos
                                                         ? entry.size()
                                                         : semi);
  if (coding != "gzip" && coding != "x-gzip") return false;
  if (semi == std::string::npos) return true;
  const std::string params = trimmed_lower(entry, semi + 1, entry.size());
  if (params.rfind("q=", 0) != 0) return true;  // unknown param: keep default
  return std::strtod(params.c_str() + 2, nullptr) > 0.0;
}

/// RFC 9110 token characters (method names).
bool token_char(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

HttpRequestParser::State HttpRequestParser::parse_request_line(
    std::size_t line_end) {
  const std::string line = buffer_.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    return fail(400, "malformed request line");
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty()) {
    return fail(400, "malformed request line");
  }
  for (char c : request_.method) {
    if (!token_char(c)) return fail(400, "invalid method token");
  }
  if (request_.version.rfind("HTTP/1.", 0) != 0 ||
      request_.version.size() != 8 || request_.version[7] < '0' ||
      request_.version[7] > '9') {
    return fail(400, "unsupported HTTP version");
  }
  return State::kIncomplete;  // request line fine; headers still pending
}

HttpRequestParser::State HttpRequestParser::feed(const char* data,
                                                 std::size_t n) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(data, n);
  if (buffer_.size() > max_bytes_) {
    return fail(400, "request header exceeds " + std::to_string(max_bytes_) +
                         " bytes");
  }
  // Every line in the header section must end CRLF; a bare LF is a
  // violation, not a lenient alternative.
  std::size_t scan = buffer_.find('\n');
  while (scan != std::string::npos) {
    if (scan == 0 || buffer_[scan - 1] != '\r') {
      return fail(400, "bare LF in request header (CRLF required)");
    }
    scan = buffer_.find('\n', scan + 1);
  }
  const std::size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) return State::kIncomplete;
  if (request_.method.empty()) {
    if (const State st = parse_request_line(line_end); st == State::kBad) {
      return st;
    }
  }
  // Complete once the blank line terminating the (ignored) headers arrives.
  if (buffer_.find("\r\n\r\n") != std::string::npos) {
    state_ = State::kComplete;
  }
  return state_;
}

bool HttpRequestParser::accept_gzip() const {
  if (state_ != State::kComplete) return false;
  // Headers were never parsed into a map (they are ignored for routing), but
  // the raw section is still in buffer_ — scan it line by line.
  std::size_t pos = buffer_.find("\r\n");
  if (pos == std::string::npos) return false;
  pos += 2;
  while (pos < buffer_.size()) {
    const std::size_t line_end = buffer_.find("\r\n", pos);
    if (line_end == std::string::npos || line_end == pos) break;  // blank line
    const std::size_t colon = buffer_.find(':', pos);
    if (colon != std::string::npos && colon < line_end &&
        trimmed_lower(buffer_, pos, colon) == "accept-encoding") {
      // Comma-split the value; any admitting entry wins.
      std::size_t entry_begin = colon + 1;
      while (entry_begin <= line_end) {
        std::size_t entry_end = buffer_.find(',', entry_begin);
        if (entry_end == std::string::npos || entry_end > line_end) {
          entry_end = line_end;
        }
        if (entry_admits_gzip(
                buffer_.substr(entry_begin, entry_end - entry_begin))) {
          return true;
        }
        entry_begin = entry_end + 1;
      }
    }
    pos = line_end + 2;
  }
  return false;
}

std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body) {
  return http_response(status, reason, content_type, body, std::string());
}

std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body,
                          const std::string& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\n" + extra_headers + "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace lrsizer::obs
