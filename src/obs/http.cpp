#include "obs/http.hpp"

namespace lrsizer::obs {

namespace {

/// RFC 9110 token characters (method names).
bool token_char(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

HttpRequestParser::State HttpRequestParser::parse_request_line(
    std::size_t line_end) {
  const std::string line = buffer_.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    return fail(400, "malformed request line");
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty()) {
    return fail(400, "malformed request line");
  }
  for (char c : request_.method) {
    if (!token_char(c)) return fail(400, "invalid method token");
  }
  if (request_.version.rfind("HTTP/1.", 0) != 0 ||
      request_.version.size() != 8 || request_.version[7] < '0' ||
      request_.version[7] > '9') {
    return fail(400, "unsupported HTTP version");
  }
  return State::kIncomplete;  // request line fine; headers still pending
}

HttpRequestParser::State HttpRequestParser::feed(const char* data,
                                                 std::size_t n) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(data, n);
  if (buffer_.size() > max_bytes_) {
    return fail(400, "request header exceeds " + std::to_string(max_bytes_) +
                         " bytes");
  }
  // Every line in the header section must end CRLF; a bare LF is a
  // violation, not a lenient alternative.
  std::size_t scan = buffer_.find('\n');
  while (scan != std::string::npos) {
    if (scan == 0 || buffer_[scan - 1] != '\r') {
      return fail(400, "bare LF in request header (CRLF required)");
    }
    scan = buffer_.find('\n', scan + 1);
  }
  const std::size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) return State::kIncomplete;
  if (request_.method.empty()) {
    if (const State st = parse_request_line(line_end); st == State::kBad) {
      return st;
    }
  }
  // Complete once the blank line terminating the (ignored) headers arrives.
  if (buffer_.find("\r\n\r\n") != std::string::npos) {
    state_ = State::kComplete;
  }
  return state_;
}

std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace lrsizer::obs
