// obs::TraceSession — per-job flow tracing in Chrome trace-event format.
//
// A TraceSession collects complete ("ph":"X") spans — SizingSession stages,
// OGWS iterations, LRS passes — with numeric metadata args, and serializes
// them as Chrome trace-event JSON (schema marker `lrsizer-trace-v1`,
// docs/SCHEMAS.md) loadable in Perfetto / chrome://tracing.
//
// The disabled path is a branch on a null pointer: every tracing hook in the
// flow is `obs::TraceSession* trace` defaulting to nullptr, and ScopedSpan's
// constructor/destructor return immediately when the session is null — no
// clock read, no allocation, no lock. Bit-determinism of FlowResult is
// unaffected either way: tracing only reads optimizer state, never writes
// it.
//
// Thread-safety: record() appends under a mutex (parallel kernels and batch
// workers may trace concurrently into one session); timestamps come from one
// steady_clock origin per session, so spans from every thread share a
// timeline. Thread ids are mapped to small dense ints in first-seen order.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace lrsizer::obs {

class TraceSession {
 public:
  /// Numeric span metadata, rendered into the event's "args" object.
  using Args = std::vector<std::pair<std::string, double>>;

  struct Span {
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;   ///< microseconds since session start
    std::uint64_t dur_us = 0;
    int tid = 0;               ///< dense per-session thread index
    Args args;
  };

  TraceSession() : origin_(std::chrono::steady_clock::now()) {}

  /// Microseconds since the session's origin (monotonic).
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  /// Record one complete span [begin_us, end_us] on the calling thread.
  void record(std::string name, std::string category, std::uint64_t begin_us,
              std::uint64_t end_us, Args args = {});

  std::size_t span_count() const;
  /// Copy of the recorded spans (tests and the serve result attachment).
  std::vector<Span> spans() const;

  /// Serialize as Chrome trace-event JSON:
  ///   {"schema":"lrsizer-trace-v1","traceEvents":[{...,"ph":"X",...}]}
  /// One line, compact — serve attaches it to result responses verbatim.
  std::string dump_json() const;

  /// dump_json() to a file; false (with *error set) on I/O failure.
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::map<std::thread::id, int> tid_of_;  ///< guarded by mutex_
};

/// RAII span: times its own scope and records on destruction (or finish()).
/// With a null session every member is a no-op behind one pointer test.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession* session, const char* name, const char* category)
      : session_(session), name_(name), category_(category) {
    if (session_ == nullptr) return;
    begin_us_ = session_->now_us();
  }
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach one numeric arg (ignored when disabled).
  void arg(const char* key, double value) {
    if (session_ == nullptr) return;
    args_.emplace_back(key, value);
  }

  /// Record now instead of at scope exit; idempotent.
  void finish() {
    if (session_ == nullptr) return;
    session_->record(name_, category_, begin_us_, session_->now_us(),
                     std::move(args_));
    session_ = nullptr;
  }

 private:
  TraceSession* session_;
  const char* name_;
  const char* category_;
  std::uint64_t begin_us_ = 0;
  TraceSession::Args args_;
};

}  // namespace lrsizer::obs
