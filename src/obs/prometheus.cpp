#include "obs/prometheus.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace lrsizer::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Append `{a="x",b="y"}` (or nothing when empty). `extra` appends one more
/// pair after the sample's own labels — the histogram renderer's le=.
void append_labels(std::string& out, const Labels& labels,
                   const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return;
  out.push_back('{');
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& value) {
    if (!first) out.push_back(',');
    first = false;
    out += name;
    out += "=\"";
    out += escape_label_value(value);
    out.push_back('"');
  };
  for (const auto& [name, value] : labels) emit(name, value);
  if (extra != nullptr) emit(extra->first, extra->second);
  out.push_back('}');
}

void append_sample(std::string& out, const std::string& name,
                   const Labels& labels,
                   const std::pair<std::string, std::string>* extra,
                   double value) {
  out += name;
  append_labels(out, labels, extra);
  out.push_back(' ');
  out += format_value(value);
  out.push_back('\n');
}

}  // namespace

std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string escape_label_value(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string format_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Counters and most gauges are whole numbers; render them without the
  // scientific notation to_chars picks for large magnitudes.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

std::string render_prometheus(const std::vector<MetricFamily>& families) {
  std::string out;
  for (const MetricFamily& family : families) {
    out += "# HELP ";
    out += family.name;
    out.push_back(' ');
    out += escape_help(family.help);
    out.push_back('\n');
    out += "# TYPE ";
    out += family.name;
    out.push_back(' ');
    out += type_name(family.type);
    out.push_back('\n');
    for (const Sample& sample : family.samples) {
      if (!sample.histogram.has_value()) {
        append_sample(out, family.name, sample.labels, nullptr, sample.value);
        continue;
      }
      const HistogramValue& h = *sample.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        cumulative += h.counts[i];
        const std::pair<std::string, std::string> le{"le",
                                                     format_value(h.bounds[i])};
        append_sample(out, family.name + "_bucket", sample.labels, &le,
                      static_cast<double>(cumulative));
      }
      const std::pair<std::string, std::string> inf{"le", "+Inf"};
      append_sample(out, family.name + "_bucket", sample.labels, &inf,
                    static_cast<double>(h.count));
      append_sample(out, family.name + "_sum", sample.labels, nullptr, h.sum);
      append_sample(out, family.name + "_count", sample.labels, nullptr,
                    static_cast<double>(h.count));
    }
  }
  return out;
}

}  // namespace lrsizer::obs
