#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrsizer::obs {

namespace {

/// Portable relaxed add for atomic<double> (fetch_add on floating atomics is
/// C++20 but not universally lowered; the CAS loop costs the same here).
void atomic_add(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  // Prometheus bucket semantics: bucket le=b counts observations <= b, so
  // the slot is the first bound >= v (the +Inf overflow slot otherwise).
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

bool Registry::valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool Registry::valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

Registry::Instrument* Registry::find_or_create(const std::string& name,
                                               const std::string& help,
                                               MetricType type, Labels labels,
                                               bool* created) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name '" + name + "'");
  }
  for (const auto& [key, value] : labels) {
    if (!valid_label_name(key)) {
      throw std::invalid_argument("obs: invalid label name '" + key +
                                  "' on metric '" + name + "'");
    }
    if (key == "le") {
      // Reserved: the renderer synthesizes le= for histogram buckets.
      throw std::invalid_argument(
          "obs: label name 'le' is reserved for histogram buckets (metric '" +
          name + "')");
    }
  }
  labels = sorted_labels(std::move(labels));
  auto [family_it, family_created] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_created) {
    family.help = help;
    family.type = type;
  } else {
    if (family.type != type) {
      throw std::invalid_argument("obs: metric '" + name +
                                  "' re-registered with a different type");
    }
    if (family.help != help) {
      throw std::invalid_argument("obs: metric '" + name +
                                  "' re-registered with different help text");
    }
  }
  for (Instrument& instrument : family.instruments) {
    if (instrument.labels == labels) {
      *created = false;
      return &instrument;
    }
  }
  Instrument instrument;
  instrument.labels = std::move(labels);
  family.instruments.push_back(std::move(instrument));
  *created = true;
  return &family.instruments.back();
}

Counter* Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool created = false;
  Instrument* instrument =
      find_or_create(name, help, MetricType::kCounter, std::move(labels), &created);
  if (!created) {
    if (!instrument->counter) {
      throw std::invalid_argument("obs: counter '" + name +
                                  "' already registered as a callback metric");
    }
    return instrument->counter.get();
  }
  instrument->counter = std::make_unique<Counter>();
  return instrument->counter.get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool created = false;
  Instrument* instrument =
      find_or_create(name, help, MetricType::kGauge, std::move(labels), &created);
  if (!created) {
    if (!instrument->gauge) {
      throw std::invalid_argument("obs: gauge '" + name +
                                  "' already registered as a callback metric");
    }
    return instrument->gauge.get();
  }
  instrument->gauge = std::make_unique<Gauge>();
  return instrument->gauge.get();
}

Histogram* Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds, Labels labels) {
  if (bounds.empty()) {
    throw std::invalid_argument("obs: histogram '" + name +
                                "' needs at least one bucket bound");
  }
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i]) || (i > 0 && bounds[i] <= bounds[i - 1])) {
      throw std::invalid_argument(
          "obs: histogram '" + name +
          "' bucket bounds must be finite and strictly ascending");
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  bool created = false;
  Instrument* instrument = find_or_create(name, help, MetricType::kHistogram,
                                          std::move(labels), &created);
  Family& family = families_.at(name);
  if (family.bounds.empty()) {
    family.bounds = bounds;
  } else if (family.bounds != bounds) {
    throw std::invalid_argument("obs: histogram '" + name +
                                "' re-registered with different bucket bounds");
  }
  if (!created) return instrument->histogram.get();
  instrument->histogram = std::make_unique<Histogram>(std::move(bounds));
  return instrument->histogram.get();
}

void Registry::counter_fn(const std::string& name, const std::string& help,
                          Labels labels, std::function<double()> fn,
                          const void* owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool created = false;
  Instrument* instrument =
      find_or_create(name, help, MetricType::kCounter, std::move(labels), &created);
  if (!created && instrument->counter) {
    throw std::invalid_argument("obs: counter '" + name +
                                "' already registered as an owned instrument");
  }
  instrument->fn = std::move(fn);
  instrument->owner = owner;
}

void Registry::gauge_fn(const std::string& name, const std::string& help,
                        Labels labels, std::function<double()> fn,
                        const void* owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool created = false;
  Instrument* instrument =
      find_or_create(name, help, MetricType::kGauge, std::move(labels), &created);
  if (!created && instrument->gauge) {
    throw std::invalid_argument("obs: gauge '" + name +
                                "' already registered as an owned instrument");
  }
  instrument->fn = std::move(fn);
  instrument->owner = owner;
}

void Registry::remove_owner(const void* owner) {
  if (owner == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = families_.begin(); it != families_.end();) {
    auto& instruments = it->second.instruments;
    std::erase_if(instruments, [owner](const Instrument& instrument) {
      return instrument.fn && instrument.owner == owner;
    });
    if (instruments.empty()) {
      it = families_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<MetricFamily> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricFamily> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    MetricFamily rendered;
    rendered.name = name;
    rendered.help = family.help;
    rendered.type = family.type;
    rendered.samples.reserve(family.instruments.size());
    for (const Instrument& instrument : family.instruments) {
      Sample sample;
      sample.labels = instrument.labels;
      if (instrument.histogram) {
        const Histogram& h = *instrument.histogram;
        HistogramValue value;
        value.bounds = h.bounds();
        value.counts.resize(h.bounds().size() + 1);
        for (std::size_t i = 0; i < value.counts.size(); ++i) {
          value.counts[i] = h.bucket_count(i);
        }
        value.sum = h.sum();
        value.count = h.count();
        sample.histogram = std::move(value);
      } else if (instrument.counter) {
        sample.value = static_cast<double>(instrument.counter->value());
      } else if (instrument.gauge) {
        sample.value = instrument.gauge->value();
      } else if (instrument.fn) {
        sample.value = instrument.fn();
      }
      rendered.samples.push_back(std::move(sample));
    }
    out.push_back(std::move(rendered));
  }
  return out;
}

}  // namespace lrsizer::obs
