#include "obs/trace.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "runtime/json.hpp"

namespace lrsizer::obs {

void TraceSession::record(std::string name, std::string category,
                          std::uint64_t begin_us, std::uint64_t end_us,
                          Args args) {
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.ts_us = begin_us;
  span.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  span.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      tid_of_.emplace(std::this_thread::get_id(),
                      static_cast<int>(tid_of_.size()) + 1);
  span.tid = it->second;
  spans_.push_back(std::move(span));
}

std::size_t TraceSession::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<TraceSession::Span> TraceSession::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string TraceSession::dump_json() const {
  runtime::Json events = runtime::Json::array();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Span& span : spans_) {
      runtime::Json event = runtime::Json::object();
      event.set("name", span.name);
      event.set("cat", span.category);
      event.set("ph", "X");
      event.set("ts", static_cast<std::uint64_t>(span.ts_us));
      event.set("dur", static_cast<std::uint64_t>(span.dur_us));
      event.set("pid", 1);
      event.set("tid", span.tid);
      if (!span.args.empty()) {
        runtime::Json args = runtime::Json::object();
        for (const auto& [key, value] : span.args) args.set(key, value);
        event.set("args", std::move(args));
      }
      events.push_back(std::move(event));
    }
  }
  runtime::Json doc = runtime::Json::object();
  // The schema marker comes first; Chrome/Perfetto ignore unknown top-level
  // keys and load the "traceEvents" array.
  doc.set("schema", "lrsizer-trace-v1");
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc.dump();
}

bool TraceSession::write_file(const std::string& path, std::string* error) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  const std::string text = dump_json() + "\n";
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = "short write to '" + path + "'";
  return ok;
}

}  // namespace lrsizer::obs
