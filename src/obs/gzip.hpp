// gzip compression for the /metrics scrape path (PR 7 follow-on).
//
// Thin wrappers over zlib's deflate/inflate with the gzip framing
// (windowBits 15+16). zlib is optional at build time: src/CMakeLists.txt
// defines LRSIZER_HAVE_ZLIB when find_package(ZLIB) succeeds, and without it
// every function here degrades to "not available" — the /metrics endpoint
// then simply answers identity-encoded, which is always correct. Callers
// must therefore treat a false return as "send the plain body", never as an
// error.
#pragma once

#include <string>

namespace lrsizer::obs {

/// True when this build can gzip (zlib was found at configure time).
bool gzip_available();

/// Compress `in` into gzip framing. Returns false (leaving `out`
/// unspecified) when zlib is unavailable or compression fails.
bool gzip_compress(const std::string& in, std::string* out);

/// Inverse of gzip_compress; used by the round-trip tests and any client
/// tooling. False when zlib is unavailable or `in` is not valid gzip.
bool gzip_decompress(const std::string& in, std::string* out);

}  // namespace lrsizer::obs
