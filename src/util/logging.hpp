// Minimal leveled logger writing to stderr.
//
// The library itself logs sparingly (convergence traces at kDebug); benches
// and examples raise the level for progress reporting. No global mutable
// state other than the level, which is process-wide by design (it is a
// diagnostic knob, not program data).
//
// Thread safety: the level is atomic and the sink is a single mutex-guarded
// fprintf, so concurrent batch jobs (runtime/batch) emit whole lines without
// interleaving. The level check happens before the lock is taken, so
// filtered-out messages never contend.
#pragma once

#include <sstream>
#include <string>

namespace lrsizer::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Process-wide minimum level that is actually emitted.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one line at `level` (no newline needed in `message`).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace lrsizer::util
