#include "util/memtrack.hpp"

namespace lrsizer::util {

void MemoryTracker::add_locked(const std::string& category, std::size_t bytes) {
  for (auto& [name, sum] : categories_) {
    if (name == category) {
      sum += bytes;
      return;
    }
  }
  categories_.emplace_back(category, bytes);
}

void MemoryTracker::add(const std::string& category, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  add_locked(category, bytes);
}

void MemoryTracker::merge(const MemoryTracker& other) {
  // Snapshot first so the two locks are never held together (no lock-order
  // cycle if two trackers merge into each other concurrently).
  const auto snapshot = other.categories();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, sum] : snapshot) add_locked(name, sum);
}

std::size_t MemoryTracker::category_bytes(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, sum] : categories_) {
    if (name == category) return sum;
  }
  return 0;
}

std::size_t MemoryTracker::tracked_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, sum] : categories_) total += sum;
  return total;
}

std::size_t MemoryTracker::total_bytes() const { return kBaseBytes + tracked_bytes(); }

std::vector<std::pair<std::string, std::size_t>> MemoryTracker::categories() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return categories_;
}

void MemoryTracker::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  categories_.clear();
}

}  // namespace lrsizer::util
