#include "util/memtrack.hpp"

namespace lrsizer::util {

void MemoryTracker::add(const std::string& category, std::size_t bytes) {
  for (auto& [name, sum] : categories_) {
    if (name == category) {
      sum += bytes;
      return;
    }
  }
  categories_.emplace_back(category, bytes);
}

std::size_t MemoryTracker::category_bytes(const std::string& category) const {
  for (const auto& [name, sum] : categories_) {
    if (name == category) return sum;
  }
  return 0;
}

std::size_t MemoryTracker::tracked_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, sum] : categories_) total += sum;
  return total;
}

std::size_t MemoryTracker::total_bytes() const { return kBaseBytes + tracked_bytes(); }

void MemoryTracker::clear() { categories_.clear(); }

}  // namespace lrsizer::util
