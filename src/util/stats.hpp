// Small statistics helpers: used by the Figure 10 benches to quantify the
// paper's linearity claims (least-squares fit + R²) and by tests.
#pragma once

#include <cstddef>
#include <vector>

namespace lrsizer::util {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Least-squares line y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]
};

/// Fit requires xs.size() == ys.size() >= 2 and non-constant xs.
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace lrsizer::util
