#include "util/stats.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace lrsizer::util {

double mean(const std::vector<double>& xs) {
  LRSIZER_ASSERT(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  LRSIZER_ASSERT(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  LRSIZER_ASSERT(xs.size() == ys.size());
  LRSIZER_ASSERT(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  LRSIZER_ASSERT_MSG(sxx > 0.0, "fit_line needs non-constant x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace lrsizer::util
