// Wall-clock timer used for the Table 1 "time" column and Figure 10(b).
// A steady_clock stopwatch started at construction; seconds() reads the
// elapsed time without stopping it, reset() restarts it. Header-only so the
// benches can time inner loops without call overhead.
#pragma once

#include <chrono>

namespace lrsizer::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lrsizer::util
