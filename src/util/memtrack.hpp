// Structure-level memory accounting for the Table 1 "mem" column and
// Figure 10(a).
//
// The paper reports the process footprint of a C program on a 1996 SPARC.
// We reproduce the *shape* (base + linear-in-|V|+|E| growth) by summing the
// actual byte footprint of every major data structure through an explicit
// tracker object, plus a fixed base representing the process/runtime
// overhead. Callers register named categories; `total_bytes()` is what the
// benches report.
//
// Thread safety: every accessor is guarded by an internal mutex, so one
// tracker can be shared across concurrent batch jobs (runtime/batch). The
// cheaper pattern — one tracker per job, merged into a rollup afterwards
// via merge() — is what the batch runtime itself uses; both are correct.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lrsizer::util {

class MemoryTracker {
 public:
  /// Fixed overhead charged to every report; mirrors the ~0.9 MB base the
  /// paper's Figure 10(a) shows at tiny circuit sizes.
  static constexpr std::size_t kBaseBytes = 900 * 1024;

  MemoryTracker() = default;
  // The mutex makes the tracker non-copyable; per-job trackers are cheap to
  // create and merge instead.
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Add `bytes` under `category`, creating the category if needed.
  void add(const std::string& category, std::size_t bytes);

  /// Fold every category of `other` into this tracker (batch rollups).
  void merge(const MemoryTracker& other);

  /// Bytes accumulated for one category (0 if absent).
  std::size_t category_bytes(const std::string& category) const;

  /// Sum over categories plus the fixed base.
  std::size_t total_bytes() const;

  /// Sum over categories only (no base); useful for linearity fits.
  std::size_t tracked_bytes() const;

  /// Snapshot of the (category, bytes) pairs in insertion order.
  std::vector<std::pair<std::string, std::size_t>> categories() const;

  void clear();

 private:
  void add_locked(const std::string& category, std::size_t bytes);

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::size_t>> categories_;
};

/// Byte footprint of a vector's heap allocation.
template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace lrsizer::util
