// Plain-text table formatting for the bench harnesses.
//
// The benches print paper-style tables (Table 1, the Figure 10 series) to
// stdout; this class handles column sizing and alignment so every bench
// produces consistent, diff-able output. A CSV emitter is included for
// downstream plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace lrsizer::util {

class TextTable {
 public:
  /// Column headers; every subsequent row must have the same arity.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant decimal digits.
  static std::string num(double value, int precision = 2);
  static std::string integer(long long value);

  /// Render with a header underline; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

  /// Comma-separated form (headers + rows), for machine consumption.
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lrsizer::util
