// Checked assertions that stay on in release builds.
//
// The sizing engine is an optimization code: silent invariant violations turn
// into subtly wrong multipliers and sizes rather than crashes, so we keep the
// checks enabled in every build type. The cost is negligible next to the
// O(|E|) passes the algorithms run.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lrsizer::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "lrsizer assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace lrsizer::util

// LRSIZER_ASSERT(cond) / LRSIZER_ASSERT_MSG(cond, "context"): abort with
// location info when `cond` is false. Macro (not a function) so that the
// failing expression text is captured.
#define LRSIZER_ASSERT(cond)                                                \
  do {                                                                      \
    if (!(cond)) ::lrsizer::util::assert_fail(#cond, __FILE__, __LINE__, nullptr); \
  } while (false)

#define LRSIZER_ASSERT_MSG(cond, msg)                                      \
  do {                                                                     \
    if (!(cond)) ::lrsizer::util::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
