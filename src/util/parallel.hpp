// Minimal chunk-execution interface for the level-parallel kernels.
//
// The timing/LRS kernels (timing/loads, timing/arrival, timing/upstream,
// core/lrs) process one topological wavefront (or one sweep color) at a
// time; nodes inside a wavefront are independent, so each wavefront can be
// split into index chunks and executed concurrently. `Executor` is the
// abstraction those kernels program against: `run_chunks(n, grain, fn)`
// invokes fn(begin, end) over [0, n) split into ceil(n/grain) fixed chunks
// and returns only after every chunk completed.
//
// Determinism contract (docs/ARCHITECTURE.md §Parallel kernels): chunk
// boundaries depend only on (n, grain) — never on the thread count — so a
// reduction that stores one partial per chunk and combines the partials in
// chunk order has a fixed shape: threads=1 output is bit-identical to
// threads=N. Per-node work must write only that node's slots and read only
// values frozen before the wavefront started.
//
// This header is std-only so every layer (timing, core, api, runtime) can
// depend on it; the threaded implementation is runtime::KernelTeam
// (runtime/pool.hpp). A null `Executor*` everywhere means "run serial".
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace lrsizer::util {

/// Non-owning reference to a `void(begin, end)` callable. The hot loops
/// dispatch one of these per wavefront; unlike std::function it never
/// allocates and is two words to copy. The referenced callable must outlive
/// the call it is passed to (always true for a lambda argument: the
/// temporary lives to the end of the full call expression).
class ChunkFn {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, ChunkFn>>>
  ChunkFn(F&& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(
            static_cast<const void*>(std::addressof(fn)))),
        call_([](void* ctx, std::int32_t begin, std::int32_t end) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(begin, end);
        }) {}

  void operator()(std::int32_t begin, std::int32_t end) const {
    call_(ctx_, begin, end);
  }

 private:
  void* ctx_;
  void (*call_)(void*, std::int32_t, std::int32_t);
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Total concurrency including the calling thread; 1 means serial.
  virtual int threads() const = 0;

  /// Execute fn(begin, end) over [0, n) split into ceil(n/grain) chunks of
  /// `grain` indices (the last chunk may be short), concurrently up to
  /// threads(); blocks until every chunk has completed. Writes made by the
  /// chunks happen-before the return. Chunk `c` covers
  /// [c·grain, min(n, (c+1)·grain)) regardless of the thread count. An
  /// implementation may coarsen the grain when a round would exceed its
  /// chunk-count limit (runtime::KernelTeam does above 2^16-1 chunks), but
  /// only as a deterministic function of (n, grain) — chunk boundaries stay
  /// thread-count-invariant in every case, which is all the fixed-shape
  /// reduction convention below relies on for max-reductions; shape-
  /// sensitive (sum) reductions must size their slots per actual begin
  /// values, not assume ceil(n/grain) chunks.
  virtual void run_chunks(std::int32_t n, std::int32_t grain, ChunkFn fn) = 0;
};

/// True when `exec` provides no usable concurrency — the kernels' signal to
/// take their plain sequential fast path (which is bit-identical).
inline bool serial(const Executor* exec) {
  return exec == nullptr || exec->threads() <= 1;
}

/// Number of fixed-shape chunks run_chunks(n, grain, ·) dispatches; also the
/// partial-slot count for deterministic reductions (slot = begin / grain).
inline std::int32_t num_chunks(std::int32_t n, std::int32_t grain) {
  return (n + grain - 1) / grain;
}

}  // namespace lrsizer::util
