#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lrsizer::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Single mutex-guarded sink: concurrent batch jobs log whole lines without
// interleaving. The level check stays outside the lock so disabled levels
// cost one relaxed atomic load.
std::mutex& sink_mutex() {
  static std::mutex mutex;
  return mutex;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kSilent: return "silent";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[lrsizer %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace lrsizer::util
