#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/assert.hpp"

namespace lrsizer::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LRSIZER_ASSERT(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  LRSIZER_ASSERT_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::integer(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };

  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c > 0 ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lrsizer::util
