// Deterministic random number generation.
//
// All stochastic pieces of the library (circuit generator, test patterns,
// geometry assignment) take an explicit seed so every experiment is exactly
// reproducible across runs and platforms. We use xoshiro256** seeded through
// splitmix64 — fixed algorithms, unlike std::mt19937's distributions whose
// results may vary across standard library implementations.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace lrsizer::util {

/// splitmix64: used to spread a user seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    LRSIZER_ASSERT(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t next_below(std::uint64_t n) {
    LRSIZER_ASSERT(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return v % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    LRSIZER_ASSERT(lo <= hi);
    return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lrsizer::util
