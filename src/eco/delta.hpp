// Structural delta detection between two revisions of a logic netlist.
//
// ECO traffic ("engineering change order") resubmits a netlist with a
// handful of edited gates. DeltaAnalyzer diffs the revision against a base
// in O(n) using fanin-cone hashes (netlist/cone_hash.hpp): a gate whose
// cone hash also appears in the base has an untouched transitive fanin cone
// and is *clean*; everything else is *dirty*. The Merkle property makes the
// dirty set downstream-closed automatically — an edited gate changes its
// own cone hash, which changes every consumer's cone hash, transitively —
// so "dirty" is exactly the edited nodes plus their fan-out cone, with no
// explicit graph traversal.
//
// Clean gates are matched back to their base counterparts by cone hash
// (gate names participate in the hash and are unique per netlist, so a
// match pins down one base gate). The incremental sizer
// (eco/incremental.hpp) reuses the cached solution for exactly the clean
// set.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lrsizer::netlist {
class LogicNetlist;
}

namespace lrsizer::eco {

/// The diff of one revision against the analyzer's base netlist. Gate
/// indices refer to the *revised* netlist except where noted.
struct Delta {
  /// Per revised gate: the revised netlist's fanin-cone hashes.
  std::vector<std::uint64_t> cones;
  /// Per revised gate: the base gate with the identical fanin cone, or -1
  /// when the gate is dirty.
  std::vector<std::int32_t> matched_base;
  /// Dirty gates (no base cone match), ascending. Downstream-closed: every
  /// consumer of a dirty gate is itself dirty.
  std::vector<std::int32_t> dirty;
  /// The dirty region's roots — dirty gates all of whose fanins are clean.
  /// These are the actual edits; the rest of `dirty` is their fan-out cone.
  std::vector<std::int32_t> modified;

  std::size_t num_gates() const { return matched_base.size(); }
  std::size_t num_clean() const { return num_gates() - dirty.size(); }
};

class DeltaAnalyzer {
 public:
  /// Hashes the base once (O(n)); the base netlist is not retained.
  explicit DeltaAnalyzer(const netlist::LogicNetlist& base);

  /// Diff a revision against the base. O(revised) — one cone-hash pass plus
  /// one hash-table probe per gate.
  Delta diff(const netlist::LogicNetlist& revised) const;

  /// netlist_hash of the base (the "n…" component of its cache keys).
  std::uint64_t base_netlist_hash() const { return base_hash_; }

 private:
  std::unordered_map<std::uint64_t, std::int32_t> base_gate_of_cone_;
  std::uint64_t base_hash_ = 0;
};

}  // namespace lrsizer::eco
