#include "eco/delta.hpp"

#include "netlist/cone_hash.hpp"
#include "netlist/hash.hpp"
#include "netlist/logic_netlist.hpp"

namespace lrsizer::eco {

DeltaAnalyzer::DeltaAnalyzer(const netlist::LogicNetlist& base)
    : base_hash_(netlist::netlist_hash(base)) {
  const std::vector<std::uint64_t> cones = netlist::cone_hashes(base);
  base_gate_of_cone_.reserve(cones.size());
  for (std::size_t g = 0; g < cones.size(); ++g) {
    // Names are unique and participate in the hash, so duplicate cone
    // hashes only occur on a (vanishingly unlikely) 64-bit collision; keep
    // the first gate deterministically in that case.
    base_gate_of_cone_.emplace(cones[g], static_cast<std::int32_t>(g));
  }
}

Delta DeltaAnalyzer::diff(const netlist::LogicNetlist& revised) const {
  Delta delta;
  delta.cones = netlist::cone_hashes(revised);
  const auto n = static_cast<std::int32_t>(delta.cones.size());
  delta.matched_base.assign(static_cast<std::size_t>(n), -1);
  for (std::int32_t g = 0; g < n; ++g) {
    const auto it = base_gate_of_cone_.find(delta.cones[static_cast<std::size_t>(g)]);
    if (it != base_gate_of_cone_.end()) {
      delta.matched_base[static_cast<std::size_t>(g)] = it->second;
    } else {
      delta.dirty.push_back(g);
    }
  }
  for (const std::int32_t g : delta.dirty) {
    bool fanins_clean = true;
    for (const std::int32_t f : revised.gate(g).fanin) {
      if (delta.matched_base[static_cast<std::size_t>(f)] < 0) {
        fanins_clean = false;
        break;
      }
    }
    if (fanins_clean) delta.modified.push_back(g);
  }
  return delta;
}

}  // namespace lrsizer::eco
