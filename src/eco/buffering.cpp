#include "eco/buffering.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "netlist/elaborator.hpp"
#include "util/assert.hpp"

namespace lrsizer::eco {

void optimal_repeaters(double length_um, const netlist::TechParams& tech,
                       const layout::NeighborOptions& neighbors, bool shielded,
                       int* k, double* h) {
  LRSIZER_ASSERT(k != nullptr && h != nullptr);
  if (length_um <= 0.0) {
    *k = 0;
    *h = std::clamp(1.0, tech.min_size, tech.max_size);
    return;
  }
  const double r = tech.wire_res_per_um * length_um;
  const double c_g = (tech.wire_cap_per_um + tech.wire_fringe_per_um) * length_um;
  const double c_c = neighbors.fringe_per_um * length_um;
  const double rb = tech.gate_unit_res;
  const double cb = tech.gate_unit_cap;
  // Coupling-aware closed forms (see buffering.hpp): the shielded pattern
  // halves the Miller contribution, the unshielded one doubles it.
  const double kk = shielded ? 0.57 : 1.51;
  const double kh = shielded ? 1.5 : 2.2;
  const double count = std::sqrt((0.4 * r * c_g + kk * r * c_c) / (0.7 * rb * cb));
  const double size = std::sqrt((0.7 * rb * c_g + 1.4 * kh * rb * c_c) / (0.7 * r * cb));
  *k = static_cast<int>(std::floor(count));
  *h = std::clamp(size, tech.min_size, tech.max_size);
}

BufferingResult buffer_long_wires(const netlist::LogicNetlist& netlist,
                                  const core::FlowOptions& options,
                                  const BufferingOptions& buffering) {
  LRSIZER_ASSERT_MSG(netlist.finalized(), "buffer_long_wires needs a finalized netlist");
  LRSIZER_ASSERT(buffering.length_threshold_um > 0.0);

  // Preview elaboration: measure every net's total routed wire length under
  // the exact options the sizing run will use.
  const netlist::ElabResult elab =
      netlist::elaborate(netlist, options.tech, options.elab);
  const auto n = static_cast<std::size_t>(netlist.num_gates_logic());
  std::vector<double> net_length(n, 0.0);
  for (netlist::NodeId v = elab.circuit.first_component();
       v < elab.circuit.end_component(); ++v) {
    if (!elab.circuit.is_wire(v)) continue;
    const std::int32_t net = elab.net_of_node[static_cast<std::size_t>(v)];
    if (net >= 0) net_length[static_cast<std::size_t>(net)] += elab.circuit.wire_length(v);
  }

  std::unordered_set<std::string> names;
  names.reserve(n);
  for (const netlist::LogicGate& gate : netlist.gates()) names.insert(gate.name);

  BufferingResult result;
  // redirect[g]: the new-netlist gate consumers of old net g should read —
  // g's own copy, or the tail of its repeater chain once buffered.
  std::vector<std::int32_t> redirect(n, -1);
  for (std::size_t g = 0; g < n; ++g) {
    const netlist::LogicGate& gate = netlist.gate(static_cast<std::int32_t>(g));
    std::int32_t ng;
    if (gate.op == netlist::LogicOp::kInput) {
      ng = result.netlist.add_input(gate.name);
    } else {
      std::vector<std::int32_t> fanin;
      fanin.reserve(gate.fanin.size());
      for (const std::int32_t f : gate.fanin) {
        fanin.push_back(redirect[static_cast<std::size_t>(f)]);
      }
      ng = result.netlist.add_gate(gate.name, gate.op, std::move(fanin));
    }
    redirect[g] = ng;

    const double length = net_length[g];
    if (length > buffering.length_threshold_um) {
      int k = 0;
      double h = 0.0;
      optimal_repeaters(length, options.tech, options.neighbors,
                        buffering.shielded, &k, &h);
      k = std::min(k, buffering.max_repeaters_per_net);
      if (k > 0) {
        for (int i = 1; i <= k; ++i) {
          std::string name =
              buffering.name_prefix + std::to_string(i) + "_" + gate.name;
          while (!names.insert(name).second) name += "_";
          redirect[g] = result.netlist.add_gate(
              std::move(name), netlist::LogicOp::kBuf, {redirect[g]});
        }
        result.nets.push_back(BufferedNet{gate.name, length, k, h});
        result.repeaters += k;
      }
    }
    // The primary-output load must see the repeated signal, so the mark
    // follows the redirect to the chain's tail.
    if (netlist.is_primary_output(static_cast<std::int32_t>(g))) {
      result.netlist.mark_output(redirect[g]);
    }
  }
  result.netlist.finalize();
  return result;
}

}  // namespace lrsizer::eco
