// Repeater-insertion pre-pass: split long wires with optimally sized
// buffer chains before sizing.
//
// For a wire of routed length L the classic two-pole (Elmore) delay model
// gives closed-form optima for the repeater count k and repeater size h
// (Bakoglu), which Orion extends with the capacitive-coupling term: with
// per-unit-length wire resistance r̂ and ground capacitance ĉ_g, neighbor
// coupling capacitance ĉ_c, and a repeater of drive resistance R_b and
// input capacitance C_b,
//
//   k = ⌊√( (0.4·r·c_g + K_k·r·c_c) / (0.7·R_b·C_b) )⌋
//   h =  √( (0.7·R_b·c_g + 1.4·K_h·R_b·c_c) / (0.7·r·C_b) )
//
// where (K_k, K_h) = (0.57, 1.5) when neighbors switch in a shielded/
// staggered pattern and (1.51, 2.2) for the unshielded worst case — the
// coupling-aware variant makes long coupled wires buffer earlier and with
// larger repeaters.
//
// buffer_long_wires() applies this at the logic-netlist level: a
// preview elaboration measures each net's total routed wire length, and
// nets past the threshold get a chain of k BUFF gates spliced between the
// driver and every sink, so re-elaboration routes k+1 shorter nets instead
// of one long one. The transform is deterministic, the output re-parses
// and re-hashes stably through the .bench round trip, and the before/after
// pair is exactly the "small structural delta" the incremental sizer
// (eco/incremental.hpp) is built for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/logic_netlist.hpp"

namespace lrsizer::eco {

struct BufferingOptions {
  /// Buffer a net when its total routed wire length (preview elaboration)
  /// exceeds this many µm.
  double length_threshold_um = 1500.0;
  /// Use the shielded/staggered coupling coefficients (0.57/1.5) instead of
  /// the unshielded worst case (1.51/2.2).
  bool shielded = false;
  /// Ceiling on the closed-form k per net (keeps a pathological net from
  /// exploding the netlist).
  int max_repeaters_per_net = 8;
  /// Inserted gates are named "<prefix><i>_<net>" (made unique if taken).
  std::string name_prefix = "rep";
};

/// Closed-form optimal repeater count and size for one wire of
/// `length_um`, using the flow's tech parameters at unit wire width and the
/// coupling fringe capacitance from the neighbor model. `*k` can come back
/// 0 (wire too short to benefit); `*h` is clamped to [min_size, max_size].
void optimal_repeaters(double length_um, const netlist::TechParams& tech,
                       const layout::NeighborOptions& neighbors, bool shielded,
                       int* k, double* h);

/// One buffered net in the transform report.
struct BufferedNet {
  std::string net;        ///< driving gate's name in the input netlist
  double length_um = 0.0; ///< total routed wire length that triggered it
  int repeaters = 0;      ///< BUFF gates inserted (the closed-form k, capped)
  double size = 0.0;      ///< closed-form h — a warm-start seed for them
};

struct BufferingResult {
  netlist::LogicNetlist netlist;  ///< finalized transformed netlist
  std::vector<BufferedNet> nets;  ///< buffered nets, input definition order
  std::int64_t repeaters = 0;     ///< Σ repeaters inserted
};

/// Apply the pre-pass to `netlist` (must be finalized) under the flow's
/// tech/elab/neighbor options. Gates keep their names and relative order;
/// each buffered net's sinks (including the primary-output load) are
/// re-pointed at the end of its repeater chain.
BufferingResult buffer_long_wires(const netlist::LogicNetlist& netlist,
                                  const core::FlowOptions& options,
                                  const BufferingOptions& buffering = {});

}  // namespace lrsizer::eco
