#include "eco/incremental.hpp"

#include <unordered_map>
#include <utility>

#include "netlist/cone_hash.hpp"
#include "netlist/elaborator.hpp"
#include "util/assert.hpp"

namespace lrsizer::eco {

runtime::EcoIndex build_eco_index(const netlist::LogicNetlist& netlist,
                                  const core::FlowResult& result) {
  LRSIZER_ASSERT_MSG(netlist.finalized(), "build_eco_index needs a finalized netlist");
  const netlist::Circuit& circuit = result.circuit;
  LRSIZER_ASSERT_MSG(
      result.net_of_node.size() == static_cast<std::size_t>(circuit.num_nodes()),
      "FlowResult does not carry the netlist's net_of_node map");

  runtime::EcoIndex index;
  const std::vector<std::uint64_t> cones = netlist::cone_hashes(netlist);
  index.nets.resize(cones.size());
  for (std::size_t g = 0; g < cones.size(); ++g) index.nets[g].cone = cones[g];
  for (const std::int32_t po : netlist.primary_outputs()) {
    index.output_cones.push_back(cones[static_cast<std::size_t>(po)]);
  }
  // Group the final sizes by net, ascending NodeId within each net (the
  // gate/driver first, then its routing-tree wires — elaboration order).
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    const std::int32_t net = result.net_of_node[static_cast<std::size_t>(v)];
    if (net < 0) continue;
    index.nets[static_cast<std::size_t>(net)].sizes.push_back(circuit.size(v));
  }
  index.lambda = result.ogws.warm.lambda;
  index.beta = result.ogws.warm.beta;
  index.gamma = result.ogws.warm.gamma;
  index.gamma_net = result.ogws.warm.gamma_net;
  index.num_nodes = circuit.num_nodes();
  index.num_edges = circuit.num_edges();
  return index;
}

EcoSeed seed_from_index(const netlist::LogicNetlist& revised,
                        const core::FlowOptions& options,
                        const runtime::EcoIndex& index) {
  LRSIZER_ASSERT_MSG(revised.finalized(), "seed_from_index needs a finalized netlist");
  EcoSeed seed;
  if (index.empty()) return seed;

  std::unordered_map<std::uint64_t, std::int32_t> base_of_cone;
  base_of_cone.reserve(index.nets.size());
  for (std::size_t b = 0; b < index.nets.size(); ++b) {
    base_of_cone.emplace(index.nets[b].cone, static_cast<std::int32_t>(b));
  }

  // Preview elaboration: which circuit nodes carry each revised net.
  const netlist::ElabResult elab =
      netlist::elaborate(revised, options.tech, options.elab);
  const auto n = static_cast<std::size_t>(revised.num_gates_logic());
  std::vector<std::vector<netlist::NodeId>> nodes_of_net(n);
  for (netlist::NodeId v = elab.circuit.first_component();
       v < elab.circuit.end_component(); ++v) {
    const std::int32_t net = elab.net_of_node[static_cast<std::size_t>(v)];
    if (net >= 0) nodes_of_net[static_cast<std::size_t>(net)].push_back(v);
  }

  const std::vector<std::uint64_t> cones = netlist::cone_hashes(revised);
  for (std::size_t g = 0; g < n; ++g) {
    const auto it = base_of_cone.find(cones[g]);
    if (it == base_of_cone.end()) {
      ++seed.dirty_gates;
      continue;
    }
    ++seed.clean_gates;
    const runtime::EcoIndex::Net& base = index.nets[static_cast<std::size_t>(it->second)];
    const std::vector<netlist::NodeId>& nodes = nodes_of_net[g];
    // A clean cone guarantees an identical fanin side, not an identical
    // fanout: an edit elsewhere can change this net's sink count and with it
    // the routing-tree shape. Seed only nets that kept their node count.
    if (nodes.size() != base.sizes.size()) continue;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      seed.sizes.emplace_back(nodes[i], base.sizes[i]);
    }
    seed.reused_nodes += static_cast<std::int64_t>(nodes.size());
  }

  // The multiplier state is tied to the circuit's node/edge indexing, so it
  // transfers only when the revision kept the exact shape (op-only edits —
  // the elaborated structure does not depend on gate ops by default).
  if (!index.lambda.empty() && index.num_nodes == elab.circuit.num_nodes() &&
      index.num_edges == elab.circuit.num_edges()) {
    seed.multipliers.lambda = index.lambda;
    seed.multipliers.beta = index.beta;
    seed.multipliers.gamma = index.gamma;
    seed.multipliers.gamma_net = index.gamma_net;
  }
  return seed;
}

IncrementalSizer::IncrementalSizer(const netlist::LogicNetlist& base,
                                   core::FlowOptions options,
                                   const core::FlowResult& base_result)
    : index_(build_eco_index(base, base_result)), options_(std::move(options)) {}

IncrementalSizer::IncrementalSizer(runtime::EcoIndex index, core::FlowOptions options)
    : index_(std::move(index)), options_(std::move(options)) {}

api::Status IncrementalSizer::resize(netlist::LogicNetlist revised,
                                     Result* out) const {
  LRSIZER_ASSERT(out != nullptr);
  EcoSeed seed = seed_from_index(revised, options_, index_);
  api::SizingSession session(std::move(revised), options_);
  if (!seed.empty()) {
    if (api::Status st = session.warm_start_eco(std::move(seed.sizes),
                                                std::move(seed.multipliers));
        !st.ok()) {
      return st;
    }
  }
  if (api::Status st = session.run_all(); !st.ok()) return st;
  out->summary = session.summary();
  out->flow = session.take_result();
  out->reused_nodes = seed.reused_nodes;
  out->dirty_gates = seed.dirty_gates;
  out->clean_gates = seed.clean_gates;
  return api::Status::Ok();
}

}  // namespace lrsizer::eco
