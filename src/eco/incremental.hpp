// Incremental ECO re-sizing: seed a new sizing run from a cached prior
// solution, reusing everything the edit did not touch.
//
// The pipeline (docs/ECO.md):
//
//   1. build_eco_index() snapshots a completed run per *net*: the driving
//      gate's fanin-cone hash (netlist/cone_hash.hpp) plus the final sizes
//      of the net's circuit nodes, and the run's best-dual multiplier state.
//   2. seed_from_index() diffs a revised netlist against the snapshot by
//      cone hash: every clean net (identical transitive fanin cone, same
//      node count after elaboration) contributes its cached sizes as sparse
//      warm-start entries; when the revised circuit keeps the base's exact
//      node/edge counts — e.g. op-only edits, which do not change the
//      elaborated structure — the multipliers transfer verbatim too.
//   3. api::SizingSession::warm_start_eco() consumes the seed; OGWS starts
//      in the converged neighborhood and re-converges in a fraction of the
//      cold iteration count (bench/bench_eco.cpp commits the trajectory).
//
// Like `--cache-warm`, an ECO-seeded run converges to an equally valid but
// not bit-identical solution trajectory versus a cold run.
//
// IncrementalSizer bundles 2+3 for CLI/bench use; the serve loop instead
// stores the index inside runtime::ResultCache entries and matches bases by
// output-cone fingerprint (runtime/cache.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "api/status.hpp"
#include "core/flow.hpp"
#include "core/ogws.hpp"
#include "netlist/logic_netlist.hpp"
#include "runtime/cache.hpp"

namespace lrsizer::eco {

/// Snapshot a completed run for later ECO reuse. `netlist` must be the
/// (finalized) netlist `result` was sized from. Multipliers are copied from
/// result.ogws.warm — empty when the run was executed with warm-start
/// capture off, which only costs ECO consumers the multiplier transfer.
runtime::EcoIndex build_eco_index(const netlist::LogicNetlist& netlist,
                                  const core::FlowResult& result);

/// What seed_from_index() recovered from the snapshot for one revision.
struct EcoSeed {
  /// Sparse (circuit NodeId, size) warm-start entries covering the clean
  /// nets — food for api::SizingSession::warm_start_eco.
  std::vector<std::pair<std::int32_t, double>> sizes;
  /// The base run's multiplier state when the revised circuit has the same
  /// node/edge counts; default-constructed (empty) otherwise.
  core::OgwsWarmStart multipliers;
  /// Circuit nodes seeded from the snapshot (= sizes.size()).
  std::int64_t reused_nodes = 0;
  /// Revised gates with no cone match in the base — the edits plus their
  /// fan-out cone.
  std::int32_t dirty_gates = 0;
  std::int32_t clean_gates = 0;

  bool empty() const { return sizes.empty() && multipliers.empty(); }
};

/// Diff `revised` against the snapshot and collect the reusable solution
/// state. Runs one preview elaboration of `revised` under `options` to map
/// nets to circuit nodes; a clean net whose node count differs from the
/// base's (its fanout changed) is skipped rather than mis-seeded.
EcoSeed seed_from_index(const netlist::LogicNetlist& revised,
                        const core::FlowOptions& options,
                        const runtime::EcoIndex& index);

/// Convenience driver for CLI/bench flows: hold a base solution, re-size
/// revisions against it.
class IncrementalSizer {
 public:
  /// Snapshot `base_result` (a completed run of `base` under `options`).
  IncrementalSizer(const netlist::LogicNetlist& base, core::FlowOptions options,
                   const core::FlowResult& base_result);
  /// Adopt a prebuilt snapshot (e.g. out of a runtime::ResultCache entry).
  IncrementalSizer(runtime::EcoIndex index, core::FlowOptions options);

  struct Result {
    /// Engaged on success (FlowResult is not default-constructible).
    std::optional<core::FlowResult> flow;
    core::FlowSummary summary;
    std::int64_t reused_nodes = 0;
    std::int32_t dirty_gates = 0;
    std::int32_t clean_gates = 0;
  };

  /// Size `revised` (finalized), warm-started from the snapshot. Falls back
  /// to a plain cold run when nothing is reusable. On success `*out` holds
  /// the flow result plus the reuse accounting.
  api::Status resize(netlist::LogicNetlist revised, Result* out) const;

  const runtime::EcoIndex& index() const { return index_; }

 private:
  runtime::EcoIndex index_;
  core::FlowOptions options_;
};

}  // namespace lrsizer::eco
