#include "netlist/elaborator.hpp"

#include <algorithm>

#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lrsizer::netlist {

std::int64_t wires_for_net_pins(std::int64_t pins, const ElabOptions& options) {
  if (pins <= 0) return 0;
  if (pins <= options.max_star_fanout) {
    return pins * options.segments_per_wire;
  }
  const std::int64_t left = pins / 2;
  // One trunk segment per side, then recurse. Mirrors route_net exactly.
  return 2 + wires_for_net_pins(left, options) +
         wires_for_net_pins(pins - left, options);
}

double gate_complexity(LogicOp op, std::size_t fanin_count) {
  // Logical-effort-flavored weights: an n-input NAND stacks n NMOS in
  // series (effort ≈ (n+2)/3), a NOR stacks PMOS (≈ (2n+1)/3), XOR/XNOR
  // cost roughly two stages. Normalized so an inverter is 1.
  const double n = static_cast<double>(fanin_count);
  switch (op) {
    case LogicOp::kInput: return 0.0;
    case LogicOp::kBuf: return 1.0;
    case LogicOp::kNot: return 1.0;
    case LogicOp::kAnd: return (n + 2.0) / 3.0 + 1.0;  // NAND + inverter
    case LogicOp::kNand: return (n + 2.0) / 3.0;
    case LogicOp::kOr: return (2.0 * n + 1.0) / 3.0 + 1.0;  // NOR + inverter
    case LogicOp::kNor: return (2.0 * n + 1.0) / 3.0;
    case LogicOp::kXor: return 2.0 * n;
    case LogicOp::kXnor: return 2.0 * n;
  }
  return 1.0;
}

std::int64_t count_wires(const LogicNetlist& netlist, const ElabOptions& options) {
  LRSIZER_ASSERT(netlist.finalized());
  std::int64_t total = 0;
  for (std::int32_t g = 0; g < netlist.num_gates_logic(); ++g) {
    std::int64_t pins = netlist.fanout_count(g);
    if (netlist.is_primary_output(g)) ++pins;
    total += wires_for_net_pins(pins, options);
  }
  return total;
}

namespace {

struct ElabContext {
  CircuitBuilder* builder;
  const ElabOptions* options;
  util::Rng* rng;
  std::vector<std::int32_t>* net_of_handle;

  double wire_length() {
    return rng->uniform(options->min_wire_length, options->max_wire_length);
  }

  /// A chain of `segments_per_wire` segments starting at `from`; returns the
  /// handle of the last segment.
  CircuitBuilder::Handle wire_chain(CircuitBuilder::Handle from, std::int32_t net) {
    CircuitBuilder::Handle head = from;
    for (std::int32_t s = 0; s < options->segments_per_wire; ++s) {
      const auto w = builder->add_wire(wire_length());
      net_of_handle->push_back(net);
      LRSIZER_ASSERT(static_cast<std::size_t>(w) + 1 == net_of_handle->size());
      builder->connect(head, w);
      head = w;
    }
    return head;
  }

  /// Route `pins` sink pins from `from`. A pin is either a gate handle or
  /// kLoadPin, which marks the last wire segment as a primary output.
  static constexpr CircuitBuilder::Handle kLoadPin = -2;

  void route_net(CircuitBuilder::Handle from, std::int32_t net,
                 const std::vector<CircuitBuilder::Handle>& pins) {
    if (pins.empty()) return;
    if (static_cast<std::int32_t>(pins.size()) <= options->max_star_fanout) {
      for (const auto pin : pins) {
        const auto tail = wire_chain(from, net);
        if (pin == kLoadPin) {
          builder->mark_primary_output(tail, options->output_load);
        } else {
          builder->connect(tail, pin);
        }
      }
      return;
    }
    // Balanced split with one trunk segment per side.
    const auto mid = pins.begin() + static_cast<std::ptrdiff_t>(pins.size() / 2);
    for (const auto& [first, last] :
         {std::pair{pins.begin(), mid}, std::pair{mid, pins.end()}}) {
      const auto trunk = builder->add_wire(wire_length());
      net_of_handle->push_back(net);
      builder->connect(from, trunk);
      route_net(trunk, net, std::vector<CircuitBuilder::Handle>(first, last));
    }
  }
};

}  // namespace

ElabResult elaborate(const LogicNetlist& netlist, const TechParams& tech,
                     const ElabOptions& options) {
  LRSIZER_ASSERT(netlist.finalized());
  LRSIZER_ASSERT(options.segments_per_wire >= 1);
  LRSIZER_ASSERT(options.max_star_fanout >= 1);
  LRSIZER_ASSERT(options.min_wire_length > 0.0 &&
                 options.min_wire_length <= options.max_wire_length);

  CircuitBuilder builder(tech);
  util::Rng rng(options.seed);

  const std::int32_t n = netlist.num_gates_logic();
  std::vector<CircuitBuilder::Handle> handle_of_gate(static_cast<std::size_t>(n));
  std::vector<std::int32_t> net_of_handle;  // builder handle -> net

  // Components first: drivers for PIs, gates for logic gates (topological
  // definition order).
  for (std::int32_t g = 0; g < n; ++g) {
    const LogicGate& gate = netlist.gate(g);
    if (gate.op == LogicOp::kInput) {
      handle_of_gate[static_cast<std::size_t>(g)] =
          builder.add_driver(options.driver_res > 0.0 ? options.driver_res
                                                      : tech.driver_res);
    } else {
      const double complexity =
          options.differentiate_gate_types
              ? gate_complexity(gate.op, gate.fanin.size())
              : 1.0;
      handle_of_gate[static_cast<std::size_t>(g)] = builder.add_gate(0.0, complexity);
    }
    net_of_handle.push_back(g);
  }

  // Sink pins per net, in deterministic order (consumers by index, then the
  // output load).
  std::vector<std::vector<CircuitBuilder::Handle>> pins_of_net(
      static_cast<std::size_t>(n));
  for (std::int32_t consumer = 0; consumer < n; ++consumer) {
    for (std::int32_t f : netlist.gate(consumer).fanin) {
      pins_of_net[static_cast<std::size_t>(f)].push_back(
          handle_of_gate[static_cast<std::size_t>(consumer)]);
    }
  }
  for (std::int32_t g = 0; g < n; ++g) {
    if (netlist.is_primary_output(g)) {
      pins_of_net[static_cast<std::size_t>(g)].push_back(ElabContext::kLoadPin);
    }
  }

  // Route every net.
  ElabContext ctx{&builder, &options, &rng, &net_of_handle};
  for (std::int32_t g = 0; g < n; ++g) {
    ctx.route_net(handle_of_gate[static_cast<std::size_t>(g)], g,
                  pins_of_net[static_cast<std::size_t>(g)]);
  }

  ElabResult result{builder.finalize(), {}, {}};

  // Builder handles -> final node ids (node_of is valid after finalize()).
  result.node_of_gate.resize(static_cast<std::size_t>(n));
  result.net_of_node.assign(static_cast<std::size_t>(result.circuit.num_nodes()), -1);
  for (std::size_t h = 0; h < net_of_handle.size(); ++h) {
    const NodeId v = builder.node_of(static_cast<CircuitBuilder::Handle>(h));
    result.net_of_node[static_cast<std::size_t>(v)] = net_of_handle[h];
  }
  for (std::int32_t g = 0; g < n; ++g) {
    result.node_of_gate[static_cast<std::size_t>(g)] =
        builder.node_of(handle_of_gate[static_cast<std::size_t>(g)]);
  }

  LRSIZER_ASSERT(result.circuit.num_wires() == count_wires(netlist, options));
  return result;
}

}  // namespace lrsizer::netlist
