#include "netlist/builder.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace lrsizer::netlist {

CircuitBuilder::Handle CircuitBuilder::add_driver(double driver_res) {
  kind_.push_back(NodeKind::kDriver);
  unit_res_.push_back(driver_res > 0.0 ? driver_res : tech_.driver_res);
  unit_cap_.push_back(0.0);
  fringe_cap_.push_back(0.0);
  area_weight_.push_back(0.0);
  pin_load_.push_back(0.0);
  lower_.push_back(0.0);
  upper_.push_back(0.0);
  length_.push_back(0.0);
  return num_handles() - 1;
}

CircuitBuilder::Handle CircuitBuilder::add_gate(double area_weight, double complexity) {
  LRSIZER_ASSERT_MSG(complexity > 0.0, "gate complexity must be positive");
  kind_.push_back(NodeKind::kGate);
  unit_res_.push_back(tech_.gate_unit_res * complexity);
  unit_cap_.push_back(tech_.gate_unit_cap * complexity);
  fringe_cap_.push_back(0.0);  // paper: f_i = 0 for i ∈ G
  area_weight_.push_back(
      (area_weight > 0.0 ? area_weight : tech_.gate_area_per_size) * complexity);
  pin_load_.push_back(0.0);
  lower_.push_back(tech_.min_size);
  upper_.push_back(tech_.max_size);
  length_.push_back(0.0);
  return num_handles() - 1;
}

CircuitBuilder::Handle CircuitBuilder::add_wire(double length_um) {
  LRSIZER_ASSERT_MSG(length_um > 0.0, "wire length must be positive");
  kind_.push_back(NodeKind::kWire);
  unit_res_.push_back(tech_.wire_res_per_um * length_um);
  unit_cap_.push_back(tech_.wire_cap_per_um * length_um);
  fringe_cap_.push_back(tech_.wire_fringe_per_um * length_um);
  area_weight_.push_back(tech_.wire_area_per_size > 0.0 ? tech_.wire_area_per_size
                                                        : length_um);
  pin_load_.push_back(0.0);
  lower_.push_back(tech_.min_size);
  upper_.push_back(tech_.max_size);
  length_.push_back(length_um);
  return num_handles() - 1;
}

void CircuitBuilder::connect(Handle from, Handle to) {
  LRSIZER_ASSERT(from >= 0 && from < num_handles());
  LRSIZER_ASSERT(to >= 0 && to < num_handles());
  LRSIZER_ASSERT_MSG(from != to, "self loop");
  LRSIZER_ASSERT_MSG(kind_[static_cast<std::size_t>(to)] != NodeKind::kDriver,
                     "drivers have no circuit fanin");
  connections_.emplace_back(from, to);
}

void CircuitBuilder::mark_primary_output(Handle component, double load_cap) {
  LRSIZER_ASSERT(component >= 0 && component < num_handles());
  const auto i = static_cast<std::size_t>(component);
  LRSIZER_ASSERT_MSG(kind_[i] == NodeKind::kGate || kind_[i] == NodeKind::kWire,
                     "only a component can drive a primary output");
  pin_load_[i] += load_cap > 0.0 ? load_cap : tech_.output_load;
}

void CircuitBuilder::set_bounds(Handle component, double lower, double upper) {
  LRSIZER_ASSERT(component >= 0 && component < num_handles());
  LRSIZER_ASSERT(lower > 0.0 && lower <= upper);
  lower_[static_cast<std::size_t>(component)] = lower;
  upper_[static_cast<std::size_t>(component)] = upper;
}

Circuit CircuitBuilder::finalize() {
  const std::int32_t h_count = num_handles();
  LRSIZER_ASSERT_MSG(h_count > 0, "empty circuit");

  // Kahn topological sort over handles, drivers first (they have no fanin).
  std::vector<std::vector<Handle>> fanout(static_cast<std::size_t>(h_count));
  std::vector<std::int32_t> fanin_count(static_cast<std::size_t>(h_count), 0);
  for (const auto& [from, to] : connections_) {
    fanout[static_cast<std::size_t>(from)].push_back(to);
    ++fanin_count[static_cast<std::size_t>(to)];
  }

  std::vector<Handle> order;
  order.reserve(static_cast<std::size_t>(h_count));
  // Seed with drivers (in insertion order for determinism), then any
  // zero-fanin non-driver would be an error (undriven component).
  std::queue<Handle> ready;
  std::int32_t driver_count = 0;
  for (Handle h = 0; h < h_count; ++h) {
    if (kind_[static_cast<std::size_t>(h)] == NodeKind::kDriver) {
      ready.push(h);
      ++driver_count;
      LRSIZER_ASSERT_MSG(fanin_count[static_cast<std::size_t>(h)] == 0,
                         "driver with fanin");
    } else {
      LRSIZER_ASSERT_MSG(fanin_count[static_cast<std::size_t>(h)] > 0,
                         "undriven component");
    }
  }
  LRSIZER_ASSERT_MSG(driver_count > 0, "circuit needs at least one driver");

  while (!ready.empty()) {
    const Handle h = ready.front();
    ready.pop();
    order.push_back(h);
    for (Handle succ : fanout[static_cast<std::size_t>(h)]) {
      if (--fanin_count[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  LRSIZER_ASSERT_MSG(static_cast<std::int32_t>(order.size()) == h_count,
                     "cycle detected in circuit");

  // Handles -> NodeIds. Drivers were emitted first by construction, so the
  // contract "drivers are 1..s" holds; components follow in topological order.
  const NodeId total_nodes = h_count + 2;
  handle_to_node_.assign(static_cast<std::size_t>(h_count), kInvalidNode);
  for (std::int32_t pos = 0; pos < h_count; ++pos) {
    handle_to_node_[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] =
        pos + 1;
  }

  Circuit c;
  c.tech_ = tech_;
  c.num_drivers_ = driver_count;
  c.kind_.assign(static_cast<std::size_t>(total_nodes), NodeKind::kSource);
  c.unit_res_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.unit_cap_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.fringe_cap_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.area_weight_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.pin_load_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.lower_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.upper_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.length_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.size_.assign(static_cast<std::size_t>(total_nodes), 0.0);
  c.kind_[static_cast<std::size_t>(total_nodes - 1)] = NodeKind::kSink;

  c.num_gates_ = 0;
  for (Handle h = 0; h < h_count; ++h) {
    const auto src = static_cast<std::size_t>(h);
    const auto dst = static_cast<std::size_t>(handle_to_node_[src]);
    c.kind_[dst] = kind_[src];
    c.unit_res_[dst] = unit_res_[src];
    c.unit_cap_[dst] = unit_cap_[src];
    c.fringe_cap_[dst] = fringe_cap_[src];
    c.area_weight_[dst] = area_weight_[src];
    c.pin_load_[dst] = pin_load_[src];
    c.lower_[dst] = lower_[src];
    c.upper_[dst] = upper_[src];
    c.length_[dst] = length_[src];
    c.size_[dst] = lower_[src];  // components start at L_i; callers resize
    if (kind_[src] == NodeKind::kGate) ++c.num_gates_;
  }

  // Edge list: source->drivers, user connections, primary outputs->sink.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(connections_.size() + static_cast<std::size_t>(driver_count) + 8);
  for (NodeId v = 1; v <= driver_count; ++v) edges.emplace_back(0, v);
  for (const auto& [from, to] : connections_) {
    edges.emplace_back(handle_to_node_[static_cast<std::size_t>(from)],
                       handle_to_node_[static_cast<std::size_t>(to)]);
  }
  std::int32_t primary_outputs = 0;
  for (Handle h = 0; h < h_count; ++h) {
    if (pin_load_[static_cast<std::size_t>(h)] > 0.0) {
      edges.emplace_back(handle_to_node_[static_cast<std::size_t>(h)], total_nodes - 1);
      ++primary_outputs;
    }
  }
  LRSIZER_ASSERT_MSG(primary_outputs > 0, "circuit needs at least one primary output");

  // Sort edges by (from, to) so CSR construction and edge ids are canonical.
  std::sort(edges.begin(), edges.end());

  const auto e_count = static_cast<EdgeId>(edges.size());
  c.edge_from_.resize(edges.size());
  c.edge_to_.resize(edges.size());
  for (EdgeId e = 0; e < e_count; ++e) {
    c.edge_from_[static_cast<std::size_t>(e)] = edges[static_cast<std::size_t>(e)].first;
    c.edge_to_[static_cast<std::size_t>(e)] = edges[static_cast<std::size_t>(e)].second;
  }

  // CSR (out): edges are sorted by from, so offsets come from counting.
  c.out_offset_.assign(static_cast<std::size_t>(total_nodes) + 1, 0);
  for (EdgeId e = 0; e < e_count; ++e) {
    ++c.out_offset_[static_cast<std::size_t>(c.edge_from_[static_cast<std::size_t>(e)]) + 1];
  }
  for (std::size_t i = 1; i < c.out_offset_.size(); ++i) {
    c.out_offset_[i] += c.out_offset_[i - 1];
  }
  c.out_nodes_.resize(edges.size());
  c.out_edges_.resize(edges.size());
  {
    std::vector<std::int32_t> cursor(c.out_offset_.begin(), c.out_offset_.end() - 1);
    for (EdgeId e = 0; e < e_count; ++e) {
      const auto from = static_cast<std::size_t>(c.edge_from_[static_cast<std::size_t>(e)]);
      const auto slot = static_cast<std::size_t>(cursor[from]++);
      c.out_nodes_[slot] = c.edge_to_[static_cast<std::size_t>(e)];
      c.out_edges_[slot] = e;
    }
  }

  // CSR (in).
  c.in_offset_.assign(static_cast<std::size_t>(total_nodes) + 1, 0);
  for (EdgeId e = 0; e < e_count; ++e) {
    ++c.in_offset_[static_cast<std::size_t>(c.edge_to_[static_cast<std::size_t>(e)]) + 1];
  }
  for (std::size_t i = 1; i < c.in_offset_.size(); ++i) {
    c.in_offset_[i] += c.in_offset_[i - 1];
  }
  c.in_nodes_.resize(edges.size());
  c.in_edges_.resize(edges.size());
  {
    std::vector<std::int32_t> cursor(c.in_offset_.begin(), c.in_offset_.end() - 1);
    for (EdgeId e = 0; e < e_count; ++e) {
      const auto to = static_cast<std::size_t>(c.edge_to_[static_cast<std::size_t>(e)]);
      const auto slot = static_cast<std::size_t>(cursor[to]++);
      c.in_nodes_[slot] = c.edge_from_[static_cast<std::size_t>(e)];
      c.in_edges_[slot] = e;
    }
  }

  // Wavefront schedules for the level-parallel kernels; derived data, so
  // built after the graph is complete and validated.
  c.validate();
  c.forward_levels_ = build_forward_levels(c);
  c.reverse_levels_ = build_reverse_levels(c);
  return c;
}

}  // namespace lrsizer::netlist
