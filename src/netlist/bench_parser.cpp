#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace lrsizer::netlist {

const char* const kIscas85C17 =
    "# c17 — smallest ISCAS85 benchmark (6 NAND gates)\n"
    "INPUT(1)\n"
    "INPUT(2)\n"
    "INPUT(3)\n"
    "INPUT(6)\n"
    "INPUT(7)\n"
    "\n"
    "OUTPUT(22)\n"
    "OUTPUT(23)\n"
    "\n"
    "10 = NAND(1, 3)\n"
    "11 = NAND(3, 6)\n"
    "16 = NAND(2, 11)\n"
    "19 = NAND(11, 7)\n"
    "22 = NAND(10, 16)\n"
    "23 = NAND(16, 19)\n";

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

LogicOp op_from_name(const std::string& name, int line) {
  const std::string u = upper(name);
  if (u == "AND") return LogicOp::kAnd;
  if (u == "NAND") return LogicOp::kNand;
  if (u == "OR") return LogicOp::kOr;
  if (u == "NOR") return LogicOp::kNor;
  if (u == "NOT" || u == "INV") return LogicOp::kNot;
  if (u == "BUF" || u == "BUFF") return LogicOp::kBuf;
  if (u == "XOR") return LogicOp::kXor;
  if (u == "XNOR") return LogicOp::kXnor;
  throw BenchParseError(line, "unknown gate type '" + name + "'");
}

struct PendingGate {
  std::string name;
  LogicOp op;
  std::vector<std::string> fanin_names;
  int line;
};

}  // namespace

LogicNetlist parse_bench(std::istream& in) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;
  std::map<std::string, int> defined_at;  // signal -> defining line

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = strip(raw);
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = strip(line.substr(0, hash));
    }
    if (line.empty()) continue;

    const std::string u = upper(line);
    if (u.rfind("INPUT", 0) == 0 || u.rfind("OUTPUT", 0) == 0) {
      const bool is_input = u.rfind("INPUT", 0) == 0;
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close <= open) {
        throw BenchParseError(line_no, "malformed INPUT/OUTPUT declaration");
      }
      const std::string name = strip(line.substr(open + 1, close - open - 1));
      if (name.empty()) throw BenchParseError(line_no, "empty signal name");
      if (is_input) {
        if (defined_at.count(name) != 0) {
          throw BenchParseError(line_no, "signal '" + name + "' defined twice");
        }
        defined_at[name] = line_no;
        input_names.push_back(name);
      } else {
        output_names.push_back(name);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw BenchParseError(line_no, "expected 'name = OP(args)'");
    }
    const std::string name = strip(line.substr(0, eq));
    const std::string rhs = strip(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (name.empty() || open == std::string::npos || close == std::string::npos ||
        close <= open) {
      throw BenchParseError(line_no, "malformed gate definition");
    }
    if (defined_at.count(name) != 0) {
      throw BenchParseError(line_no, "signal '" + name + "' defined twice");
    }
    defined_at[name] = line_no;

    PendingGate gate;
    gate.name = name;
    gate.op = op_from_name(strip(rhs.substr(0, open)), line_no);
    gate.line = line_no;
    std::stringstream args(rhs.substr(open + 1, close - open - 1));
    std::string arg;
    while (std::getline(args, arg, ',')) {
      arg = strip(arg);
      if (arg.empty()) throw BenchParseError(line_no, "empty fanin name");
      gate.fanin_names.push_back(arg);
    }
    if (gate.fanin_names.empty()) {
      throw BenchParseError(line_no, "gate with no fanin");
    }
    pending.push_back(std::move(gate));
  }

  if (input_names.empty()) throw BenchParseError(line_no, "no INPUT declarations");
  if (output_names.empty()) throw BenchParseError(line_no, "no OUTPUT declarations");

  // The format allows any definition order; topologically order the gates.
  std::map<std::string, std::int32_t> index_of_pending;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    index_of_pending[pending[i].name] = static_cast<std::int32_t>(i);
  }

  LogicNetlist netlist;
  std::map<std::string, std::int32_t> netlist_id;
  for (const auto& name : input_names) netlist_id[name] = netlist.add_input(name);

  // DFS from every gate to emit fanins first; detects cycles.
  std::vector<int> state(pending.size(), 0);  // 0 = new, 1 = visiting, 2 = done
  std::vector<std::int32_t> stack;
  for (std::size_t root = 0; root < pending.size(); ++root) {
    if (state[root] == 2) continue;
    stack.push_back(static_cast<std::int32_t>(root));
    while (!stack.empty()) {
      const auto g = static_cast<std::size_t>(stack.back());
      if (state[g] == 2) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      state[g] = 1;
      for (const auto& fname : pending[g].fanin_names) {
        if (netlist_id.count(fname) != 0) continue;  // input or emitted gate
        const auto it = index_of_pending.find(fname);
        if (it == index_of_pending.end()) {
          throw BenchParseError(pending[g].line,
                                "undefined signal '" + fname + "'");
        }
        const auto dep = static_cast<std::size_t>(it->second);
        if (state[dep] == 1) {
          throw BenchParseError(pending[g].line,
                                "combinational cycle through '" + fname + "'");
        }
        if (state[dep] == 0) {
          stack.push_back(it->second);
          ready = false;
        }
      }
      if (!ready) continue;
      std::vector<std::int32_t> fanin;
      fanin.reserve(pending[g].fanin_names.size());
      for (const auto& fname : pending[g].fanin_names) {
        fanin.push_back(netlist_id.at(fname));
      }
      // The .bench format writes NAND(a, a) occasionally via duplicated
      // names; LogicNetlist accepts duplicate fanins (they become separate
      // wires during elaboration, as in a real layout).
      LogicOp op = pending[g].op;
      if (fanin.size() == 1 && logic_op_is_multi_input(op)) {
        // Single-argument AND/OR degenerate to a buffer; NAND/NOR/XNOR to NOT.
        op = (op == LogicOp::kNand || op == LogicOp::kNor || op == LogicOp::kXnor)
                 ? LogicOp::kNot
                 : LogicOp::kBuf;
      }
      netlist_id[pending[g].name] = netlist.add_gate(pending[g].name, op, std::move(fanin));
      state[g] = 2;
      stack.pop_back();
    }
  }

  for (const auto& name : output_names) {
    const auto it = netlist_id.find(name);
    if (it == netlist_id.end()) {
      throw BenchParseError(0, "OUTPUT references undefined signal '" + name + "'");
    }
    netlist.mark_output(it->second);
  }

  netlist.finalize();
  return netlist;
}

LogicNetlist parse_bench_string(const std::string& text) {
  std::istringstream in(text);
  return parse_bench(in);
}

std::vector<std::pair<std::int32_t, double>> read_size_annotations(std::istream& in) {
  std::vector<std::pair<std::int32_t, double>> sizes;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Annotation shape (bench_writer/CLI): "# size <node> <kind> <net> <value>".
    // A line only counts as an annotation when its third token is an
    // integer node id; "# size ..." prose comments stay ordinary comments.
    std::istringstream fields(line);
    std::string hash, keyword, node_token;
    if (!(fields >> hash >> keyword >> node_token) || hash != "#" ||
        keyword != "size") {
      continue;
    }
    std::int32_t node = 0;
    const auto [end, ec] = std::from_chars(
        node_token.data(), node_token.data() + node_token.size(), node);
    if (ec != std::errc{} || end != node_token.data() + node_token.size()) {
      continue;  // "# size annotations follow" and the like
    }
    std::string kind, net;
    double value = 0.0;
    if (!(fields >> kind >> net >> value)) {
      throw BenchParseError(line_no, "malformed size annotation: '" + line + "'");
    }
    if (node < 0) {
      throw BenchParseError(line_no, "size annotation names negative node " +
                                         std::to_string(node));
    }
    if (!(value > 0.0)) {
      throw BenchParseError(line_no, "size annotation for node " +
                                         std::to_string(node) +
                                         " must be > 0, got " + std::to_string(value));
    }
    sizes.emplace_back(node, value);
  }
  return sizes;
}

}  // namespace lrsizer::netlist
