// Topological level schedules — the wavefront decomposition behind the
// level-parallel timing/LRS kernels (docs/ARCHITECTURE.md §Parallel kernels).
//
// The circuit's index contract already gives *an* order (every edge goes
// low → high), but a sequential order hides the available parallelism. The
// forward schedule groups the non-source/sink nodes into wavefronts
//
//   level(v) = 1 + max_{p ∈ input(v)} level(p),   level(source) = 0,
//
// so that every node's fanin lives in strictly earlier levels; the reverse
// schedule is the mirror over fanout. A forward pass (arrivals, upstream
// resistance) may process one level's nodes in any order — or concurrently —
// and a reverse pass (loads) likewise over the reverse schedule. Per-node
// arithmetic is unchanged, so the wavefront order is bit-identical to the
// index order.
//
// The same structure doubles as the *color* schedule of the LRS
// Gauss-Seidel sweep (layout/coloring.hpp): there "levels" are conflict-free
// color classes of the coupling graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/types.hpp"

namespace lrsizer::netlist {

class Circuit;

/// An ordered partition of a node subset: level l holds nodes whose
/// dependencies are all in levels < l, in ascending NodeId order. CSR
/// layout, precomputed once per circuit (Figure 10a linear-memory claim
/// holds: 4(n + levels) bytes on top of the graph).
struct LevelSchedule {
  /// num_levels()+1 offsets into `nodes`; empty schedule = no offsets.
  std::vector<std::int32_t> offsets;
  /// Member nodes grouped by level, ascending NodeId within a level.
  std::vector<NodeId> nodes;

  std::int32_t num_levels() const {
    return offsets.empty() ? 0 : static_cast<std::int32_t>(offsets.size()) - 1;
  }
  std::int32_t num_nodes() const { return static_cast<std::int32_t>(nodes.size()); }
  std::span<const NodeId> level(std::int32_t l) const {
    const auto i = static_cast<std::size_t>(l);
    return {nodes.data() + offsets[i],
            static_cast<std::size_t>(offsets[i + 1] - offsets[i])};
  }
  std::size_t bytes() const {
    return offsets.capacity() * sizeof(std::int32_t) +
           nodes.capacity() * sizeof(NodeId);
  }

  /// Bucket every node with level_of[v] >= 0 by its level (counting sort, so
  /// nodes stay ascending within a level). `num_levels` must be
  /// 1 + max(level_of) (0 when no node is included).
  static LevelSchedule from_levels(std::span<const std::int32_t> level_of,
                                   std::int32_t num_levels);
};

/// Forward wavefronts over nodes 1 .. sink-1 (drivers + components): every
/// node's inputs lie in strictly earlier levels (source counts as level 0).
LevelSchedule build_forward_levels(const Circuit& circuit);

/// Reverse wavefronts over nodes 1 .. sink-1: every node's outputs lie in
/// strictly earlier levels (sink counts as level 0).
LevelSchedule build_reverse_levels(const Circuit& circuit);

}  // namespace lrsizer::netlist
