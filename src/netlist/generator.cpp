#include "netlist/generator.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "netlist/iscas_profiles.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lrsizer::netlist {

namespace {

/// Pick a multi-input op with an ISCAS-like mix.
LogicOp pick_multi_op(util::Rng& rng) {
  const double r = rng.next_double();
  if (r < 0.38) return LogicOp::kNand;
  if (r < 0.55) return LogicOp::kNor;
  if (r < 0.70) return LogicOp::kAnd;
  if (r < 0.82) return LogicOp::kOr;
  if (r < 0.93) return LogicOp::kXor;
  return LogicOp::kXnor;
}

LogicOp pick_single_op(util::Rng& rng) {
  return rng.bernoulli(0.8) ? LogicOp::kNot : LogicOp::kBuf;
}

}  // namespace

LogicNetlist generate_circuit(const GeneratorSpec& spec) {
  LRSIZER_ASSERT(spec.num_gates >= 1);
  LRSIZER_ASSERT(spec.num_inputs >= 1);
  LRSIZER_ASSERT(spec.num_outputs >= 1);
  LRSIZER_ASSERT(spec.depth >= 1);
  const std::int32_t budget = spec.num_wires - spec.num_outputs;
  LRSIZER_ASSERT_MSG(budget >= spec.num_gates,
                     "num_wires too small: need >= num_gates + num_outputs pins");
  LRSIZER_ASSERT_MSG(budget <= 5 * spec.num_gates,
                     "num_wires too large: fanin cap is 5 per gate");

  util::Rng rng(spec.seed);
  const std::int32_t depth = std::min<std::int32_t>(spec.depth, spec.num_gates);

  // --- fanin count per gate, summing exactly to `budget` ------------------
  std::vector<std::int32_t> fanin_of(static_cast<std::size_t>(spec.num_gates), 0);
  if (budget <= 2 * spec.num_gates) {
    // n1 single-input gates, the rest two-input.
    const std::int32_t n1 = 2 * spec.num_gates - budget;
    for (std::int32_t g = 0; g < spec.num_gates; ++g) fanin_of[static_cast<std::size_t>(g)] = 2;
    // Spread the single-input gates across the whole index range.
    std::vector<std::int32_t> idx(static_cast<std::size_t>(spec.num_gates));
    for (std::int32_t g = 0; g < spec.num_gates; ++g) idx[static_cast<std::size_t>(g)] = g;
    for (std::int32_t k = 0; k < n1; ++k) {
      const auto pick = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(spec.num_gates - k)));
      std::swap(idx[pick], idx[static_cast<std::size_t>(spec.num_gates - 1 - k)]);
      fanin_of[static_cast<std::size_t>(idx[static_cast<std::size_t>(spec.num_gates - 1 - k)])] = 1;
    }
  } else {
    for (std::int32_t g = 0; g < spec.num_gates; ++g) fanin_of[static_cast<std::size_t>(g)] = 2;
    std::int32_t extra = budget - 2 * spec.num_gates;
    while (extra > 0) {
      const auto g = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(spec.num_gates)));
      if (fanin_of[g] < 5) {
        ++fanin_of[g];
        --extra;
      }
    }
  }

  // --- level assignment: a spine guarantees every level is populated ------
  std::vector<std::int32_t> level_of(static_cast<std::size_t>(spec.num_gates));
  for (std::int32_t g = 0; g < depth; ++g) level_of[static_cast<std::size_t>(g)] = g + 1;
  for (std::int32_t g = depth; g < spec.num_gates; ++g) {
    level_of[static_cast<std::size_t>(g)] = rng.uniform_int(1, depth);
  }
  // Gates must be created fanin-first: sort indices by level (stable on the
  // original order for determinism).
  std::vector<std::int32_t> creation(static_cast<std::size_t>(spec.num_gates));
  for (std::int32_t g = 0; g < spec.num_gates; ++g) creation[static_cast<std::size_t>(g)] = g;
  std::stable_sort(creation.begin(), creation.end(), [&](std::int32_t a, std::int32_t b) {
    return level_of[static_cast<std::size_t>(a)] < level_of[static_cast<std::size_t>(b)];
  });

  LogicNetlist netlist;
  std::vector<std::int32_t> pi_ids;
  pi_ids.reserve(static_cast<std::size_t>(spec.num_inputs));
  for (std::int32_t i = 0; i < spec.num_inputs; ++i) {
    pi_ids.push_back(netlist.add_input("pi" + std::to_string(i)));
  }

  // Net ids available per level: level 0 = primary inputs.
  std::vector<std::vector<std::int32_t>> nets_at_level(
      static_cast<std::size_t>(depth) + 1);
  nets_at_level[0] = pi_ids;

  // --- create gates level by level ----------------------------------------
  std::vector<std::int32_t> netlist_id_of(static_cast<std::size_t>(spec.num_gates));
  for (std::int32_t pos = 0; pos < spec.num_gates; ++pos) {
    const std::int32_t g = creation[static_cast<std::size_t>(pos)];
    const std::int32_t lvl = level_of[static_cast<std::size_t>(g)];
    const std::int32_t want = fanin_of[static_cast<std::size_t>(g)];

    // One fanin is forced from level-1 (keeps the depth exact); the rest are
    // drawn from any earlier level, biased toward recent ones.
    std::vector<std::int32_t> fanin;
    fanin.reserve(static_cast<std::size_t>(want));
    const auto& prev = nets_at_level[static_cast<std::size_t>(lvl - 1)];
    LRSIZER_ASSERT(!prev.empty());
    fanin.push_back(prev[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(prev.size())))]);
    while (static_cast<std::int32_t>(fanin.size()) < want) {
      // Geometric bias: walk back from level-1 with 50% stopping chance.
      std::int32_t src_lvl = lvl - 1;
      while (src_lvl > 0 && rng.bernoulli(0.5)) --src_lvl;
      const auto& pool = nets_at_level[static_cast<std::size_t>(src_lvl)];
      if (pool.empty()) continue;
      const std::int32_t cand = pool[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(pool.size())))];
      if (std::find(fanin.begin(), fanin.end(), cand) == fanin.end()) {
        fanin.push_back(cand);
      } else if (pool.size() <= fanin.size()) {
        // Tiny pool: allow a duplicate rather than spinning forever.
        fanin.push_back(cand);
      }
    }

    const LogicOp op = want == 1 ? pick_single_op(rng) : pick_multi_op(rng);
    const std::int32_t id =
        netlist.add_gate("g" + std::to_string(g), op, std::move(fanin));
    netlist_id_of[static_cast<std::size_t>(g)] = id;
    nets_at_level[static_cast<std::size_t>(lvl)].push_back(id);
  }

  // --- usage repair ---------------------------------------------------------
  // Every PI and every gate must drive something (fanout > 0) or be a primary
  // output. Count fanouts, then swap multi-fanout fanins for unused nets.
  const std::int32_t total = netlist.num_gates_logic();
  std::vector<std::int32_t> fanout(static_cast<std::size_t>(total), 0);
  // We need mutable fanins for the repair; rebuild gate fanin lists locally.
  std::vector<std::vector<std::int32_t>> fanins(static_cast<std::size_t>(total));
  for (std::int32_t id = 0; id < total; ++id) {
    fanins[static_cast<std::size_t>(id)] = netlist.gate(id).fanin;
    for (std::int32_t f : fanins[static_cast<std::size_t>(id)]) {
      ++fanout[static_cast<std::size_t>(f)];
    }
  }

  auto collect_unused = [&]() {
    std::vector<std::int32_t> unused;
    for (std::int32_t id = 0; id < total; ++id) {
      if (fanout[static_cast<std::size_t>(id)] == 0) unused.push_back(id);
    }
    return unused;
  };

  // Primary outputs will absorb up to num_outputs unused gates (never PIs).
  // Everything else gets spliced into a later gate by replacing one fanin
  // that can spare the fanout.
  std::vector<std::int32_t> unused = collect_unused();
  // PO slots absorb the highest-index unused gates first: those have the
  // fewest later gates available for splicing.
  std::vector<std::int32_t> po_candidates;
  for (auto it = unused.rbegin(); it != unused.rend(); ++it) {
    if (netlist.gate(*it).op != LogicOp::kInput &&
        static_cast<std::int32_t>(po_candidates.size()) < spec.num_outputs) {
      po_candidates.push_back(*it);
    }
  }
  for (std::int32_t id : unused) {
    const bool is_pi = netlist.gate(id).op == LogicOp::kInput;
    if (!is_pi &&
        std::find(po_candidates.begin(), po_candidates.end(), id) != po_candidates.end()) {
      continue;  // becomes a PO, usage satisfied
    }
    // Splice: find a gate after `id` with a fanin whose net has fanout >= 2,
    // and redirect that fanin to `id` (keeps the pin budget). Try randomly
    // first, then scan deterministically. If no donor fanin exists anywhere
    // (sparse circuits), fall back to *appending* `id` as an extra fanin —
    // the pin budget shifts by one, which the wire-count repair below
    // rebalances.
    auto try_splice_into = [&](std::int32_t g) {
      if (g == id || netlist.gate(g).op == LogicOp::kInput) return false;
      if (!is_pi && g <= id) return false;
      auto& fl = fanins[static_cast<std::size_t>(g)];
      if (std::find(fl.begin(), fl.end(), id) != fl.end()) return false;
      for (auto& f : fl) {
        if (f != id && fanout[static_cast<std::size_t>(f)] >= 2) {
          --fanout[static_cast<std::size_t>(f)];
          f = id;
          ++fanout[static_cast<std::size_t>(id)];
          return true;
        }
      }
      return false;
    };
    auto try_append_into = [&](std::int32_t g) {
      if (g == id || netlist.gate(g).op == LogicOp::kInput) return false;
      if (!is_pi && g <= id) return false;
      auto& fl = fanins[static_cast<std::size_t>(g)];
      if (fl.size() >= 5) return false;
      if (std::find(fl.begin(), fl.end(), id) != fl.end()) return false;
      fl.push_back(id);
      ++fanout[static_cast<std::size_t>(id)];
      return true;
    };

    bool repaired = false;
    const std::int32_t lo = is_pi ? 0 : id + 1;
    for (std::int32_t attempt = 0; attempt < 64 && !repaired && lo < total; ++attempt) {
      const std::int32_t g =
          lo + static_cast<std::int32_t>(
                   rng.next_below(static_cast<std::uint64_t>(total - lo)));
      repaired = try_splice_into(g);
    }
    for (std::int32_t g = lo; g < total && !repaired; ++g) {
      repaired = try_splice_into(g);
    }
    for (std::int32_t g = lo; g < total && !repaired; ++g) {
      repaired = try_append_into(g);
    }
    LRSIZER_ASSERT_MSG(repaired, "generator could not repair an unused net");
  }

  // --- primary outputs -------------------------------------------------------
  // Start with the unused gates kept as POs, then top up with the highest-
  // index gates (deep logic, like real netlists' outputs).
  std::vector<bool> is_po(static_cast<std::size_t>(total), false);
  std::int32_t po_count = 0;
  for (std::int32_t id : po_candidates) {
    is_po[static_cast<std::size_t>(id)] = true;
    ++po_count;
  }
  for (std::int32_t id = total - 1; id >= 0 && po_count < spec.num_outputs; --id) {
    if (netlist.gate(id).op == LogicOp::kInput) continue;
    if (!is_po[static_cast<std::size_t>(id)]) {
      is_po[static_cast<std::size_t>(id)] = true;
      ++po_count;
    }
  }
  LRSIZER_ASSERT_MSG(po_count == spec.num_outputs,
                     "not enough gates for the requested output count");

  // --- wire-count repair -------------------------------------------------------
  // Trunk trees on high-fanout nets (and multi-segment routing) make the
  // elaborated wire count differ from the pin budget. Add or remove fanin
  // pins — preferring nets inside the star region where one pin costs
  // exactly segments_per_wire wires — until the count_wires oracle hits the
  // target.
  auto net_pins = [&](std::int32_t id) {
    return static_cast<std::int64_t>(fanout[static_cast<std::size_t>(id)]) +
           (is_po[static_cast<std::size_t>(id)] ? 1 : 0);
  };
  std::int64_t current = 0;
  for (std::int32_t id = 0; id < total; ++id) {
    current += wires_for_net_pins(net_pins(id), spec.elab);
  }

  const std::int64_t target = spec.num_wires;
  const std::int64_t step = spec.elab.segments_per_wire;
  for (std::int64_t guard = 0;
       std::llabs(current - target) >= step && guard < 20LL * total; ++guard) {
    if (current > target) {
      // Remove one fanin pin: gate keeps >= 1 pin (ops are re-picked at
      // rebuild), from a net that stays used (fanout >= 2 or PO).
      bool done = false;
      const auto start = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(total)));
      for (std::int32_t off = 0; off < total && !done; ++off) {
        const std::int32_t g = (start + off) % total;
        auto& fl = fanins[static_cast<std::size_t>(g)];
        if (netlist.gate(g).op == LogicOp::kInput || fl.size() < 2) continue;
        for (std::size_t k = 0; k < fl.size(); ++k) {
          const std::int32_t f = fl[k];
          if (fanout[static_cast<std::size_t>(f)] < 2 &&
              !is_po[static_cast<std::size_t>(f)]) {
            continue;  // would orphan the net
          }
          const std::int64_t before = wires_for_net_pins(net_pins(f), spec.elab);
          --fanout[static_cast<std::size_t>(f)];
          const std::int64_t after = wires_for_net_pins(net_pins(f), spec.elab);
          fl.erase(fl.begin() + static_cast<std::ptrdiff_t>(k));
          current += after - before;
          done = true;
          break;
        }
      }
      LRSIZER_ASSERT_MSG(done, "wire-count repair: no removable fanin pin");
    } else {
      // Add one fanin pin: gate with < 5 pins, from an earlier net in the
      // star region (so the step is exactly +segments_per_wire).
      bool done = false;
      const auto start = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(total)));
      for (std::int32_t off = 0; off < total && !done; ++off) {
        const std::int32_t g = (start + off) % total;
        auto& fl = fanins[static_cast<std::size_t>(g)];
        if (netlist.gate(g).op == LogicOp::kInput || fl.empty() || fl.size() >= 5) {
          continue;
        }
        for (std::int32_t f = g - 1; f >= 0; --f) {
          if (net_pins(f) + 1 > spec.elab.max_star_fanout) continue;
          if (std::find(fl.begin(), fl.end(), f) != fl.end()) continue;
          const std::int64_t before = wires_for_net_pins(net_pins(f), spec.elab);
          ++fanout[static_cast<std::size_t>(f)];
          const std::int64_t after = wires_for_net_pins(net_pins(f), spec.elab);
          fl.push_back(f);
          current += after - before;
          done = true;
          break;
        }
      }
      LRSIZER_ASSERT_MSG(done, "wire-count repair: no addable fanin pin");
    }
  }
  LRSIZER_ASSERT_MSG(std::llabs(current - target) < step,
                     "wire-count repair did not converge");

  // --- rebuild the netlist with the repaired fanins ------------------------
  // Ops are re-picked where the repair changed a gate's arity.
  LogicNetlist out;
  std::vector<std::int32_t> remap(static_cast<std::size_t>(total));
  for (std::int32_t id = 0; id < total; ++id) {
    const LogicGate& g = netlist.gate(id);
    if (g.op == LogicOp::kInput) {
      remap[static_cast<std::size_t>(id)] = out.add_input(g.name);
      continue;
    }
    std::vector<std::int32_t> fl = fanins[static_cast<std::size_t>(id)];
    for (auto& f : fl) f = remap[static_cast<std::size_t>(f)];
    LogicOp op = g.op;
    if (fl.size() == 1 && logic_op_is_multi_input(op)) op = pick_single_op(rng);
    if (fl.size() >= 2 && !logic_op_is_multi_input(op)) op = pick_multi_op(rng);
    remap[static_cast<std::size_t>(id)] = out.add_gate(g.name, op, std::move(fl));
  }
  for (std::int32_t id = 0; id < total; ++id) {
    if (is_po[static_cast<std::size_t>(id)]) {
      out.mark_output(remap[static_cast<std::size_t>(id)]);
    }
  }

  out.finalize();
  LRSIZER_ASSERT(out.num_real_gates() == spec.num_gates);
  LRSIZER_ASSERT(std::llabs(count_wires(out, spec.elab) - target) < step);
  return out;
}

GeneratorSpec spec_for_profile(const std::string& name, std::uint64_t seed) {
  const IscasProfile& p = iscas85_profile(name);
  GeneratorSpec spec;
  spec.num_gates = p.num_gates;
  spec.num_wires = p.num_wires;
  spec.num_inputs = p.num_inputs;
  spec.num_outputs = p.num_outputs;
  spec.depth = p.depth;
  spec.seed = seed;
  return spec;
}

}  // namespace lrsizer::netlist
