// Synthetic ISCAS-like circuit generator.
//
// The paper evaluates on ISCAS85 with component counts that include the
// authors' (unpublished) wire segmentation. This generator produces seeded
// random combinational netlists with:
//   * exactly `num_gates` logic gates,
//   * exactly `num_inputs` / `num_outputs` primary inputs/outputs,
//   * a fanin budget chosen so that physical elaboration with the matching
//     ElabOptions yields exactly `num_wires` wire segments,
//   * logic depth close to `depth` (ISCAS-like structure: a guaranteed
//     spine through every level, fanins biased to the previous level).
//
// Determinism: the same spec + seed produces the same netlist on every
// platform (see util/rng.hpp).
#pragma once

#include <cstdint>

#include "netlist/elaborator.hpp"
#include "netlist/logic_netlist.hpp"

namespace lrsizer::netlist {

struct GeneratorSpec {
  std::int32_t num_gates = 100;   ///< real gates (#G in the paper's Table 1)
  std::int32_t num_wires = 200;   ///< wire segments after elaboration (#W)
  std::int32_t num_inputs = 16;
  std::int32_t num_outputs = 8;
  std::int32_t depth = 12;        ///< target logic depth
  std::uint64_t seed = 1;
  /// Elaboration options the wire budget is computed against (trunk trees
  /// and multi-segment routing change the count).
  ElabOptions elab;
};

/// Build a finalized LogicNetlist per the spec: elaborating the result with
/// `spec.elab` yields exactly `num_wires` wire segments (a repair loop
/// adds/removes fanin pins against the count_wires oracle; exactness
/// requires elab.segments_per_wire == 1, otherwise the count lands within
/// segments_per_wire - 1 of the target).
LogicNetlist generate_circuit(const GeneratorSpec& spec);

/// Spec matching one of the paper's Table 1 circuits (by profile name).
GeneratorSpec spec_for_profile(const std::string& name, std::uint64_t seed = 1);

}  // namespace lrsizer::netlist
