#include "netlist/hash.hpp"

#include "netlist/logic_netlist.hpp"

namespace lrsizer::netlist {

namespace {

std::uint64_t mix_byte(std::uint64_t h, unsigned char b) {
  return (h ^ b) * kFnvPrime;
}

std::uint64_t mix_i32(std::uint64_t h, std::int32_t v) {
  // Fixed little-endian byte order so the hash is platform-stable.
  const auto u = static_cast<std::uint32_t>(v);
  h = mix_byte(h, static_cast<unsigned char>(u & 0xff));
  h = mix_byte(h, static_cast<unsigned char>((u >> 8) & 0xff));
  h = mix_byte(h, static_cast<unsigned char>((u >> 16) & 0xff));
  return mix_byte(h, static_cast<unsigned char>((u >> 24) & 0xff));
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) {
  h = mix_i32(h, static_cast<std::int32_t>(s.size()));
  for (const char c : s) h = mix_byte(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) h = mix_byte(h, static_cast<unsigned char>(c));
  return h;
}

std::uint64_t netlist_hash(const LogicNetlist& netlist) {
  std::uint64_t h = kFnvOffset;
  h = mix_i32(h, netlist.num_gates_logic());
  for (const LogicGate& gate : netlist.gates()) {
    h = mix_byte(h, static_cast<unsigned char>(gate.op));
    h = mix_string(h, gate.name);
    h = mix_i32(h, static_cast<std::int32_t>(gate.fanin.size()));
    for (const std::int32_t f : gate.fanin) h = mix_i32(h, f);
  }
  h = mix_i32(h, static_cast<std::int32_t>(netlist.primary_outputs().size()));
  for (const std::int32_t o : netlist.primary_outputs()) h = mix_i32(h, o);
  return h;
}

}  // namespace lrsizer::netlist
