// Parser for the ISCAS85 `.bench` netlist format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G10)
//
// Supported ops: AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR. Forward
// references are resolved (the format does not require definition order).
// Errors (unknown op, undefined signal, double definition, syntax) raise
// BenchParseError with a line number.
#pragma once

#include <cstdint>
#include <istream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "netlist/logic_netlist.hpp"

namespace lrsizer::netlist {

class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(int line, const std::string& message)
      : std::runtime_error("bench parse error at line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a `.bench` stream into a finalized LogicNetlist.
LogicNetlist parse_bench(std::istream& in);

/// Convenience overload for in-memory text (tests, embedded circuits).
LogicNetlist parse_bench_string(const std::string& text);

/// Read the `# size <node> <kind> <net> <value>` annotation comments that
/// bench_writer/the CLI append to sized outputs. Returns (circuit NodeId,
/// size) pairs in file order. Lines that are not size annotations are
/// ignored (they are comments to every .bench reader, including parse_bench
/// above); a line counts as an annotation only when its third token is an
/// integer node id, so `# size ...` prose stays prose. Truncated or
/// out-of-range annotations raise BenchParseError. Feeds
/// api::SizingSession::warm_start_sizes / `lrsizer --warm-start`.
std::vector<std::pair<std::int32_t, double>> read_size_annotations(std::istream& in);

/// The real ISCAS85 c17 netlist, shipped in-tree (also in data/c17.bench).
extern const char* const kIscas85C17;

}  // namespace lrsizer::netlist
