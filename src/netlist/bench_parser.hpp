// Parser for the ISCAS85 `.bench` netlist format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G10)
//
// Supported ops: AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR. Forward
// references are resolved (the format does not require definition order).
// Errors (unknown op, undefined signal, double definition, syntax) raise
// BenchParseError with a line number.
#pragma once

#include <istream>
#include <stdexcept>
#include <string>

#include "netlist/logic_netlist.hpp"

namespace lrsizer::netlist {

class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(int line, const std::string& message)
      : std::runtime_error("bench parse error at line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a `.bench` stream into a finalized LogicNetlist.
LogicNetlist parse_bench(std::istream& in);

/// Convenience overload for in-memory text (tests, embedded circuits).
LogicNetlist parse_bench_string(const std::string& text);

/// The real ISCAS85 c17 netlist, shipped in-tree (also in data/c17.bench).
extern const char* const kIscas85C17;

}  // namespace lrsizer::netlist
