#include "netlist/iscas_profiles.hpp"

#include "util/assert.hpp"

namespace lrsizer::netlist {

// Paper Table 1, transcribed verbatim (row order as printed).
// PI/PO widths and depths are the standard ISCAS85 figures.
const std::vector<IscasProfile>& iscas85_profiles() {
  static const std::vector<IscasProfile> profiles = {
      {"c1355", 546, 1064, 41, 32, 24,
       {20.53, 2.14, 1005.57, 1098.90, 228.34, 28.45, 48299, 5203, 9, 56, 1096}},
      {"c1908", 880, 1498, 33, 25, 40,
       {24.55, 2.45, 1444.57, 1338.62, 357.09, 41.45, 71338, 7369, 13, 155, 1184}},
      {"c2670", 1193, 2076, 233, 140, 32,
       {33.46, 3.35, 1480.65, 1499.87, 486.38, 58.45, 98067, 10319, 7, 444, 1320}},
      {"c3540", 1669, 2939, 50, 22, 47,
       {50.24, 5.03, 1713.47, 1685.51, 682.19, 79.53, 138242, 14292, 8, 553, 1472}},
      {"c432", 214, 426, 36, 7, 17,
       {7.89, 0.95, 1442.28, 958.20, 89.95, 18.35, 19200, 2984, 7, 21, 976}},
      {"c499", 514, 928, 41, 32, 11,
       {16.37, 1.72, 875.81, 799.31, 211.25, 27.88, 43259, 4834, 10, 97, 1072}},
      {"c5315", 2307, 4386, 178, 123, 49,
       {82.06, 8.23, 1649.38, 1548.37, 959.28, 113.92, 200803, 20768, 7, 1321, 1752}},
      {"c6288", 2416, 4800, 32, 32, 124,
       {95.36, 9.53, 4888.33, 4494.26, 1015.03, 129.94, 216495, 23341, 14, 2705, 1808}},
      {"c7552", 3512, 6144, 207, 108, 43,
       {103.30, 10.33, 1615.32, 1619.37, 1433.49, 168.91, 289707, 30120, 7, 2823, 2120}},
      {"c880", 383, 729, 60, 26, 24,
       {13.12, 1.35, 931.49, 794.43, 159.30, 22.14, 33359, 3827, 12, 94, 1032}},
  };
  return profiles;
}

const IscasProfile& iscas85_profile(const std::string& name) {
  for (const auto& p : iscas85_profiles()) {
    if (p.name == name) return p;
  }
  LRSIZER_ASSERT_MSG(false, "unknown ISCAS85 profile name");
  return iscas85_profiles().front();  // unreachable
}

}  // namespace lrsizer::netlist
