#include "netlist/levels.hpp"

#include <algorithm>

#include "netlist/circuit.hpp"
#include "util/assert.hpp"

namespace lrsizer::netlist {

LevelSchedule LevelSchedule::from_levels(std::span<const std::int32_t> level_of,
                                         std::int32_t num_levels) {
  LevelSchedule schedule;
  schedule.offsets.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  std::int32_t included = 0;
  for (const std::int32_t level : level_of) {
    if (level < 0) continue;
    LRSIZER_ASSERT(level < num_levels);
    ++schedule.offsets[static_cast<std::size_t>(level) + 1];
    ++included;
  }
  for (std::size_t l = 1; l < schedule.offsets.size(); ++l) {
    schedule.offsets[l] += schedule.offsets[l - 1];
  }
  schedule.nodes.resize(static_cast<std::size_t>(included));
  std::vector<std::int32_t> cursor(schedule.offsets.begin(),
                                   schedule.offsets.end() - 1);
  // Ascending v keeps each level's nodes in ascending NodeId order.
  for (std::size_t v = 0; v < level_of.size(); ++v) {
    if (level_of[v] < 0) continue;
    schedule.nodes[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(level_of[v])]++)] =
        static_cast<NodeId>(v);
  }
  return schedule;
}

LevelSchedule build_forward_levels(const Circuit& circuit) {
  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  // Source (and the excluded sink) sit at -1 so drivers land on level 0.
  std::vector<std::int32_t> level(n, -1);
  std::int32_t max_level = 0;
  // Ascending index is a topological order (index contract), so every
  // input's level is final when a node is visited.
  for (NodeId v = 1; v < circuit.sink(); ++v) {
    std::int32_t lvl = -1;
    for (const NodeId p : circuit.inputs(v)) {
      lvl = std::max(lvl, level[static_cast<std::size_t>(p)]);
    }
    level[static_cast<std::size_t>(v)] = lvl + 1;
    max_level = std::max(max_level, lvl + 1);
  }
  return LevelSchedule::from_levels(level, max_level + 1);
}

LevelSchedule build_reverse_levels(const Circuit& circuit) {
  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  // Sink (and the excluded source) sit at -1 so primary outputs land on 0.
  std::vector<std::int32_t> level(n, -1);
  std::int32_t max_level = 0;
  for (NodeId v = circuit.sink() - 1; v >= 1; --v) {
    std::int32_t lvl = -1;
    for (const NodeId child : circuit.outputs(v)) {
      lvl = std::max(lvl, level[static_cast<std::size_t>(child)]);
    }
    level[static_cast<std::size_t>(v)] = lvl + 1;
    max_level = std::max(max_level, lvl + 1);
  }
  return LevelSchedule::from_levels(level, max_level + 1);
}

}  // namespace lrsizer::netlist
