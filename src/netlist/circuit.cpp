#include "netlist/circuit.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lrsizer::netlist {

void Circuit::set_uniform_size(double x) {
  for (NodeId v = first_component(); v < end_component(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    size_[i] = std::clamp(x, lower_[i], upper_[i]);
  }
}

std::span<const NodeId> Circuit::outputs(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return {out_nodes_.data() + out_offset_[i],
          static_cast<std::size_t>(out_offset_[i + 1] - out_offset_[i])};
}

std::span<const NodeId> Circuit::inputs(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return {in_nodes_.data() + in_offset_[i],
          static_cast<std::size_t>(in_offset_[i + 1] - in_offset_[i])};
}

std::span<const EdgeId> Circuit::output_edges(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return {out_edges_.data() + out_offset_[i],
          static_cast<std::size_t>(out_offset_[i + 1] - out_offset_[i])};
}

std::span<const EdgeId> Circuit::input_edges(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return {in_edges_.data() + in_offset_[i],
          static_cast<std::size_t>(in_offset_[i + 1] - in_offset_[i])};
}

void Circuit::account_memory(util::MemoryTracker& tracker) const {
  std::size_t node_bytes = util::vector_bytes(kind_) + util::vector_bytes(unit_res_) +
                           util::vector_bytes(unit_cap_) + util::vector_bytes(fringe_cap_) +
                           util::vector_bytes(area_weight_) + util::vector_bytes(pin_load_) +
                           util::vector_bytes(lower_) + util::vector_bytes(upper_) +
                           util::vector_bytes(length_) + util::vector_bytes(size_);
  std::size_t edge_bytes = util::vector_bytes(edge_from_) + util::vector_bytes(edge_to_) +
                           util::vector_bytes(out_offset_) + util::vector_bytes(out_nodes_) +
                           util::vector_bytes(out_edges_) + util::vector_bytes(in_offset_) +
                           util::vector_bytes(in_nodes_) + util::vector_bytes(in_edges_);
  tracker.add("circuit/nodes", node_bytes);
  tracker.add("circuit/edges", edge_bytes);
  tracker.add("circuit/levels", forward_levels_.bytes() + reverse_levels_.bytes());
}

void Circuit::validate() const {
  const NodeId n = num_nodes();
  LRSIZER_ASSERT(n >= 3);  // source + at least one driver + sink
  LRSIZER_ASSERT(kind_[0] == NodeKind::kSource);
  LRSIZER_ASSERT(kind_[static_cast<std::size_t>(n - 1)] == NodeKind::kSink);

  // Drivers occupy 1..s; components s+1..n+s; sink last.
  for (NodeId v = 1; v <= num_drivers_; ++v) {
    LRSIZER_ASSERT(kind(v) == NodeKind::kDriver);
  }
  for (NodeId v = first_component(); v < end_component(); ++v) {
    LRSIZER_ASSERT(is_sized(v));
    LRSIZER_ASSERT(lower_bound(v) > 0.0);
    LRSIZER_ASSERT(lower_bound(v) <= upper_bound(v));
    LRSIZER_ASSERT(unit_res(v) > 0.0);
    LRSIZER_ASSERT(unit_cap(v) >= 0.0);
  }

  // Topological index contract and CSR consistency.
  for (EdgeId e = 0; e < num_edges(); ++e) {
    LRSIZER_ASSERT_MSG(edge_from(e) < edge_to(e), "edges must go low -> high index");
    LRSIZER_ASSERT(edge_from(e) >= 0 && edge_to(e) < n);
  }
  std::int64_t out_total = 0;
  std::int64_t in_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    out_total += static_cast<std::int64_t>(outputs(v).size());
    in_total += static_cast<std::int64_t>(inputs(v).size());
    for (std::size_t k = 0; k < outputs(v).size(); ++k) {
      const EdgeId e = output_edges(v)[k];
      LRSIZER_ASSERT(edge_from(e) == v);
      LRSIZER_ASSERT(edge_to(e) == outputs(v)[k]);
    }
    for (std::size_t k = 0; k < inputs(v).size(); ++k) {
      const EdgeId e = input_edges(v)[k];
      LRSIZER_ASSERT(edge_to(e) == v);
      LRSIZER_ASSERT(edge_from(e) == inputs(v)[k]);
    }
  }
  LRSIZER_ASSERT(out_total == num_edges());
  LRSIZER_ASSERT(in_total == num_edges());

  // Every non-source node is driven; every non-sink node drives something.
  for (NodeId v = 1; v < n; ++v) LRSIZER_ASSERT_MSG(!inputs(v).empty(), "undriven node");
  for (NodeId v = 0; v + 1 < n; ++v) {
    LRSIZER_ASSERT_MSG(!outputs(v).empty(), "dangling node");
  }
}

}  // namespace lrsizer::netlist
