// Physical elaboration: LogicNetlist -> Circuit.
//
// Every primary input becomes an input driver; every logic gate becomes a
// sized gate; every net (the output of a PI or gate) becomes a routing tree
// of sized wire segments:
//
//   * nets with at most `max_star_fanout` sink pins are routed as a star —
//     one chain of `segments_per_wire` segments per sink pin;
//   * wider nets get a balanced binary trunk tree whose internal nodes are
//     trunk wire segments (this exercises wire-after-wire upstream paths);
//   * a primary output is one extra sink pin carrying the output load C_L.
//
// Wire lengths and driver strengths are drawn deterministically from the
// seed. `count_wires` predicts the exact number of wire segments the same
// options will produce — the generator relies on this to hit the paper's
// per-circuit #W.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/logic_netlist.hpp"
#include "netlist/types.hpp"

namespace lrsizer::netlist {

struct ElabOptions {
  std::uint64_t seed = 1;
  double min_wire_length = 400.0;   ///< µm
  double max_wire_length = 2000.0;  ///< µm
  std::int32_t max_star_fanout = 8;
  std::int32_t segments_per_wire = 1;
  double driver_res = 0.0;         ///< Ω; <= 0 means tech default
  double output_load = 0.0;        ///< F; <= 0 means tech default
  /// Scale each gate's electrical weight by its logic function (series
  /// stacks make NAND/NOR/XOR heavier than an inverter). Off — the default,
  /// matching the paper's uniform gate model — makes every gate
  /// inverter-equivalent.
  bool differentiate_gate_types = false;
};

/// Inverter-relative electrical complexity used when
/// `differentiate_gate_types` is set (kInput returns 0 — not a cell).
double gate_complexity(LogicOp op, std::size_t fanin_count);

struct ElabResult {
  Circuit circuit;
  /// logic gate index -> circuit node (drivers for PIs, gates otherwise).
  std::vector<NodeId> node_of_gate;
  /// circuit node -> logic gate index of the net the node carries
  /// (for wires: the net they belong to; for gates/drivers: their own output
  /// net; -1 for source/sink). Used to attach simulated waveforms to wires.
  std::vector<std::int32_t> net_of_node;
};

/// Wire segments used to route one net with `pins` sink pins under
/// `options` (star chains below the threshold, binary trunk tree above).
/// Monotone in `pins`. Exposed so the generator can budget exactly.
std::int64_t wires_for_net_pins(std::int64_t pins, const ElabOptions& options);

/// Exact number of wire segments `elaborate` will create.
std::int64_t count_wires(const LogicNetlist& netlist, const ElabOptions& options);

ElabResult elaborate(const LogicNetlist& netlist, const TechParams& tech,
                     const ElabOptions& options);

}  // namespace lrsizer::netlist
