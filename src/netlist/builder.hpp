// CircuitBuilder: assembles a Circuit from components and connections, then
// establishes the paper's index contract (drivers first, topological order,
// artificial source/sink) in finalize().
//
// Typical use (the Figure 1 circuit, see examples/quickstart.cpp):
//   CircuitBuilder b(tech);
//   auto d1 = b.add_driver(500.0);
//   auto w1 = b.add_wire(200.0);          // 200 µm
//   auto g1 = b.add_gate();
//   b.connect(d1, w1); b.connect(w1, g1);
//   ...
//   b.mark_primary_output(w_out, 20e-15); // C_L
//   Circuit c = std::move(b).finalize();
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/types.hpp"

namespace lrsizer::netlist {

class CircuitBuilder {
 public:
  explicit CircuitBuilder(const TechParams& tech = TechParams{}) : tech_(tech) {}

  /// Handle used before finalize() renumbers everything.
  using Handle = std::int32_t;

  /// Input driver with resistance `driver_res` (Ω); uses tech default if <= 0.
  Handle add_driver(double driver_res = 0.0);

  /// Gate with the tech's unit R/C. `area_weight` overrides α_i if > 0.
  /// `complexity` scales the cell's electrical weight relative to an
  /// inverter (series transistor stacks raise both r̂ and ĉ): r̂, ĉ and α
  /// are multiplied by it. 1.0 = inverter-equivalent.
  Handle add_gate(double area_weight = 0.0, double complexity = 1.0);

  /// Wire segment of `length_um` µm; r̂/ĉ/f scale with length, α_i = length.
  Handle add_wire(double length_um);

  /// Directed connection: data flows from `from` into `to`.
  void connect(Handle from, Handle to);

  /// Declare `component` (a gate or wire) to drive a primary output with
  /// load `load_cap` (C_L). Uses the tech default if `load_cap` <= 0.
  void mark_primary_output(Handle component, double load_cap = 0.0);

  /// Override the size bounds of one component (defaults come from tech).
  void set_bounds(Handle component, double lower, double upper);

  std::int32_t num_handles() const { return static_cast<std::int32_t>(kind_.size()); }

  /// Validates (DAG, no dangling components, at least one driver and one
  /// primary output), renumbers to the index contract, and builds CSR.
  /// After finalize, handle h maps to NodeId node_of(h). May be called once.
  Circuit finalize();

  /// Valid only after finalize(): the NodeId a handle was assigned.
  NodeId node_of(Handle h) const { return handle_to_node_[static_cast<std::size_t>(h)]; }

 private:
  TechParams tech_;
  std::vector<NodeKind> kind_;
  std::vector<double> unit_res_;
  std::vector<double> unit_cap_;
  std::vector<double> fringe_cap_;
  std::vector<double> area_weight_;
  std::vector<double> pin_load_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> length_;
  std::vector<std::pair<Handle, Handle>> connections_;
  std::vector<NodeId> handle_to_node_;
};

}  // namespace lrsizer::netlist
