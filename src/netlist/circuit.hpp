// The physical circuit graph of paper §2.1 (Figure 2): a DAG over
// source / drivers / gates / wires / sink with per-component electrical
// attributes and mutable sizes. This is the single data structure every
// downstream pass (loads, upstream resistance, arrivals, LRS, OGWS)
// operates on.
//
// Index contract (established by CircuitBuilder::finalize):
//   node 0                  — source ~s
//   nodes 1 .. s            — input drivers (set R)
//   nodes s+1 .. n+s        — sized components: gates and wires (G ∪ W)
//   node n+s+1              — sink ~t
// and for every edge (i, j): i < j  (topological indexing).
//
// Storage is struct-of-arrays with CSR adjacency: the paper's linear-memory
// claim (Figure 10a) depends on it, and the optimization passes are plain
// forward/backward sweeps over these arrays.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/levels.hpp"
#include "netlist/types.hpp"
#include "util/memtrack.hpp"

namespace lrsizer::netlist {

class CircuitBuilder;

class Circuit {
 public:
  // ---- shape ------------------------------------------------------------

  /// Total node count = n + s + 2 (components + drivers + source + sink).
  NodeId num_nodes() const { return static_cast<NodeId>(kind_.size()); }
  /// Number of input drivers s.
  NodeId num_drivers() const { return num_drivers_; }
  /// Number of sized components n (gates + wires).
  NodeId num_components() const { return num_nodes() - num_drivers_ - 2; }
  NodeId num_gates() const { return num_gates_; }
  NodeId num_wires() const { return num_components() - num_gates_; }
  NodeId source() const { return 0; }
  NodeId sink() const { return num_nodes() - 1; }
  /// First sized component (= s + 1).
  NodeId first_component() const { return num_drivers_ + 1; }
  /// One past the last sized component (= n + s + 1).
  NodeId end_component() const { return num_nodes() - 1; }

  EdgeId num_edges() const { return static_cast<EdgeId>(edge_from_.size()); }

  // ---- per-node attributes ------------------------------------------------

  NodeKind kind(NodeId v) const { return kind_[static_cast<std::size_t>(v)]; }
  bool is_gate(NodeId v) const { return kind(v) == NodeKind::kGate; }
  bool is_wire(NodeId v) const { return kind(v) == NodeKind::kWire; }
  bool is_driver(NodeId v) const { return kind(v) == NodeKind::kDriver; }
  bool is_sized(NodeId v) const { return is_gate(v) || is_wire(v); }

  /// Unit-size resistance r̂_v (drivers: the fixed R_D; source/sink: 0).
  double unit_res(NodeId v) const { return unit_res_[static_cast<std::size_t>(v)]; }
  /// Unit-size capacitance ĉ_v (drivers/source/sink: 0).
  double unit_cap(NodeId v) const { return unit_cap_[static_cast<std::size_t>(v)]; }
  /// Fringing capacitance f_v (0 for gates per the paper).
  double fringe_cap(NodeId v) const { return fringe_cap_[static_cast<std::size_t>(v)]; }
  /// Area weight α_v (area of the component is α_v · x_v).
  double area_weight(NodeId v) const { return area_weight_[static_cast<std::size_t>(v)]; }
  /// Fixed extra load at the node's output (e.g. C_L on primary outputs).
  double pin_load(NodeId v) const { return pin_load_[static_cast<std::size_t>(v)]; }
  /// Size bounds L_v ≤ x_v ≤ U_v.
  double lower_bound(NodeId v) const { return lower_[static_cast<std::size_t>(v)]; }
  double upper_bound(NodeId v) const { return upper_[static_cast<std::size_t>(v)]; }
  /// Wire length in µm (0 for non-wires); geometry input to coupling.
  double wire_length(NodeId v) const { return length_[static_cast<std::size_t>(v)]; }

  /// Effective resistance at size x: r̂/x for sized components, R_D for
  /// drivers (whose "size" is ignored).
  double resistance(NodeId v, double x) const {
    if (is_driver(v)) return unit_res(v);
    return unit_res(v) / x;
  }

  /// Ground (non-coupling) capacitance at size x: ĉ·x + f.
  double ground_cap(NodeId v, double x) const { return unit_cap(v) * x + fringe_cap(v); }

  // ---- sizes ---------------------------------------------------------------

  /// Current size vector, indexed by NodeId (drivers/source/sink carry 0).
  const std::vector<double>& sizes() const { return size_; }
  std::vector<double>& mutable_sizes() { return size_; }
  double size(NodeId v) const { return size_[static_cast<std::size_t>(v)]; }
  void set_size(NodeId v, double x) { size_[static_cast<std::size_t>(v)] = x; }
  /// Set every sized component to `x` clamped into its bounds.
  void set_uniform_size(double x);

  // ---- adjacency -------------------------------------------------------------

  /// Fanout nodes of v, i.e. output(v) in the paper.
  std::span<const NodeId> outputs(NodeId v) const;
  /// Fanin nodes of v, i.e. input(v) in the paper.
  std::span<const NodeId> inputs(NodeId v) const;
  /// Edge ids of v's out-edges, parallel to outputs(v).
  std::span<const EdgeId> output_edges(NodeId v) const;
  /// Edge ids of v's in-edges, parallel to inputs(v).
  std::span<const EdgeId> input_edges(NodeId v) const;

  NodeId edge_from(EdgeId e) const { return edge_from_[static_cast<std::size_t>(e)]; }
  NodeId edge_to(EdgeId e) const { return edge_to_[static_cast<std::size_t>(e)]; }

  // ---- level schedules -----------------------------------------------------

  /// Forward wavefronts over nodes 1..sink-1 (inputs in strictly earlier
  /// levels); precomputed by the builder, drives the level-parallel forward
  /// passes (arrivals, upstream resistance).
  const LevelSchedule& forward_levels() const { return forward_levels_; }
  /// Reverse wavefronts (outputs in strictly earlier levels); drives the
  /// level-parallel load pass.
  const LevelSchedule& reverse_levels() const { return reverse_levels_; }

  // ---- misc ---------------------------------------------------------------

  const TechParams& tech() const { return tech_; }

  /// Register this circuit's data-structure footprint with `tracker`.
  void account_memory(util::MemoryTracker& tracker) const;

  /// Internal consistency check (index contract, CSR symmetry, acyclicity by
  /// construction). Aborts on violation; used by tests and the builder.
  void validate() const;

 private:
  friend class CircuitBuilder;
  Circuit() = default;

  TechParams tech_;
  NodeId num_drivers_ = 0;
  NodeId num_gates_ = 0;

  // Node attribute arrays, all sized num_nodes().
  std::vector<NodeKind> kind_;
  std::vector<double> unit_res_;
  std::vector<double> unit_cap_;
  std::vector<double> fringe_cap_;
  std::vector<double> area_weight_;
  std::vector<double> pin_load_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> length_;
  std::vector<double> size_;

  // Edge arrays, sized num_edges().
  std::vector<NodeId> edge_from_;
  std::vector<NodeId> edge_to_;

  // CSR adjacency: out_offset_ has num_nodes()+1 entries.
  std::vector<std::int32_t> out_offset_;
  std::vector<NodeId> out_nodes_;
  std::vector<EdgeId> out_edges_;
  std::vector<std::int32_t> in_offset_;
  std::vector<NodeId> in_nodes_;
  std::vector<EdgeId> in_edges_;

  // Precomputed wavefront schedules (see levels.hpp), built by finalize().
  LevelSchedule forward_levels_;
  LevelSchedule reverse_levels_;
};

}  // namespace lrsizer::netlist
