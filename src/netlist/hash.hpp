// Structural hashing of logic netlists — the circuit half of the batch-level
// result-cache key (runtime/cache.hpp, docs/SERVING.md §Cache semantics).
//
// Two netlists hash equal iff they are structurally identical: same gates in
// the same definition order with the same names, ops, fanin lists and
// primary-output marks. That is exactly the input identity the flow is
// deterministic over, so (netlist_hash, canonical options) keys a unique
// FlowResult.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lrsizer::netlist {

class LogicNetlist;

/// 64-bit FNV-1a offset/prime, exposed so other key components (canonical
/// option strings) hash with the same function.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over raw bytes, continuing from `h` (seed with kFnvOffset).
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h = kFnvOffset);

/// Structural hash of a logic netlist (names, ops, fanins, output marks).
/// Stable across processes and platforms; independent of finalize() state.
std::uint64_t netlist_hash(const LogicNetlist& netlist);

}  // namespace lrsizer::netlist
