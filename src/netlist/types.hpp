// Core identifier types and component taxonomy for the circuit graph
// (paper §2.1): a circuit is a DAG whose nodes are the source ~s, input
// drivers, gates, wires, and the sink ~t.
#pragma once

#include <cstdint>

namespace lrsizer::netlist {

/// Node index into a Circuit. Node 0 is always the source; the highest index
/// is always the sink; drivers occupy 1..s; sized components s+1..n+s.
using NodeId = std::int32_t;

/// Edge index into a Circuit (one Lagrange multiplier per edge).
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Paper §2.1: V = G ∪ W ∪ R ∪ S ∪ T.
enum class NodeKind : std::uint8_t {
  kSource,  ///< artificial source ~s (node 0)
  kDriver,  ///< input driver (resistor R_D), set R
  kGate,    ///< sizable gate, set G
  kWire,    ///< sizable wire segment (π model), set W
  kSink,    ///< artificial sink ~t (node n+s+1)
};

/// Technology constants shared by every experiment. Resistance/capacitance
/// per unit size follow the paper's §5 setup (wire 0.07 Ω/µm and
/// 0.024 fF/µm, gate ĉ 0.16 fF/µm, 3.3 V, 200 MHz, sizes in [0.1, 10] µm).
/// The paper's gate r̂ is garbled in every available scan ("1 0 ... m" —
/// 10 Ω·µm, 1.0 kΩ·µm and 10 kΩ·µm are all consistent readings); we use
/// 1 kΩ·µm, the value that lands the Table 1 delay column in the paper's
/// range (see docs/ARCHITECTURE.md, substitution S1). Wire length, fringing and
/// area weights are likewise calibrated to the paper's Init magnitudes.
struct TechParams {
  double gate_unit_res = 1e3;         ///< gate r̂ [Ω·size]: r = r̂ / x
  double gate_unit_cap = 0.16e-15;    ///< gate ĉ [F/size]: c = ĉ · x
  double wire_res_per_um = 0.07;      ///< wire r̂ per µm length [Ω·size/µm]
  double wire_cap_per_um = 0.024e-15; ///< wire ĉ per µm length [F/(size·µm)]
  double wire_fringe_per_um = 0.8e-18;///< wire fringing per µm length [F/µm]
  double supply_voltage = 3.3;        ///< V
  double frequency = 200e6;           ///< Hz
  double min_size = 0.1;              ///< L_i [µm]
  double max_size = 10.0;             ///< U_i [µm]
  double gate_area_per_size = 25.0;   ///< gate α_i [µm²/size]
  /// Wire α_i [µm²/size]. The paper charges each component a unit-sized
  /// area independent of wire length (Table 1's area column divides to
  /// ≈30 µm² per component); set to 0 to use the physical length·width.
  double wire_area_per_size = 30.0;
  double driver_res = 500.0;          ///< default R_D [Ω]
  double output_load = 20e-15;        ///< default C_L [F]

  /// Dynamic power per farad of switched capacitance: P = V²·f·ΣC.
  double power_per_farad() const { return supply_voltage * supply_voltage * frequency; }
};

}  // namespace lrsizer::netlist
