// Profiles of the ten ISCAS85 circuits evaluated in the paper's Table 1.
//
// The paper's component counts (#G gates, #W wires) include the post-layout
// wire segments of the authors' internal flow, which are not recoverable
// from the public netlists. The synthetic generator consumes these profiles
// to produce circuits with exactly the paper's #G/#W, ISCAS-like interface
// widths (PI/PO) and logic depth. Each profile also carries the paper's
// reported Table 1 row so benches can print paper-vs-measured side by side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lrsizer::netlist {

/// One row of the paper's Table 1 (values as printed in the paper).
struct PaperRow {
  double noise_init_pf, noise_fin_pf;
  double delay_init_ps, delay_fin_ps;
  double power_init_mw, power_fin_mw;
  double area_init_um2, area_fin_um2;
  int iterations;
  int time_sec;
  int mem_kb;
};

struct IscasProfile {
  std::string name;
  std::int32_t num_gates;    ///< paper #G
  std::int32_t num_wires;    ///< paper #W
  std::int32_t num_inputs;   ///< ISCAS85 interface width
  std::int32_t num_outputs;
  std::int32_t depth;        ///< approximate logic depth of the real circuit
  PaperRow paper;
};

/// All ten circuits in the paper's Table 1 row order.
const std::vector<IscasProfile>& iscas85_profiles();

/// Lookup by name ("c432" ... "c7552"); aborts if unknown.
const IscasProfile& iscas85_profile(const std::string& name);

}  // namespace lrsizer::netlist
