#include "netlist/logic_netlist.hpp"

#include <algorithm>

namespace lrsizer::netlist {

bool logic_op_is_multi_input(LogicOp op) {
  switch (op) {
    case LogicOp::kAnd:
    case LogicOp::kNand:
    case LogicOp::kOr:
    case LogicOp::kNor:
    case LogicOp::kXor:
    case LogicOp::kXnor:
      return true;
    case LogicOp::kInput:
    case LogicOp::kBuf:
    case LogicOp::kNot:
      return false;
  }
  return false;
}

int eval_logic_op(LogicOp op, const std::vector<int>& inputs) {
  LRSIZER_ASSERT(!inputs.empty());
  switch (op) {
    case LogicOp::kInput:
      LRSIZER_ASSERT_MSG(false, "primary inputs are not evaluable");
      return 0;
    case LogicOp::kBuf:
      return inputs[0];
    case LogicOp::kNot:
      return 1 - inputs[0];
    case LogicOp::kAnd:
    case LogicOp::kNand: {
      int v = 1;
      for (int in : inputs) v &= in;
      return op == LogicOp::kAnd ? v : 1 - v;
    }
    case LogicOp::kOr:
    case LogicOp::kNor: {
      int v = 0;
      for (int in : inputs) v |= in;
      return op == LogicOp::kOr ? v : 1 - v;
    }
    case LogicOp::kXor:
    case LogicOp::kXnor: {
      int v = 0;
      for (int in : inputs) v ^= in;
      return op == LogicOp::kXor ? v : 1 - v;
    }
  }
  return 0;
}

const char* logic_op_name(LogicOp op) {
  switch (op) {
    case LogicOp::kInput: return "INPUT";
    case LogicOp::kBuf: return "BUFF";
    case LogicOp::kNot: return "NOT";
    case LogicOp::kAnd: return "AND";
    case LogicOp::kNand: return "NAND";
    case LogicOp::kOr: return "OR";
    case LogicOp::kNor: return "NOR";
    case LogicOp::kXor: return "XOR";
    case LogicOp::kXnor: return "XNOR";
  }
  return "?";
}

std::int32_t LogicNetlist::add_input(std::string name) {
  LRSIZER_ASSERT(!finalized_);
  const auto g = static_cast<std::int32_t>(gates_.size());
  gates_.push_back(LogicGate{std::move(name), LogicOp::kInput, {}});
  primary_inputs_.push_back(g);
  return g;
}

std::int32_t LogicNetlist::add_gate(std::string name, LogicOp op,
                                    std::vector<std::int32_t> fanin) {
  LRSIZER_ASSERT(!finalized_);
  LRSIZER_ASSERT_MSG(op != LogicOp::kInput, "use add_input for primary inputs");
  LRSIZER_ASSERT_MSG(!fanin.empty(), "gate with no fanin");
  if (!logic_op_is_multi_input(op)) {
    LRSIZER_ASSERT_MSG(fanin.size() == 1, "BUF/NOT take exactly one input");
  } else {
    LRSIZER_ASSERT_MSG(fanin.size() >= 2, "multi-input op needs >= 2 inputs");
  }
  const auto g = static_cast<std::int32_t>(gates_.size());
  for (std::int32_t f : fanin) {
    LRSIZER_ASSERT_MSG(f >= 0 && f < g, "fanin must reference an earlier gate");
  }
  gates_.push_back(LogicGate{std::move(name), op, std::move(fanin)});
  return g;
}

void LogicNetlist::mark_output(std::int32_t g) {
  LRSIZER_ASSERT(!finalized_);
  LRSIZER_ASSERT(g >= 0 && g < num_gates_logic());
  primary_outputs_.push_back(g);
}

void LogicNetlist::finalize() {
  LRSIZER_ASSERT(!finalized_);
  LRSIZER_ASSERT_MSG(!primary_inputs_.empty(), "netlist needs primary inputs");
  LRSIZER_ASSERT_MSG(!primary_outputs_.empty(), "netlist needs primary outputs");

  const auto n = static_cast<std::size_t>(num_gates_logic());
  fanout_count_.assign(n, 0);
  is_primary_output_.assign(n, false);
  for (const auto& g : gates_) {
    for (std::int32_t f : g.fanin) ++fanout_count_[static_cast<std::size_t>(f)];
  }
  for (std::int32_t po : primary_outputs_) {
    is_primary_output_[static_cast<std::size_t>(po)] = true;
  }
  for (std::size_t g = 0; g < n; ++g) {
    LRSIZER_ASSERT_MSG(fanout_count_[g] > 0 || is_primary_output_[g],
                       "gate output is unused (not a PO, no fanout)");
  }

  // Fanins always reference earlier indices, so definition order is already
  // topological; levels follow by one forward pass.
  topo_order_.resize(n);
  level_.assign(n, 0);
  depth_ = 0;
  for (std::size_t g = 0; g < n; ++g) {
    topo_order_[g] = static_cast<std::int32_t>(g);
    std::int32_t lvl = 0;
    for (std::int32_t f : gates_[g].fanin) {
      lvl = std::max(lvl, level_[static_cast<std::size_t>(f)] + 1);
    }
    level_[g] = lvl;
    depth_ = std::max(depth_, lvl);
  }
  finalized_ = true;
}

}  // namespace lrsizer::netlist
