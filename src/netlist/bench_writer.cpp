#include "netlist/bench_writer.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace lrsizer::netlist {

void write_bench(const LogicNetlist& netlist, std::ostream& out,
                 const std::string& header_comment) {
  LRSIZER_ASSERT(netlist.finalized());
  if (!header_comment.empty()) out << "# " << header_comment << "\n";
  for (std::int32_t pi : netlist.primary_inputs()) {
    out << "INPUT(" << netlist.gate(pi).name << ")\n";
  }
  for (std::int32_t po : netlist.primary_outputs()) {
    out << "OUTPUT(" << netlist.gate(po).name << ")\n";
  }
  for (std::int32_t g = 0; g < netlist.num_gates_logic(); ++g) {
    const LogicGate& gate = netlist.gate(g);
    if (gate.op == LogicOp::kInput) continue;
    out << gate.name << " = " << logic_op_name(gate.op) << "(";
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      out << netlist.gate(gate.fanin[k]).name
          << (k + 1 < gate.fanin.size() ? ", " : "");
    }
    out << ")\n";
  }
}

std::string to_bench_string(const LogicNetlist& netlist,
                            const std::string& header_comment) {
  std::ostringstream os;
  write_bench(netlist, os, header_comment);
  return os.str();
}

}  // namespace lrsizer::netlist
