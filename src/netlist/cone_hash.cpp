#include "netlist/cone_hash.hpp"

#include "netlist/hash.hpp"
#include "netlist/logic_netlist.hpp"
#include "util/assert.hpp"

namespace lrsizer::netlist {

namespace {

// Same byte-level mixing discipline as netlist_hash (hash.cpp): FNV-1a with
// fixed little-endian integer encoding so cone hashes are platform-stable.

std::uint64_t mix_byte(std::uint64_t h, unsigned char b) {
  return (h ^ b) * kFnvPrime;
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = mix_byte(h, static_cast<unsigned char>(v & 0xff));
    v >>= 8;
  }
  return h;
}

std::uint64_t mix_i32(std::uint64_t h, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  h = mix_byte(h, static_cast<unsigned char>(u & 0xff));
  h = mix_byte(h, static_cast<unsigned char>((u >> 8) & 0xff));
  h = mix_byte(h, static_cast<unsigned char>((u >> 16) & 0xff));
  return mix_byte(h, static_cast<unsigned char>((u >> 24) & 0xff));
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) {
  h = mix_i32(h, static_cast<std::int32_t>(s.size()));
  for (const char c : s) h = mix_byte(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::vector<std::uint64_t> cone_hashes(const LogicNetlist& netlist) {
  LRSIZER_ASSERT_MSG(netlist.finalized(),
                     "cone_hashes needs a finalized netlist (topo order)");
  const auto n = static_cast<std::size_t>(netlist.num_gates_logic());
  std::vector<std::uint64_t> cones(n, 0);
  // Definition order is topological (fanins reference earlier gates), but
  // walking topo_order() keeps this correct even if that invariant is ever
  // relaxed.
  for (const std::int32_t g : netlist.topo_order()) {
    const LogicGate& gate = netlist.gate(g);
    std::uint64_t h = kFnvOffset;
    h = mix_byte(h, static_cast<unsigned char>(gate.op));
    h = mix_string(h, gate.name);
    h = mix_byte(h, netlist.is_primary_output(g) ? 1 : 0);
    h = mix_i32(h, static_cast<std::int32_t>(gate.fanin.size()));
    for (const std::int32_t f : gate.fanin) {
      h = mix_u64(h, cones[static_cast<std::size_t>(f)]);
    }
    cones[static_cast<std::size_t>(g)] = h;
  }
  return cones;
}

std::vector<std::uint64_t> output_cone_hashes(const LogicNetlist& netlist) {
  const std::vector<std::uint64_t> cones = cone_hashes(netlist);
  std::vector<std::uint64_t> out;
  out.reserve(netlist.primary_outputs().size());
  for (const std::int32_t po : netlist.primary_outputs()) {
    out.push_back(cones[static_cast<std::size_t>(po)]);
  }
  return out;
}

}  // namespace lrsizer::netlist
