// Gate-level logical view of a circuit (before physical elaboration).
//
// This is what the ISCAS85 `.bench` parser and the synthetic generator
// produce, what the event-driven logic simulator executes, and what the
// elaborator turns into a physical Circuit (drivers + gates + wire
// segments). Nets are identified with the gate/input that drives them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace lrsizer::netlist {

enum class LogicOp : std::uint8_t {
  kInput,  ///< primary input (drives a net, has no fanin)
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// True if the op is implemented for arbitrary fanin >= 2 (AND/OR/XOR family).
bool logic_op_is_multi_input(LogicOp op);

/// Evaluate `op` over `inputs` (each 0/1). kInput is not evaluable.
int eval_logic_op(LogicOp op, const std::vector<int>& inputs);

const char* logic_op_name(LogicOp op);

/// One driver of a net: a primary input or a gate.
struct LogicGate {
  std::string name;              ///< net/gate name (unique)
  LogicOp op = LogicOp::kInput;
  std::vector<std::int32_t> fanin;  ///< indices into LogicNetlist::gates
};

class LogicNetlist {
 public:
  /// Gates in definition order; primary inputs are gates with op kInput.
  const std::vector<LogicGate>& gates() const { return gates_; }
  const std::vector<std::int32_t>& primary_inputs() const { return primary_inputs_; }
  const std::vector<std::int32_t>& primary_outputs() const { return primary_outputs_; }

  std::int32_t num_gates_logic() const { return static_cast<std::int32_t>(gates_.size()); }
  /// Count of non-input gates (what the paper calls #G before elaboration).
  std::int32_t num_real_gates() const {
    return num_gates_logic() - static_cast<std::int32_t>(primary_inputs_.size());
  }

  const LogicGate& gate(std::int32_t g) const {
    return gates_[static_cast<std::size_t>(g)];
  }

  /// Number of fanout pins of gate g's output net (primary-output pins are
  /// accounted separately by callers that need them).
  std::int32_t fanout_count(std::int32_t g) const {
    return fanout_count_[static_cast<std::size_t>(g)];
  }

  bool is_primary_output(std::int32_t g) const {
    return is_primary_output_[static_cast<std::size_t>(g)];
  }

  // ---- construction -------------------------------------------------------

  std::int32_t add_input(std::string name);
  std::int32_t add_gate(std::string name, LogicOp op, std::vector<std::int32_t> fanin);
  void mark_output(std::int32_t g);

  /// Validates the netlist: acyclic (guaranteed if fanins reference earlier
  /// gates), fanin arity matches ops, every gate output used (fans out or is
  /// a primary output). Call after construction.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Topological evaluation order (inputs first). Valid after finalize().
  const std::vector<std::int32_t>& topo_order() const { return topo_order_; }

  /// Logic depth (levels) of the netlist; inputs are level 0.
  std::int32_t depth() const { return depth_; }
  std::int32_t level(std::int32_t g) const { return level_[static_cast<std::size_t>(g)]; }

 private:
  std::vector<LogicGate> gates_;
  std::vector<std::int32_t> primary_inputs_;
  std::vector<std::int32_t> primary_outputs_;
  std::vector<std::int32_t> fanout_count_;
  std::vector<bool> is_primary_output_;
  std::vector<std::int32_t> topo_order_;
  std::vector<std::int32_t> level_;
  std::int32_t depth_ = 0;
  bool finalized_ = false;
};

}  // namespace lrsizer::netlist
