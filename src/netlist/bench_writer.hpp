// Writer for the ISCAS85 `.bench` format — the inverse of bench_parser.
// Lets users export generated synthetic circuits for use with external
// tools (ATPG, other sizers) and gives the test suite a round-trip oracle.
#pragma once

#include <ostream>
#include <string>

#include "netlist/logic_netlist.hpp"

namespace lrsizer::netlist {

/// Emit `netlist` in .bench syntax (INPUT/OUTPUT declarations, then one
/// gate definition per line in topological order).
void write_bench(const LogicNetlist& netlist, std::ostream& out,
                 const std::string& header_comment = "");

/// Convenience: the .bench text as a string.
std::string to_bench_string(const LogicNetlist& netlist,
                            const std::string& header_comment = "");

}  // namespace lrsizer::netlist
