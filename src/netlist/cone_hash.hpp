// Per-node fanin-cone hashes — the incremental half of netlist/hash.
//
// cone_hashes() assigns every gate a Merkle-style hash over exactly the
// structural inputs netlist_hash() mixes per gate (op, name, fanin list,
// primary-output mark), except that each fanin contributes its own *cone
// hash* instead of its index. Two gates therefore hash equal iff their
// entire transitive fanin cones are structurally identical — names, ops,
// fanin order and output marks included — independent of where the gates
// sit in their netlists' definition orders.
//
// That gives an O(n) structural diff between two revisions of a netlist:
// a gate in the new netlist whose cone hash also appears in the old one is
// "clean" (its whole fanin cone is untouched), and by the Merkle property
// every gate downstream of an edit is automatically dirty — the dirty set
// is exactly the edited nodes plus their fan-out cone (eco/delta.hpp builds
// on this).
#pragma once

#include <cstdint>
#include <vector>

namespace lrsizer::netlist {

class LogicNetlist;

/// Per-gate fanin-cone hashes, indexed by gate. The netlist must be
/// finalized (hashes are computed over topo_order()). Stable across
/// processes and platforms, like netlist_hash.
std::vector<std::uint64_t> cone_hashes(const LogicNetlist& netlist);

/// Cone hashes of the primary outputs, in primary_outputs() order — the
/// netlist's output-cone fingerprint. Two netlists sharing an entry have an
/// identical transitive fanin cone behind that output; the result cache
/// uses the overlap as its ECO near-miss probe (runtime/cache.hpp).
std::vector<std::uint64_t> output_cone_hashes(const LogicNetlist& netlist);

}  // namespace lrsizer::netlist
