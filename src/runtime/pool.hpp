// Fixed-size thread pool with per-worker FIFO deques and work stealing.
//
// Submission round-robins tasks across the workers' deques; each worker
// drains its own deque front-to-back (FIFO, so batch jobs start in submit
// order) and, when empty, steals from the back of a sibling's deque. Results
// come back through std::future, so exceptions thrown inside a task
// propagate to the caller at .get().
//
// The pool is the execution engine of the batch-flow layer (runtime/batch);
// it is deliberately generic so future subsystems (sharded sweeps, async
// serving) can reuse it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lrsizer::runtime {

class ThreadPool {
 public:
  /// Start `num_workers` threads (0 means std::thread::hardware_concurrency,
  /// itself clamped to at least 1).
  explicit ThreadPool(int num_workers = 0);

  /// Drains nothing: tasks still queued are abandoned only after the ones
  /// already running finish; destruction blocks until every submitted task
  /// has run (the destructor first waits for the queues to empty).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueue `fn` and return a future for its result. Safe to call from any
  /// thread, including from inside a running task.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  /// Number of tasks a worker popped from a sibling's deque (diagnostic).
  std::int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  void worker_loop(int self);
  bool try_pop_local(int self, std::function<void()>& task);
  bool try_steal(int self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // `pending_` counts tasks enqueued but not yet popped; `active_` counts
  // tasks currently executing. Both are guarded by `sleep_mutex_` so workers
  // can sleep without lost wakeups and wait_idle() has a consistent view.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::condition_variable idle_cv_;
  int pending_ = 0;
  int active_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::int64_t> steals_{0};
};

}  // namespace lrsizer::runtime
