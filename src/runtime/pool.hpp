// Thread-level execution engines: the job-level work-stealing ThreadPool and
// the below-job-level KernelTeam.
//
// ThreadPool: fixed-size pool with per-worker FIFO deques and work stealing.
// Submission round-robins tasks across the workers' deques; each worker
// drains its own deque front-to-back (FIFO, so batch jobs start in submit
// order) and, when empty, steals from the back of a sibling's deque. Results
// come back through std::future, so exceptions thrown inside a task
// propagate to the caller at .get().
//
// The pool is the execution engine of the batch-flow layer (runtime/batch);
// it is deliberately generic so future subsystems (sharded sweeps, async
// serving) can reuse it.
//
// KernelTeam: the util::Executor implementation behind the level-parallel
// timing/LRS kernels — see its class comment for why it is not built on the
// deque pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace lrsizer::runtime {

/// Process-wide count of KernelTeam chunk rounds dispatched to helpers
/// (serial/inline rounds are not counted). Relaxed monotonic counter shared
/// by every team in the process — the source of the lrsizer_kernel_rounds_total
/// metric (obs/registry.hpp counter_fn).
std::uint64_t kernel_rounds_total();

class ThreadPool {
 public:
  /// Start `num_workers` threads (0 means std::thread::hardware_concurrency,
  /// itself clamped to at least 1).
  explicit ThreadPool(int num_workers = 0);

  /// Drains nothing: tasks still queued are abandoned only after the ones
  /// already running finish; destruction blocks until every submitted task
  /// has run (the destructor first waits for the queues to empty).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueue `fn` and return a future for its result. Safe to call from any
  /// thread, including from inside a running task.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  /// Number of tasks a worker popped from a sibling's deque (diagnostic).
  std::int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  void worker_loop(int self);
  bool try_pop_local(int self, std::function<void()>& task);
  bool try_steal(int self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // `pending_` counts tasks enqueued but not yet popped; `active_` counts
  // tasks currently executing. Both are guarded by `sleep_mutex_` so workers
  // can sleep without lost wakeups and wait_idle() has a consistent view.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::condition_variable idle_cv_;
  int pending_ = 0;
  int active_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::int64_t> steals_{0};
};

/// The intra-job counterpart of ThreadPool: a persistent team of
/// threads - 1 helper workers executing the fixed-shape chunk rounds of the
/// level-parallel kernels (util::Executor).
///
/// Why not the deque pool: one OGWS iteration dispatches hundreds of
/// wavefront rounds, each microseconds of work. The pool's per-task
/// mutex + future + condition-variable round trip costs more than such a
/// round; the team instead publishes each round through one atomic
/// generation word, workers claim chunks by CAS, and everyone spins briefly
/// (then parks) between rounds — dispatch latency is sub-microsecond while
/// the kernels are hot.
///
/// Determinism: the team only changes *who* executes a chunk, never the
/// chunk boundaries (fixed by (n, grain) per the Executor contract), so
/// kernel output is bit-identical at any team size.
///
/// One team per running job; the caller participates, so a team constructed
/// with `threads` occupies exactly `threads` cores while a round runs.
/// run_chunks must only be called from one thread at a time (the sizing
/// session's thread). Chunk functions must not throw.
class KernelTeam final : public util::Executor {
 public:
  /// threads <= 0 means std::thread::hardware_concurrency (min 1);
  /// threads == 1 spawns no workers and runs every round inline.
  explicit KernelTeam(int threads = 0);
  ~KernelTeam() override;

  KernelTeam(const KernelTeam&) = delete;
  KernelTeam& operator=(const KernelTeam&) = delete;

  int threads() const override { return static_cast<int>(workers_.size()) + 1; }
  void run_chunks(std::int32_t n, std::int32_t grain, util::ChunkFn fn) override;

 private:
  // state_ packs (round << 32) | (next_chunk << 16) | num_chunks — round
  // identity, claim cursor AND chunk count in ONE word, so the
  // exhausted-guard and the claim CAS always act on a single consistent
  // snapshot. (With the count in a separate field, a worker lagging behind
  // a round transition could pass the guard against the *next* round's
  // larger count while the round bits still read as current, and claim a
  // phantom chunk.) A claim can therefore only succeed while its round is
  // current and in-bounds, which also pins the descriptor below: the caller
  // cannot finish the round — and so cannot rewrite it — until every
  // claimed chunk's done_ increment lands.
  static constexpr int kRoundShift = 32;
  static constexpr int kNextShift = 16;
  static constexpr std::uint64_t kFieldMask = 0xffff;  ///< next/chunk fields
  /// Max chunks per round (the 16-bit chunks field); run_chunks coarsens
  /// the grain — deterministically, as a function of n alone — when a call
  /// would exceed it.
  static constexpr std::int32_t kMaxChunks = static_cast<std::int32_t>(kFieldMask);

  void worker_loop();
  /// Claim-and-execute chunks of `round` until the round is exhausted or
  /// superseded.
  void participate(std::uint64_t round);

  // Round descriptor; written by the caller before the state_ release store
  // publishes the round, read by workers only after a successful claim.
  // Atomics (relaxed) rather than plain fields because a lagging worker may
  // still harmlessly *load* them while the caller writes the next round's
  // values — the single-word claim protocol guarantees it can never act on
  // what it read, but the read itself must stay defined.
  std::atomic<const util::ChunkFn*> fn_{nullptr};
  std::atomic<std::int32_t> n_{0};
  std::atomic<std::int32_t> grain_{0};

  alignas(64) std::atomic<std::uint64_t> state_{0};
  alignas(64) std::atomic<std::int32_t> done_{0};

  std::atomic<bool> stop_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  int parked_ = 0;  ///< guarded by park_mutex_
  std::vector<std::thread> workers_;
};

}  // namespace lrsizer::runtime
