#include "runtime/cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "netlist/hash.hpp"
#include "netlist/logic_netlist.hpp"
#include "util/logging.hpp"

namespace lrsizer::runtime {

namespace {

const char* step_rule_name(core::StepRule rule) {
  switch (rule) {
    case core::StepRule::kSubgradient: return "subgradient";
    case core::StepRule::kMultiplicative: return "multiplicative";
  }
  return "?";
}

const char* load_mode_name(timing::CouplingLoadMode mode) {
  switch (mode) {
    case timing::CouplingLoadMode::kLocalOnly: return "local";
    case timing::CouplingLoadMode::kPropagateUpstream: return "propagate";
  }
  return "?";
}

/// tech + elab: everything that determines the elaborated circuit. Kept as
/// its own object so the warm-start compatibility prefix can hash it alone.
Json elab_canon(const core::FlowOptions& o) {
  Json j = Json::object();
  Json tech = Json::object();
  tech.set("gate_unit_res", o.tech.gate_unit_res);
  tech.set("gate_unit_cap", o.tech.gate_unit_cap);
  tech.set("wire_res_per_um", o.tech.wire_res_per_um);
  tech.set("wire_cap_per_um", o.tech.wire_cap_per_um);
  tech.set("wire_fringe_per_um", o.tech.wire_fringe_per_um);
  tech.set("supply_voltage", o.tech.supply_voltage);
  tech.set("frequency", o.tech.frequency);
  tech.set("min_size", o.tech.min_size);
  tech.set("max_size", o.tech.max_size);
  tech.set("gate_area_per_size", o.tech.gate_area_per_size);
  tech.set("wire_area_per_size", o.tech.wire_area_per_size);
  tech.set("driver_res", o.tech.driver_res);
  tech.set("output_load", o.tech.output_load);
  j.set("tech", tech);
  Json elab = Json::object();
  // Seeds are 64-bit and Json numbers are doubles: serialize them as
  // strings so seeds above 2^53 cannot collide onto one key.
  elab.set("seed", std::to_string(o.elab.seed));
  elab.set("min_wire_length", o.elab.min_wire_length);
  elab.set("max_wire_length", o.elab.max_wire_length);
  elab.set("max_star_fanout", static_cast<std::int64_t>(o.elab.max_star_fanout));
  elab.set("segments_per_wire",
           static_cast<std::int64_t>(o.elab.segments_per_wire));
  elab.set("driver_res", o.elab.driver_res);
  elab.set("output_load", o.elab.output_load);
  elab.set("differentiate_gate_types", o.elab.differentiate_gate_types);
  j.set("elab", elab);
  return j;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

Json canonical_options_json(const core::FlowOptions& o) {
  Json j = elab_canon(o);
  Json sim = Json::object();
  sim.set("vector_period", static_cast<std::int64_t>(o.sim.vector_period));
  sim.set("gate_delay", static_cast<std::int64_t>(o.sim.gate_delay));
  j.set("sim", sim);
  j.set("num_vectors", static_cast<std::int64_t>(o.num_vectors));
  j.set("pattern_seed", std::to_string(o.pattern_seed));
  Json channels = Json::object();
  channels.set("max_channel_width",
               static_cast<std::int64_t>(o.channels.max_channel_width));
  channels.set("seed", std::to_string(o.channels.seed));
  j.set("channels", channels);
  Json neighbors = Json::object();
  neighbors.set("pitch_um", o.neighbors.pitch_um);
  neighbors.set("fringe_per_um", o.neighbors.fringe_per_um);
  neighbors.set("fold_miller", o.neighbors.fold_miller);
  j.set("neighbors", neighbors);
  j.set("use_woss", o.use_woss);
  Json bounds = Json::object();
  bounds.set("delay", o.bound_factors.delay);
  bounds.set("power", o.bound_factors.power);
  bounds.set("noise", o.bound_factors.noise);
  bounds.set("per_net_noise", o.bound_factors.per_net_noise);
  j.set("bound_factors", bounds);
  Json ogws = Json::object();
  ogws.set("max_iterations", static_cast<std::int64_t>(o.ogws.max_iterations));
  ogws.set("gap_tol", o.ogws.gap_tol);
  ogws.set("feas_tol", o.ogws.feas_tol);
  ogws.set("step0", o.ogws.step0);
  ogws.set("step_rule", step_rule_name(o.ogws.step_rule));
  Json lrs = Json::object();
  lrs.set("max_passes", static_cast<std::int64_t>(o.ogws.lrs.max_passes));
  lrs.set("tol", o.ogws.lrs.tol);
  lrs.set("warm_start", o.ogws.lrs.warm_start);
  lrs.set("mode", load_mode_name(o.ogws.lrs.mode));
  // Sweep strategy DOES split the cache (unlike threads): worklist results
  // are tolerance-equivalent to dense, not bit-identical.
  lrs.set("sweep", core::sweep_mode_name(o.ogws.lrs.sweep));
  lrs.set("worklist_eps", o.ogws.lrs.worklist_eps);
  ogws.set("lrs", lrs);
  ogws.set("record_history", o.ogws.record_history);
  j.set("ogws", ogws);
  j.set("initial_size", o.initial_size);
  // FlowOptions::threads intentionally absent: bit-identical results at any
  // thread count, so it must not split the cache.
  return j;
}

CacheKey cache_key(const netlist::LogicNetlist& nl,
                   const core::FlowOptions& options) {
  CacheKey key;
  const std::uint64_t nh = netlist::netlist_hash(nl);
  const std::uint64_t eh = netlist::fnv1a(elab_canon(options).dump());
  const std::uint64_t oh = netlist::fnv1a(canonical_options_json(options).dump());
  key.warm_prefix = "n" + hex16(nh) + "-e" + hex16(eh);
  key.key = key.warm_prefix + "-o" + hex16(oh);
  return key;
}

namespace {

/// Accounted size of one completed entry: the key (file stem), the
/// serialized job JSON (the dominant cost in memory and on disk), 16 bytes
/// per sparse size pair and the EcoIndex payload (8 bytes per stored
/// double/hash plus 16 per net for its bookkeeping).
std::size_t entry_bytes(const std::string& key, const CachedEntry& entry) {
  std::size_t eco = 8 * (entry.eco.output_cones.size() + entry.eco.lambda.size() +
                         entry.eco.gamma_net.size());
  for (const EcoIndex::Net& net : entry.eco.nets) eco += 16 + 8 * net.sizes.size();
  return key.size() + entry.job.dump().size() + 16 * entry.sizes.size() + eco;
}

/// The "sizes" array of a persisted entry: [[node, size], ...].
Json sizes_json(const CachedEntry& entry) {
  Json sizes = Json::array();
  for (const auto& [node, size] : entry.sizes) {
    Json pair = Json::array();
    pair.push_back(static_cast<std::int64_t>(node));
    pair.push_back(size);
    sizes.push_back(pair);
  }
  return sizes;
}

/// The "eco" object of a persisted entry. Cone hashes are 64-bit and
/// therefore serialized as 16-hex-digit strings.
Json eco_json(const EcoIndex& index) {
  Json eco = Json::object();
  Json nets = Json::array();
  for (const EcoIndex::Net& net : index.nets) {
    Json item = Json::array();
    item.push_back(hex16(net.cone));
    Json net_sizes = Json::array();
    for (const double s : net.sizes) {
      Json value(s);
      net_sizes.push_back(std::move(value));
    }
    item.push_back(net_sizes);
    nets.push_back(item);
  }
  eco.set("nets", nets);
  Json cones = Json::array();
  for (const std::uint64_t c : index.output_cones) cones.push_back(hex16(c));
  eco.set("output_cones", cones);
  Json lambda = Json::array();
  for (const double v : index.lambda) lambda.push_back(v);
  eco.set("lambda", lambda);
  eco.set("beta", index.beta);
  eco.set("gamma", index.gamma);
  Json gamma_net = Json::array();
  for (const double v : index.gamma_net) gamma_net.push_back(v);
  eco.set("gamma_net", gamma_net);
  eco.set("num_nodes", index.num_nodes);
  eco.set("num_edges", index.num_edges);
  return eco;
}

/// Integrity checksum of a persisted entry: fnv1a over the key and the
/// canonical serialization of the payload pieces. Json numbers dump with
/// shortest-round-trip formatting, so rebuilding the pieces from a parsed
/// file reproduces the stored bytes exactly — a load-side recompute matches
/// iff the payload survived the disk intact.
std::string entry_checksum(const std::string& key, const CachedEntry& entry) {
  std::uint64_t h = netlist::fnv1a(key);
  h = netlist::fnv1a("\n", h);
  h = netlist::fnv1a(entry.job.dump(), h);
  h = netlist::fnv1a("\n", h);
  h = netlist::fnv1a(sizes_json(entry).dump(), h);
  if (!entry.eco.empty()) {
    h = netlist::fnv1a("\n", h);
    h = netlist::fnv1a(eco_json(entry.eco).dump(), h);
  }
  return hex16(h);
}

}  // namespace

ResultCache::ResultCache(std::string disk_dir, CacheLimits limits)
    : disk_dir_(std::move(disk_dir)), limits_(limits) {}

void ResultCache::touch_locked(Slot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru);
}

void ResultCache::erase_locked(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  const auto warm = warm_index_.find(it->second.warm_prefix);
  if (warm != warm_index_.end() && warm->second == key) warm_index_.erase(warm);
  for (const std::uint64_t cone : it->second.entry->eco.output_cones) {
    const auto po = po_index_.find(cone);
    if (po != po_index_.end() && po->second == key) po_index_.erase(po);
  }
  entries_.erase(it);
}

bool ResultCache::insert_locked(const std::string& key,
                                const std::string& warm_prefix,
                                std::shared_ptr<const CachedEntry> entry,
                                std::vector<std::filesystem::path>* unlink) {
  const std::size_t bytes = entry_bytes(key, *entry);
  if (limits_.max_entries < 1 || bytes > limits_.max_bytes) {
    // The entry alone busts the budget (including the max-entries=0 "cache
    // disabled" case): reject the store, visibly.
    ++evictions_;
    return false;
  }
  erase_locked(key);  // overwrite: drop the old accounting first
  lru_.push_front(key);
  entries_[key] = Slot{std::move(entry), bytes, warm_prefix, lru_.begin()};
  bytes_ += bytes;
  warm_index_[warm_prefix] = key;
  for (const std::uint64_t cone : entries_[key].entry->eco.output_cones) {
    po_index_[cone] = key;
  }
  // Evict least-recently-used completed entries until the budget holds
  // again. The entry just inserted is at the LRU front, so it survives
  // (its own fit was checked above). In-flight keys live in in_flight_,
  // not entries_, and are therefore never evicted.
  while (entries_.size() > limits_.max_entries || bytes_ > limits_.max_bytes) {
    const std::string victim = lru_.back();
    erase_locked(victim);
    ++evictions_;
    if (!disk_dir_.empty() && unlink) {
      unlink->push_back(std::filesystem::path(disk_dir_) / (victim + ".json"));
    }
  }
  return true;
}

void ResultCache::unlink_files(const std::vector<std::filesystem::path>& paths) {
  // Outside the lock: unlink(2) is atomic, so a crash between the in-memory
  // evict and this point leaves at worst a stale-but-whole file, never a
  // torn one. (A racing store of the same key could theoretically re-create
  // a file we are about to unlink; the result is a benign disk miss later.)
  for (const auto& path : paths) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

std::shared_ptr<const CachedEntry> ResultCache::lookup_locked(
    const std::string& key) {
  // Callers hold mutex_.
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    touch_locked(it->second);
    return it->second.entry;
  }
  return load_from_disk(key);
}

std::shared_ptr<const CachedEntry> ResultCache::lookup(const std::string& key) {
  std::shared_ptr<const CachedEntry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entry = lookup_locked(key);
    if (entry) {
      ++hits_;
    } else {
      ++misses_;
    }
  }
  return entry;
}

void ResultCache::store(const CacheKey& key, CachedEntry entry) {
  auto shared = std::make_shared<const CachedEntry>(std::move(entry));
  std::vector<std::filesystem::path> unlink;
  bool stored = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stored = insert_locked(key.key, key.warm_prefix, shared, &unlink);
  }
  if (stored) persist(key.key, *shared);
  unlink_files(unlink);
}

std::shared_ptr<const CachedEntry> ResultCache::lookup_warm(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = warm_index_.find(key.warm_prefix);
  if (it == warm_index_.end() || it->second == key.key) return nullptr;
  const auto entry = entries_.find(it->second);
  if (entry == entries_.end()) return nullptr;
  ++warm_hits_;
  return entry->second.entry;
}

std::shared_ptr<const CachedEntry> ResultCache::lookup_eco(
    const std::vector<std::uint64_t>& output_cones,
    const std::string& exclude_key, std::string* base_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // One po_index_ probe per output cone; candidates collect votes and the
  // most-shared base wins (smallest key on a tie, for determinism).
  std::unordered_map<std::string, std::size_t> votes;
  for (const std::uint64_t cone : output_cones) {
    const auto it = po_index_.find(cone);
    if (it != po_index_.end() && it->second != exclude_key) ++votes[it->second];
  }
  const std::string* best = nullptr;
  std::size_t best_votes = 0;
  for (const auto& [key, count] : votes) {
    if (count > best_votes || (count == best_votes && best && key < *best)) {
      best = &key;
      best_votes = count;
    }
  }
  if (!best) return nullptr;
  const auto entry = entries_.find(*best);
  if (entry == entries_.end()) return nullptr;
  touch_locked(entry->second);
  ++eco_hits_;
  if (base_key) *base_key = *best;
  return entry->second.entry;
}

std::shared_ptr<const CachedEntry> ResultCache::lookup_eco_base(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto entry = lookup_locked(key);
  if (entry) {
    ++eco_hits_;
  } else {
    ++misses_;
  }
  return entry;
}

ResultCache::Acquire ResultCache::acquire(const CacheKey& key,
                                          std::shared_ptr<const CachedEntry>* hit,
                                          FollowerFn on_done) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto entry = lookup_locked(key.key)) {
    ++hits_;
    if (hit) *hit = std::move(entry);
    return Acquire::kHit;
  }
  ++misses_;
  const auto it = in_flight_.find(key.key);
  if (it != in_flight_.end()) {
    it->second.push_back(std::move(on_done));
    return Acquire::kFollower;
  }
  in_flight_.emplace(key.key, std::vector<FollowerFn>{});
  return Acquire::kOwner;
}

void ResultCache::publish(const CacheKey& key, CachedEntry entry) {
  auto shared = std::make_shared<const CachedEntry>(std::move(entry));
  std::vector<FollowerFn> followers;
  std::vector<std::filesystem::path> unlink;
  bool stored = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stored = insert_locked(key.key, key.warm_prefix, shared, &unlink);
    const auto it = in_flight_.find(key.key);
    if (it != in_flight_.end()) {
      followers = std::move(it->second);
      in_flight_.erase(it);
    }
    hits_ += followers.size();
  }
  if (stored) persist(key.key, *shared);
  unlink_files(unlink);
  // Followers share the owner's result even when the budget rejected the
  // store — in-flight dedupe is never evicted, only completed entries are.
  for (auto& fn : followers) fn(shared);
}

void ResultCache::abandon(const CacheKey& key) {
  std::vector<FollowerFn> followers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = in_flight_.find(key.key);
    if (it != in_flight_.end()) {
      followers = std::move(it->second);
      in_flight_.erase(it);
    }
  }
  for (auto& fn : followers) fn(nullptr);
}

std::size_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultCache::warm_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return warm_hits_;
}

std::size_t ResultCache::eco_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return eco_hits_;
}

std::size_t ResultCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t ResultCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t ResultCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t ResultCache::corrupt() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_;
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.warm_hits = warm_hits_;
  s.eco_hits = eco_hits_;
  s.evictions = evictions_;
  s.corrupt = corrupt_;
  return s;
}

// ---- disk persistence (schema lrsizer-cache-v1) -----------------------------

std::shared_ptr<const CachedEntry> ResultCache::load_from_disk(
    const std::string& key) {
  if (disk_dir_.empty()) return nullptr;
  const auto path = std::filesystem::path(disk_dir_) / (key + ".json");
  std::string text;
  {
    std::ifstream in(path);
    if (!in) return nullptr;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  if (LRSIZER_FAULT_POINT("cache.read")) {
    // Simulated torn read: only the first half of the file comes back.
    text.resize(text.size() / 2);
  }
  try {
    Json doc = Json::parse(text);
    if (doc.at("schema").as_string() != "lrsizer-cache-v1") return nullptr;
    CachedEntry entry;
    entry.job = doc.at("job");
    for (const Json& pair : doc.at("sizes").as_array()) {
      const auto& p = pair.as_array();
      entry.sizes.emplace_back(static_cast<std::int32_t>(p.at(0).as_number()),
                               p.at(1).as_number());
    }
    // Optional (additive to lrsizer-cache-v1): the ECO index. Cone hashes
    // are 64-bit and therefore serialized as 16-hex-digit strings.
    if (const Json* eco = doc.find("eco")) {
      for (const Json& item : eco->at("nets").as_array()) {
        const auto& net_json = item.as_array();
        EcoIndex::Net net;
        net.cone = std::strtoull(net_json.at(0).as_string().c_str(), nullptr, 16);
        for (const Json& s : net_json.at(1).as_array()) {
          net.sizes.push_back(s.as_number());
        }
        entry.eco.nets.push_back(std::move(net));
      }
      for (const Json& cone : eco->at("output_cones").as_array()) {
        entry.eco.output_cones.push_back(
            std::strtoull(cone.as_string().c_str(), nullptr, 16));
      }
      for (const Json& v : eco->at("lambda").as_array()) {
        entry.eco.lambda.push_back(v.as_number());
      }
      entry.eco.beta = eco->at("beta").as_number();
      entry.eco.gamma = eco->at("gamma").as_number();
      for (const Json& v : eco->at("gamma_net").as_array()) {
        entry.eco.gamma_net.push_back(v.as_number());
      }
      entry.eco.num_nodes = static_cast<std::int64_t>(eco->at("num_nodes").as_number());
      entry.eco.num_edges = static_cast<std::int64_t>(eco->at("num_edges").as_number());
    }
    // Entries written since the checksum landed carry one over the payload;
    // verify before serving. Files from older builds lack the field and are
    // accepted as-is (back-compatible read).
    if (const Json* checksum = doc.find("checksum")) {
      if (checksum->as_string() != entry_checksum(key, entry)) {
        throw std::runtime_error("checksum mismatch");
      }
    }
    auto shared = std::make_shared<const CachedEntry>(std::move(entry));
    // Promote to memory within the budget (mutex_ held by caller). Reads
    // never unlink files: a promotion may evict other *memory* entries, and
    // an entry too big for the budget is served without being cached.
    const auto dash_o = key.rfind("-o");
    const std::string prefix =
        dash_o == std::string::npos ? key : key.substr(0, dash_o);
    insert_locked(key, prefix, shared, nullptr);
    return shared;
  } catch (const std::exception& e) {
    quarantine_locked(path, key, e.what());
    return nullptr;
  }
}

void ResultCache::quarantine_locked(const std::filesystem::path& path,
                                    const std::string& key,
                                    const char* reason) {
  const auto aside = std::filesystem::path(disk_dir_) / (key + ".corrupt");
  std::error_code ec;
  std::filesystem::rename(path, aside, ec);
  if (ec) {
    // Rename refused (permissions?): unlink instead, so the corrupt file
    // cannot keep being re-read as a miss forever.
    std::filesystem::remove(path, ec);
  }
  ++corrupt_;
  util::log_warn() << "cache file " << path.string() << " corrupt (" << reason
                   << "); quarantined to " << aside.string()
                   << ", treating as a miss";
}

void ResultCache::persist(const std::string& key, const CachedEntry& entry) {
  if (disk_dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(disk_dir_, ec);
  Json doc = Json::object();
  doc.set("schema", "lrsizer-cache-v1");
  // Verified on load. Placed before the payload it covers; still schema v1
  // (older readers never looked for it, older files load without it).
  doc.set("checksum", entry_checksum(key, entry));
  doc.set("key", key);
  doc.set("job", entry.job);
  doc.set("sizes", sizes_json(entry));
  if (!entry.eco.empty()) doc.set("eco", eco_json(entry.eco));
  const std::string payload = doc.dump(2) + "\n";
  // Write-then-rename so concurrent processes sharing the cache dir (e.g.
  // sharded sweeps) never observe a torn entry; rename is atomic within a
  // directory. Racing writers produce identical bytes anyway (same key ⇒
  // same deterministic result), so last-rename-wins is harmless.
  const auto path = std::filesystem::path(disk_dir_) / (key + ".json");
  auto tmp = path;
  tmp += ".tmp" + std::to_string(
                      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp);
    if (!out) {
      util::log_warn() << "cannot persist cache entry to " << tmp.string();
      return;
    }
    if (LRSIZER_FAULT_POINT("cache.write")) {
      // Simulated ENOSPC: half the payload lands, then the device fills.
      out << payload.substr(0, payload.size() / 2);
      out.setstate(std::ios::badbit);
    } else {
      out << payload;
    }
    out.flush();
    if (!out) {
      // The write failed mid-stream (disk full?). The torn bytes are only
      // in the tmp file — drop it instead of renaming garbage into place;
      // the job itself succeeded and is served from memory.
      util::log_warn() << "cache write to " << tmp.string()
                       << " failed (disk full?); entry not persisted";
      std::error_code rm;
      std::filesystem::remove(tmp, rm);
      return;
    }
  }
  if (LRSIZER_FAULT_POINT("cache.rename")) {
    // Simulated torn publish: a crash or a non-atomic filesystem leaves a
    // half-written file at the *final* path — exactly the damage the
    // checksum + quarantine path exists to catch.
    {
      std::ofstream torn(path);
      torn << payload.substr(0, payload.size() / 2);
    }
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    return;
  }
  std::error_code rename_ec;
  std::filesystem::rename(tmp, path, rename_ec);
  if (rename_ec) {
    util::log_warn() << "cannot publish cache entry " << path.string() << ": "
                     << rename_ec.message();
    std::filesystem::remove(tmp, rename_ec);
  }
}

}  // namespace lrsizer::runtime
