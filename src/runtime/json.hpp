// Minimal JSON document model (no external dependencies): a variant value
// type with order-preserving objects, a writer with shortest-round-trip
// number formatting (std::to_chars), and a strict recursive-descent parser.
//
// The batch runtime and the lrsizer CLI serialize reports through this;
// objects preserve insertion order so report files are byte-deterministic
// and diffable across runs and worker counts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace lrsizer::runtime {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& message)
      : std::runtime_error("json parse error at offset " + std::to_string(offset) +
                           ": " + message),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;  ///< insertion order

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  /// Non-finite doubles normalize to null at construction (JSON cannot
  /// represent inf/nan), so dump/parse round-trips are exact fixed points.
  Json(double d) : value_(nullptr) {
    if (d == d && d <= 1.7976931348623157e308 && d >= -1.7976931348623157e308) {
      value_ = d;
    }
  }
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// Array append (value must be an array).
  void push_back(Json v) { std::get<Array>(value_).push_back(std::move(v)); }

  /// Object set: overwrites an existing key in place, appends otherwise.
  void set(const std::string& key, Json v);

  /// Object lookup; nullptr when absent (value must be an object).
  const Json* find(const std::string& key) const;
  /// Object lookup; throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;

  std::size_t size() const;

  /// Structural equality; numbers compare bit-exact (via ==).
  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Serialize. indent <= 0 yields compact one-line output; indent > 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document (trailing non-space input is an error).
  static Json parse(const std::string& text);

 private:
  explicit Json(Array a) : value_(std::move(a)) {}
  explicit Json(Object o) : value_(std::move(o)) {}

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace lrsizer::runtime
