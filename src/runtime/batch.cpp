#include "runtime/batch.hpp"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "api/session.hpp"
#include "eco/incremental.hpp"
#include "netlist/generator.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace lrsizer::runtime {

BatchJob make_profile_job(const std::string& profile, std::uint64_t seed,
                          const core::FlowOptions& options) {
  BatchJob job;
  job.name = profile;
  job.seed = seed;
  job.netlist = netlist::generate_circuit(netlist::spec_for_profile(profile, seed));
  job.options = options;
  return job;
}

std::size_t BatchResult::num_failed() const {
  std::size_t failed = 0;
  for (const auto& job : jobs) {
    if (!job.ok && !job.cancelled) ++failed;
  }
  return failed;
}

std::size_t BatchResult::num_cancelled() const {
  std::size_t cancelled = 0;
  for (const auto& job : jobs) {
    if (job.cancelled) ++cancelled;
  }
  return cancelled;
}

std::size_t BatchResult::num_cache_hits() const {
  std::size_t hits = 0;
  for (const auto& job : jobs) {
    if (job.cache_hit) ++hits;
  }
  return hits;
}

JobOutcome run_job(BatchJob job, const JobControls& controls) {
  JobOutcome outcome;
  outcome.name = job.name;
  outcome.seed = job.seed;
  util::WallTimer timer;
  // The session owns the netlist for the run and hands it back afterwards —
  // constructed outside the try so the hand-back survives a throwing stage.
  api::SizingSession session(std::move(job.netlist), job.options);
  try {
    session.set_stop_token(controls.stop);
    session.set_trace(controls.trace);
    if (controls.observer) {
      session.set_observer(
          [&observer = controls.observer, &name = outcome.name](
              const core::OgwsIterate& iterate) { observer(name, iterate); });
    }
    if (!job.eco_warm.empty()) {
      if (const api::Status st = session.warm_start_eco(std::move(job.warm_sizes),
                                                        std::move(job.eco_warm));
          !st.ok()) {
        throw std::invalid_argument("batch job '" + job.name + "': " + st.to_string());
      }
    } else if (!job.warm_sizes.empty()) {
      if (const api::Status st = session.warm_start_sizes(std::move(job.warm_sizes));
          !st.ok()) {
        throw std::invalid_argument("batch job '" + job.name + "': " + st.to_string());
      }
    }
    const api::Status status = session.run_all();
    outcome.cancelled = session.cancelled();
    if (session.has_result()) {
      // Completed, or cancelled mid-OGWS — either way a usable (partial)
      // result exists and the summary reports it (summary.cancelled flags
      // the interrupt).
      outcome.flow = session.take_result();
      outcome.summary = core::summarize_flow(*outcome.flow);
      outcome.ok = true;
    } else {
      outcome.error = "batch job '" + job.name + "': " + status.to_string();
    }
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "unknown exception";
  }
  outcome.netlist = session.release_netlist();
  outcome.seconds = timer.seconds();
  util::log_debug() << "batch job '" << outcome.name << "' "
                    << (outcome.ok ? "ok" : outcome.cancelled ? "CANCELLED" : "FAILED")
                    << " in " << outcome.seconds << " s";
  return outcome;
}

/// Final sizes of a completed flow as sparse (NodeId, size) pairs — the
/// cache-entry/warm-start currency.
std::vector<std::pair<std::int32_t, double>> sparse_sizes(
    const core::FlowResult& flow) {
  std::vector<std::pair<std::int32_t, double>> sizes;
  const netlist::Circuit& circuit = flow.circuit;
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    sizes.emplace_back(v, circuit.size(v));
  }
  return sizes;
}

namespace {

JobOutcome run_one(BatchJob&& job, const BatchOptions& options,
                   const CacheKey* key) {
  JobOutcome outcome = run_job(
      std::move(job), JobControls{options.stop, options.observer, options.trace});
  // Publish completed cold runs; cancelled/failed outcomes never enter the
  // cache (their bits depend on where the interrupt landed). Entries carry
  // the per-net ECO index so later revisions can warm-start from them.
  if (key && outcome.ok && !outcome.cancelled && outcome.flow) {
    CachedEntry entry;
    entry.job = job_json(outcome);
    entry.sizes = sparse_sizes(*outcome.flow);
    entry.eco = eco::build_eco_index(outcome.netlist, *outcome.flow);
    options.cache->store(*key, std::move(entry));
  }
  if (!options.keep_flow_results) outcome.flow.reset();
  return outcome;
}

/// Outcome for a job answered entirely from a completed cache entry.
JobOutcome outcome_from_cache(BatchJob&& job,
                              const std::shared_ptr<const CachedEntry>& entry) {
  JobOutcome outcome;
  outcome.name = job.name;
  outcome.seed = job.seed;
  outcome.ok = true;
  outcome.cache_hit = true;
  outcome.summary = summary_from_json(entry->job);
  outcome.netlist = std::move(job.netlist);
  return outcome;
}

}  // namespace

BatchResult run_batch(std::vector<BatchJob> jobs, ThreadPool& pool,
                      const BatchOptions& options) {
  BatchResult result;
  result.num_workers = pool.num_workers();
  const std::int64_t steals_before = pool.steal_count();

  util::WallTimer wall;

  // Cache pre-pass (submit-order deterministic, so reports stay byte-equal
  // at any worker count): key every cacheable job, answer completed hits
  // without submitting, and collapse byte-identical in-batch duplicates
  // onto their first occurrence. Jobs with explicit warm_sizes bypass the
  // cache — their outcome depends on the seed sizes, not just the key.
  const std::size_t n = jobs.size();
  std::vector<CacheKey> keys(n);
  std::vector<char> cacheable(n, 0);
  std::vector<std::shared_ptr<const CachedEntry>> hit(n);
  std::vector<std::ptrdiff_t> dup_of(n, -1);
  if (options.cache) {
    std::unordered_map<std::string, std::size_t> owner_of;
    for (std::size_t i = 0; i < n; ++i) {
      if (!jobs[i].warm_sizes.empty() || !jobs[i].eco_warm.empty()) continue;
      keys[i] = cache_key(jobs[i].netlist, jobs[i].options);
      cacheable[i] = 1;
      if ((hit[i] = options.cache->lookup(keys[i].key))) continue;
      const auto [it, inserted] = owner_of.emplace(keys[i].key, i);
      if (!inserted) {
        dup_of[i] = static_cast<std::ptrdiff_t>(it->second);
      } else if (options.cache_warm) {
        if (const auto warm = options.cache->lookup_warm(keys[i])) {
          // Near-identical prior result (same circuit, other options):
          // seed from its sizes. The run stays the key's owner and is
          // published, so later identical jobs hit.
          jobs[i].warm_sizes = warm->sizes;
        }
      }
    }
  }

  std::vector<std::optional<std::future<JobOutcome>>> futures(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (hit[i] || dup_of[i] >= 0) continue;
    const CacheKey* key = cacheable[i] ? &keys[i] : nullptr;
    // run_batch blocks on every future below, so borrowing `options` (stop
    // token, observer, cache) by reference is safe for the workers'
    // lifetime.
    futures[i] =
        pool.submit([job = std::move(jobs[i]), &options, key]() mutable {
          return run_one(std::move(job), options, key);
        });
  }

  result.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (futures[i]) {
      result.jobs.push_back(futures[i]->get());
    } else if (hit[i]) {
      result.jobs.push_back(outcome_from_cache(std::move(jobs[i]), hit[i]));
    } else {
      // In-batch duplicate: its owner came earlier in submit order, so its
      // outcome is already assembled — share it bit for bit.
      const JobOutcome& owner =
          result.jobs[static_cast<std::size_t>(dup_of[i])];
      JobOutcome dup;
      dup.name = jobs[i].name;
      dup.seed = jobs[i].seed;
      dup.ok = owner.ok;
      dup.cancelled = owner.cancelled;
      dup.cache_hit = true;
      dup.error = owner.error;
      dup.flow = owner.flow;
      dup.summary = owner.summary;
      dup.netlist = std::move(jobs[i].netlist);
      result.jobs.push_back(std::move(dup));
    }
  }
  result.wall_seconds = wall.seconds();
  result.steals = pool.steal_count() - steals_before;

  for (const auto& outcome : result.jobs) {
    result.total_job_seconds += outcome.seconds;
    if (outcome.ok) {
      result.total_memory_bytes += outcome.summary.memory_bytes;
      if (outcome.summary.memory_bytes > result.peak_memory_bytes) {
        result.peak_memory_bytes = outcome.summary.memory_bytes;
      }
    }
  }
  if (options.registry) {
    obs::Registry& reg = *options.registry;
    const char* help = "Batch jobs finished, by outcome.";
    const std::size_t cancelled = result.num_cancelled();
    const std::size_t failed = result.num_failed();
    reg.counter("lrsizer_batch_jobs_total", help, {{"outcome", "ok"}})
        ->inc(result.jobs.size() - cancelled - failed);
    reg.counter("lrsizer_batch_jobs_total", help, {{"outcome", "cancelled"}})
        ->inc(cancelled);
    reg.counter("lrsizer_batch_jobs_total", help, {{"outcome", "failed"}})
        ->inc(failed);
    reg.counter("lrsizer_batch_cache_hits_total",
                "Batch jobs answered from the result cache or in-batch dedupe.")
        ->inc(result.num_cache_hits());
  }
  return result;
}

namespace {

/// Auto worker count: split the cores across jobs × intra-job threads (see
/// BatchOptions::jobs). Sized by the *largest* per-job thread request so a
/// mixed batch never oversubscribes while its widest job runs.
int default_workers(const std::vector<BatchJob>& jobs) {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  int max_threads = 1;
  for (const auto& job : jobs) {
    const int t = job.options.threads <= 0 ? hw : job.options.threads;
    max_threads = std::max(max_threads, t);
  }
  return std::max(1, hw / max_threads);
}

}  // namespace

BatchResult run_batch(std::vector<BatchJob> jobs, const BatchOptions& options) {
  ThreadPool pool(options.jobs > 0 ? options.jobs : default_workers(jobs));
  return run_batch(std::move(jobs), pool, options);
}

// ---- report serialization ---------------------------------------------------

namespace {

Json metrics_json(const timing::Metrics& m) {
  Json j = Json::object();
  j.set("area_um2", m.area_um2);
  j.set("power_w", m.power_w);
  j.set("cap_f", m.cap_f);
  j.set("noise_f", m.noise_f);
  j.set("noise_exact_f", m.noise_exact_f);
  j.set("delay_s", m.delay_s);
  return j;
}

/// Non-finite values serialize as null; restore them as +inf (every nullable
/// field in this schema — rel_gap, dual, violations — is a "no finite value
/// yet" marker, never negative).
double number_or_inf(const Json& j) {
  return j.is_null() ? std::numeric_limits<double>::infinity() : j.as_number();
}

timing::Metrics metrics_from_json(const Json& j) {
  timing::Metrics m;
  m.area_um2 = j.at("area_um2").as_number();
  m.power_w = j.at("power_w").as_number();
  m.cap_f = j.at("cap_f").as_number();
  m.noise_f = j.at("noise_f").as_number();
  m.noise_exact_f = j.at("noise_exact_f").as_number();
  m.delay_s = j.at("delay_s").as_number();
  return m;
}

}  // namespace

Json job_json(const JobOutcome& outcome) {
  Json j = Json::object();
  j.set("name", outcome.name);
  j.set("seed", outcome.seed);
  j.set("ok", outcome.ok);
  j.set("cancelled", outcome.cancelled);
  j.set("cache_hit", outcome.cache_hit);
  if (!outcome.ok) {
    j.set("error", outcome.error);
    j.set("seconds", outcome.seconds);
    return j;
  }
  const core::FlowSummary& s = outcome.summary;
  j.set("num_gates", static_cast<std::int64_t>(s.num_gates));
  j.set("num_wires", static_cast<std::int64_t>(s.num_wires));
  j.set("init", metrics_json(s.init_metrics));
  j.set("final", metrics_json(s.final_metrics));
  Json bounds = Json::object();
  bounds.set("delay_s", s.bound_delay_s);
  bounds.set("cap_f", s.bound_cap_f);
  bounds.set("noise_f", s.bound_noise_f);
  j.set("bounds", bounds);
  j.set("converged", s.converged);
  j.set("iterations", static_cast<std::int64_t>(s.iterations));
  j.set("area_um2", s.area_um2);
  j.set("dual", s.dual);
  j.set("rel_gap", s.rel_gap);
  j.set("max_violation", s.max_violation);
  j.set("ordering_cost_initial", s.ordering_cost_initial);
  j.set("ordering_cost_woss", s.ordering_cost_woss);
  j.set("stage1_seconds", s.stage1_seconds);
  j.set("stage2_seconds", s.stage2_seconds);
  j.set("memory_bytes", s.memory_bytes);
  j.set("seconds", outcome.seconds);
  return j;
}

core::FlowSummary summary_from_json(const Json& j) {
  core::FlowSummary s;
  s.num_gates = static_cast<std::int32_t>(j.at("num_gates").as_number());
  s.num_wires = static_cast<std::int32_t>(j.at("num_wires").as_number());
  s.init_metrics = metrics_from_json(j.at("init"));
  s.final_metrics = metrics_from_json(j.at("final"));
  const Json& bounds = j.at("bounds");
  s.bound_delay_s = bounds.at("delay_s").as_number();
  s.bound_cap_f = bounds.at("cap_f").as_number();
  s.bound_noise_f = bounds.at("noise_f").as_number();
  s.converged = j.at("converged").as_bool();
  // Absent in pre-session lrsizer-batch-v1 reports; default false.
  if (const Json* cancelled = j.find("cancelled")) s.cancelled = cancelled->as_bool();
  s.iterations = static_cast<int>(j.at("iterations").as_number());
  s.area_um2 = j.at("area_um2").as_number();
  s.dual = number_or_inf(j.at("dual"));
  s.rel_gap = number_or_inf(j.at("rel_gap"));
  s.max_violation = number_or_inf(j.at("max_violation"));
  s.ordering_cost_initial = j.at("ordering_cost_initial").as_number();
  s.ordering_cost_woss = j.at("ordering_cost_woss").as_number();
  s.stage1_seconds = j.at("stage1_seconds").as_number();
  s.stage2_seconds = j.at("stage2_seconds").as_number();
  s.memory_bytes = static_cast<std::size_t>(j.at("memory_bytes").as_number());
  return s;
}

Json batch_json(const BatchResult& result) {
  Json j = Json::object();
  j.set("schema", "lrsizer-batch-v1");
  if (result.shard_count > 0) {
    // Present only in shard reports; merge_batch_reports consumes it and
    // the merged report drops it — matching an unsharded report's shape.
    Json shard = Json::object();
    shard.set("index", static_cast<std::int64_t>(result.shard_index));
    shard.set("count", static_cast<std::int64_t>(result.shard_count));
    j.set("shard", shard);
  }
  j.set("workers", static_cast<std::int64_t>(result.num_workers));
  j.set("wall_seconds", result.wall_seconds);
  j.set("total_job_seconds", result.total_job_seconds);
  j.set("speedup", result.speedup());
  j.set("total_memory_bytes", result.total_memory_bytes);
  j.set("peak_memory_bytes", result.peak_memory_bytes);
  j.set("steals", result.steals);
  j.set("failed", result.num_failed());
  j.set("cancelled", result.num_cancelled());
  j.set("cache_hits", result.num_cache_hits());
  Json jobs = Json::array();
  for (const auto& outcome : result.jobs) jobs.push_back(job_json(outcome));
  j.set("jobs", jobs);
  return j;
}

Json merge_batch_reports(const std::vector<Json>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge: no reports given");
  }
  const std::size_t count = shards.size();
  // Validate the shard family: every report carries shard {index, count}
  // with the same count == number of inputs, indices a permutation of 0..N-1.
  std::vector<const Json*> by_index(count, nullptr);
  for (const Json& report : shards) {
    if (!report.is_object() || !report.find("schema") ||
        report.at("schema").as_string() != "lrsizer-batch-v1") {
      throw std::invalid_argument("merge: input is not a lrsizer-batch-v1 report");
    }
    const Json* shard = report.find("shard");
    if (!shard) {
      throw std::invalid_argument(
          "merge: report has no shard annotation (was it produced with --shard?)");
    }
    // Validate as doubles first: casting an out-of-range double to size_t
    // is undefined, and these come from files the user may have edited.
    const double index_d = shard->at("index").as_number();
    const double count_d = shard->at("count").as_number();
    if (!(index_d >= 0 && index_d < 1e9) || !(count_d >= 1 && count_d < 1e9)) {
      throw std::invalid_argument("merge: shard index/count out of range");
    }
    const auto index = static_cast<std::size_t>(index_d);
    const auto n = static_cast<std::size_t>(count_d);
    if (n != count) {
      throw std::invalid_argument(
          "merge: report says " + std::to_string(n) + " shards but " +
          std::to_string(count) + " were given");
    }
    if (index >= count || by_index[index]) {
      throw std::invalid_argument("merge: duplicate or out-of-range shard index " +
                                  std::to_string(index));
    }
    by_index[index] = &report;
  }

  // Re-interleave: global job g ran as shard g mod N, position g div N.
  std::size_t total_jobs = 0;
  for (const Json* report : by_index) total_jobs += report->at("jobs").size();
  Json jobs = Json::array();
  for (std::size_t g = 0; g < total_jobs; ++g) {
    const auto& shard_jobs = by_index[g % count]->at("jobs").as_array();
    const std::size_t pos = g / count;
    if (pos >= shard_jobs.size()) {
      throw std::invalid_argument(
          "merge: shard " + std::to_string(g % count) +
          " is missing job at global index " + std::to_string(g) +
          " (inconsistent shard job counts)");
    }
    jobs.push_back(shard_jobs[pos]);
  }

  // Rollups: additive counters sum; wall clock and workers take the max
  // (shards run concurrently on separate processes/machines).
  auto num = [](const Json& report, const char* key) {
    const Json* v = report.find(key);
    return v && v->is_number() ? v->as_number() : 0.0;
  };
  double workers = 0.0, wall = 0.0, job_seconds = 0.0, total_mem = 0.0,
         peak_mem = 0.0, steals = 0.0, failed = 0.0, cancelled = 0.0,
         cache_hits = 0.0;
  for (const Json* report : by_index) {
    workers = std::max(workers, num(*report, "workers"));
    wall = std::max(wall, num(*report, "wall_seconds"));
    job_seconds += num(*report, "total_job_seconds");
    total_mem += num(*report, "total_memory_bytes");
    peak_mem = std::max(peak_mem, num(*report, "peak_memory_bytes"));
    steals += num(*report, "steals");
    failed += num(*report, "failed");
    cancelled += num(*report, "cancelled");
    cache_hits += num(*report, "cache_hits");
  }

  Json j = Json::object();
  j.set("schema", "lrsizer-batch-v1");
  j.set("workers", workers);
  j.set("wall_seconds", wall);
  j.set("total_job_seconds", job_seconds);
  j.set("speedup", wall > 0.0 ? job_seconds / wall : 0.0);
  j.set("total_memory_bytes", total_mem);
  j.set("peak_memory_bytes", peak_mem);
  j.set("steals", steals);
  j.set("failed", failed);
  j.set("cancelled", cancelled);
  j.set("cache_hits", cache_hits);
  j.set("jobs", jobs);
  return j;
}

std::string batch_csv(const BatchResult& result) {
  std::ostringstream out;
  out << "name,seed,ok,cancelled,cache_hit,num_gates,num_wires,iterations,"
         "converged,noise_init_f,noise_final_f,delay_init_s,delay_final_s,"
         "power_init_w,power_final_w,area_init_um2,area_final_um2,"
         "rel_gap,max_violation,seconds,memory_bytes\n";
  for (const auto& job : result.jobs) {
    out << job.name << ',' << job.seed << ',' << (job.ok ? 1 : 0) << ','
        << (job.cancelled ? 1 : 0) << ',' << (job.cache_hit ? 1 : 0) << ',';
    if (!job.ok) {
      out << ",,,,,,,,,,,,,," << job.seconds << ",\n";
      continue;
    }
    const core::FlowSummary& s = job.summary;
    out.precision(17);
    out << s.num_gates << ',' << s.num_wires << ',' << s.iterations << ','
        << (s.converged ? 1 : 0) << ',' << s.init_metrics.noise_f << ','
        << s.final_metrics.noise_f << ',' << s.init_metrics.delay_s << ','
        << s.final_metrics.delay_s << ',' << s.init_metrics.power_w << ','
        << s.final_metrics.power_w << ',' << s.init_metrics.area_um2 << ','
        << s.final_metrics.area_um2 << ',' << s.rel_gap << ','
        << s.max_violation << ',' << job.seconds << ',' << s.memory_bytes
        << '\n';
  }
  return out.str();
}

}  // namespace lrsizer::runtime
