#include "runtime/pool.hpp"

#include <algorithm>

namespace lrsizer::runtime {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers <= 0) {
    num_workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  queues_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  // Round-robin keeps the initial distribution balanced; stealing evens out
  // whatever imbalance job runtimes create afterwards.
  const auto slot = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                    queues_.size();
  // Count the task BEFORE publishing it: a worker may pop and finish it the
  // instant it hits the deque, and decrementing an uncounted task would make
  // pending_ transiently negative and lose the idle_cv_ notify that
  // wait_idle() depends on. Workers seeing pending_ > 0 with an empty deque
  // simply re-poll until the push below lands.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop_local(int self, std::function<void()>& task) {
  auto& queue = *queues_[static_cast<std::size_t>(self)];
  std::lock_guard<std::mutex> lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  task = std::move(queue.tasks.front());  // FIFO for the owner
  queue.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(int self, std::function<void()>& task) {
  const auto n = queues_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    auto& queue = *queues_[(static_cast<std::size_t>(self) + offset) % n];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    task = std::move(queue.tasks.back());  // LIFO end for thieves
    queue.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(int self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop_local(self, task) || try_steal(self, task)) {
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --pending_;
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --active_;
        if (pending_ == 0 && active_ == 0) idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_) return;
    if (pending_ > 0) continue;  // raced with a submit; retry the deques
    sleep_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
}

}  // namespace lrsizer::runtime
