#include "runtime/pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lrsizer::runtime {

namespace {

/// Polite busy-wait hint while spinning on an atomic.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Backing store of kernel_rounds_total(); relaxed — a diagnostic counter,
/// never a synchronization point.
std::atomic<std::uint64_t> g_kernel_rounds{0};

}  // namespace

std::uint64_t kernel_rounds_total() {
  return g_kernel_rounds.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers <= 0) {
    num_workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  queues_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  // Round-robin keeps the initial distribution balanced; stealing evens out
  // whatever imbalance job runtimes create afterwards.
  const auto slot = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                    queues_.size();
  // Count the task BEFORE publishing it: a worker may pop and finish it the
  // instant it hits the deque, and decrementing an uncounted task would make
  // pending_ transiently negative and lose the idle_cv_ notify that
  // wait_idle() depends on. Workers seeing pending_ > 0 with an empty deque
  // simply re-poll until the push below lands.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop_local(int self, std::function<void()>& task) {
  auto& queue = *queues_[static_cast<std::size_t>(self)];
  std::lock_guard<std::mutex> lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  task = std::move(queue.tasks.front());  // FIFO for the owner
  queue.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(int self, std::function<void()>& task) {
  const auto n = queues_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    auto& queue = *queues_[(static_cast<std::size_t>(self) + offset) % n];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    task = std::move(queue.tasks.back());  // LIFO end for thieves
    queue.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(int self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop_local(self, task) || try_steal(self, task)) {
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --pending_;
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --active_;
        if (pending_ == 0 && active_ == 0) idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_) return;
    if (pending_ > 0) continue;  // raced with a submit; retry the deques
    sleep_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
}

// ---- KernelTeam -------------------------------------------------------------

KernelTeam::KernelTeam(int threads) {
  if (threads <= 0) {
    threads = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

KernelTeam::~KernelTeam() {
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void KernelTeam::participate(std::uint64_t round) {
  for (;;) {
    std::uint64_t s = state_.load(std::memory_order_acquire);
    if ((s >> kRoundShift) != round) return;  // superseded
    const auto chunks = static_cast<std::int32_t>(s & kFieldMask);
    const auto chunk = static_cast<std::int32_t>((s >> kNextShift) & kFieldMask);
    if (chunk >= chunks) return;  // exhausted (count from the SAME snapshot)
    // The CAS is the claim; see the state_ packing comment in pool.hpp for
    // why guard + claim on one word makes round transitions race-free.
    if (!state_.compare_exchange_weak(s, s + (std::uint64_t{1} << kNextShift),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      continue;
    }
    const std::int32_t grain = grain_.load(std::memory_order_relaxed);
    const std::int32_t begin = chunk * grain;
    const std::int32_t end =
        std::min(n_.load(std::memory_order_relaxed), begin + grain);
    (*fn_.load(std::memory_order_relaxed))(begin, end);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void KernelTeam::worker_loop() {
  std::uint64_t last_round = 0;
  for (;;) {
    const std::uint64_t seen = state_.load(std::memory_order_acquire) >> kRoundShift;
    if (seen != last_round) {
      last_round = seen;
      participate(seen);
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    // Spin briefly — between the back-to-back wavefronts of a hot kernel the
    // next round lands within microseconds — then park on the cv.
    bool fresh = false;
    for (int spin = 0; spin < 2048 && !fresh; ++spin) {
      cpu_pause();
      if ((spin & 63) == 63) std::this_thread::yield();
      fresh = (state_.load(std::memory_order_acquire) >> kRoundShift) != last_round ||
              stop_.load(std::memory_order_relaxed);
    }
    if (fresh) continue;
    std::unique_lock<std::mutex> lock(park_mutex_);
    ++parked_;
    park_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             (state_.load(std::memory_order_acquire) >> kRoundShift) != last_round;
    });
    --parked_;
  }
}

void KernelTeam::run_chunks(std::int32_t n, std::int32_t grain, util::ChunkFn fn) {
  LRSIZER_ASSERT(grain > 0);
  if (n <= 0) return;
  std::int32_t chunks = util::num_chunks(n, grain);
  if (chunks > kMaxChunks) {
    // Coarsen to fit the 16-bit chunks field. Deterministic in n alone, so
    // chunk shapes stay thread-count-invariant (Executor contract).
    grain = (n + kMaxChunks - 1) / kMaxChunks;
    chunks = util::num_chunks(n, grain);
  }
  if (chunks <= 1 || workers_.empty()) {
    fn(0, n);
    return;
  }
  g_kernel_rounds.fetch_add(1, std::memory_order_relaxed);

  // Publish the round: descriptor first, then the packed
  // (round, next = 0, chunks) word (release) that workers acquire.
  fn_.store(&fn, std::memory_order_relaxed);
  n_.store(n, std::memory_order_relaxed);
  grain_.store(grain, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  const std::uint64_t round =
      (state_.load(std::memory_order_relaxed) >> kRoundShift) + 1;
  state_.store((round << kRoundShift) | static_cast<std::uint64_t>(chunks),
               std::memory_order_release);
  bool wake = false;
  {
    // The critical section orders the round publication against any worker
    // mid-way into parking: it either sees the new round in its wait
    // predicate (evaluated under this mutex) or has already registered in
    // parked_ and gets the notify below.
    std::lock_guard<std::mutex> lock(park_mutex_);
    wake = parked_ > 0;
  }
  if (wake) park_cv_.notify_all();
  participate(round);
  // Bounded-latency wait: helpers are mid-chunk, so completion is normally
  // microseconds away — but yield periodically in case a helper lost its
  // core (oversubscribed batches are legal, see BatchOptions::jobs).
  for (int spin = 0; done_.load(std::memory_order_acquire) != chunks; ++spin) {
    cpu_pause();
    if ((spin & 63) == 63) std::this_thread::yield();
  }
  fn_.store(nullptr, std::memory_order_relaxed);
}

}  // namespace lrsizer::runtime
