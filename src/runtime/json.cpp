#include "runtime/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lrsizer::runtime {

void Json::set(const std::string& key, Json v) {
  auto& object = std::get<Object>(value_);
  for (auto& [k, existing] : object) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw std::out_of_range("json: missing key '" + key + "'");
  return *v;
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; serialize as null like most writers do.
    out += "null";
    return;
  }
  // Integers that fit exactly print without an exponent or trailing ".0",
  // everything else uses shortest-round-trip formatting.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    const auto i = static_cast<std::int64_t>(d);
    out += std::to_string(i);
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, result.ptr);
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += as_bool() ? "true" : "false"; return;
    case Type::kNumber: append_number(out, as_number()); return;
    case Type::kString: append_escaped(out, as_string()); return;
    case Type::kArray: {
      const Array& a = as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent > 0) append_newline_indent(out, indent, depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      const Object& o = as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent > 0) append_newline_indent(out, indent, depth + 1);
        append_escaped(out, o[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        o[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Nesting cap for parse: the parser recurses once per container level, so
/// an attacker-supplied "[[[[…" line would otherwise overflow the stack
/// (the serve loop parses untrusted network input). 192 levels is far
/// beyond any schema this project speaks while keeping worst-case stack
/// use a few hundred KB.
constexpr int kMaxParseDepth = 192;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw JsonParseError(pos_, message);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  Json parse_value() {
    if (depth_ >= kMaxParseDepth) fail("nesting too deep");
    skip_space();
    switch (peek()) {
      case 'n': expect_word("null"); return Json();
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case '"': return Json(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    // Encode the code point as UTF-8 (surrogate pairs are passed through as
    // two 3-byte sequences; the reports this module serializes are ASCII).
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return Json(value);
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    Json array = Json::array();
    skip_space();
    if (consume(']')) {
      --depth_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      skip_space();
      if (consume(']')) {
        --depth_;
        return array;
      }
      expect(',');
    }
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    Json object = Json::object();
    skip_space();
    if (consume('}')) {
      --depth_;
      return object;
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      object.set(key, parse_value());
      skip_space();
      if (consume('}')) {
        --depth_;
        return object;
      }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace lrsizer::runtime
