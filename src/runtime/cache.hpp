// Batch-level result caching: dedupe identical sizing jobs across a batch,
// across a serve loop's lifetime, and (optionally) across processes via an
// on-disk cache directory.
//
// Key semantics (specified in docs/SERVING.md §Cache semantics): a job is
// identified by
//
//   netlist_hash(logic netlist)  ×  canonical(FlowOptions)
//
// where the canonical form covers every option that can change the flow's
// outcome and deliberately excludes `FlowOptions::threads` — results are
// bit-identical at any thread count (docs/ARCHITECTURE.md §Parallel
// kernels), so a cached result answers requests at any parallelism. Any
// other option field invalidates the key.
//
// A cached entry stores the completed job's report JSON (the
// `lrsizer-batch-v1` job object, served back verbatim so cache hits are
// byte-identical to the original run) plus the final sparse size vector.
// The sizes double as warm-start seeds for *near-identical* jobs: same
// netlist and same elaboration (same circuit), different bound/solver knobs
// (lookup_warm; opt-in, because a warm-started run converges to an equally
// valid but not bit-identical trajectory).
//
// Completed entries are bounded by CacheLimits (LRU eviction over entry
// count and accounted bytes, enforced in memory and — when disk-backed —
// on disk by unlinking evicted entries' files). In-flight owner/follower
// registrations are never evicted.
//
// Thread safety: every public method is safe to call concurrently; follower
// callbacks registered through acquire() run on the thread that calls
// publish()/abandon(), while holding no cache-internal locks.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "runtime/json.hpp"

namespace lrsizer::netlist {
class LogicNetlist;
}

namespace lrsizer::runtime {

/// Canonical JSON form of every outcome-affecting FlowOptions field, in a
/// fixed key order with shortest-round-trip numbers — byte-equal canon means
/// flow-equivalent options. `threads` is excluded by the bit-determinism
/// contract.
Json canonical_options_json(const core::FlowOptions& options);

struct CacheKey {
  /// "n<netlist-hash>-e<elab-hash>-o<options-hash>" (16 hex digits each).
  /// The full cache key; also a valid portable file stem.
  std::string key;
  /// "n<netlist-hash>-e<elab-hash>": the warm-start compatibility class —
  /// same circuit after elaboration, any solver/bound options.
  std::string warm_prefix;
};

/// Build the cache key for (netlist, options). O(netlist) hashing; no
/// elaboration runs.
CacheKey cache_key(const netlist::LogicNetlist& netlist,
                   const core::FlowOptions& options);

/// Per-net solution snapshot for ECO re-sizing (docs/ECO.md). Built from a
/// completed run by eco::build_eco_index; consumed by eco::seed_from_index,
/// which matches a *revised* netlist's gates against `nets` by fanin-cone
/// hash (netlist/cone_hash.hpp) and seeds the clean ones' sizes — plus, when
/// the circuit shape is unchanged, the full multiplier state. Plain data so
/// the cache can store it without depending on the eco layer.
struct EcoIndex {
  struct Net {
    /// Fanin-cone hash of the gate driving the net.
    std::uint64_t cone = 0;
    /// Final sizes of the net's circuit nodes (the gate/driver plus its
    /// routing-tree wires), ascending NodeId.
    std::vector<double> sizes;
  };
  /// Indexed by the base netlist's logic gate index.
  std::vector<Net> nets;
  /// Output-cone fingerprint (netlist::output_cone_hashes) — the cache's
  /// ECO near-miss probe: a revision shares most of these with its base.
  std::vector<std::uint64_t> output_cones;
  /// Best-dual multiplier state of the base run, reusable verbatim when the
  /// revised circuit has the same node/edge counts (e.g. op-only edits).
  std::vector<double> lambda;
  double beta = 0.0;
  double gamma = 0.0;
  std::vector<double> gamma_net;
  /// Shape of the base run's elaborated circuit, for that validity check.
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;

  bool empty() const { return nets.empty(); }
};

/// One completed job, as the cache stores and serves it.
struct CachedEntry {
  /// The run's `lrsizer-batch-v1` job object (job_json), verbatim.
  Json job;
  /// Final sizes as sparse (circuit NodeId, size) pairs — warm-start food.
  std::vector<std::pair<std::int32_t, double>> sizes;
  /// Optional per-net snapshot for ECO warm-starting; empty when the
  /// producer did not build one.
  EcoIndex eco;
};

/// Budget for completed entries (in-flight owner/follower registrations are
/// never evicted — they hold no completed entry and always run to their
/// publish/abandon). 0 for either knob disables completed-entry storage
/// entirely: every store is rejected (counted as an eviction), lookups
/// miss, but in-flight dedupe keeps working.
struct CacheLimits {
  static constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);
  /// Max completed entries held (memory; mirrored on disk when backed).
  std::size_t max_entries = kUnlimited;
  /// Max Σ accounted entry bytes (key + serialized job JSON + 16 bytes per
  /// size pair + the EcoIndex payload — the dominant cost of an entry on
  /// both memory and disk).
  std::size_t max_bytes = kUnlimited;
};

/// Point-in-time cache counters (see the accessors below for semantics).
/// Hit kinds are disjoint: `hits` counts exact-key answers only, while
/// warm/eco reuse bumps its own counter — a request that misses the exact
/// key but warm-starts still counts one `misses`.
struct CacheStats {
  std::size_t entries = 0;    ///< completed entries currently held
  std::size_t bytes = 0;      ///< Σ accounted bytes of those entries
  std::size_t hits = 0;       ///< exact-key hits
  std::size_t misses = 0;
  std::size_t warm_hits = 0;  ///< lookup_warm answers (same circuit, new knobs)
  std::size_t eco_hits = 0;   ///< ECO base answers (lookup_eco/lookup_eco_base)
  std::size_t evictions = 0;  ///< entries removed (or rejected) for budget
  std::size_t corrupt = 0;    ///< disk entries quarantined to <key>.corrupt
};

class ResultCache {
 public:
  /// Memory-only cache. With a non-empty `disk_dir`, completed entries are
  /// additionally persisted as `<disk_dir>/<key>.json` (schema
  /// `lrsizer-cache-v1`, carrying an fnv1a checksum over the payload;
  /// checksum-less files from older builds still load) and misses fall back
  /// to disk, so the cache survives across processes. The directory is
  /// created on first store. A file that fails to parse or whose checksum
  /// does not match is quarantined: renamed to `<disk_dir>/<key>.corrupt`
  /// (outside the eviction namespace, so it survives for post-mortems),
  /// counted in stats().corrupt, and served as a miss.
  ///
  /// `limits` bounds the completed entries this instance holds, LRU-evicted
  /// (least recently stored/looked-up first). When disk-backed, evicting an
  /// entry also unlinks its file — unlink is atomic, so a crash mid-evict
  /// leaves either the old file or no file, never a torn one — and a
  /// restart therefore sees evicted entries as misses. Reads never delete
  /// files: a disk entry promoted into a full memory cache evicts *other*
  /// entries, and one that does not fit the budget at all is served without
  /// being cached.
  explicit ResultCache(std::string disk_dir = "", CacheLimits limits = {});

  /// Completed-entry lookup (memory first, then disk). nullptr on miss.
  std::shared_ptr<const CachedEntry> lookup(const std::string& key);

  /// Store a completed entry (and persist it when disk-backed). Overwrites.
  void store(const CacheKey& key, CachedEntry entry);

  /// Most recent completed entry with the same warm prefix but a different
  /// full key — a near-identical job whose sizes can warm-start this one.
  /// nullptr when none is known (memory-resident index only). A successful
  /// answer counts one `warm_hits`.
  std::shared_ptr<const CachedEntry> lookup_warm(const CacheKey& key);

  /// ECO near-miss probe: the completed entry (with a non-empty EcoIndex)
  /// sharing the most output cones with `output_cones`, excluding
  /// `exclude_key` (the request's own exact key, which lookup/acquire
  /// already covers). Memory-resident index only; nullptr when no entry
  /// shares a single cone. On success `*base_key` (if non-null) receives the
  /// base entry's full key and one `eco_hits` is counted.
  std::shared_ptr<const CachedEntry> lookup_eco(
      const std::vector<std::uint64_t>& output_cones,
      const std::string& exclude_key, std::string* base_key = nullptr);

  /// Exact-key lookup for a client-named ECO base (`eco_base` in the serve
  /// protocol): same search as lookup() but a success counts as an
  /// `eco_hits`, not an exact hit — the entry seeds a different job.
  std::shared_ptr<const CachedEntry> lookup_eco_base(const std::string& key);

  // ---- in-flight dedupe ----------------------------------------------------

  enum class Acquire {
    kHit,       ///< completed entry returned via *hit
    kOwner,     ///< caller runs the job and must publish() or abandon()
    kFollower,  ///< same key in flight; on_done will be called exactly once
  };

  /// Follower completion callback: the published entry, or nullptr when the
  /// owner abandoned (failed/cancelled) — the follower should run the job
  /// itself (re-acquiring first; it may become the new owner).
  using FollowerFn = std::function<void(std::shared_ptr<const CachedEntry>)>;

  /// Atomically: completed entry → kHit; key in flight → register follower;
  /// otherwise the caller becomes the owner.
  Acquire acquire(const CacheKey& key, std::shared_ptr<const CachedEntry>* hit,
                  FollowerFn on_done);

  /// Owner completed: store the entry and fire every follower with it.
  void publish(const CacheKey& key, CachedEntry entry);

  /// Owner failed or was cancelled: fire every follower with nullptr (each
  /// re-runs on its own) and release the key.
  void abandon(const CacheKey& key);

  // ---- stats ---------------------------------------------------------------

  /// True when a disk directory backs this cache (entries survive restarts).
  bool disk_backed() const { return !disk_dir_.empty(); }

  std::size_t hits() const;    ///< lookup/acquire answered from a completed entry
  std::size_t misses() const;  ///< lookups that found nothing completed
  std::size_t warm_hits() const;  ///< lookup_warm answers
  std::size_t eco_hits() const;   ///< lookup_eco/lookup_eco_base answers
  std::size_t entries() const;    ///< completed entries currently held
  std::size_t bytes() const;      ///< Σ accounted bytes of those entries
  std::size_t evictions() const;  ///< entries evicted/rejected for budget
  std::size_t corrupt() const;    ///< disk entries quarantined as corrupt
  CacheStats stats() const;       ///< all of the above, one lock

 private:
  /// One completed entry plus its LRU bookkeeping.
  struct Slot {
    std::shared_ptr<const CachedEntry> entry;
    std::size_t bytes = 0;
    std::string warm_prefix;
    std::list<std::string>::iterator lru;  ///< position in lru_
  };

  std::shared_ptr<const CachedEntry> lookup_locked(const std::string& key);
  std::shared_ptr<const CachedEntry> load_from_disk(const std::string& key);
  /// Move a corrupt/torn disk file aside to `<key>.corrupt` and count it.
  /// Caller holds mutex_.
  void quarantine_locked(const std::filesystem::path& path,
                         const std::string& key, const char* reason);
  /// Insert/overwrite a completed entry and evict down to the budget;
  /// returns false when the entry alone exceeds it (nothing stored). Disk
  /// files of evicted entries are appended to *unlink for removal after the
  /// lock is released.
  bool insert_locked(const std::string& key, const std::string& warm_prefix,
                     std::shared_ptr<const CachedEntry> entry,
                     std::vector<std::filesystem::path>* unlink);
  void erase_locked(const std::string& key);
  void touch_locked(Slot& slot);
  void persist(const std::string& key, const CachedEntry& entry);
  void unlink_files(const std::vector<std::filesystem::path>& paths);

  mutable std::mutex mutex_;
  std::string disk_dir_;
  CacheLimits limits_;
  std::unordered_map<std::string, Slot> entries_;
  /// Completed keys, most recently used at the front.
  std::list<std::string> lru_;
  /// warm_prefix -> full key of the most recently completed entry.
  std::unordered_map<std::string, std::string> warm_index_;
  /// output cone hash -> full key of the most recently completed entry whose
  /// EcoIndex fingerprint contains it (the lookup_eco vote table).
  std::unordered_map<std::uint64_t, std::string> po_index_;
  std::unordered_map<std::string, std::vector<FollowerFn>> in_flight_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t warm_hits_ = 0;
  std::size_t eco_hits_ = 0;
  std::size_t evictions_ = 0;
  std::size_t corrupt_ = 0;
};

}  // namespace lrsizer::runtime
