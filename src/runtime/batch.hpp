// Batch-flow layer: run many independent two-stage sizing flows (one per
// BatchJob) concurrently on a ThreadPool and aggregate the results.
//
// Each job is fully deterministic given its netlist and options — jobs share
// no mutable state, so a batch produces bit-identical per-job results
// whether it runs on 1 worker or 8 (test_runtime asserts this). The rollup
// records both the batch wall clock and the summed per-job seconds; their
// ratio is the observed parallel speedup the benches report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <stop_token>
#include <string>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "netlist/logic_netlist.hpp"
#include "runtime/cache.hpp"
#include "runtime/json.hpp"
#include "runtime/pool.hpp"

namespace lrsizer::obs {
class Registry;
class TraceSession;
}

namespace lrsizer::runtime {

struct BatchJob {
  std::string name;                ///< report label (profile or file stem)
  netlist::LogicNetlist netlist;   ///< finalized input circuit
  core::FlowOptions options;
  std::uint64_t seed = 1;          ///< generator seed (0 for parsed inputs)
  /// Sparse warm-start sizes (circuit NodeId, size) applied through
  /// api::SizingSession::warm_start_sizes — e.g. the `# size` annotations of
  /// a previously sized .bench. Empty: cold start.
  std::vector<std::pair<std::int32_t, double>> warm_sizes;
  /// ECO multiplier state accompanying warm_sizes (eco::seed_from_index).
  /// Non-empty routes the pair through api::SizingSession::warm_start_eco
  /// instead of warm_start_sizes; the `sizes` member is ignored.
  core::OgwsWarmStart eco_warm;
};

/// Build a job from one of the paper's Table-1 profiles (synthesizes the
/// netlist with `spec_for_profile(profile, seed)`).
BatchJob make_profile_job(const std::string& profile, std::uint64_t seed = 1,
                          const core::FlowOptions& options = core::FlowOptions{});

struct JobOutcome {
  std::string name;
  std::uint64_t seed = 1;
  /// The job produced a result. A cancelled job can still be ok: when the
  /// stop arrived mid-OGWS, the session finishes its bookkeeping and the
  /// summary describes the best partial solution (summary.cancelled set).
  bool ok = false;
  /// The batch's stop token interrupted this job (before or during sizing).
  bool cancelled = false;
  /// This outcome was served without running the flow: answered from the
  /// result cache, or deduped against an identical job in the same batch.
  bool cache_hit = false;
  std::string error;              ///< failure/cancellation text when !ok
  netlist::LogicNetlist netlist;  ///< the job's input, handed back
  /// Full flow result; engaged when ok unless the batch ran with
  /// keep_flow_results = false.
  std::optional<core::FlowResult> flow;
  core::FlowSummary summary;
  double seconds = 0.0;           ///< this job's wall time inside its worker
};

/// Per-iteration progress callback: (job name, OGWS iteration summary).
/// Invoked concurrently from worker threads — must be thread-safe.
using BatchObserver =
    std::function<void(const std::string& job, const core::OgwsIterate& iterate)>;

/// Per-job controls for run_job(): the stop token and progress observer one
/// sizing run honors. A default-constructed JobControls means "run to
/// completion, silently".
struct JobControls {
  std::stop_token stop;
  BatchObserver observer;
  /// Flow tracing (borrowed; must outlive the run): stage, OGWS-iteration
  /// and LRS-pass spans recorded via api::SizingSession::set_trace. The
  /// sizing trajectory is bit-identical either way. nullptr: no tracing.
  obs::TraceSession* trace = nullptr;
};

/// Run one job through its own api::SizingSession on the calling thread.
/// Never throws: failures come back as !ok with the error text, and the
/// input netlist is always handed back in the outcome. The full FlowResult
/// is kept (callers drop it if they only want the summary). This is the
/// unit of work both run_batch and the serve loop (serve/server.hpp)
/// schedule.
JobOutcome run_job(BatchJob job, const JobControls& controls = JobControls{});

/// Final sizes of a completed flow as sparse (circuit NodeId, size) pairs —
/// the currency of cache entries and warm starts.
std::vector<std::pair<std::int32_t, double>> sparse_sizes(
    const core::FlowResult& flow);

struct BatchOptions {
  /// Concurrent jobs (pool workers). 0 = auto: hardware concurrency divided
  /// by the largest per-job FlowOptions::threads in the batch, so cores
  /// split as jobs × intra-job kernel threads instead of oversubscribing
  /// (e.g. 8 cores with threads = 4 jobs runs 2 jobs at a time). An explicit
  /// value is taken as-is.
  int jobs = 0;
  /// Drop each job's full FlowResult (circuit/coupling/history) after
  /// summarizing, keeping only JobOutcome::summary. Saves memory on large
  /// sweeps where only the report matters.
  bool keep_flow_results = true;
  /// Cooperative batch-wide cancellation: in-flight jobs stop at the next
  /// OGWS iteration (keeping their partial result), queued jobs return
  /// immediately as cancelled. Default token: never cancelled.
  std::stop_token stop;
  /// Progress into the batch report; see BatchObserver.
  BatchObserver observer;
  /// Result cache (borrowed; may be shared with a serve loop). When set,
  /// run_batch keys every job as netlist_hash × canonical(options) before
  /// submitting: completed entries answer without running, byte-identical
  /// in-batch duplicates run once and share the outcome, and every
  /// completed cold run is stored back. Jobs with explicit warm_sizes
  /// bypass the cache (their outcome depends on the seed sizes, not just
  /// the key). nullptr: no caching.
  ResultCache* cache = nullptr;
  /// With `cache` set: on a cache miss, seed the job from the sizes of a
  /// cached result with the same netlist + elaboration but different
  /// solver/bound options (ResultCache::lookup_warm). Off by default —
  /// warm-started runs converge to an equally valid but not bit-identical
  /// trajectory, so this trades reproducibility-vs-cold for speed.
  bool cache_warm = false;
  /// Flow tracing shared by every job in the batch (borrowed; must outlive
  /// run_batch). TraceSession::record is thread-safe and spans carry dense
  /// per-thread tids, so concurrent jobs interleave cleanly in one trace.
  /// nullptr: no tracing.
  obs::TraceSession* trace = nullptr;
  /// Telemetry registry (borrowed). When set, run_batch publishes
  /// lrsizer_batch_jobs_total{outcome="ok"|"cancelled"|"failed"} and
  /// lrsizer_batch_cache_hits_total at rollup. nullptr: no telemetry.
  obs::Registry* registry = nullptr;
};

struct BatchResult {
  std::vector<JobOutcome> jobs;        ///< submit order, not completion order
  int num_workers = 0;
  double wall_seconds = 0.0;           ///< whole-batch wall clock
  double total_job_seconds = 0.0;      ///< Σ per-job seconds
  std::size_t total_memory_bytes = 0;  ///< Σ per-job memory_bytes
  std::size_t peak_memory_bytes = 0;   ///< max per-job memory_bytes
  std::int64_t steals = 0;             ///< pool work-steal count
  /// Sweep-shard annotation (`--shard k/N`): this batch ran the global job
  /// list's indices ≡ shard_index (mod shard_count). Set by the caller
  /// after run_batch; shard_count == 0 means unsharded. batch_json emits a
  /// "shard" object that merge_batch_reports uses to interleave shards
  /// back into the global submit order.
  int shard_index = 0;
  int shard_count = 0;

  /// Jobs that neither produced a result nor were cancelled.
  std::size_t num_failed() const;
  /// Jobs interrupted by the batch stop token (with or without a partial
  /// result).
  std::size_t num_cancelled() const;
  /// Jobs answered without running the flow (cache or in-batch dedupe).
  std::size_t num_cache_hits() const;
  /// Σ job seconds / wall seconds — the observed parallel speedup.
  double speedup() const {
    return wall_seconds > 0.0 ? total_job_seconds / wall_seconds : 0.0;
  }
};

/// Run every job on a fresh pool of `options.jobs` workers.
BatchResult run_batch(std::vector<BatchJob> jobs,
                      const BatchOptions& options = BatchOptions{});

/// Run every job on an existing pool (the pool may be shared with other
/// work; the rollup still only counts this batch's jobs).
BatchResult run_batch(std::vector<BatchJob> jobs, ThreadPool& pool,
                      const BatchOptions& options = BatchOptions{});

// ---- report serialization ---------------------------------------------------

/// One job as a JSON object (name, seed, ok/error, and the FlowSummary
/// fields; metrics nested under "init"/"final").
Json job_json(const JobOutcome& outcome);

/// Inverse of job_json's summary part — the schema round-trip used by tests
/// and downstream report consumers. Throws std::out_of_range on missing keys.
core::FlowSummary summary_from_json(const Json& j);

/// Whole batch: {"schema": "lrsizer-batch-v1", "workers": N, rollups,
/// "jobs": [...]}; a "shard" object after "schema" when shard_count > 0.
Json batch_json(const BatchResult& result);

/// CSV with one row per job (header included), matching job_json's scalars.
std::string batch_csv(const BatchResult& result);

/// Merge N shard reports (each batch_json'd with `shard: {index, count}`)
/// back into one unsharded `lrsizer-batch-v1` report: jobs re-interleaved
/// into the global submit order (global index g lives in shard g mod N),
/// additive rollups summed, wall clock and worker count taken as the max
/// across shards (shards run concurrently on separate processes/machines).
/// Apart from scheduling-dependent fields (wall-clock numbers, and the
/// steal counter when jobs > 1), the merged report is byte-identical
/// to the report an unsharded run of the same job list would produce —
/// provided the global list has no byte-identical duplicate jobs (cache
/// dedupe is per-process, so a duplicate landing on a different shard than
/// its twin re-runs there and the cache_hit/cache_hits markers differ; the
/// sizing numbers still match by determinism).
/// Throws std::invalid_argument on schema/shard mismatches (wrong schema,
/// missing shard annotation, duplicate or missing shard indices,
/// inconsistent counts).
Json merge_batch_reports(const std::vector<Json>& shards);

}  // namespace lrsizer::runtime
