// LRS — the greedy, optimal solver for the Lagrangian relaxation
// subproblem LRS₂ (paper Figure 8 + Theorem 5).
//
//   S1. x_i ← L_i
//   S2. compute C'_i         (reverse topological pass)
//   S3. compute R_i          (topological pass, μ-weighted)
//   S4. x_i ← min(U_i, max(L_i, opt_i)) for every component, where
//
//               ┌ μ_i r̂_i (C'_i + Σ_{j∈N(i)} ĉ_ij x_j)          ┐ ½
//       opt_i = │ ─────────────────────────────────────────────  │
//               └ α_i + (β + R_i) ĉ_i + γ Σ_{j∈N(i)} ĉ_ij        ┘
//
//   S5. repeat S2–S4 until no improvement.
//
// Because the transformed problem is convex with a unique optimum, this
// coordinate-greedy scheme converges to the subproblem's global minimum
// (Theorem on page 4); tests verify stationarity against numeric gradients.
#pragma once

#include <vector>

#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "netlist/levels.hpp"
#include "timing/loads.hpp"
#include "util/parallel.hpp"

namespace lrsizer::obs {
class TraceSession;
}

namespace lrsizer::core {

/// Crosstalk-constraint multipliers. The paper's base formulation uses one
/// γ for the total-noise bound; its §4.1 note ("the crosstalk constraint
/// can easily be extended to the case with a distributed crosstalk bound on
/// each net") adds one multiplier per owning wire — pair (i,j), j ∈ I(i),
/// then carries weight total + per_net[i]. Implicitly constructible from a
/// plain double so total-bound call sites read naturally.
struct NoiseMultipliers {
  NoiseMultipliers(double total_gamma = 0.0) : total(total_gamma) {}  // NOLINT
  NoiseMultipliers(double total_gamma, const std::vector<double>* per_net_gamma)
      : total(total_gamma), per_net(per_net_gamma) {}

  double total = 0.0;
  /// Indexed by owner NodeId; nullptr when the distributed bound is off.
  const std::vector<double>* per_net = nullptr;

  /// Effective multiplier for a pair owned by `owner`.
  double for_owner(netlist::NodeId owner) const {
    return total +
           (per_net != nullptr ? (*per_net)[static_cast<std::size_t>(owner)] : 0.0);
  }
};

struct LrsOptions {
  int max_passes = 100;
  /// Fixpoint tolerance: stop when max_i |Δx_i|/x_i falls below this.
  double tol = 1e-4;
  /// Paper S1 resets x to the lower bounds every call; warm start reuses
  /// the incoming x (ablation A1 measures the difference).
  bool warm_start = false;
  timing::CouplingLoadMode mode = timing::CouplingLoadMode::kLocalOnly;
};

struct LrsStats {
  int passes = 0;
  double max_rel_change = 0.0;  ///< at the last pass
};

/// Scratch buffers reused across calls (the OGWS loop calls LRS every
/// iteration; reusing keeps allocation out of the per-iteration cost).
struct LrsWorkspace {
  timing::LoadAnalysis loads;
  std::vector<double> r_up;
  /// Per-chunk partials of the parallel max-relative-change reduction.
  std::vector<double> partials;
  /// Pass-invariant per-node terms of Theorem 5's opt_i, hoisted out of the
  /// sweep at the start of every run_lrs call (they depend only on μ, γ and
  /// the coupling constants, never on x): numerator coefficient μ_i·r̂_i and
  /// denominator coupling term Σ_{j∈N(i)} γ_ij·ĉ_ij. Accumulated in the
  /// exact order optimal_resize uses, so the hoist is bit-neutral.
  std::vector<double> mu_res;
  std::vector<double> gamma_coef;
};

/// Out-of-band execution context for run_lrs — nothing in here changes the
/// result (bit-determinism contract, docs/ARCHITECTURE.md §Parallel kernels).
struct LrsRuntime {
  /// Kernel executor for the level-parallel analyses and the colored sweep;
  /// nullptr (or threads() == 1) runs serial.
  util::Executor* executor = nullptr;
  /// Color schedule from layout::build_coupling_colors for the parallel
  /// Gauss-Seidel sweep; borrowed, must match (circuit, coupling). Only
  /// consulted when `executor` is parallel — run_lrs builds a local one when
  /// needed and none is supplied, so hot callers (run_ogws) should pass the
  /// schedule they built once.
  const netlist::LevelSchedule* colors = nullptr;
  /// Flow tracing: one span per LRS pass (sweep) when set. nullptr (the
  /// default) costs a single pointer test per pass — see obs/trace.hpp.
  obs::TraceSession* trace = nullptr;
};

/// Minimize L_{λ,β,γ}(x) over the size box; x is in/out (indexed by NodeId).
///
/// Hand-back contract: on return, `workspace.loads` holds the load analysis
/// at the returned x (each pass refreshes it *after* the resize sweep), so
/// the caller's post-LRS timing (OGWS step A3's arrival pass) reuses it
/// instead of recomputing — one full load pass saved per OGWS iteration.
LrsStats run_lrs(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 const std::vector<double>& mu, double beta, const NoiseMultipliers& gamma,
                 const LrsOptions& options, std::vector<double>& x,
                 LrsWorkspace& workspace, const LrsRuntime& runtime = LrsRuntime{});

/// Theorem 5's opt_i for one component given current analyses; exposed for
/// tests (stationarity checks) and diagnostics.
double optimal_resize(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling,
                      const std::vector<double>& mu, double beta, const NoiseMultipliers& gamma,
                      const std::vector<double>& x,
                      const timing::LoadAnalysis& loads,
                      const std::vector<double>& r_up, netlist::NodeId v);

}  // namespace lrsizer::core
