// LRS — the greedy, optimal solver for the Lagrangian relaxation
// subproblem LRS₂ (paper Figure 8 + Theorem 5).
//
//   S1. x_i ← L_i
//   S2. compute C'_i         (reverse topological pass)
//   S3. compute R_i          (topological pass, μ-weighted)
//   S4. x_i ← min(U_i, max(L_i, opt_i)) for every component, where
//
//               ┌ μ_i r̂_i (C'_i + Σ_{j∈N(i)} ĉ_ij x_j)          ┐ ½
//       opt_i = │ ─────────────────────────────────────────────  │
//               └ α_i + (β + R_i) ĉ_i + γ Σ_{j∈N(i)} ĉ_ij        ┘
//
//   S5. repeat S2–S4 until no improvement.
//
// Because the transformed problem is convex with a unique optimum, this
// coordinate-greedy scheme converges to the subproblem's global minimum
// (Theorem on page 4); tests verify stationarity against numeric gradients.
#pragma once

#include <vector>

#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "timing/loads.hpp"

namespace lrsizer::core {

/// Crosstalk-constraint multipliers. The paper's base formulation uses one
/// γ for the total-noise bound; its §4.1 note ("the crosstalk constraint
/// can easily be extended to the case with a distributed crosstalk bound on
/// each net") adds one multiplier per owning wire — pair (i,j), j ∈ I(i),
/// then carries weight total + per_net[i]. Implicitly constructible from a
/// plain double so total-bound call sites read naturally.
struct NoiseMultipliers {
  NoiseMultipliers(double total_gamma = 0.0) : total(total_gamma) {}  // NOLINT
  NoiseMultipliers(double total_gamma, const std::vector<double>* per_net_gamma)
      : total(total_gamma), per_net(per_net_gamma) {}

  double total = 0.0;
  /// Indexed by owner NodeId; nullptr when the distributed bound is off.
  const std::vector<double>* per_net = nullptr;

  /// Effective multiplier for a pair owned by `owner`.
  double for_owner(netlist::NodeId owner) const {
    return total +
           (per_net != nullptr ? (*per_net)[static_cast<std::size_t>(owner)] : 0.0);
  }
};

struct LrsOptions {
  int max_passes = 100;
  /// Fixpoint tolerance: stop when max_i |Δx_i|/x_i falls below this.
  double tol = 1e-4;
  /// Paper S1 resets x to the lower bounds every call; warm start reuses
  /// the incoming x (ablation A1 measures the difference).
  bool warm_start = false;
  timing::CouplingLoadMode mode = timing::CouplingLoadMode::kLocalOnly;
};

struct LrsStats {
  int passes = 0;
  double max_rel_change = 0.0;  ///< at the last pass
};

/// Scratch buffers reused across calls (the OGWS loop calls LRS every
/// iteration; reusing keeps allocation out of the per-iteration cost).
struct LrsWorkspace {
  timing::LoadAnalysis loads;
  std::vector<double> r_up;
};

/// Minimize L_{λ,β,γ}(x) over the size box; x is in/out (indexed by NodeId).
LrsStats run_lrs(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 const std::vector<double>& mu, double beta, const NoiseMultipliers& gamma,
                 const LrsOptions& options, std::vector<double>& x,
                 LrsWorkspace& workspace);

/// Theorem 5's opt_i for one component given current analyses; exposed for
/// tests (stationarity checks) and diagnostics.
double optimal_resize(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling,
                      const std::vector<double>& mu, double beta, const NoiseMultipliers& gamma,
                      const std::vector<double>& x,
                      const timing::LoadAnalysis& loads,
                      const std::vector<double>& r_up, netlist::NodeId v);

}  // namespace lrsizer::core
