// LRS — the greedy, optimal solver for the Lagrangian relaxation
// subproblem LRS₂ (paper Figure 8 + Theorem 5).
//
//   S1. x_i ← L_i
//   S2. compute C'_i         (reverse topological pass)
//   S3. compute R_i          (topological pass, μ-weighted)
//   S4. x_i ← min(U_i, max(L_i, opt_i)) for every component, where
//
//               ┌ μ_i r̂_i (C'_i + Σ_{j∈N(i)} ĉ_ij x_j)          ┐ ½
//       opt_i = │ ─────────────────────────────────────────────  │
//               └ α_i + (β + R_i) ĉ_i + γ Σ_{j∈N(i)} ĉ_ij        ┘
//
//   S5. repeat S2–S4 until no improvement.
//
// Because the transformed problem is convex with a unique optimum, this
// coordinate-greedy scheme converges to the subproblem's global minimum
// (Theorem on page 4); tests verify stationarity against numeric gradients.
#pragma once

#include <functional>
#include <vector>

#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "netlist/levels.hpp"
#include "timing/loads.hpp"
#include "util/parallel.hpp"

namespace lrsizer::obs {
class TraceSession;
}

namespace lrsizer::core {

/// Crosstalk-constraint multipliers. The paper's base formulation uses one
/// γ for the total-noise bound; its §4.1 note ("the crosstalk constraint
/// can easily be extended to the case with a distributed crosstalk bound on
/// each net") adds one multiplier per owning wire — pair (i,j), j ∈ I(i),
/// then carries weight total + per_net[i]. Implicitly constructible from a
/// plain double so total-bound call sites read naturally.
struct NoiseMultipliers {
  NoiseMultipliers(double total_gamma = 0.0) : total(total_gamma) {}  // NOLINT
  NoiseMultipliers(double total_gamma, const std::vector<double>* per_net_gamma)
      : total(total_gamma), per_net(per_net_gamma) {}

  double total = 0.0;
  /// Indexed by owner NodeId; nullptr when the distributed bound is off.
  const std::vector<double>* per_net = nullptr;

  /// Effective multiplier for a pair owned by `owner`.
  double for_owner(netlist::NodeId owner) const {
    return total +
           (per_net != nullptr ? (*per_net)[static_cast<std::size_t>(owner)] : 0.0);
  }
};

/// Sweep strategy for S4 (docs/ARCHITECTURE.md §Parallel kernels).
enum class SweepMode {
  /// Paper Figure 8: every pass re-evaluates every component. Bit-exact
  /// reference; the default.
  kDense,
  /// Worklist (Galois-style) mode: each pass evaluates only components whose
  /// resize inputs — numerator term μ_i·r̂_i·C'_i, denominator (β + R_i)
  /// terms, or a coupling neighbor's size — drifted more than worklist_eps
  /// since the node was last evaluated; dirtiness propagates to coupling
  /// neighbors inside the distance-2 color structure. Converges to the same
  /// fixpoint within tolerance (the per-pass seeding scan re-checks every
  /// component, so an empty frontier certifies ε-stationarity and stops the
  /// sweep) but skips clean nodes, so iterates are NOT bit-identical to
  /// kDense — opt in only where tolerance-equivalence suffices. Worklist
  /// runs persist x and the snapshot state across calls via LrsWorkspace, so
  /// successive OGWS iterations re-process only what the multiplier step
  /// perturbed. At a fixed SweepMode the result is still bit-identical at
  /// any thread count.
  kWorklist,
};

/// Canonical lowercase name ("dense" / "worklist") — cache canon, CLI, serve.
const char* sweep_mode_name(SweepMode mode);

struct LrsOptions {
  int max_passes = 100;
  /// Fixpoint tolerance: stop when max_i |Δx_i|/x_i falls below this.
  double tol = 1e-4;
  /// Paper S1 resets x to the lower bounds every call; warm start reuses
  /// the incoming x (ablation A1 measures the difference).
  bool warm_start = false;
  timing::CouplingLoadMode mode = timing::CouplingLoadMode::kLocalOnly;
  SweepMode sweep = SweepMode::kDense;
  /// Worklist dirtiness threshold: a node re-enters the frontier when a
  /// resize input drifts more than this (relative). 0 picks tol/8 — small
  /// enough that skipped nodes stay stationary within tol. Must be < tol.
  double worklist_eps = 0.0;
};

struct LrsStats {
  int passes = 0;
  double max_rel_change = 0.0;  ///< at the last pass
  /// Component evaluations summed over the passes (dense: components ×
  /// passes; worklist: only frontier nodes). The <25%-reprocessed
  /// acceptance metric divides this by passes × components.
  long long nodes_processed = 0;
};

/// Scratch buffers reused across calls (the OGWS loop calls LRS every
/// iteration; reusing keeps allocation out of the per-iteration cost).
struct LrsWorkspace {
  timing::LoadAnalysis loads;
  std::vector<double> r_up;
  /// Per-chunk partials of the parallel max-relative-change reduction.
  std::vector<double> partials;
  /// Pass-invariant per-node terms of Theorem 5's opt_i, hoisted out of the
  /// sweep at the start of every run_lrs call (they depend only on μ, γ and
  /// the coupling constants, never on x): numerator coefficient μ_i·r̂_i and
  /// denominator coupling term Σ_{j∈N(i)} γ_ij·ĉ_ij. Accumulated in the
  /// exact order optimal_resize uses, so the hoist is bit-neutral.
  std::vector<double> mu_res;
  std::vector<double> gamma_coef;

  // --- Worklist-mode state (SweepMode::kWorklist). Persists across run_lrs
  // calls on the same circuit so successive OGWS iterations seed their
  // frontier from what actually changed; run_lrs (re)initializes it whenever
  // `worklist_valid` is false or the circuit size changed, and any dense run
  // invalidates it (a dense sweep rewrites x without maintaining snapshots).
  /// Frontier flag per NodeId: 1 = evaluate on the next pass.
  std::vector<unsigned char> pending;
  /// μ_i·r̂_i·C'_i at the node's last evaluation (numerator drift check).
  std::vector<double> snap_num;
  /// Full Theorem-5 denominator at the node's last evaluation.
  std::vector<double> snap_den;
  /// x_i when the node last flagged its coupling neighbors; comparing
  /// against the *flag-time* size (not last pass's) makes the neighbor
  /// dirtiness test cumulative, so slow sub-eps drift cannot accumulate
  /// unnoticed.
  std::vector<double> snap_x;
  /// Per-pass scratch: which components the sweep evaluated (only
  /// maintained when LrsRuntime::probe is set).
  std::vector<unsigned char> processed;
  /// Per-chunk partials of the parallel processed-count (sum) reduction.
  std::vector<long long> count_partials;
  /// Nodes whose load entries must be recomputed (exact, bit-driven — not
  /// the eps-thresholded `pending`): a resize that changed x_i bit-wise
  /// marks i and its coupling neighbors; the incremental load pass then
  /// propagates along changed load_in values to fanins. Keeping `loads`
  /// maintained this way is bit-identical to a full compute_loads pass (see
  /// timing::compute_node_loads) at a fraction of the per-pass cost.
  std::vector<unsigned char> loads_dirty;
  /// x as this workspace's last worklist run left it. A resumed run diffs
  /// the incoming x against it (callers may legally hand back a modified x)
  /// and marks any externally changed node dirty + pending instead of
  /// recomputing the loads from scratch.
  std::vector<double> exit_x;
  /// CouplingLoadMode (as int) the persisted loads were computed under; a
  /// mode switch forces a cold start.
  int loads_mode = -1;
  bool worklist_valid = false;
};

/// Test-only observation hooks for the worklist sweep; the dirty-set
/// property tests replay skipped nodes against the frozen pass-start state.
/// Both fire on the calling thread, worklist mode only.
struct LrsProbe {
  /// After frontier seeding, before the sweep of (0-based) `pass`: the state
  /// the sweep will read and the frontier it will honor.
  std::function<void(int pass, const std::vector<double>& x,
                     const timing::LoadAnalysis& loads,
                     const std::vector<double>& r_up,
                     const std::vector<unsigned char>& pending)>
      on_pass_begin;
  /// After the sweep: which components it actually evaluated.
  std::function<void(int pass, const std::vector<unsigned char>& processed)>
      on_pass_end;
};

/// Out-of-band execution context for run_lrs — nothing in here changes the
/// result (bit-determinism contract, docs/ARCHITECTURE.md §Parallel kernels).
struct LrsRuntime {
  /// Kernel executor for the level-parallel analyses and the colored sweep;
  /// nullptr (or threads() == 1) runs serial.
  util::Executor* executor = nullptr;
  /// Color schedule from layout::build_coupling_colors for the parallel
  /// Gauss-Seidel sweep; borrowed, must match (circuit, coupling). Only
  /// consulted when `executor` is parallel — run_lrs builds a local one when
  /// needed and none is supplied, so hot callers (run_ogws) should pass the
  /// schedule they built once.
  const netlist::LevelSchedule* colors = nullptr;
  /// Flow tracing: one span per LRS pass (sweep) when set. nullptr (the
  /// default) costs a single pointer test per pass — see obs/trace.hpp.
  obs::TraceSession* trace = nullptr;
  /// Worklist observation hooks (tests only); nullptr disables.
  const LrsProbe* probe = nullptr;
};

/// Minimize L_{λ,β,γ}(x) over the size box; x is in/out (indexed by NodeId).
///
/// Hand-back contract: on return, `workspace.loads` holds the load analysis
/// at the returned x (each pass refreshes it *after* the resize sweep), so
/// the caller's post-LRS timing (OGWS step A3's arrival pass) reuses it
/// instead of recomputing — one full load pass saved per OGWS iteration.
LrsStats run_lrs(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 const std::vector<double>& mu, double beta, const NoiseMultipliers& gamma,
                 const LrsOptions& options, std::vector<double>& x,
                 LrsWorkspace& workspace, const LrsRuntime& runtime = LrsRuntime{});

/// Theorem 5's opt_i for one component given current analyses; exposed for
/// tests (stationarity checks) and diagnostics.
double optimal_resize(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling,
                      const std::vector<double>& mu, double beta, const NoiseMultipliers& gamma,
                      const std::vector<double>& x,
                      const timing::LoadAnalysis& loads,
                      const std::vector<double>& r_up, netlist::NodeId v);

}  // namespace lrsizer::core
