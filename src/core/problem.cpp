#include "core/problem.hpp"

#include "timing/metrics.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

Bounds derive_bounds(const netlist::Circuit& circuit,
                     const layout::CouplingSet& coupling,
                     const std::vector<double>& x, timing::CouplingLoadMode mode,
                     const BoundFactors& factors) {
  LRSIZER_ASSERT(factors.delay > 0.0 && factors.power > 0.0 && factors.noise > 0.0);
  const timing::Metrics m = timing::compute_metrics(circuit, coupling, x, mode);
  Bounds bounds;
  bounds.delay_s = factors.delay * m.delay_s;
  bounds.cap_f = factors.power * m.cap_f;
  // A circuit with no coupling pairs has zero noise for every sizing; give
  // it an inactive (trivially satisfied) bound so the γ machinery is a
  // no-op rather than a division hazard.
  bounds.noise_f = m.noise_f > 0.0 ? factors.noise * m.noise_f : 1.0;

  if (factors.per_net_noise > 0.0) {
    bounds.per_net_noise_f.assign(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      if (!circuit.is_wire(v) || coupling.owned_pairs(v).empty()) continue;
      bounds.per_net_noise_f[static_cast<std::size_t>(v)] =
          factors.per_net_noise * coupling.owned_noise_linear(v, x);
    }
  }
  return bounds;
}

}  // namespace lrsizer::core
