// Reporting helpers around OGWS results: CSV export of the convergence
// history (for plotting gap/violation trajectories) and a one-line summary.
#pragma once

#include <ostream>
#include <string>

#include "core/ogws.hpp"

namespace lrsizer::core {

/// One CSV row per OGWS iteration: k, area, delay, cap, noise, dual,
/// rel_gap, max_violation, lrs_passes, seconds. Requires record_history.
void write_history_csv(const OgwsResult& result, std::ostream& out);

/// "converged in 63 iterations: area 2311.4 um2, gap 0.95%, violation 1.0%".
std::string summarize(const OgwsResult& result);

}  // namespace lrsizer::core
