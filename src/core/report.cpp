#include "core/report.hpp"

#include <cstdio>

namespace lrsizer::core {

void write_history_csv(const OgwsResult& result, std::ostream& out) {
  out << "k,area_um2,delay_s,cap_f,noise_f,dual,rel_gap,max_violation,"
         "lrs_passes,seconds\n";
  char buf[256];
  for (const auto& it : result.history) {
    std::snprintf(buf, sizeof(buf), "%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%d,%.6g\n",
                  it.k, it.area, it.delay, it.cap, it.noise, it.dual, it.rel_gap,
                  it.max_violation, it.lrs_passes, it.seconds);
    out << buf;
  }
}

std::string summarize(const OgwsResult& result) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s in %d iterations: area %.1f um2, gap %.2f%%, violation %.2f%%",
                result.converged ? "converged" : "stopped", result.iterations,
                result.area, 100.0 * result.rel_gap, 100.0 * result.max_violation);
  return buf;
}

}  // namespace lrsizer::core
