// The end-to-end two-stage flow (paper §1):
//
//   stage 0  physical elaboration  (logic netlist -> circuit graph)
//   stage 1  logic simulation -> switching similarity -> WOSS track
//            ordering per channel -> coupling pairs N(i)/I(i)
//   stage 2  bounds derivation -> OGWS (LR sizing)
//
// The staged implementation lives in api::SizingSession (api/session.hpp),
// which adds progress observation, cooperative cancellation and
// warm-starting. run_two_stage_flow() below is a thin compatibility shim
// over a session; new code that needs more than fire-and-forget should use
// the session directly.
#pragma once

#include <cstdint>
#include <string>

#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "layout/channels.hpp"
#include "layout/neighbors.hpp"
#include "netlist/elaborator.hpp"
#include "netlist/logic_netlist.hpp"
#include "sim/simulator.hpp"
#include "timing/metrics.hpp"

namespace lrsizer::core {

struct FlowOptions {
  netlist::TechParams tech;
  netlist::ElabOptions elab;
  sim::SimOptions sim;
  std::int32_t num_vectors = 32;
  std::uint64_t pattern_seed = 7;
  layout::ChannelOptions channels;
  layout::NeighborOptions neighbors;
  /// Stage 1 on/off: off keeps the initial (shuffled) track order.
  bool use_woss = true;
  BoundFactors bound_factors;
  OgwsOptions ogws;
  /// Initial component size (the paper's Table 1 "Init" point).
  double initial_size = 1.0;
  /// Intra-job kernel threads for the sizing stage: the level-parallel
  /// timing/LRS kernels run on a runtime::KernelTeam of this size. 1 =
  /// serial (default), 0 = hardware concurrency. Results are bit-identical
  /// for every value (docs/ARCHITECTURE.md §Parallel kernels); in a batch,
  /// cores split as jobs × threads (runtime/batch.hpp).
  int threads = 1;
};

struct FlowResult {
  netlist::Circuit circuit;        ///< sizes = final solution
  layout::CouplingSet coupling;
  Bounds bounds;
  timing::Metrics init_metrics;
  timing::Metrics final_metrics;
  OgwsResult ogws;
  /// Effective-loading cost Σ(1 − similarity) of adjacent tracks before and
  /// after WOSS (stage 1's own objective).
  double ordering_cost_initial = 0.0;
  double ordering_cost_woss = 0.0;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
  /// Structure bytes + fixed base (Table 1 "mem", Figure 10a).
  std::size_t memory_bytes = 0;
  /// Logic-netlist gate index driving each circuit node (elaborator's
  /// net_of_node); lets serializers name sized components after their nets.
  std::vector<std::int32_t> net_of_node;
};

/// Flat, numbers-only snapshot of a FlowResult — the serialization hook the
/// runtime layer (runtime/json) and CLI reports consume. Deliberately free
/// of heavyweight members (circuit, coupling, history) so it can be copied
/// and aggregated per batch job.
struct FlowSummary {
  std::int32_t num_gates = 0;
  std::int32_t num_wires = 0;
  timing::Metrics init_metrics;
  timing::Metrics final_metrics;
  double bound_delay_s = 0.0;
  double bound_cap_f = 0.0;
  double bound_noise_f = 0.0;
  bool converged = false;
  /// The sizing stage was interrupted by cooperative cancellation; the
  /// final metrics describe the best (partial) iterate found before that.
  bool cancelled = false;
  int iterations = 0;
  double area_um2 = 0.0;
  double dual = 0.0;
  double rel_gap = 0.0;
  double max_violation = 0.0;
  double ordering_cost_initial = 0.0;
  double ordering_cost_woss = 0.0;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
  std::size_t memory_bytes = 0;
};

FlowSummary summarize_flow(const FlowResult& result);

/// Compatibility shim: runs every stage of an api::SizingSession in order
/// and returns its result. Identical output to the staged API; invalid
/// inputs abort via the checked-assert contract (the session returns a
/// readable Status instead — prefer it at trust boundaries).
FlowResult run_two_stage_flow(const netlist::LogicNetlist& netlist,
                              const FlowOptions& options = FlowOptions{});

}  // namespace lrsizer::core
