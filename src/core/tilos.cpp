#include "core/tilos.hpp"

#include <algorithm>

#include "timing/arrival.hpp"
#include "timing/metrics.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

namespace {

double delay_at(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                const std::vector<double>& x, timing::CouplingLoadMode mode,
                timing::LoadAnalysis& loads, timing::ArrivalAnalysis& arrivals) {
  timing::compute_loads(circuit, coupling, x, mode, loads);
  timing::compute_arrivals(circuit, x, loads, arrivals);
  return arrivals.critical_delay;
}

}  // namespace

TilosResult run_tilos(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling, double delay_bound_s,
                      const TilosOptions& options) {
  LRSIZER_ASSERT(delay_bound_s > 0.0);
  LRSIZER_ASSERT(options.bump > 1.0);

  TilosResult result;
  result.sizes.assign(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    result.sizes[static_cast<std::size_t>(v)] = circuit.lower_bound(v);
  }

  timing::LoadAnalysis loads;
  timing::ArrivalAnalysis arrivals;
  double delay =
      delay_at(circuit, coupling, result.sizes, options.mode, loads, arrivals);

  while (delay > delay_bound_s && result.moves < options.max_moves) {
    const std::vector<netlist::NodeId> path = timing::critical_path(circuit, arrivals);

    // Exact sensitivity of every sized component on the critical path.
    netlist::NodeId best_node = netlist::kInvalidNode;
    double best_score = 0.0;
    double best_size = 0.0;
    for (netlist::NodeId v : path) {
      if (!circuit.is_sized(v)) continue;
      const auto i = static_cast<std::size_t>(v);
      const double trial_size =
          std::min(result.sizes[i] * options.bump, circuit.upper_bound(v));
      if (trial_size <= result.sizes[i] * (1.0 + 1e-12)) continue;  // at U_i

      const double saved = result.sizes[i];
      result.sizes[i] = trial_size;
      timing::LoadAnalysis trial_loads;
      timing::ArrivalAnalysis trial_arrivals;
      const double trial_delay = delay_at(circuit, coupling, result.sizes,
                                          options.mode, trial_loads, trial_arrivals);
      result.sizes[i] = saved;

      const double delay_gain = delay - trial_delay;
      const double area_cost = circuit.area_weight(v) * (trial_size - saved);
      if (delay_gain <= 0.0 || area_cost <= 0.0) continue;
      const double score = delay_gain / area_cost;
      if (score > best_score) {
        best_score = score;
        best_node = v;
        best_size = trial_size;
      }
    }

    if (best_node == netlist::kInvalidNode) break;  // no move helps: stuck
    result.sizes[static_cast<std::size_t>(best_node)] = best_size;
    ++result.moves;
    delay = delay_at(circuit, coupling, result.sizes, options.mode, loads, arrivals);
  }

  result.delay_s = delay;
  result.area_um2 = timing::total_area(circuit, result.sizes);
  result.met_bound = delay <= delay_bound_s;
  return result;
}

}  // namespace lrsizer::core
