// Baseline sizers for the benches and ablations.
//
//  * min_sizes            — every component at its lower bound.
//  * uniform_sizes        — every component at one common size.
//  * size_uniform_for_delay — the cheapest single scale factor that meets
//                           the delay bound (bisection); the "dumb knob" a
//                           designer would turn without per-component LR.
//  * delay-only LR        — the paper's reference [3] (Chen–Chu–Wong
//                           ICCAD'98): run OGWS with the power and noise
//                           bounds effectively removed.
#pragma once

#include <vector>

#include "core/ogws.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"

namespace lrsizer::core {

std::vector<double> min_sizes(const netlist::Circuit& circuit);
std::vector<double> uniform_sizes(const netlist::Circuit& circuit, double size);

/// Smallest uniform size whose critical delay meets bounds.delay_s; returns
/// the per-node size vector (clamped into each component's box). If even the
/// maximum uniform size misses the bound, returns that maximum.
std::vector<double> size_uniform_for_delay(const netlist::Circuit& circuit,
                                           const layout::CouplingSet& coupling,
                                           double delay_bound_s,
                                           timing::CouplingLoadMode mode);

/// Reference [3]: simultaneous gate/wire sizing under the delay bound only.
OgwsResult run_delay_only_lr(const netlist::Circuit& circuit,
                             const layout::CouplingSet& coupling,
                             const Bounds& bounds, const OgwsOptions& options);

}  // namespace lrsizer::core
