#include "core/multipliers.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace lrsizer::core {

MultiplierState::MultiplierState(const netlist::Circuit& circuit)
    : lambda(static_cast<std::size_t>(circuit.num_edges()), 0.0) {}

void MultiplierState::init_default(const netlist::Circuit& circuit) {
  std::fill(lambda.begin(), lambda.end(), 0.0);
  for (netlist::EdgeId e : circuit.input_edges(circuit.sink())) {
    lambda[static_cast<std::size_t>(e)] = 1.0;
  }
  project_flow(circuit);
  beta = 0.0;
  gamma = 0.0;
}

void MultiplierState::clamp_nonnegative() {
  for (double& v : lambda) v = std::max(v, 0.0);
  beta = std::max(beta, 0.0);
  gamma = std::max(gamma, 0.0);
  for (double& v : gamma_net) v = std::max(v, 0.0);
}

void MultiplierState::project_flow(const netlist::Circuit& circuit) {
  // Reverse topological order: every node's out-edges are final before its
  // in-edges are rescaled (out-edges of v are in-edges of nodes > v, plus
  // sink edges which are never rescaled).
  for (netlist::NodeId v = circuit.sink() - 1; v >= 1; --v) {
    double out_sum = 0.0;
    for (netlist::EdgeId e : circuit.output_edges(v)) {
      out_sum += lambda[static_cast<std::size_t>(e)];
    }
    const auto in_edges = circuit.input_edges(v);
    double in_sum = 0.0;
    for (netlist::EdgeId e : in_edges) in_sum += lambda[static_cast<std::size_t>(e)];
    if (in_sum > 0.0) {
      const double scale = out_sum / in_sum;
      for (netlist::EdgeId e : in_edges) lambda[static_cast<std::size_t>(e)] *= scale;
    } else {
      const double share = out_sum / static_cast<double>(in_edges.size());
      for (netlist::EdgeId e : in_edges) lambda[static_cast<std::size_t>(e)] = share;
    }
  }
}

void MultiplierState::compute_mu(const netlist::Circuit& circuit,
                                 std::vector<double>& mu) const {
  mu.assign(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
  for (netlist::EdgeId e = 0; e < circuit.num_edges(); ++e) {
    mu[static_cast<std::size_t>(circuit.edge_to(e))] += lambda[static_cast<std::size_t>(e)];
  }
}

double MultiplierState::sink_mu(const netlist::Circuit& circuit) const {
  double sum = 0.0;
  for (netlist::EdgeId e : circuit.input_edges(circuit.sink())) {
    sum += lambda[static_cast<std::size_t>(e)];
  }
  return sum;
}

double MultiplierState::flow_residual(const netlist::Circuit& circuit) const {
  double worst = 0.0;
  for (netlist::NodeId v = 1; v < circuit.sink(); ++v) {
    double in_sum = 0.0;
    double out_sum = 0.0;
    for (netlist::EdgeId e : circuit.input_edges(v)) {
      in_sum += lambda[static_cast<std::size_t>(e)];
    }
    for (netlist::EdgeId e : circuit.output_edges(v)) {
      out_sum += lambda[static_cast<std::size_t>(e)];
    }
    worst = std::max(worst, std::abs(out_sum - in_sum) / std::max(in_sum, 1e-30));
  }
  return worst;
}

void MultiplierState::account_memory(util::MemoryTracker& tracker) const {
  tracker.add("multipliers/lambda",
              util::vector_bytes(lambda) + util::vector_bytes(gamma_net));
}

}  // namespace lrsizer::core
