#include "core/multipliers.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace lrsizer::core {

namespace {

/// Chunk size of the parallel multiplier passes (fixed — the Executor
/// determinism contract keys chunk shapes to (n, grain) only).
constexpr std::int32_t kGrain = 64;

}  // namespace

MultiplierState::MultiplierState(const netlist::Circuit& circuit)
    : lambda(static_cast<std::size_t>(circuit.num_edges()), 0.0) {}

void MultiplierState::init_default(const netlist::Circuit& circuit) {
  std::fill(lambda.begin(), lambda.end(), 0.0);
  for (netlist::EdgeId e : circuit.input_edges(circuit.sink())) {
    lambda[static_cast<std::size_t>(e)] = 1.0;
  }
  project_flow(circuit);
  beta = 0.0;
  gamma = 0.0;
}

void MultiplierState::clamp_nonnegative() {
  for (double& v : lambda) v = std::max(v, 0.0);
  beta = std::max(beta, 0.0);
  gamma = std::max(gamma, 0.0);
  for (double& v : gamma_net) v = std::max(v, 0.0);
}

void MultiplierState::project_flow(const netlist::Circuit& circuit,
                                   util::Executor* exec) {
  // Per-node body, shared by the sequential and wavefront paths so the two
  // are bit-identical. Rescales only node v's in-edges; reads only v's
  // out-edges, which are final before v runs under either order (out-edges of
  // v are in-edges of downstream nodes — higher index, earlier reverse level;
  // sink edges are never rescaled).
  auto project_node = [&](netlist::NodeId v) {
    double out_sum = 0.0;
    for (netlist::EdgeId e : circuit.output_edges(v)) {
      out_sum += lambda[static_cast<std::size_t>(e)];
    }
    const auto in_edges = circuit.input_edges(v);
    double in_sum = 0.0;
    for (netlist::EdgeId e : in_edges) in_sum += lambda[static_cast<std::size_t>(e)];
    if (in_sum > 0.0) {
      const double scale = out_sum / in_sum;
      for (netlist::EdgeId e : in_edges) lambda[static_cast<std::size_t>(e)] *= scale;
    } else {
      const double share = out_sum / static_cast<double>(in_edges.size());
      for (netlist::EdgeId e : in_edges) lambda[static_cast<std::size_t>(e)] = share;
    }
  };

  if (util::serial(exec)) {
    // Reverse topological order = descending node index (index contract).
    for (netlist::NodeId v = circuit.sink() - 1; v >= 1; --v) project_node(v);
    return;
  }
  // Wavefront order: a node's fanout all lives in earlier reverse levels, so
  // each level is embarrassingly parallel.
  const netlist::LevelSchedule& schedule = circuit.reverse_levels();
  for (std::int32_t l = 0; l < schedule.num_levels(); ++l) {
    const auto nodes = schedule.level(l);
    exec->run_chunks(static_cast<std::int32_t>(nodes.size()), kGrain,
                     [&](std::int32_t begin, std::int32_t end) {
                       for (std::int32_t k = begin; k < end; ++k) {
                         project_node(nodes[static_cast<std::size_t>(k)]);
                       }
                     });
  }
}

void MultiplierState::compute_mu(const netlist::Circuit& circuit,
                                 std::vector<double>& mu,
                                 util::Executor* exec) const {
  const auto n = static_cast<std::size_t>(circuit.num_nodes());
  mu.assign(n, 0.0);
  // Gather over the in-edge CSR. In-edge lists store ascending EdgeIds (the
  // builder emits them sorted), which is exactly the order an ascending edge
  // scatter would accumulate into each node — so this form, serial or
  // chunked, is bit-identical to the historical scatter loop. Every node
  // writes only its own slot, so no level schedule is needed.
  auto gather_node = [&](netlist::NodeId v) {
    double sum = 0.0;
    for (netlist::EdgeId e : circuit.input_edges(v)) {
      sum += lambda[static_cast<std::size_t>(e)];
    }
    mu[static_cast<std::size_t>(v)] = sum;
  };

  if (util::serial(exec)) {
    for (netlist::NodeId v = 0; v < circuit.num_nodes(); ++v) gather_node(v);
    return;
  }
  exec->run_chunks(circuit.num_nodes(), kGrain,
                   [&](std::int32_t begin, std::int32_t end) {
                     for (std::int32_t k = begin; k < end; ++k) gather_node(k);
                   });
}

double MultiplierState::sink_mu(const netlist::Circuit& circuit) const {
  double sum = 0.0;
  for (netlist::EdgeId e : circuit.input_edges(circuit.sink())) {
    sum += lambda[static_cast<std::size_t>(e)];
  }
  return sum;
}

double MultiplierState::flow_residual(const netlist::Circuit& circuit) const {
  double worst = 0.0;
  for (netlist::NodeId v = 1; v < circuit.sink(); ++v) {
    double in_sum = 0.0;
    double out_sum = 0.0;
    for (netlist::EdgeId e : circuit.input_edges(v)) {
      in_sum += lambda[static_cast<std::size_t>(e)];
    }
    for (netlist::EdgeId e : circuit.output_edges(v)) {
      out_sum += lambda[static_cast<std::size_t>(e)];
    }
    worst = std::max(worst, std::abs(out_sum - in_sum) / std::max(in_sum, 1e-30));
  }
  return worst;
}

void MultiplierState::account_memory(util::MemoryTracker& tracker) const {
  tracker.add("multipliers/lambda",
              util::vector_bytes(lambda) + util::vector_bytes(gamma_net));
}

}  // namespace lrsizer::core
