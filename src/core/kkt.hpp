// KKT / optimality diagnostics for Theorem 6.
//
// At a primal-dual optimum:
//   (1) flow conservation on λ,
//   (2) complementary slackness: every multiplier × its constraint slack = 0,
//   (3) primal feasibility,
//   (4) nonnegative multipliers,
//   (5) x_i = clamp(opt_i) for every component (stationarity).
//
// This module measures the residual of each condition for a given
// (x, λ, β, γ); tests assert the residuals shrink at convergence and the
// benches can print them as a certificate.
#pragma once

#include <vector>

#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"

namespace lrsizer::core {

struct KktResiduals {
  double flow = 0.0;            ///< max relative KCL violation on λ
  double stationarity = 0.0;    ///< max_i |x_i − clamp(opt_i)| / x_i
  double complementary = 0.0;   ///< max normalized multiplier·slack product
  double primal_delay = 0.0;    ///< max(0, (D − A0)/A0)
  double primal_power = 0.0;    ///< max(0, (Σc − P0)/P0)
  double primal_noise = 0.0;    ///< max(0, (X − X0)/X0)

  double max_residual() const;
};

KktResiduals check_kkt(const netlist::Circuit& circuit,
                       const layout::CouplingSet& coupling,
                       const MultiplierState& multipliers, const Bounds& bounds,
                       const std::vector<double>& x,
                       timing::CouplingLoadMode mode);

}  // namespace lrsizer::core
