// Problem PP (paper §4.1): minimize area subject to arrival-time, power and
// crosstalk constraints plus size bounds.
//
// The paper does not state the bounds used in Table 1; its results imply an
// active noise bound at 10% of the initial noise (Fin/Init ≈ 0.1 on nearly
// every circuit) and a delay bound near the initial delay. We derive bounds
// from the metrics of the initial (unit-size) circuit via BoundFactors; see
// docs/ARCHITECTURE.md §Benches.
#pragma once

#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "timing/loads.hpp"

namespace lrsizer::core {

/// Constraint bounds in natural units.
struct Bounds {
  double delay_s = 0.0;  ///< A0
  double cap_f = 0.0;    ///< P0 expressed as capacitance: P_B / (V²f)
  double noise_f = 0.0;  ///< X0 bound on Σ ĉ_ij (x_i + x_j)
  /// Distributed crosstalk bounds (paper §4.1's per-net extension): for
  /// every wire i owning coupling pairs, Σ_{j∈I(i)} ĉ_ij (x_i+x_j) ≤
  /// per_net_noise_f[i]. Indexed by NodeId; empty disables the extension;
  /// entries of 0 mean "no constraint on this wire".
  std::vector<double> per_net_noise_f;

  bool per_net_enabled() const { return !per_net_noise_f.empty(); }
};

struct BoundFactors {
  double delay = 1.00;  ///< A0 = delay · D_init
  double power = 0.15;  ///< P0 = power · cap_init
  double noise = 0.10;  ///< X0 = noise · noise_init
  /// > 0 enables the distributed per-net bounds: X_i = factor · X_i(init).
  double per_net_noise = 0.0;
};

/// Bounds relative to the metrics at the circuit's current sizes.
Bounds derive_bounds(const netlist::Circuit& circuit,
                     const layout::CouplingSet& coupling,
                     const std::vector<double>& x, timing::CouplingLoadMode mode,
                     const BoundFactors& factors);

}  // namespace lrsizer::core
