#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "timing/arrival.hpp"
#include "timing/metrics.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

std::vector<double> min_sizes(const netlist::Circuit& circuit) {
  std::vector<double> x(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    x[static_cast<std::size_t>(v)] = circuit.lower_bound(v);
  }
  return x;
}

std::vector<double> uniform_sizes(const netlist::Circuit& circuit, double size) {
  std::vector<double> x(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    x[static_cast<std::size_t>(v)] =
        std::clamp(size, circuit.lower_bound(v), circuit.upper_bound(v));
  }
  return x;
}

namespace {

double delay_at_uniform(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling, double size,
                        timing::CouplingLoadMode mode) {
  const std::vector<double> x = uniform_sizes(circuit, size);
  return timing::compute_metrics(circuit, coupling, x, mode).delay_s;
}

}  // namespace

std::vector<double> size_uniform_for_delay(const netlist::Circuit& circuit,
                                           const layout::CouplingSet& coupling,
                                           double delay_bound_s,
                                           timing::CouplingLoadMode mode) {
  LRSIZER_ASSERT(delay_bound_s > 0.0);
  const double lo_size = circuit.tech().min_size;
  const double hi_size = circuit.tech().max_size;

  if (delay_at_uniform(circuit, coupling, lo_size, mode) <= delay_bound_s) {
    return uniform_sizes(circuit, lo_size);
  }

  // Delay is not monotone in the uniform size: upsizing lowers gate/wire
  // resistance but raises the load every fixed driver sees, so the curve is
  // U-shaped. Scan a log-spaced grid for the smallest size meeting the
  // bound, then refine by bisection against the preceding grid point.
  constexpr int kGridSteps = 64;
  double prev = lo_size;
  double feasible = -1.0;
  for (int k = 1; k < kGridSteps; ++k) {
    const double s = lo_size * std::pow(hi_size / lo_size,
                                        static_cast<double>(k) / (kGridSteps - 1));
    if (delay_at_uniform(circuit, coupling, s, mode) <= delay_bound_s) {
      feasible = s;
      break;
    }
    prev = s;
  }
  if (feasible < 0.0) {
    // Even the best uniform size misses the bound; return the grid minimum.
    double best_s = hi_size;
    double best_d = delay_at_uniform(circuit, coupling, hi_size, mode);
    for (int k = 0; k < kGridSteps; ++k) {
      const double s = lo_size * std::pow(hi_size / lo_size,
                                          static_cast<double>(k) / (kGridSteps - 1));
      const double d = delay_at_uniform(circuit, coupling, s, mode);
      if (d < best_d) {
        best_d = d;
        best_s = s;
      }
    }
    return uniform_sizes(circuit, best_s);
  }
  double lo = prev;       // infeasible side
  double hi = feasible;   // feasible side
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (delay_at_uniform(circuit, coupling, mid, mode) <= delay_bound_s) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return uniform_sizes(circuit, hi);
}

OgwsResult run_delay_only_lr(const netlist::Circuit& circuit,
                             const layout::CouplingSet& coupling,
                             const Bounds& bounds, const OgwsOptions& options) {
  // Loosen power/noise so β and γ never activate: [3] optimizes area under
  // timing alone.
  Bounds loose = bounds;
  loose.cap_f *= 1e6;
  loose.noise_f *= 1e6;
  return run_ogws(circuit, coupling, loose, options);
}

}  // namespace lrsizer::core
