#include "core/flow.hpp"

namespace lrsizer::core {

// run_two_stage_flow() is declared here but defined in api/session.cpp: it
// is a shim over api::SizingSession, and defining it up there keeps core/
// free of upward includes into the api layer.

FlowSummary summarize_flow(const FlowResult& result) {
  FlowSummary s;
  s.num_gates = result.circuit.num_gates();
  s.num_wires = result.circuit.num_wires();
  s.init_metrics = result.init_metrics;
  s.final_metrics = result.final_metrics;
  s.bound_delay_s = result.bounds.delay_s;
  s.bound_cap_f = result.bounds.cap_f;
  s.bound_noise_f = result.bounds.noise_f;
  s.converged = result.ogws.converged;
  s.cancelled = result.ogws.cancelled;
  s.iterations = result.ogws.iterations;
  s.area_um2 = result.ogws.area;
  s.dual = result.ogws.dual;
  s.rel_gap = result.ogws.rel_gap;
  s.max_violation = result.ogws.max_violation;
  s.ordering_cost_initial = result.ordering_cost_initial;
  s.ordering_cost_woss = result.ordering_cost_woss;
  s.stage1_seconds = result.stage1_seconds;
  s.stage2_seconds = result.stage2_seconds;
  s.memory_bytes = result.memory_bytes;
  return s;
}

}  // namespace lrsizer::core
