#include "core/flow.hpp"

#include <algorithm>

#include "layout/ordering.hpp"
#include "sim/patterns.hpp"
#include "sim/similarity.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace lrsizer::core {

FlowSummary summarize_flow(const FlowResult& result) {
  FlowSummary s;
  s.num_gates = result.circuit.num_gates();
  s.num_wires = result.circuit.num_wires();
  s.init_metrics = result.init_metrics;
  s.final_metrics = result.final_metrics;
  s.bound_delay_s = result.bounds.delay_s;
  s.bound_cap_f = result.bounds.cap_f;
  s.bound_noise_f = result.bounds.noise_f;
  s.converged = result.ogws.converged;
  s.iterations = result.ogws.iterations;
  s.area_um2 = result.ogws.area;
  s.dual = result.ogws.dual;
  s.rel_gap = result.ogws.rel_gap;
  s.max_violation = result.ogws.max_violation;
  s.ordering_cost_initial = result.ordering_cost_initial;
  s.ordering_cost_woss = result.ordering_cost_woss;
  s.stage1_seconds = result.stage1_seconds;
  s.stage2_seconds = result.stage2_seconds;
  s.memory_bytes = result.memory_bytes;
  return s;
}

FlowResult run_two_stage_flow(const netlist::LogicNetlist& logic,
                              const FlowOptions& options) {
  LRSIZER_ASSERT(logic.finalized());

  // ---- stage 0: physical elaboration --------------------------------------
  netlist::ElabResult elab = netlist::elaborate(logic, options.tech, options.elab);
  netlist::Circuit& circuit = elab.circuit;

  // ---- stage 1: similarity-driven wire ordering ---------------------------
  util::WallTimer stage1_timer;

  const auto vectors = sim::random_vectors(
      static_cast<std::int32_t>(logic.primary_inputs().size()), options.num_vectors,
      options.pattern_seed);
  const sim::SimResult simulated = sim::simulate(logic, vectors, options.sim);

  layout::ChannelAssignment channels =
      layout::assign_channels(circuit, elab.net_of_node, logic, options.channels);

  double cost_initial = 0.0;
  double cost_final = 0.0;
  std::vector<std::vector<netlist::NodeId>> orders;
  orders.reserve(channels.channels.size());
  for (const auto& tracks : channels.channels) {
    // Per-channel similarity matrix over the wires' nets.
    std::vector<std::int32_t> nets;
    nets.reserve(tracks.size());
    for (netlist::NodeId w : tracks) {
      nets.push_back(elab.net_of_node[static_cast<std::size_t>(w)]);
    }
    const sim::SimilarityMatrix sim_matrix(simulated, nets);

    const auto n = static_cast<std::int32_t>(tracks.size());
    std::vector<double> weights(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (std::int32_t a = 0; a < n; ++a) {
      for (std::int32_t b = 0; b < n; ++b) {
        weights[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(b)] = sim_matrix.miller_weight(a, b);
      }
    }
    const layout::DenseWeights view(n, std::move(weights));

    std::vector<std::int32_t> identity(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
    cost_initial += layout::ordering_cost(view, identity);

    std::vector<std::int32_t> order =
        options.use_woss ? layout::woss_ordering(view) : identity;
    cost_final += layout::ordering_cost(view, order);

    std::vector<netlist::NodeId> track_order(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) {
      track_order[static_cast<std::size_t>(i)] =
          tracks[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    }
    orders.push_back(std::move(track_order));
  }

  // Miller weights for the final adjacency (constants folded into ĉ_ij).
  layout::MillerFn miller;
  if (options.neighbors.fold_miller) {
    miller = [&](netlist::NodeId a, netlist::NodeId b) {
      const std::vector<std::int32_t> nets = {
          elab.net_of_node[static_cast<std::size_t>(a)],
          elab.net_of_node[static_cast<std::size_t>(b)]};
      const sim::SimilarityMatrix m(simulated, nets);
      return m.miller_weight(0, 1);
    };
  }
  layout::CouplingSet coupling =
      layout::build_coupling_set(circuit, orders, options.neighbors, miller);

  FlowResult result{std::move(elab.circuit), std::move(coupling), Bounds{},
                    timing::Metrics{}, timing::Metrics{}, OgwsResult{},
                    cost_initial, cost_final, 0.0, 0.0, 0, {}};
  result.net_of_node = std::move(elab.net_of_node);
  result.stage1_seconds = stage1_timer.seconds();

  // ---- stage 2: LR sizing ---------------------------------------------------
  util::WallTimer stage2_timer;
  result.circuit.set_uniform_size(options.initial_size);
  result.init_metrics = timing::compute_metrics(result.circuit, result.coupling,
                                                result.circuit.sizes(),
                                                options.ogws.lrs.mode);
  result.bounds = derive_bounds(result.circuit, result.coupling,
                                result.circuit.sizes(), options.ogws.lrs.mode,
                                options.bound_factors);
  result.ogws = run_ogws(result.circuit, result.coupling, result.bounds, options.ogws);
  result.circuit.mutable_sizes() = result.ogws.sizes;
  result.final_metrics = timing::compute_metrics(result.circuit, result.coupling,
                                                 result.circuit.sizes(),
                                                 options.ogws.lrs.mode);
  result.stage2_seconds = stage2_timer.seconds();

  // ---- memory accounting ------------------------------------------------------
  util::MemoryTracker tracker;
  result.circuit.account_memory(tracker);
  result.coupling.account_memory(tracker);
  tracker.add("ogws/workspace", result.ogws.workspace_bytes);
  result.memory_bytes = tracker.total_bytes();

  return result;
}

}  // namespace lrsizer::core
