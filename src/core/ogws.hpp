// OGWS — Optimal Gate and Wire Sizing (paper Figure 9): maximize the
// Lagrangian dual by projected subgradient ascent on (λ, β, γ), solving the
// inner subproblem with LRS each iteration.
//
//   A1. initialize multipliers (λ flow-conserving, β = γ = 0)
//   A2. μ_i = Σ_{j∈input(i)} λ_ji
//   A3. run LRS; compute arrival times a
//   A4. subgradient step with ρ_k = step0/√k (ρ_k → 0, Σ ρ_k = ∞):
//         λ_jm += ρ_k (a_j − A0)                    [sink edges]
//         λ_ji += ρ_k (a_j + D_i − a_i)             [component edges]
//         λ_0i += ρ_k (D_i − a_i)                   [driver edges]
//         β    += ρ_k (Σ c_i − P0)
//         γ    += ρ_k (X(x) − X0)
//   A5. clamp at 0 and project λ onto flow conservation (Theorem 3)
//   A7. stop when the duality gap Σ α_i x_i − L(x) is within the error
//       bound and the iterate is feasible within tolerance
//
// Normalization (docs/ARCHITECTURE.md, decision D3): the raw subgradients mix seconds, farads
// and µm²; each update is scaled by (A_ref / bound) / bound where A_ref is
// the area at the initial sizes, making all multiplier magnitudes
// commensurate with the objective. This is a pure reparametrization of the
// step sizes and preserves the ρ_k conditions.
#pragma once

#include <cstddef>
#include <vector>

#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "util/memtrack.hpp"

namespace lrsizer::core {

/// Multiplier update rule for step A4.
enum class StepRule {
  /// λ += ρ_k · subgradient (normalized); the literal Figure 9 step.
  kSubgradient,
  /// λ *= (constraint ratio)^ρ_k — the multiplicative update practical LR
  /// sizers use (violated constraints inflate their multipliers by the
  /// violation ratio); converges in far fewer iterations on these problems
  /// and satisfies the same ρ_k → 0, Σρ_k = ∞ schedule.
  kMultiplicative,
};

struct OgwsOptions {
  int max_iterations = 500;
  /// A7 error bound: relative duality gap (the paper quotes "within 1%").
  double gap_tol = 0.01;
  /// Allowed relative constraint violation for an iterate to count feasible.
  double feas_tol = 0.01;
  /// ρ_k = step0 / sqrt(k). The multiplicative rule tolerates (and wants)
  /// aggressive steps; the additive subgradient rule prefers ~0.25.
  double step0 = 4.0;
  StepRule step_rule = StepRule::kMultiplicative;
  LrsOptions lrs;
  bool record_history = true;
};

struct OgwsIterate {
  int k = 0;
  double area = 0.0;
  double delay = 0.0;
  double cap = 0.0;
  double noise = 0.0;
  double dual = 0.0;        ///< L(x) — the dual lower bound at this iterate
  double rel_gap = 0.0;     ///< certificate gap so far (best primal vs best dual)
  double max_violation = 0.0;  ///< max relative constraint violation
  int lrs_passes = 0;
  double seconds = 0.0;     ///< wall time of this iteration
};

struct OgwsResult {
  /// Best feasible iterate (least area; least-violating when nothing ever
  /// reached feasibility), indexed by NodeId.
  std::vector<double> sizes;
  bool converged = false;
  int iterations = 0;
  double area = 0.0;     ///< area of the returned sizes
  double dual = 0.0;     ///< best dual lower bound seen
  double rel_gap = 0.0;  ///< (area − dual) / area at termination
  double max_violation = 0.0;  ///< violation of the returned sizes
  std::vector<OgwsIterate> history;
  std::size_t workspace_bytes = 0;  ///< multiplier + analysis working set
};

/// Run OGWS. The circuit's current sizes define the reference area used for
/// normalization; the returned sizes are written back into nothing — the
/// caller applies result.sizes if desired.
OgwsResult run_ogws(const netlist::Circuit& circuit,
                    const layout::CouplingSet& coupling, const Bounds& bounds,
                    const OgwsOptions& options = OgwsOptions{});

}  // namespace lrsizer::core
