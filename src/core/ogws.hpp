// OGWS — Optimal Gate and Wire Sizing (paper Figure 9): maximize the
// Lagrangian dual by projected subgradient ascent on (λ, β, γ), solving the
// inner subproblem with LRS each iteration.
//
//   A1. initialize multipliers (λ flow-conserving, β = γ = 0)
//   A2. μ_i = Σ_{j∈input(i)} λ_ji
//   A3. run LRS; compute arrival times a
//   A4. subgradient step with ρ_k = step0/√k (ρ_k → 0, Σ ρ_k = ∞):
//         λ_jm += ρ_k (a_j − A0)                    [sink edges]
//         λ_ji += ρ_k (a_j + D_i − a_i)             [component edges]
//         λ_0i += ρ_k (D_i − a_i)                   [driver edges]
//         β    += ρ_k (Σ c_i − P0)
//         γ    += ρ_k (X(x) − X0)
//   A5. clamp at 0 and project λ onto flow conservation (Theorem 3)
//   A7. stop when the duality gap Σ α_i x_i − L(x) is within the error
//       bound and the iterate is feasible within tolerance
//
// Normalization (docs/ARCHITECTURE.md, decision D3): the raw subgradients mix seconds, farads
// and µm²; each update is scaled by (A_ref / bound) / bound where A_ref is
// the area at the initial sizes, making all multiplier magnitudes
// commensurate with the objective. This is a pure reparametrization of the
// step sizes and preserves the ρ_k conditions.
#pragma once

#include <cstddef>
#include <functional>
#include <stop_token>
#include <vector>

#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "timing/arrival.hpp"
#include "util/memtrack.hpp"
#include "util/parallel.hpp"

namespace lrsizer::core {

/// Multiplier update rule for step A4.
enum class StepRule {
  /// λ += ρ_k · subgradient (normalized); the literal Figure 9 step.
  kSubgradient,
  /// λ *= (constraint ratio)^ρ_k — the multiplicative update practical LR
  /// sizers use (violated constraints inflate their multipliers by the
  /// violation ratio); converges in far fewer iterations on these problems
  /// and satisfies the same ρ_k → 0, Σρ_k = ∞ schedule.
  kMultiplicative,
};

struct OgwsOptions {
  int max_iterations = 500;
  /// A7 error bound: relative duality gap (the paper quotes "within 1%").
  double gap_tol = 0.01;
  /// Allowed relative constraint violation for an iterate to count feasible.
  double feas_tol = 0.01;
  /// ρ_k = step0 / sqrt(k). The multiplicative rule tolerates (and wants)
  /// aggressive steps; the additive subgradient rule prefers ~0.25.
  double step0 = 4.0;
  StepRule step_rule = StepRule::kMultiplicative;
  LrsOptions lrs;
  bool record_history = true;
};

struct OgwsIterate {
  int k = 0;
  double area = 0.0;
  double delay = 0.0;
  double cap = 0.0;
  double noise = 0.0;
  double dual = 0.0;        ///< L(x) — the dual lower bound at this iterate
  double rel_gap = 0.0;     ///< certificate gap so far (best primal vs best dual)
  double max_violation = 0.0;  ///< max relative constraint violation
  int lrs_passes = 0;
  /// Node evaluations the inner LRS solver performed this iteration (summed
  /// over its passes). Dense sweeps evaluate every component each pass;
  /// worklist sweeps (LrsOptions::sweep) evaluate only the dirty frontier.
  long long lrs_nodes_processed = 0;
  double seconds = 0.0;     ///< wall time of this iteration
};

/// Normalization scales of a run (docs/ARCHITECTURE.md, decision D3),
/// derived from the reference area and the constraint bounds. Precomputed
/// once per run and shared with dual_ascent_step.
struct DualScales {
  double area_ref = 0.0;
  double lambda_scale = 0.0;  ///< area_ref / delay bound
  double beta_scale = 0.0;    ///< area_ref / cap bound
  double gamma_scale = 0.0;   ///< area_ref / noise bound
};

/// One OGWS dual step (A4 + A5): update every multiplier from the iterate's
/// constraint residuals under `options.step_rule` with step size `rho`, then
/// clamp at 0 and re-project λ onto flow conservation. `arrivals` and the
/// scalar totals `cap`/`noise` must describe the iterate `x`. With a
/// non-serial executor the per-edge and per-net updates run chunked (each
/// node writes only its own in-edge λ / its own γ_net slot and reads frozen
/// analyses) and the projection runs over the reverse-level wavefronts —
/// bit-identical to the serial path at any thread count. Exposed separately
/// from run_ogws so the kernel bench can time it in isolation.
void dual_ascent_step(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling, const Bounds& bounds,
                      const OgwsOptions& options,
                      const timing::ArrivalAnalysis& arrivals,
                      const std::vector<double>& x, double cap, double noise,
                      double rho, const DualScales& scales,
                      MultiplierState& multipliers,
                      util::Executor* exec = nullptr);

/// Restartable OGWS state: the sizes of a prior run's returned iterate plus
/// the multiplier vector at its best dual. Seeding a fresh run with this
/// snapshot makes iteration 1 reproduce the prior run's best primal/dual
/// certificate pair, so re-sizing under identical options re-converges in
/// one or two iterations, and under tweaked options it starts from the
/// converged neighborhood instead of the default multipliers.
struct OgwsWarmStart {
  /// Initial iterate, indexed by NodeId. Also evaluated up front as the
  /// incumbent primal candidate (feasibility + area under the *current*
  /// bounds, so a stale snapshot can never fake a certificate). Empty: start
  /// from the circuit's current sizes with no incumbent.
  std::vector<double> sizes;
  /// λ per EdgeId at the best dual seen; empty: default initialization.
  std::vector<double> lambda;
  double beta = 0.0;
  double gamma = 0.0;
  /// Per-net γ (only meaningful when the run's bounds enable per-net mode).
  std::vector<double> gamma_net;

  bool empty() const { return sizes.empty() && lambda.empty(); }
};

/// Out-of-band controls for a run — everything that is not part of the
/// deterministic problem statement. Default-constructed = the plain
/// fire-and-forget run every existing caller gets.
struct OgwsControl {
  /// Called once per completed iteration with that iteration's summary
  /// (dual, certificate gap, max violation, timing). Runs on the calling
  /// thread, inside the optimization loop — keep it cheap.
  std::function<void(const OgwsIterate&)> observer;
  /// Cooperative cancellation, polled once per iteration. On cancellation
  /// the run returns the best iterate found so far with `cancelled` set.
  std::stop_token stop;
  /// Warm-start snapshot (borrowed; must outlive the call). nullptr: cold.
  const OgwsWarmStart* warm_start = nullptr;
  /// Record OgwsResult::warm for re-seeding later runs. Off by default for
  /// raw run_ogws callers: the snapshot costs an O(edges) multiplier copy
  /// per dual-improving iteration. api::SizingSession enables it by default
  /// (its results are warm-start seeds by contract) and exposes
  /// set_capture_warm_start(false) for fire-and-forget harnesses — the
  /// paper-reproduction benches opt out in bench_common.hpp.
  bool capture_warm_start = false;
  /// Kernel executor for the level-parallel timing/LRS passes (borrowed;
  /// must outlive the call). nullptr or threads() == 1 runs serial. Results
  /// are bit-identical either way (docs/ARCHITECTURE.md §Parallel kernels),
  /// which is why this lives in the out-of-band control block and not the
  /// options.
  util::Executor* executor = nullptr;
  /// Flow tracing (obs/trace.hpp): one span per OGWS iteration — with dual
  /// value, max KKT violation and nodes-moved metadata — and per LRS pass,
  /// recorded into this session. nullptr (the default) disables tracing at
  /// the cost of one pointer test per iteration; the optimization trajectory
  /// is bit-identical either way (tracing only reads iterate state).
  obs::TraceSession* trace = nullptr;
};

struct OgwsResult {
  /// Best feasible iterate (least area; least-violating when nothing ever
  /// reached feasibility), indexed by NodeId.
  std::vector<double> sizes;
  bool converged = false;
  /// Cancellation observed via OgwsControl::stop; `sizes` and the metric
  /// fields still describe the best iterate seen before the interrupt.
  bool cancelled = false;
  int iterations = 0;
  double area = 0.0;     ///< area of the returned sizes
  double dual = 0.0;     ///< best dual lower bound seen
  double rel_gap = 0.0;  ///< (area − dual) / area at termination
  double max_violation = 0.0;  ///< violation of the returned sizes
  std::vector<OgwsIterate> history;
  std::size_t workspace_bytes = 0;  ///< multiplier + analysis working set
  /// Snapshot for re-seeding a later run (sizes = the returned iterate,
  /// multipliers = the state that produced the best dual).
  OgwsWarmStart warm;
};

/// Run OGWS. The circuit's current sizes define the reference area used for
/// normalization; the returned sizes are written back into nothing — the
/// caller applies result.sizes if desired.
OgwsResult run_ogws(const netlist::Circuit& circuit,
                    const layout::CouplingSet& coupling, const Bounds& bounds,
                    const OgwsOptions& options = OgwsOptions{},
                    const OgwsControl& control = OgwsControl{});

}  // namespace lrsizer::core
