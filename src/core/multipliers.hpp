// Lagrange multiplier state (paper §4.2).
//
// One multiplier λ per circuit edge (delay constraints), plus β (power) and
// γ (crosstalk). Theorem 3 requires flow conservation on λ at every node
// except source/sink: Σ_out λ = Σ_in λ — the "Kirchhoff's current law"
// optimality condition. Algorithm OGWS's step A5 projects onto it after
// each subgradient update.
//
// Projection choice (docs/ARCHITECTURE.md, decision D2): exact Euclidean projection onto the KCL
// polytope is a QP, so — like practical LR sizers — we restore conservation
// with one *reverse-topological proportional rescaling* pass: processing
// nodes from the sink side, each node's in-edge multipliers are rescaled to
// sum to its (already final) out-edge sum. The sink's in-edges (the A0
// constraints' multipliers) are the boundary values, so delay-bound
// pressure propagates backward through the whole DAG, concentrating on
// edges whose own subgradient grew — i.e. critical paths.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "util/memtrack.hpp"
#include "util/parallel.hpp"

namespace lrsizer::core {

class MultiplierState {
 public:
  explicit MultiplierState(const netlist::Circuit& circuit);

  /// λ per EdgeId.
  std::vector<double> lambda;
  double beta = 0.0;
  double gamma = 0.0;
  /// Per-net crosstalk multipliers (paper §4.1's distributed-bound
  /// extension), indexed by owner NodeId; empty when the extension is off.
  std::vector<double> gamma_net;

  /// Start point: sink in-edges = 1, everything distributed backward evenly
  /// (KCL holds by construction); β, γ small positive values.
  void init_default(const netlist::Circuit& circuit);

  /// Clamp λ, β, γ at 0 (condition (4) of Theorem 6).
  void clamp_nonnegative();

  /// A5: restore flow conservation (see header comment). λ must be >= 0.
  /// With a non-serial executor the pass runs over the reverse-level
  /// wavefronts (a node's out-edges are in-edges of strictly earlier levels,
  /// so they are final when the node rescales); each node writes only its own
  /// in-edge slots, so the result is bit-identical to the serial pass.
  void project_flow(const netlist::Circuit& circuit, util::Executor* exec = nullptr);

  /// μ_i = Σ_{j ∈ input(i)} λ_ji for every node (source gets 0). Gathers per
  /// node over the in-edge CSR (ascending EdgeId, the same accumulation order
  /// as an edge scatter), so the parallel path is bit-identical.
  void compute_mu(const netlist::Circuit& circuit, std::vector<double>& mu,
                  util::Executor* exec = nullptr) const;

  /// Σ of sink in-edge multipliers (the -μ_sink·A0 constant of LRS₂).
  double sink_mu(const netlist::Circuit& circuit) const;

  /// max_i |Σ_out - Σ_in| / max(Σ_in, ε) over 1 <= i <= n+s; 0 after
  /// project_flow up to roundoff. Used by tests/diagnostics.
  double flow_residual(const netlist::Circuit& circuit) const;

  void account_memory(util::MemoryTracker& tracker) const;
};

}  // namespace lrsizer::core
