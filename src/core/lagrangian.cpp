#include "core/lagrangian.hpp"

#include "timing/metrics.hpp"

namespace lrsizer::core {

double lagrangian_value(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, const std::vector<double>& mu,
                        double mu_sink, double beta, const NoiseMultipliers& gamma,
                        const Bounds& bounds, timing::CouplingLoadMode mode) {
  timing::LoadAnalysis loads;
  timing::compute_loads(circuit, coupling, x, mode, loads);

  double value = timing::total_area(circuit, x);
  value += beta * (timing::total_cap(circuit, x) - bounds.cap_f);
  value += gamma.total * (coupling.noise_linear(x) - bounds.noise_f);
  if (gamma.per_net != nullptr && bounds.per_net_enabled()) {
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      const auto i = static_cast<std::size_t>(v);
      const double g = (*gamma.per_net)[i];
      if (g <= 0.0) continue;
      value += g * (coupling.owned_noise_linear(v, x) - bounds.per_net_noise_f[i]);
    }
  }
  for (netlist::NodeId v = 1; v < circuit.sink(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    const double delay = circuit.resistance(v, x[i]) * loads.cap_delay[i];
    value += mu[i] * delay;
  }
  value -= mu_sink * bounds.delay_s;
  return value;
}

}  // namespace lrsizer::core
