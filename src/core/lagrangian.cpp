#include "core/lagrangian.hpp"

#include "timing/metrics.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

namespace {

/// Theorem-4 L with the scalar terms precomputed and the per-node Elmore
/// delay supplied by `delay_of(v)` — shared by both public overloads so
/// their accumulation order (and thus their bits) is identical.
template <typename DelayFn>
double lagrangian_impl(const netlist::Circuit& circuit,
                       const layout::CouplingSet& coupling,
                       const std::vector<double>& x, const std::vector<double>& mu,
                       double mu_sink, double beta, const NoiseMultipliers& gamma,
                       const Bounds& bounds, const LagrangianTerms& terms,
                       DelayFn&& delay_of) {
  double value = terms.area;
  value += beta * (terms.cap - bounds.cap_f);
  value += gamma.total * (terms.noise - bounds.noise_f);
  if (gamma.per_net != nullptr && bounds.per_net_enabled()) {
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      const auto i = static_cast<std::size_t>(v);
      const double g = (*gamma.per_net)[i];
      if (g <= 0.0) continue;
      value += g * (coupling.owned_noise_linear(v, x) - bounds.per_net_noise_f[i]);
    }
  }
  for (netlist::NodeId v = 1; v < circuit.sink(); ++v) {
    value += mu[static_cast<std::size_t>(v)] * delay_of(v);
  }
  value -= mu_sink * bounds.delay_s;
  return value;
}

}  // namespace

double lagrangian_value(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, const std::vector<double>& mu,
                        double mu_sink, double beta, const NoiseMultipliers& gamma,
                        const Bounds& bounds, timing::CouplingLoadMode mode) {
  // Standalone evaluation: one fresh load pass, delays folded in on the fly,
  // scalar terms derived here. The OGWS hot loop uses the ArrivalAnalysis
  // overload instead and skips all of it.
  timing::LoadAnalysis loads;
  timing::compute_loads(circuit, coupling, x, mode, loads);
  const LagrangianTerms terms{timing::total_area(circuit, x),
                              timing::total_cap(circuit, x),
                              coupling.noise_linear(x)};
  return lagrangian_impl(circuit, coupling, x, mu, mu_sink, beta, gamma, bounds,
                         terms, [&](netlist::NodeId v) {
                           const auto i = static_cast<std::size_t>(v);
                           return circuit.resistance(v, x[i]) * loads.cap_delay[i];
                         });
}

double lagrangian_value(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, const std::vector<double>& mu,
                        double mu_sink, double beta, const NoiseMultipliers& gamma,
                        const Bounds& bounds, const timing::ArrivalAnalysis& arrivals,
                        const LagrangianTerms& terms) {
  // ArrivalAnalysis::delay[v] is exactly r_v·C_v at `x`, so this is
  // bit-identical to the load-pass overload — minus the pass and the three
  // scalar sweeps.
  LRSIZER_ASSERT(arrivals.delay.size() == x.size());
  return lagrangian_impl(circuit, coupling, x, mu, mu_sink, beta, gamma, bounds,
                         terms, [&](netlist::NodeId v) {
                           return arrivals.delay[static_cast<std::size_t>(v)];
                         });
}

}  // namespace lrsizer::core
