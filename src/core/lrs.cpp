#include "core/lrs.hpp"

#include <algorithm>
#include <cmath>

#include "timing/upstream.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

double optimal_resize(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling,
                      const std::vector<double>& mu, double beta,
                      const NoiseMultipliers& gamma, const std::vector<double>& x,
                      const timing::LoadAnalysis& loads,
                      const std::vector<double>& r_up, netlist::NodeId v) {
  const auto i = static_cast<std::size_t>(v);

  double couple_nbr = 0.0;         // Σ ĉ_ij x_j
  double couple_gamma_coef = 0.0;  // Σ γ_ij ĉ_ij (γ_ij per the pair's owner)
  for (const auto& nb : coupling.neighbors(v)) {
    couple_nbr += nb.c_hat * x[static_cast<std::size_t>(nb.other)];
    const netlist::NodeId owner = coupling.pairs()[static_cast<std::size_t>(nb.pair)].a;
    couple_gamma_coef += gamma.for_owner(owner) * nb.c_hat;
  }

  const double numerator =
      mu[i] * circuit.unit_res(v) * (loads.cap_prime[i] + couple_nbr);
  const double denominator = circuit.area_weight(v) +
                             (beta + r_up[i]) * circuit.unit_cap(v) +
                             couple_gamma_coef;
  LRSIZER_ASSERT_MSG(denominator > 0.0, "area weights must be positive");
  return std::sqrt(std::max(numerator, 0.0) / denominator);
}

LrsStats run_lrs(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 const std::vector<double>& mu, double beta,
                 const NoiseMultipliers& gamma, const LrsOptions& options,
                 std::vector<double>& x, LrsWorkspace& workspace) {
  LRSIZER_ASSERT(x.size() == static_cast<std::size_t>(circuit.num_nodes()));
  LRSIZER_ASSERT(mu.size() == x.size());

  // S1: start from the lower bounds (or the caller's x when warm).
  if (!options.warm_start) {
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      x[static_cast<std::size_t>(v)] = circuit.lower_bound(v);
    }
  }

  LrsStats stats;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    // S2 + S3: global analyses at the current sizes.
    timing::compute_loads(circuit, coupling, x, options.mode, workspace.loads);
    timing::compute_weighted_upstream(circuit, x, mu, workspace.r_up);

    // S4: greedy closed-form resize, components in index order. Neighbor
    // sizes are read live (Gauss-Seidel), matching the paper's sweep.
    double max_rel_change = 0.0;
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      const auto i = static_cast<std::size_t>(v);
      const double opt = optimal_resize(circuit, coupling, mu, beta, gamma, x,
                                        workspace.loads, workspace.r_up, v);
      const double next =
          std::clamp(opt, circuit.lower_bound(v), circuit.upper_bound(v));
      max_rel_change = std::max(max_rel_change, std::abs(next - x[i]) / x[i]);
      x[i] = next;
    }

    stats.passes = pass + 1;
    stats.max_rel_change = max_rel_change;
    // S5: "repeat until no improvement".
    if (max_rel_change < options.tol) break;
  }
  return stats;
}

}  // namespace lrsizer::core
