#include "core/lrs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "layout/coloring.hpp"
#include "obs/trace.hpp"
#include "timing/upstream.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

namespace {

/// Fixed chunk size of the parallel colored sweep (Executor contract).
constexpr std::int32_t kGrain = 32;

/// Relative-change denominator floor: guards the S5 fixpoint metric against
/// x_i == 0 (a 0/0 or y/0 there turns max_rel_change into NaN and silently
/// disables the convergence test). Any positive x_i a caller can legally
/// pass is far above this, so the guard never changes a healthy value.
constexpr double kTinySize = std::numeric_limits<double>::min();

}  // namespace

double optimal_resize(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling,
                      const std::vector<double>& mu, double beta,
                      const NoiseMultipliers& gamma, const std::vector<double>& x,
                      const timing::LoadAnalysis& loads,
                      const std::vector<double>& r_up, netlist::NodeId v) {
  const auto i = static_cast<std::size_t>(v);

  double couple_nbr = 0.0;         // Σ ĉ_ij x_j
  double couple_gamma_coef = 0.0;  // Σ γ_ij ĉ_ij (γ_ij per the pair's owner)
  for (const auto& nb : coupling.neighbors(v)) {
    couple_nbr += nb.c_hat * x[static_cast<std::size_t>(nb.other)];
    const netlist::NodeId owner = coupling.pairs()[static_cast<std::size_t>(nb.pair)].a;
    couple_gamma_coef += gamma.for_owner(owner) * nb.c_hat;
  }

  const double numerator =
      mu[i] * circuit.unit_res(v) * (loads.cap_prime[i] + couple_nbr);
  const double denominator = circuit.area_weight(v) +
                             (beta + r_up[i]) * circuit.unit_cap(v) +
                             couple_gamma_coef;
  LRSIZER_ASSERT_MSG(denominator > 0.0, "area weights must be positive");
  return std::sqrt(std::max(numerator, 0.0) / denominator);
}

LrsStats run_lrs(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 const std::vector<double>& mu, double beta,
                 const NoiseMultipliers& gamma, const LrsOptions& options,
                 std::vector<double>& x, LrsWorkspace& workspace,
                 const LrsRuntime& runtime) {
  LRSIZER_ASSERT(x.size() == static_cast<std::size_t>(circuit.num_nodes()));
  LRSIZER_ASSERT(mu.size() == x.size());

  // S1: start from the lower bounds (or the caller's x when warm). The S5
  // relative-change test divides by the previous size, so the start point
  // must be positive — lower bounds are (asserted by Circuit::validate) and
  // warm starts are checked here.
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (!options.warm_start) {
      LRSIZER_ASSERT_MSG(circuit.lower_bound(v) > 0.0,
                         "LRS needs positive lower bounds");
      x[i] = circuit.lower_bound(v);
    } else {
      LRSIZER_ASSERT_MSG(x[i] > 0.0, "LRS warm start needs positive sizes");
    }
  }

  util::Executor* exec = util::serial(runtime.executor) ? nullptr : runtime.executor;

  // Color schedule for the parallel sweep: the caller's, or a local one.
  std::optional<netlist::LevelSchedule> local_colors;
  const netlist::LevelSchedule* colors = runtime.colors;
  if (exec != nullptr && colors == nullptr) {
    local_colors.emplace(layout::build_coupling_colors(circuit, coupling));
    colors = &*local_colors;
  }

  // Pass-invariant terms of opt_i, derived once instead of per pass per
  // node (μ, γ and the coupling coefficients are all fixed for this call).
  workspace.mu_res.assign(x.size(), 0.0);
  workspace.gamma_coef.assign(x.size(), 0.0);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    const auto i = static_cast<std::size_t>(v);
    workspace.mu_res[i] = mu[i] * circuit.unit_res(v);
    double coef = 0.0;
    for (const auto& nb : coupling.neighbors(v)) {
      const netlist::NodeId owner =
          coupling.pairs()[static_cast<std::size_t>(nb.pair)].a;
      coef += gamma.for_owner(owner) * nb.c_hat;
    }
    workspace.gamma_coef[i] = coef;
  }

  // S4 per-component body: Theorem 5's closed-form resize (the hoisted twin
  // of optimal_resize — tests assert the fixpoint against the public
  // function). Neighbor sizes are read live (Gauss-Seidel, matching the
  // paper's sweep); under the colored schedule every smaller-id neighbor is
  // already updated and every larger-id neighbor is not yet — exactly the
  // index-order semantics.
  auto resize_node = [&](netlist::NodeId v) -> double {
    const auto i = static_cast<std::size_t>(v);
    double couple_nbr = 0.0;  // Σ ĉ_ij x_j
    for (const auto& nb : coupling.neighbors(v)) {
      couple_nbr += nb.c_hat * x[static_cast<std::size_t>(nb.other)];
    }
    const double numerator =
        workspace.mu_res[i] * (workspace.loads.cap_prime[i] + couple_nbr);
    const double denominator = circuit.area_weight(v) +
                               (beta + workspace.r_up[i]) * circuit.unit_cap(v) +
                               workspace.gamma_coef[i];
    LRSIZER_ASSERT_MSG(denominator > 0.0, "area weights must be positive");
    const double opt = std::sqrt(std::max(numerator, 0.0) / denominator);
    const double next =
        std::clamp(opt, circuit.lower_bound(v), circuit.upper_bound(v));
    const double rel_change = std::abs(next - x[i]) / std::max(x[i], kTinySize);
    x[i] = next;
    return rel_change;
  };

  auto sweep = [&]() -> double {
    double max_rel_change = 0.0;
    if (exec == nullptr) {
      for (netlist::NodeId v = circuit.first_component();
           v < circuit.end_component(); ++v) {
        max_rel_change = std::max(max_rel_change, resize_node(v));
      }
      return max_rel_change;
    }
    for (std::int32_t c = 0; c < colors->num_levels(); ++c) {
      const auto nodes = colors->level(c);
      const auto count = static_cast<std::int32_t>(nodes.size());
      // Fixed-shape max reduction: one partial per (count, kGrain) chunk,
      // combined in chunk order — and max is exact, so the combined value is
      // bit-identical to the sequential sweep's regardless of thread count.
      const std::int32_t chunks = util::num_chunks(count, kGrain);
      workspace.partials.assign(static_cast<std::size_t>(chunks), 0.0);
      exec->run_chunks(count, kGrain, [&](std::int32_t begin, std::int32_t end) {
        double local = 0.0;
        for (std::int32_t k = begin; k < end; ++k) {
          local = std::max(local, resize_node(nodes[static_cast<std::size_t>(k)]));
        }
        workspace.partials[static_cast<std::size_t>(begin / kGrain)] = local;
      });
      for (const double partial : workspace.partials) {
        max_rel_change = std::max(max_rel_change, partial);
      }
    }
    return max_rel_change;
  };

  // S2 at the start point; subsequent passes refresh the loads *after* the
  // sweep (see the hand-back contract in lrs.hpp), which serves as the next
  // pass's S2 and, on exit, as the caller's final-x analysis.
  timing::compute_loads(circuit, coupling, x, options.mode, workspace.loads, exec);

  LrsStats stats;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    obs::ScopedSpan span(runtime.trace, "lrs_pass", "lrs");

    // S3: μ-weighted upstream resistances at the current sizes.
    timing::compute_weighted_upstream(circuit, x, mu, workspace.r_up, exec);

    // S4: greedy closed-form resize, components in color order (= index
    // order semantics, see above).
    const double max_rel_change = sweep();

    timing::compute_loads(circuit, coupling, x, options.mode, workspace.loads, exec);

    stats.passes = pass + 1;
    stats.max_rel_change = max_rel_change;
    span.arg("pass", pass + 1);
    span.arg("max_rel_change", max_rel_change);
    // S5: "repeat until no improvement".
    if (max_rel_change < options.tol) break;
  }
  return stats;
}

}  // namespace lrsizer::core
