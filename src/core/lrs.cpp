#include "core/lrs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "layout/coloring.hpp"
#include "obs/trace.hpp"
#include "timing/upstream.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

namespace {

/// Fixed chunk size of the parallel colored sweep (Executor contract).
constexpr std::int32_t kGrain = 32;

/// Relative-change denominator floor: guards the S5 fixpoint metric against
/// x_i == 0 (a 0/0 or y/0 there turns max_rel_change into NaN and silently
/// disables the convergence test). Any positive x_i a caller can legally
/// pass is far above this, so the guard never changes a healthy value.
constexpr double kTinySize = std::numeric_limits<double>::min();

/// The worklist drift test |a − b| / max(|b|, tiny) > eps, in multiply form
/// (the seeding scan runs it several times per component per pass, and a
/// divide there costs more than everything else in the scan).
bool drifted(double a, double b, double eps) {
  return std::abs(a - b) > eps * std::max(std::abs(b), kTinySize);
}

}  // namespace

const char* sweep_mode_name(SweepMode mode) {
  return mode == SweepMode::kWorklist ? "worklist" : "dense";
}

double optimal_resize(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling,
                      const std::vector<double>& mu, double beta,
                      const NoiseMultipliers& gamma, const std::vector<double>& x,
                      const timing::LoadAnalysis& loads,
                      const std::vector<double>& r_up, netlist::NodeId v) {
  const auto i = static_cast<std::size_t>(v);

  double couple_nbr = 0.0;         // Σ ĉ_ij x_j
  double couple_gamma_coef = 0.0;  // Σ γ_ij ĉ_ij (γ_ij per the pair's owner)
  for (const auto& nb : coupling.neighbors(v)) {
    couple_nbr += nb.c_hat * x[static_cast<std::size_t>(nb.other)];
    const netlist::NodeId owner = coupling.pairs()[static_cast<std::size_t>(nb.pair)].a;
    couple_gamma_coef += gamma.for_owner(owner) * nb.c_hat;
  }

  const double numerator =
      mu[i] * circuit.unit_res(v) * (loads.cap_prime[i] + couple_nbr);
  const double denominator = circuit.area_weight(v) +
                             (beta + r_up[i]) * circuit.unit_cap(v) +
                             couple_gamma_coef;
  LRSIZER_ASSERT_MSG(denominator > 0.0, "area weights must be positive");
  return std::sqrt(std::max(numerator, 0.0) / denominator);
}

LrsStats run_lrs(const netlist::Circuit& circuit, const layout::CouplingSet& coupling,
                 const std::vector<double>& mu, double beta,
                 const NoiseMultipliers& gamma, const LrsOptions& options,
                 std::vector<double>& x, LrsWorkspace& workspace,
                 const LrsRuntime& runtime) {
  LRSIZER_ASSERT(x.size() == static_cast<std::size_t>(circuit.num_nodes()));
  LRSIZER_ASSERT(mu.size() == x.size());

  const bool worklist = options.sweep == SweepMode::kWorklist;
  LRSIZER_ASSERT_MSG(options.worklist_eps >= 0.0 &&
                         (options.worklist_eps == 0.0 ||
                          options.worklist_eps < options.tol),
                     "worklist_eps must be 0 (auto) or in (0, tol)");
  const double wl_eps =
      options.worklist_eps > 0.0 ? options.worklist_eps : options.tol / 8.0;
  // A worklist run resumes its own prior state: the persisted x, loads and
  // the snapshots describing when each node was last evaluated. Anything
  // else — first worklist call, circuit change, load-mode switch, or an
  // intervening dense run (which rewrites x without maintaining snapshots)
  // — starts cold.
  const bool wl_resume = worklist && workspace.worklist_valid &&
                         workspace.pending.size() == x.size() &&
                         workspace.exit_x.size() == x.size() &&
                         workspace.loads_mode == static_cast<int>(options.mode);
  workspace.worklist_valid = false;

  // S1: start from the lower bounds (or the caller's x when warm). The S5
  // relative-change test divides by the previous size, so the start point
  // must be positive — lower bounds are (asserted by Circuit::validate) and
  // warm starts are checked here. A resumed worklist run keeps its own x —
  // the convex subproblem has a unique optimum reachable from any positive
  // start, and re-solving from the previous solution is what makes the
  // frontier small.
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (!options.warm_start && !wl_resume) {
      LRSIZER_ASSERT_MSG(circuit.lower_bound(v) > 0.0,
                         "LRS needs positive lower bounds");
      x[i] = circuit.lower_bound(v);
    } else {
      LRSIZER_ASSERT_MSG(x[i] > 0.0, "LRS warm start needs positive sizes");
    }
  }
  if (worklist && !wl_resume) {
    workspace.pending.assign(x.size(), 1);
    workspace.snap_num.assign(x.size(), 0.0);
    workspace.snap_den.assign(x.size(), 0.0);
    workspace.snap_x = x;
    workspace.loads_dirty.assign(x.size(), 0);
  }

  util::Executor* exec = util::serial(runtime.executor) ? nullptr : runtime.executor;

  // Color schedule for the parallel sweep: the caller's, or a local one.
  std::optional<netlist::LevelSchedule> local_colors;
  const netlist::LevelSchedule* colors = runtime.colors;
  if (exec != nullptr && colors == nullptr) {
    local_colors.emplace(layout::build_coupling_colors(circuit, coupling));
    colors = &*local_colors;
  }

  // Pass-invariant terms of opt_i, derived once instead of per pass per
  // node (μ, γ and the coupling coefficients are all fixed for this call).
  workspace.mu_res.assign(x.size(), 0.0);
  workspace.gamma_coef.assign(x.size(), 0.0);
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
       ++v) {
    const auto i = static_cast<std::size_t>(v);
    workspace.mu_res[i] = mu[i] * circuit.unit_res(v);
    double coef = 0.0;
    for (const auto& nb : coupling.neighbors(v)) {
      const netlist::NodeId owner =
          coupling.pairs()[static_cast<std::size_t>(nb.pair)].a;
      coef += gamma.for_owner(owner) * nb.c_hat;
    }
    workspace.gamma_coef[i] = coef;
  }

  // S4 per-component body: Theorem 5's closed-form resize (the hoisted twin
  // of optimal_resize — tests assert the fixpoint against the public
  // function). Neighbor sizes are read live (Gauss-Seidel, matching the
  // paper's sweep); under the colored schedule every smaller-id neighbor is
  // already updated and every larger-id neighbor is not yet — exactly the
  // index-order semantics.
  auto resize_node = [&](netlist::NodeId v, bool record_snapshots) -> double {
    const auto i = static_cast<std::size_t>(v);
    double couple_nbr = 0.0;  // Σ ĉ_ij x_j
    for (const auto& nb : coupling.neighbors(v)) {
      couple_nbr += nb.c_hat * x[static_cast<std::size_t>(nb.other)];
    }
    const double numerator =
        workspace.mu_res[i] * (workspace.loads.cap_prime[i] + couple_nbr);
    const double denominator = circuit.area_weight(v) +
                               (beta + workspace.r_up[i]) * circuit.unit_cap(v) +
                               workspace.gamma_coef[i];
    LRSIZER_ASSERT_MSG(denominator > 0.0, "area weights must be positive");
    if (record_snapshots) {
      // Worklist bookkeeping: the coupling-free numerator term and the full
      // denominator at this evaluation — next pass's frontier seeding
      // re-enters the node when either drifts more than wl_eps.
      workspace.snap_num[i] = workspace.mu_res[i] * workspace.loads.cap_prime[i];
      workspace.snap_den[i] = denominator;
    }
    const double opt = std::sqrt(std::max(numerator, 0.0) / denominator);
    const double next =
        std::clamp(opt, circuit.lower_bound(v), circuit.upper_bound(v));
    const double rel_change = std::abs(next - x[i]) / std::max(x[i], kTinySize);
    x[i] = next;
    return rel_change;
  };

  auto sweep = [&]() -> double {
    double max_rel_change = 0.0;
    if (exec == nullptr) {
      for (netlist::NodeId v = circuit.first_component();
           v < circuit.end_component(); ++v) {
        max_rel_change = std::max(max_rel_change, resize_node(v, false));
      }
      return max_rel_change;
    }
    for (std::int32_t c = 0; c < colors->num_levels(); ++c) {
      const auto nodes = colors->level(c);
      const auto count = static_cast<std::int32_t>(nodes.size());
      // Fixed-shape max reduction: one partial per (count, kGrain) chunk,
      // combined in chunk order — and max is exact, so the combined value is
      // bit-identical to the sequential sweep's regardless of thread count.
      const std::int32_t chunks = util::num_chunks(count, kGrain);
      workspace.partials.assign(static_cast<std::size_t>(chunks), 0.0);
      exec->run_chunks(count, kGrain, [&](std::int32_t begin, std::int32_t end) {
        double local = 0.0;
        for (std::int32_t k = begin; k < end; ++k) {
          local = std::max(local,
                           resize_node(nodes[static_cast<std::size_t>(k)], false));
        }
        workspace.partials[static_cast<std::size_t>(begin / kGrain)] = local;
      });
      for (const double partial : workspace.partials) {
        max_rel_change = std::max(max_rel_change, partial);
      }
    }
    return max_rel_change;
  };

  // --- Worklist mode (SweepMode::kWorklist). ---------------------------------
  // Evaluate node v from the frontier: clear its flag, resize with snapshot
  // recording, and when the size has drifted more than wl_eps since it last
  // flagged its neighbors, mark every coupling neighbor dirty (their
  // Σ ĉ_ij x_j term moved). Under the order-preserving distance-2 coloring,
  // same-color nodes share no neighbor, so the flag writes are disjoint and
  // the parallel sweep is bit-identical to the serial ascending-index one: a
  // flagged neighbor with a larger index lands in a later color (picked up
  // this pass), a smaller index in an earlier color (picked up next pass) —
  // exactly the serial semantics.
  auto process_worklist_node = [&](netlist::NodeId v) -> double {
    const auto i = static_cast<std::size_t>(v);
    workspace.pending[i] = 0;
    const double x_before = x[i];
    const double rel_change = resize_node(v, true);
    if (!workspace.processed.empty()) workspace.processed[i] = 1;
    if (x[i] != x_before) {
      // Exact (bit-level) move: the incremental load pass must re-derive
      // this node and every coupling neighbor (their Σ ĉ_ij x_j term reads
      // x_i). Writes stay disjoint under the distance-2 coloring: peers of
      // the same color share no neighbor and never write each other's slot.
      workspace.loads_dirty[i] = 1;
      for (const auto& nb : coupling.neighbors(v)) {
        workspace.loads_dirty[static_cast<std::size_t>(nb.other)] = 1;
      }
    }
    if (drifted(x[i], workspace.snap_x[i], wl_eps)) {
      for (const auto& nb : coupling.neighbors(v)) {
        workspace.pending[static_cast<std::size_t>(nb.other)] = 1;
      }
      workspace.snap_x[i] = x[i];
    }
    return rel_change;
  };

  // Frontier seeding: re-enter any clean node whose recomputed resize inputs
  // (numerator term from the refreshed loads/μ, denominator from β, the
  // refreshed upstream resistance and γ) drifted more than wl_eps since its
  // last evaluation. Neighbor-size drift is handled by the flags above, so
  // these two O(1) checks cover every input of Theorem 5's formula.
  auto seed_frontier = [&]() {
    for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
         ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (workspace.pending[i] != 0) continue;
      const double num = workspace.mu_res[i] * workspace.loads.cap_prime[i];
      const double den = circuit.area_weight(v) +
                         (beta + workspace.r_up[i]) * circuit.unit_cap(v) +
                         workspace.gamma_coef[i];
      if (drifted(num, workspace.snap_num[i], wl_eps) ||
          drifted(den, workspace.snap_den[i], wl_eps)) {
        workspace.pending[i] = 1;
      }
    }
  };

  // One worklist pass: evaluate exactly the frontier. Fixed-shape max / sum
  // reductions as in the dense sweep (sum of per-chunk counts is exact, so
  // chunk order cannot change it).
  auto worklist_sweep = [&](long long& processed_count) -> double {
    double max_rel_change = 0.0;
    processed_count = 0;
    if (exec == nullptr) {
      for (netlist::NodeId v = circuit.first_component();
           v < circuit.end_component(); ++v) {
        if (workspace.pending[static_cast<std::size_t>(v)] == 0) continue;
        max_rel_change = std::max(max_rel_change, process_worklist_node(v));
        ++processed_count;
      }
      return max_rel_change;
    }
    for (std::int32_t c = 0; c < colors->num_levels(); ++c) {
      const auto nodes = colors->level(c);
      const auto count = static_cast<std::int32_t>(nodes.size());
      const std::int32_t chunks = util::num_chunks(count, kGrain);
      workspace.partials.assign(static_cast<std::size_t>(chunks), 0.0);
      workspace.count_partials.assign(static_cast<std::size_t>(chunks), 0);
      exec->run_chunks(count, kGrain, [&](std::int32_t begin, std::int32_t end) {
        double local = 0.0;
        long long local_count = 0;
        for (std::int32_t k = begin; k < end; ++k) {
          const netlist::NodeId v = nodes[static_cast<std::size_t>(k)];
          if (workspace.pending[static_cast<std::size_t>(v)] == 0) continue;
          local = std::max(local, process_worklist_node(v));
          ++local_count;
        }
        workspace.partials[static_cast<std::size_t>(begin / kGrain)] = local;
        workspace.count_partials[static_cast<std::size_t>(begin / kGrain)] =
            local_count;
      });
      for (const double partial : workspace.partials) {
        max_rel_change = std::max(max_rel_change, partial);
      }
      for (const long long partial : workspace.count_partials) {
        processed_count += partial;
      }
    }
    return max_rel_change;
  };

  // Incremental load maintenance (worklist mode): re-derive exactly the
  // dirty nodes in the same descending order the dense pass uses. A node's
  // loads are a pure function of its own/neighbor sizes and its children's
  // load_in (timing::compute_node_loads — the dense pass's own body), so
  // recomputing a superset of the nodes whose inputs changed yields loads
  // bit-identical to a full pass; a changed load_in propagates to the fanins
  // (smaller indices — visited later in this order). load_in is the input
  // capacitance for gates, so the propagation dies at stage boundaries and
  // the closure stays near the movers.
  auto incremental_loads = [&]() {
    for (netlist::NodeId v = circuit.sink() - 1; v >= 1; --v) {
      const auto i = static_cast<std::size_t>(v);
      if (workspace.loads_dirty[i] == 0) continue;
      workspace.loads_dirty[i] = 0;
      const double load_in_before = workspace.loads.load_in[i];
      timing::compute_node_loads(circuit, coupling, x, options.mode,
                                 workspace.loads, v);
      if (workspace.loads.load_in[i] != load_in_before) {
        for (const netlist::NodeId u : circuit.inputs(v)) {
          workspace.loads_dirty[static_cast<std::size_t>(u)] = 1;
        }
      }
    }
  };

  // S2 at the start point; subsequent passes refresh the loads *after* the
  // sweep (see the hand-back contract in lrs.hpp), which serves as the next
  // pass's S2 and, on exit, as the caller's final-x analysis. A resumed
  // worklist run already holds the loads of its exit x, so instead of a full
  // pass it diffs the incoming x against that exit x — callers may legally
  // hand back a modified x — and repairs incrementally.
  if (wl_resume) {
    for (netlist::NodeId v = circuit.first_component();
         v < circuit.end_component(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (x[i] == workspace.exit_x[i]) continue;
      workspace.pending[i] = 1;
      workspace.loads_dirty[i] = 1;
      for (const auto& nb : coupling.neighbors(v)) {
        workspace.loads_dirty[static_cast<std::size_t>(nb.other)] = 1;
      }
      if (drifted(x[i], workspace.snap_x[i], wl_eps)) {
        for (const auto& nb : coupling.neighbors(v)) {
          workspace.pending[static_cast<std::size_t>(nb.other)] = 1;
        }
        workspace.snap_x[i] = x[i];
      }
    }
    incremental_loads();
  } else {
    timing::compute_loads(circuit, coupling, x, options.mode, workspace.loads, exec);
  }

  LrsStats stats;
  const long long num_components =
      static_cast<long long>(circuit.end_component() - circuit.first_component());
  // Worklist stop protocol: each pass begins with a seeding scan that
  // recomputes every component's resize inputs against its last-evaluated
  // snapshot, so an *empty* frontier certifies that every component is
  // ε-stationary (wl_eps < tol) — that scan IS the convergence proof, and no
  // dense verification pass is needed. The dense tol test is not consulted:
  // a mover above wl_eps always flags its coupling neighbors, so the loop
  // cannot stop while any node still has a stale input.
  for (int pass = 0; pass < options.max_passes; ++pass) {
    obs::ScopedSpan span(runtime.trace, "lrs_pass", "lrs");

    // S3: μ-weighted upstream resistances at the current sizes.
    timing::compute_weighted_upstream(circuit, x, mu, workspace.r_up, exec);

    // S4: greedy closed-form resize, components in color order (= index
    // order semantics, see above).
    double max_rel_change = 0.0;
    long long processed_count = 0;
    if (!worklist) {
      max_rel_change = sweep();
      processed_count = num_components;
    } else {
      seed_frontier();
      bool any_pending = false;
      for (netlist::NodeId v = circuit.first_component();
           v < circuit.end_component(); ++v) {
        if (workspace.pending[static_cast<std::size_t>(v)] != 0) {
          any_pending = true;
          break;
        }
      }
      if (!any_pending) {
        span.arg("pass", pass + 1);
        span.arg("nodes_processed", 0.0);
        break;  // frontier empty: every component ε-stationary — converged
      }
      if (runtime.probe != nullptr) {
        workspace.processed.assign(x.size(), 0);
        if (runtime.probe->on_pass_begin) {
          runtime.probe->on_pass_begin(pass, x, workspace.loads, workspace.r_up,
                                       workspace.pending);
        }
      } else {
        workspace.processed.clear();
      }
      max_rel_change = worklist_sweep(processed_count);
      if (runtime.probe != nullptr && runtime.probe->on_pass_end) {
        runtime.probe->on_pass_end(pass, workspace.processed);
      }
    }

    // Refresh the loads at the post-sweep x. The worklist repair recomputes
    // only the movers' closure but is bit-identical to the full pass.
    if (worklist) {
      incremental_loads();
    } else {
      timing::compute_loads(circuit, coupling, x, options.mode, workspace.loads,
                            exec);
    }

    stats.passes = pass + 1;
    stats.max_rel_change = max_rel_change;
    stats.nodes_processed += processed_count;
    span.arg("pass", pass + 1);
    span.arg("max_rel_change", max_rel_change);
    span.arg("nodes_processed", static_cast<double>(processed_count));
    // S5: "repeat until no improvement" — dense stops at tol; worklist stops
    // above, when the frontier drains.
    if (!worklist && max_rel_change < options.tol) break;
  }
  if (worklist) {
    workspace.exit_x = x;
    workspace.loads_mode = static_cast<int>(options.mode);
  }
  workspace.worklist_valid = worklist;
  return stats;
}

}  // namespace lrsizer::core
