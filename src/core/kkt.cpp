#include "core/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "timing/arrival.hpp"
#include "timing/metrics.hpp"
#include "timing/upstream.hpp"
#include "util/assert.hpp"

namespace lrsizer::core {

double KktResiduals::max_residual() const {
  return std::max({flow, stationarity, complementary, primal_delay, primal_power,
                   primal_noise});
}

KktResiduals check_kkt(const netlist::Circuit& circuit,
                       const layout::CouplingSet& coupling,
                       const MultiplierState& multipliers, const Bounds& bounds,
                       const std::vector<double>& x,
                       timing::CouplingLoadMode mode) {
  KktResiduals res;

  // (1) flow conservation.
  res.flow = multipliers.flow_residual(circuit);

  // Shared analyses.
  std::vector<double> mu;
  multipliers.compute_mu(circuit, mu);
  timing::LoadAnalysis loads;
  timing::compute_loads(circuit, coupling, x, mode, loads);
  std::vector<double> r_up;
  timing::compute_weighted_upstream(circuit, x, mu, r_up);
  timing::ArrivalAnalysis arrivals;
  timing::compute_arrivals(circuit, x, loads, arrivals);

  // (5) stationarity of the sizing.
  for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    const double opt =
        optimal_resize(circuit, coupling, mu, multipliers.beta, multipliers.gamma, x,
                       loads, r_up, v);
    const double target = std::clamp(opt, circuit.lower_bound(v), circuit.upper_bound(v));
    res.stationarity =
        std::max(res.stationarity, std::abs(x[i] - target) / std::max(x[i], 1e-30));
  }

  // (2) complementary slackness, normalized per constraint family. The λ
  // slacks are scaled by A0 and by the largest multiplier so the products
  // are dimensionless.
  double lambda_max = 1e-30;
  for (double l : multipliers.lambda) lambda_max = std::max(lambda_max, l);
  for (netlist::NodeId v = 1; v < circuit.num_nodes(); ++v) {
    const auto in_nodes = circuit.inputs(v);
    const auto in_edges = circuit.input_edges(v);
    for (std::size_t idx = 0; idx < in_edges.size(); ++idx) {
      const auto j = static_cast<std::size_t>(in_nodes[idx]);
      const auto i = static_cast<std::size_t>(v);
      double slack = 0.0;
      if (v == circuit.sink()) {
        slack = bounds.delay_s - arrivals.arrival[j];
      } else if (circuit.is_driver(v)) {
        slack = arrivals.arrival[i] - arrivals.delay[i];
      } else {
        slack = arrivals.arrival[i] - arrivals.arrival[j] - arrivals.delay[i];
      }
      const double product = (multipliers.lambda[static_cast<std::size_t>(in_edges[idx])] /
                              lambda_max) *
                             (slack / bounds.delay_s);
      res.complementary = std::max(res.complementary, std::abs(product));
    }
  }
  const double cap = timing::total_cap(circuit, x);
  const double noise = coupling.noise_linear(x);
  if (multipliers.beta > 0.0) {
    res.complementary = std::max(
        res.complementary, std::abs((bounds.cap_f - cap) / bounds.cap_f));
  }
  if (multipliers.gamma > 0.0) {
    res.complementary = std::max(
        res.complementary, std::abs((bounds.noise_f - noise) / bounds.noise_f));
  }

  // (3) primal feasibility.
  res.primal_delay =
      std::max(0.0, (arrivals.critical_delay - bounds.delay_s) / bounds.delay_s);
  res.primal_power = std::max(0.0, (cap - bounds.cap_f) / bounds.cap_f);
  res.primal_noise = std::max(0.0, (noise - bounds.noise_f) / bounds.noise_f);

  // (4) holds by construction after clamp_nonnegative(); assert anyway.
  for (double l : multipliers.lambda) LRSIZER_ASSERT(l >= 0.0);
  LRSIZER_ASSERT(multipliers.beta >= 0.0 && multipliers.gamma >= 0.0);

  return res;
}

}  // namespace lrsizer::core
