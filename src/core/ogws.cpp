#include "core/ogws.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/lagrangian.hpp"
#include "layout/coloring.hpp"
#include "obs/trace.hpp"
#include "timing/arrival.hpp"
#include "timing/metrics.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace lrsizer::core {

namespace {

double relative_violation(double value, double bound) {
  LRSIZER_ASSERT(bound > 0.0);
  return (value - bound) / bound;
}

/// Chunk size of the parallel dual-step loops (fixed — the Executor
/// determinism contract keys chunk shapes to (n, grain) only).
constexpr std::int32_t kDualGrain = 64;

}  // namespace

void dual_ascent_step(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling, const Bounds& bounds,
                      const OgwsOptions& options,
                      const timing::ArrivalAnalysis& arrivals,
                      const std::vector<double>& x, double cap, double noise,
                      double rho, const DualScales& scales,
                      MultiplierState& multipliers, util::Executor* exec) {
  if (util::serial(exec)) exec = nullptr;
  const bool per_net = bounds.per_net_enabled();

  // Chunked node-range dispatcher. Every body writes only slots owned by its
  // node (its in-edge λ entries, its own γ_net) and reads only the frozen
  // arrival analysis / iterate, so chunk execution order cannot change the
  // result — the parallel path is bit-identical to the serial one.
  auto for_nodes = [&](netlist::NodeId first, netlist::NodeId last, auto&& body) {
    const auto count = static_cast<std::int32_t>(last - first);
    if (exec == nullptr) {
      for (std::int32_t k = 0; k < count; ++k) body(first + k);
      return;
    }
    exec->run_chunks(count, kDualGrain, [&](std::int32_t begin, std::int32_t end) {
      for (std::int32_t k = begin; k < end; ++k) body(first + k);
    });
  };

  if (options.step_rule == StepRule::kSubgradient) {
    for_nodes(1, circuit.num_nodes(), [&](netlist::NodeId v) {
      const auto in_nodes = circuit.inputs(v);
      const auto in_edges = circuit.input_edges(v);
      for (std::size_t idx = 0; idx < in_edges.size(); ++idx) {
        const auto j = static_cast<std::size_t>(in_nodes[idx]);
        const auto i = static_cast<std::size_t>(v);
        double slack = 0.0;  // in seconds
        if (v == circuit.sink()) {
          slack = arrivals.arrival[j] - bounds.delay_s;
        } else if (circuit.is_driver(v)) {
          slack = arrivals.delay[i] - arrivals.arrival[i];
        } else {
          slack = arrivals.arrival[j] + arrivals.delay[i] - arrivals.arrival[i];
        }
        multipliers.lambda[static_cast<std::size_t>(in_edges[idx])] +=
            rho * scales.lambda_scale * (slack / bounds.delay_s);
      }
    });
    multipliers.beta += rho * scales.beta_scale * relative_violation(cap, bounds.cap_f);
    multipliers.gamma +=
        rho * scales.gamma_scale * relative_violation(noise, bounds.noise_f);
    if (per_net) {
      for_nodes(circuit.first_component(), circuit.end_component(),
                [&](netlist::NodeId v) {
                  const auto i = static_cast<std::size_t>(v);
                  const double bound_i = bounds.per_net_noise_f[i];
                  if (bound_i <= 0.0) return;
                  multipliers.gamma_net[i] +=
                      rho * (scales.area_ref / bound_i) *
                      relative_violation(coupling.owned_noise_linear(v, x), bound_i);
                });
    }
  } else {
    // Multiplicative: every multiplier scales by (its constraint ratio)^ρ.
    // Ratios > 1 (violated) inflate, < 1 (slack) decay; positivity is
    // automatic. Driver edges use D_i/a_i (== 1 by construction).
    auto pow_clamped = [rho](double ratio) {
      return std::pow(std::clamp(ratio, 0.05, 20.0), rho);
    };
    for_nodes(1, circuit.num_nodes(), [&](netlist::NodeId v) {
      const auto in_nodes = circuit.inputs(v);
      const auto in_edges = circuit.input_edges(v);
      for (std::size_t idx = 0; idx < in_edges.size(); ++idx) {
        const auto j = static_cast<std::size_t>(in_nodes[idx]);
        const auto i = static_cast<std::size_t>(v);
        double ratio = 1.0;
        if (v == circuit.sink()) {
          ratio = arrivals.arrival[j] / bounds.delay_s;
        } else if (!circuit.is_driver(v)) {
          ratio = (arrivals.arrival[j] + arrivals.delay[i]) /
                  std::max(arrivals.arrival[i], 1e-30);
        }
        multipliers.lambda[static_cast<std::size_t>(in_edges[idx])] *=
            pow_clamped(ratio);
      }
    });
    // β and γ start at 0; seed them from their scale the first time their
    // constraint is violated, then update multiplicatively.
    const double cap_ratio = cap / bounds.cap_f;
    const double noise_ratio = noise / bounds.noise_f;
    if (multipliers.beta <= 0.0 && cap_ratio > 1.0) {
      multipliers.beta = 1e-3 * scales.beta_scale;
    }
    if (multipliers.gamma <= 0.0 && noise_ratio > 1.0) {
      multipliers.gamma = 1e-3 * scales.gamma_scale;
    }
    multipliers.beta *= pow_clamped(cap_ratio);
    multipliers.gamma *= pow_clamped(noise_ratio);
    if (per_net) {
      for_nodes(circuit.first_component(), circuit.end_component(),
                [&](netlist::NodeId v) {
                  const auto i = static_cast<std::size_t>(v);
                  const double bound_i = bounds.per_net_noise_f[i];
                  if (bound_i <= 0.0) return;
                  const double ratio = coupling.owned_noise_linear(v, x) / bound_i;
                  double& g = multipliers.gamma_net[i];
                  if (g <= 0.0 && ratio > 1.0) g = 1e-3 * scales.area_ref / bound_i;
                  g *= pow_clamped(ratio);
                });
    }
  }

  // A5: nonnegativity + flow conservation.
  multipliers.clamp_nonnegative();
  multipliers.project_flow(circuit, exec);
}

OgwsResult run_ogws(const netlist::Circuit& circuit,
                    const layout::CouplingSet& coupling, const Bounds& bounds,
                    const OgwsOptions& options, const OgwsControl& control) {
  LRSIZER_ASSERT(bounds.delay_s > 0.0 && bounds.cap_f > 0.0 && bounds.noise_f > 0.0);
  const OgwsWarmStart* warm = control.warm_start;
  if (warm != nullptr && warm->empty()) warm = nullptr;

  const double area_ref = std::max(timing::total_area(circuit, circuit.sizes()), 1e-12);

  // Normalization scales: multipliers live at (objective / constraint-unit)
  // magnitude, subgradients are used in bound-relative form.
  const DualScales scales{area_ref, area_ref / bounds.delay_s,
                          area_ref / bounds.cap_f, area_ref / bounds.noise_f};
  const double lambda_scale = scales.lambda_scale;

  // A1: initial multipliers (λ flow-conserving at λ-scale), or the prior
  // run's best-dual multipliers when warm-starting.
  MultiplierState multipliers(circuit);
  multipliers.init_default(circuit);
  for (double& v : multipliers.lambda) v *= lambda_scale;
  if (warm != nullptr && !warm->lambda.empty()) {
    LRSIZER_ASSERT_MSG(warm->lambda.size() == multipliers.lambda.size(),
                       "warm-start lambda does not match the circuit's edge count");
    multipliers.lambda = warm->lambda;
    multipliers.beta = warm->beta;
    multipliers.gamma = warm->gamma;
  }

  // Distributed per-net crosstalk bounds (paper §4.1 extension): one extra
  // multiplier per owning wire, driven by the same update rule.
  const bool per_net = bounds.per_net_enabled();
  if (per_net) {
    LRSIZER_ASSERT(bounds.per_net_noise_f.size() ==
                   static_cast<std::size_t>(circuit.num_nodes()));
    multipliers.gamma_net.assign(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
    if (warm != nullptr && !warm->gamma_net.empty()) {
      LRSIZER_ASSERT_MSG(warm->gamma_net.size() == multipliers.gamma_net.size(),
                         "warm-start gamma_net does not match the circuit");
      multipliers.gamma_net = warm->gamma_net;
    }
  }
  auto noise_duals = [&]() {
    return per_net ? NoiseMultipliers(multipliers.gamma, &multipliers.gamma_net)
                   : NoiseMultipliers(multipliers.gamma);
  };

  std::vector<double> x = (warm != nullptr && !warm->sizes.empty()) ? warm->sizes
                                                                    : circuit.sizes();
  LRSIZER_ASSERT(x.size() == static_cast<std::size_t>(circuit.num_nodes()));
  std::vector<double> mu;
  LrsWorkspace workspace;
  timing::ArrivalAnalysis arrivals;

  // Kernel-execution context: serial by default; with a parallel executor
  // the analyses and the LRS sweep run level-parallel (bit-identical). The
  // coupling color schedule is built once per run — it depends only on the
  // coupling graph, which is fixed here.
  util::Executor* exec = util::serial(control.executor) ? nullptr : control.executor;
  LrsRuntime lrs_runtime;
  lrs_runtime.trace = control.trace;
  std::optional<netlist::LevelSchedule> colors;
  if (exec != nullptr) {
    lrs_runtime.executor = exec;
    colors.emplace(layout::build_coupling_colors(circuit, coupling));
    lrs_runtime.colors = &*colors;
  }

  // Max relative violation over every relaxed constraint at iterate `xs`.
  auto max_rel_violation = [&](const std::vector<double>& xs, double delay,
                               double cap, double noise) -> double {
    double viol_per_net = 0.0;
    if (per_net) {
      for (netlist::NodeId v = circuit.first_component(); v < circuit.end_component();
           ++v) {
        const auto i = static_cast<std::size_t>(v);
        if (bounds.per_net_noise_f[i] <= 0.0) continue;
        viol_per_net = std::max(
            viol_per_net, relative_violation(coupling.owned_noise_linear(v, xs),
                                             bounds.per_net_noise_f[i]));
      }
    }
    return std::max({relative_violation(delay, bounds.delay_s),
                     relative_violation(cap, bounds.cap_f),
                     relative_violation(noise, bounds.noise_f), viol_per_net, 0.0});
  };

  // Area + max violation of `xs`, refreshing the workspace analyses (reused
  // buffers — no allocation after the first call).
  auto evaluate_sizes = [&](const std::vector<double>& xs) {
    timing::compute_loads(circuit, coupling, xs, options.lrs.mode, workspace.loads,
                          exec);
    timing::compute_arrivals(circuit, xs, workspace.loads, arrivals, exec);
    const double area = timing::total_area(circuit, xs);
    const double violation =
        max_rel_violation(xs, arrivals.critical_delay, timing::total_cap(circuit, xs),
                          coupling.noise_linear(xs));
    return std::pair<double, double>(area, violation);
  };

  OgwsResult result;
  result.sizes = x;
  // Certificate tracking: the best dual value is a monotone lower bound on
  // the optimal area; the best feasible iterate is a monotone upper bound.
  // A7 stops when they agree to gap_tol — robust against the oscillation of
  // individual subgradient iterates.
  double best_feasible_area = std::numeric_limits<double>::infinity();
  double best_dual = -std::numeric_limits<double>::infinity();
  double best_violation = std::numeric_limits<double>::infinity();
  bool evaluated_initial = false;

  // Traced runs snapshot x before each LRS call so the iteration span can
  // report how many nodes the sweep moved. The buffer lives outside the loop
  // (assignment reuses its capacity) and is never touched when tracing is
  // off — the disabled path stays a pointer test.
  std::vector<double> x_traced;
  std::uint64_t span_begin_us = 0;
  // One span per iteration, closing at the same points the observer fires.
  // The iteration metadata mirrors the observer's iterate plus the traced
  // nodes-moved count (x vs. the pre-LRS snapshot).
  auto record_iteration_span = [&](const OgwsIterate& it) {
    if (control.trace == nullptr) return;
    std::size_t moved = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] != x_traced[i]) ++moved;
    }
    control.trace->record("ogws_iteration", "ogws", span_begin_us,
                          control.trace->now_us(),
                          {{"k", static_cast<double>(it.k)},
                           {"dual", it.dual},
                           {"max_kkt_violation", it.max_violation},
                           {"nodes_moved", static_cast<double>(moved)},
                           {"lrs_passes", static_cast<double>(it.lrs_passes)},
                           {"rel_gap", it.rel_gap}});
  };

  if (warm != nullptr && !warm->sizes.empty()) {
    // Evaluate the warm iterate as the incumbent primal candidate. Nothing
    // is trusted from the snapshot: area and violations are recomputed under
    // the *current* bounds, so the incumbent is exactly as good as the warm
    // sizes are for this problem instance.
    const auto [area, violation] = evaluate_sizes(x);
    if (violation <= options.feas_tol) {
      best_feasible_area = area;
    } else {
      best_violation = violation;
    }
    result.area = area;
    result.max_violation = violation;
    // No certificate yet (overwritten by the first completed iteration).
    result.rel_gap = std::numeric_limits<double>::infinity();
    evaluated_initial = true;
  }

  for (int k = 1; k <= options.max_iterations; ++k) {
    if (control.stop.stop_requested()) {
      result.cancelled = true;
      if (!evaluated_initial && result.iterations == 0) {
        // Stopped before any iterate was produced: evaluate the starting
        // sizes so the returned metric fields describe the returned sizes
        // (the OgwsResult contract), and leave the certificate gap unknown
        // rather than a converged-looking 0.
        const auto [area, violation] = evaluate_sizes(x);
        result.area = area;
        result.max_violation = violation;
        result.rel_gap = std::numeric_limits<double>::infinity();
      }
      break;
    }
    util::WallTimer iter_timer;
    if (control.trace != nullptr) {
      span_begin_us = control.trace->now_us();
      x_traced = x;
    }

    // A2: node weights from edge multipliers.
    multipliers.compute_mu(circuit, mu, exec);

    // A3: inner minimization + arrival times of the sized circuit. run_lrs
    // hands back workspace.loads at the final x (hand-back contract in
    // lrs.hpp), so the arrival pass runs directly on it — no fresh load
    // pass here.
    const LrsStats lrs_stats =
        run_lrs(circuit, coupling, mu, multipliers.beta, noise_duals(),
                options.lrs, x, workspace, lrs_runtime);
    timing::compute_arrivals(circuit, x, workspace.loads, arrivals, exec);

    // Metrics of this iterate. The dual reuses the arrival analysis's Elmore
    // delays and these scalar terms instead of re-deriving any of them.
    const double area = timing::total_area(circuit, x);
    const double cap = timing::total_cap(circuit, x);
    const double noise = coupling.noise_linear(x);
    const double delay = arrivals.critical_delay;
    const double dual =
        lagrangian_value(circuit, coupling, x, mu, multipliers.sink_mu(circuit),
                         multipliers.beta, noise_duals(), bounds, arrivals,
                         LagrangianTerms{area, cap, noise});

    const double max_violation = max_rel_violation(x, delay, cap, noise);

    if (dual > best_dual) {
      best_dual = dual;
      if (control.capture_warm_start) {
        // Snapshot the multipliers that produced the best dual — the state
        // a warm-started rerun needs to reproduce this certificate in one
        // step.
        result.warm.lambda = multipliers.lambda;
        result.warm.beta = multipliers.beta;
        result.warm.gamma = multipliers.gamma;
        result.warm.gamma_net = multipliers.gamma_net;
      }
    }
    // Track the best iterate: feasible (within tolerance) with least area,
    // or — before anything feasible shows up — least violating.
    if (max_violation <= options.feas_tol) {
      if (area < best_feasible_area) {
        best_feasible_area = area;
        result.sizes = x;
        result.max_violation = max_violation;
      }
    } else if (best_feasible_area == std::numeric_limits<double>::infinity() &&
               max_violation < best_violation) {
      best_violation = max_violation;
      result.sizes = x;
      result.max_violation = max_violation;
    }

    const bool have_feasible =
        best_feasible_area < std::numeric_limits<double>::infinity();
    const double cert_gap =
        have_feasible
            ? std::max(best_feasible_area - best_dual, 0.0) / best_feasible_area
            : std::numeric_limits<double>::infinity();

    result.iterations = k;
    result.area = have_feasible ? best_feasible_area : area;
    result.dual = best_dual;
    result.rel_gap = cert_gap;
    OgwsIterate iterate{k,
                        area,
                        delay,
                        cap,
                        noise,
                        dual,
                        cert_gap,
                        max_violation,
                        lrs_stats.passes,
                        lrs_stats.nodes_processed,
                        iter_timer.seconds()};
    if (options.record_history) result.history.push_back(iterate);

    // A7: stop when the primal/dual certificates agree.
    if (cert_gap <= options.gap_tol) {
      result.converged = true;
      iterate.seconds = iter_timer.seconds();
      if (options.record_history) result.history.back().seconds = iterate.seconds;
      record_iteration_span(iterate);
      if (control.observer) control.observer(iterate);
      break;
    }

    // A4 + A5: multiplier step, ρ_k = step0 / sqrt(k) (ρ_k → 0, Σ ρ_k = ∞),
    // then nonnegativity + flow conservation. Runs level-parallel on `exec`
    // (bit-identical to serial).
    const double rho = options.step0 / std::sqrt(static_cast<double>(k));
    dual_ascent_step(circuit, coupling, bounds, options, arrivals, x, cap, noise,
                     rho, scales, multipliers, exec);

    iterate.seconds = iter_timer.seconds();
    if (options.record_history) result.history.back().seconds = iterate.seconds;
    record_iteration_span(iterate);
    if (control.observer) control.observer(iterate);
    util::log_debug() << "ogws k=" << k << " area=" << area << " gap=" << cert_gap
                      << " viol=" << max_violation;
  }

  // Working-set accounting for the Table 1 "mem" column / Figure 10(a).
  util::MemoryTracker tracker;
  multipliers.account_memory(tracker);
  tracker.add("ogws/x+mu", util::vector_bytes(x) + util::vector_bytes(mu));
  tracker.add("ogws/loads", util::vector_bytes(workspace.loads.cap_delay) +
                                util::vector_bytes(workspace.loads.cap_prime) +
                                util::vector_bytes(workspace.loads.load_in) +
                                util::vector_bytes(workspace.r_up));
  // The parallel-only color schedule is deliberately NOT tracked: the
  // working-set numbers must be bit-identical at every thread count
  // (determinism contract), and the schedule is O(components) scratch that
  // exists only while this call runs.
  tracker.add("ogws/arrivals", util::vector_bytes(arrivals.delay) +
                                   util::vector_bytes(arrivals.arrival));
  result.workspace_bytes = tracker.tracked_bytes();
  if (control.capture_warm_start) result.warm.sizes = result.sizes;
  return result;
}

}  // namespace lrsizer::core
