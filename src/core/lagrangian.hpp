// Evaluation of the Lagrangian L_{λ,β,γ} in its Theorem-4 form.
//
// Under flow conservation the arrival variables cancel and
//
//   L(x) = Σ α_i x_i + β (Σ c_i − P0) + γ (X(x) − X0)
//        + Σ_{i=1..n+s} μ_i D_i(x) − μ_sink · A0,
//
// where μ_i = Σ in-edge multipliers and μ_sink·A0 is the constant the sink
// edges contribute. min_x L = the dual function D(λ,β,γ); weak duality
// (D ≤ optimal area) is asserted by tests.
#pragma once

#include <vector>

#include "core/lrs.hpp"
#include "core/multipliers.hpp"
#include "core/problem.hpp"
#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "timing/arrival.hpp"
#include "timing/loads.hpp"

namespace lrsizer::core {

/// L at sizes `x` given node weights `mu` (from MultiplierState::compute_mu)
/// and the sink constant `mu_sink`. Runs one load pass. When `gamma`
/// carries per-net multipliers and `bounds` carries per-net bounds, the
/// distributed crosstalk terms Σ_i γ_i (X_i(x) − X_i^B) are included.
double lagrangian_value(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, const std::vector<double>& mu,
                        double mu_sink, double beta, const NoiseMultipliers& gamma,
                        const Bounds& bounds, timing::CouplingLoadMode mode);

/// Precomputed scalar terms of L at `x`: exactly timing::total_area(x),
/// timing::total_cap(x) and coupling.noise_linear(x). The OGWS loop already
/// computes all three for its iterate metrics, so handing them over stops
/// the dual evaluation from re-deriving them.
struct LagrangianTerms {
  double area = 0.0;
  double cap = 0.0;
  double noise = 0.0;
};

/// Same value, but the Elmore delays come from a precomputed arrival
/// analysis at `x` (ArrivalAnalysis::delay[i] is exactly r_i·C_i) instead of
/// a fresh load pass, and the scalar terms from `terms` — the OGWS hot loop
/// already has all of it in hand, so this skips one full
/// O(|V|+|E|+|pairs|) load pass (plus its allocation) and the three scalar
/// sweeps per iteration. Bit-identical to the load-pass overload.
double lagrangian_value(const netlist::Circuit& circuit,
                        const layout::CouplingSet& coupling,
                        const std::vector<double>& x, const std::vector<double>& mu,
                        double mu_sink, double beta, const NoiseMultipliers& gamma,
                        const Bounds& bounds, const timing::ArrivalAnalysis& arrivals,
                        const LagrangianTerms& terms);

}  // namespace lrsizer::core
