// TILOS-style greedy sensitivity sizer (Fishburn & Dunlop's classic
// heuristic, the standard pre-LR baseline).
//
// Starting from minimum sizes, repeatedly bump the size of the component on
// the critical path with the best delay-reduction-per-area-increase until
// the delay bound is met (or no move helps). Exact sensitivities: every
// candidate bump is evaluated with a full load + arrival pass, so the
// comparison against OGWS is about the *search strategy*, not model error.
//
// This baseline is delay-only — exactly the class of sizers the paper
// extends — so the benches report the noise/power it ends up with.
#pragma once

#include <vector>

#include "layout/neighbors.hpp"
#include "netlist/circuit.hpp"
#include "timing/loads.hpp"

namespace lrsizer::core {

struct TilosOptions {
  double bump = 1.3;      ///< multiplicative size step per accepted move
  int max_moves = 20000;  ///< hard stop
  timing::CouplingLoadMode mode = timing::CouplingLoadMode::kLocalOnly;
};

struct TilosResult {
  std::vector<double> sizes;
  bool met_bound = false;
  int moves = 0;
  double delay_s = 0.0;
  double area_um2 = 0.0;
};

TilosResult run_tilos(const netlist::Circuit& circuit,
                      const layout::CouplingSet& coupling, double delay_bound_s,
                      const TilosOptions& options = TilosOptions{});

}  // namespace lrsizer::core
