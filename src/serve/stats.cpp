#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lrsizer::serve {

LatencyRing::LatencyRing(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void LatencyRing::record(double seconds) {
  ring_[next_] = seconds;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  ++count_;
}

double LatencyRing::percentile(double p) const {
  if (filled_ == 0) return 0.0;
  std::vector<double> window(ring_.begin(),
                             ring_.begin() + static_cast<std::ptrdiff_t>(filled_));
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * n), 1-based; p=0 maps to the minimum.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(filled_)));
  if (rank == 0) rank = 1;
  auto nth = window.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(window.begin(), nth, window.end());
  return *nth;
}

double cache_hit_rate(const StatsSnapshot& snapshot) {
  const std::size_t lookups =
      snapshot.cache_lookup_hits + snapshot.cache_lookup_misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(snapshot.cache_lookup_hits) /
         static_cast<double>(lookups);
}

std::string format_stats_text(const StatsSnapshot& s) {
  char buf[256];
  std::string out;
  out += "serve stats\n";
  std::snprintf(buf, sizeof(buf), "  server: version=%s uptime_s=%.1f\n",
                s.version.empty() ? "?" : s.version.c_str(), s.uptime_s);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  jobs: accepted=%zu completed=%zu cache_hits=%zu "
                "cancelled=%zu errors=%zu queue_depth=%zu\n",
                s.accepted, s.completed, s.cache_hits, s.cancelled, s.errors,
                s.queue_depth);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  clients: active=%zu\n", s.active_clients);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  cache: entries=%zu bytes=%zu hits=%zu misses=%zu "
                "hit_rate=%.3f evictions=%zu mode=%s\n",
                s.cache_entries, s.cache_bytes, s.cache_lookup_hits,
                s.cache_lookup_misses, cache_hit_rate(s), s.cache_evictions,
                s.cache_disk ? "disk" : "memory");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  latency: count=%zu p50_ms=%.3f p99_ms=%.3f\n",
                s.latency_count, s.latency_p50_s * 1e3, s.latency_p99_s * 1e3);
  out += buf;
  return out;
}

}  // namespace lrsizer::serve
