#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "obs/registry.hpp"

namespace lrsizer::serve {

double histogram_percentile(const obs::Histogram& histogram, double p) {
  const std::uint64_t count = histogram.count();
  if (count == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 · n), 1-based; p=0 maps to the first
  // observation.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;

  const std::vector<double>& bounds = histogram.bounds();
  std::uint64_t before = 0;  // observations in buckets below the current one
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::uint64_t in_bucket = histogram.bucket_count(i);
    if (before + in_bucket >= rank) {
      // Linear interpolation within [lo, hi): the ranked observation is
      // somewhere in this bucket; assume uniform spread. The fraction is
      // in (0, 1], so the estimate is strictly above the lower bound —
      // and strictly positive even for the first bucket (lo = 0).
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = static_cast<double>(rank - before) /
                          static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    before += in_bucket;
  }
  // Rank falls in the +Inf overflow bucket: no finite upper bound to
  // interpolate against, so report the largest finite bound (the Prometheus
  // histogram_quantile convention).
  return bounds.empty() ? 0.0 : bounds.back();
}

double cache_hit_rate(const StatsSnapshot& snapshot) {
  const std::size_t lookups =
      snapshot.cache_lookup_hits + snapshot.cache_lookup_misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(snapshot.cache_lookup_hits) /
         static_cast<double>(lookups);
}

std::string format_stats_text(const StatsSnapshot& s) {
  char buf[256];
  std::string out;
  out += "serve stats\n";
  std::snprintf(buf, sizeof(buf), "  server: version=%s state=%s uptime_s=%.1f\n",
                s.version.empty() ? "?" : s.version.c_str(),
                s.state.empty() ? "?" : s.state.c_str(), s.uptime_s);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  jobs: accepted=%zu completed=%zu cache_hits=%zu "
                "cancelled=%zu timeouts=%zu errors=%zu shed=%zu eco=%zu "
                "queue_depth=%zu\n",
                s.accepted, s.completed, s.cache_hits, s.cancelled, s.timeouts,
                s.errors, s.shed, s.eco_jobs, s.queue_depth);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  clients: active=%zu\n", s.active_clients);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  cache: entries=%zu bytes=%zu hits=%zu misses=%zu "
                "warm_hits=%zu eco_hits=%zu hit_rate=%.3f evictions=%zu "
                "corrupt=%zu mode=%s\n",
                s.cache_entries, s.cache_bytes, s.cache_lookup_hits,
                s.cache_lookup_misses, s.cache_warm_hits, s.cache_eco_hits,
                cache_hit_rate(s), s.cache_evictions, s.cache_corrupt,
                s.cache_disk ? "disk" : "memory");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  latency: count=%zu p50_ms=%.3f p99_ms=%.3f\n",
                s.latency_count, s.latency_p50_s * 1e3, s.latency_p99_s * 1e3);
  out += buf;
  return out;
}

}  // namespace lrsizer::serve
