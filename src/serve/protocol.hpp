// The lrsizer-serve-v3 wire protocol: newline-delimited JSON messages, one
// object per line in both directions. This header is the single in-code
// mirror of the spec in docs/SERVING.md — request parsing and response
// building live here, free of any threading, so the protocol round-trips
// under test without a running server.
//
// v2 added the stats request/response pair (fleet observability) on top of
// v1. v3 adds the reliability surface (docs/RELIABILITY.md): a machine-
// readable "code" on every error response (plus "retry_after_ms" on
// `overloaded` ones), the request "deadline_ms" field, the result
// "timeout" marker for deadline-cut partial results, and the stats
// server.state / jobs.timeouts / jobs.shed / cache.corrupt fields. Every
// v2 message is unchanged, so v2 clients keep working against a v3 server
// apart from the schema string in hello.
//
// Requests:  size | cancel | stats | shutdown
// Responses: hello | accepted | progress | result | cancelled | stats | error
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/status.hpp"
#include "core/ogws.hpp"
#include "runtime/batch.hpp"
#include "runtime/json.hpp"
#include "serve/stats.hpp"

namespace lrsizer::serve {

/// One parsed `size` request: the job to run plus its streaming knobs.
struct SizeRequest {
  /// Client-chosen correlation id; echoed on every response for this job.
  std::string id;
  /// Assembled job (name = id; netlist from "input", options = server
  /// defaults overridden by the request's "options" object).
  runtime::BatchJob job;
  /// Emit a progress response every Nth OGWS iteration (0 = none).
  int progress_every = 0;
  /// Include the final sparse size vector in the result response.
  bool want_sizes = false;
  /// Record a per-job flow trace (obs::TraceSession) and attach it to the
  /// result response as a "trace" object (lrsizer-trace-v1). Only cold runs
  /// carry one — cache hits and deduped followers answer from the stored
  /// report, which has no trace.
  bool trace = false;
  /// Cache key of a completed base run to ECO warm-start from (docs/ECO.md).
  /// Empty: none named — the server may still auto-detect a near-miss base
  /// when running with --eco. Mutually exclusive with "warm_start" (an ECO
  /// seed IS a warm start). A named base that is no longer cached simply
  /// runs cold — serving caches are best-effort.
  std::string eco_base;
  /// Wall-clock budget for this job in milliseconds, counted from admission
  /// (queue wait included). -1: the request named none — the server default
  /// (--default-deadline-ms) applies. 0: explicitly unlimited, overriding
  /// the server default. When the deadline fires the server cancels the job
  /// via its stop_source and answers with the best partial result, marked
  /// "timeout": true (docs/RELIABILITY.md §Deadlines).
  std::int64_t deadline_ms = -1;
};

struct Request {
  enum class Kind { kSize, kCancel, kStats, kShutdown };
  Kind kind = Kind::kShutdown;
  SizeRequest size;       ///< kSize
  std::string cancel_id;  ///< kCancel
  std::string stats_id;   ///< kStats (optional correlation id, may be empty)
};

/// Parse one request line against the server's default options. On failure
/// the Status message is what the error response should carry; *out is
/// untouched. `base` supplies every option the request does not override.
/// `error_id` (optional) receives the request's id whenever the line parsed
/// far enough to have one, so even rejections can echo it.
api::Status parse_request(const std::string& line,
                          const core::FlowOptions& base, Request* out,
                          std::string* error_id = nullptr);

/// Override `options` fields from a request "options" object. Accepted keys
/// (matching the CLI flags): vectors, use_woss, delay_bound, power_bound,
/// noise_bound, per_net_noise_bound, initial_size, threads, max_iterations.
/// Seeds are NOT an options key — the request-level "seed" field is the one
/// seed knob (it covers generation and elaboration together, so two
/// requests with equal seeds always mean the same circuit). Unknown keys
/// are errors; the result is re-validated via api::validate_options.
api::Status apply_request_options(const runtime::Json& overrides,
                                  core::FlowOptions* options);

// ---- response builders (serialize with .dump() — compact, one line) --------

/// First line the server emits; names the schema, server version, worker
/// count and cache mode ("memory" or "disk").
runtime::Json hello_json(const std::string& version, int jobs,
                         const std::string& cache_mode);

/// The job was admitted; `key` is its cache key (clients can correlate
/// dedupe across jobs).
runtime::Json accepted_json(const std::string& id, const std::string& key);

runtime::Json progress_json(const std::string& id,
                            const core::OgwsIterate& iterate);

/// Terminal success. `job` is the lrsizer-batch-v1 job object — served
/// verbatim from the cache on a hit, so duplicate jobs get byte-identical
/// payloads. `sizes` (optional) is the final sparse size vector; `trace`
/// (optional) the job's lrsizer-trace-v1 document (requested via "trace",
/// cold runs only). `timeout` marks a deadline-cut partial result: the job
/// object then has "cancelled": true and carries the best iterate's KKT
/// state; the key is absent entirely on normal results, keeping cache-hit
/// payloads byte-identical to pre-deadline builds.
runtime::Json result_json(
    const std::string& id, bool cache_hit, const runtime::Json& job,
    const std::vector<std::pair<std::int32_t, double>>* sizes,
    const runtime::Json* trace = nullptr, bool timeout = false);

/// Terminal cancellation. `partial_job` (optional) carries the best partial
/// result when the cancel landed mid-OGWS.
runtime::Json cancelled_json(const std::string& id,
                             const runtime::Json* partial_job);

/// Answer to a stats request: job counters, client/queue gauges, cache
/// counters (exact/warm/eco hit kinds) + hit rate, and p50/p99 job latency
/// derived from the obs latency histogram. `id` (may be empty) echoes the
/// request's optional correlation id.
runtime::Json stats_json(const std::string& id, const StatsSnapshot& snapshot);

/// Malformed request or failed job. `id` is empty when the line never
/// parsed far enough to have one. `code` is the machine-readable reason,
/// one of:
///
///   parse         the line was not a valid request
///   oversized     the line exceeded --max-line-bytes
///   duplicate_id  a job with this id is already active for this client
///   not_found     cancel named no active job
///   overloaded    admission control shed the job — retry after the
///                 response's "retry_after_ms" (set iff code=overloaded)
///   shutdown      the server is draining and accepts no new work
///   deadline      the job's deadline fired before any usable partial result
///   failed        the job ran and failed
///
/// `retry_after_ms` < 0 omits the field.
runtime::Json error_json(const std::string& id, const std::string& code,
                         const std::string& message,
                         std::int64_t retry_after_ms = -1);

}  // namespace lrsizer::serve
