#include "serve/protocol.hpp"

#include <cmath>
#include <stdexcept>

#include "api/options.hpp"
#include "fault/fault.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_profiles.hpp"

namespace lrsizer::serve {

namespace {

using api::Status;
using runtime::Json;

Status expect(bool ok, const std::string& message) {
  return ok ? Status::Ok() : Status::InvalidArgument(message);
}

/// Range-checked integer extraction from an untrusted number: the
/// double→integer cast below is only defined inside the target range, so
/// out-of-range (or NaN) values must be rejected *before* casting. Bounds
/// are inclusive.
bool checked_integer(const Json& value, double lo, double hi,
                     std::int64_t* out) {
  const double d = value.as_number();
  if (!(d >= lo && d <= hi)) return false;  // also rejects NaN
  if (d != std::floor(d)) return false;     // 0.5 must not truncate to 0
  *out = static_cast<std::int64_t>(d);
  return true;
}

constexpr double kMaxInt32 = 2147483647.0;
/// Largest integer a double represents exactly — the honest ceiling for
/// 64-bit seeds arriving as JSON numbers.
constexpr double kMaxExactDouble = 9007199254740992.0;  // 2^53

bool known_profile(const std::string& name) {
  if (name == "c17") return true;
  for (const auto& profile : netlist::iscas85_profiles()) {
    if (profile.name == name) return true;
  }
  return false;
}

/// "input": {"profile": name} (synthesized, or the real c17) or
/// {"bench": text} (inline .bench). File paths are deliberately not
/// accepted: a serving process should not read arbitrary paths on behalf
/// of remote clients.
Status parse_input(const Json& input, std::uint64_t seed,
                   runtime::BatchJob* job) {
  if (!input.is_object()) {
    return Status::InvalidArgument("\"input\" must be an object");
  }
  const Json* profile = input.find("profile");
  const Json* bench = input.find("bench");
  if ((profile != nullptr) == (bench != nullptr)) {
    return Status::InvalidArgument(
        "\"input\" needs exactly one of \"profile\" or \"bench\"");
  }
  if (profile) {
    if (!profile->is_string() || !known_profile(profile->as_string())) {
      return Status::InvalidArgument(
          "unknown profile " + profile->dump() +
          " (see `lrsizer profiles` for the built-in names)");
    }
    const std::string& name = profile->as_string();
    if (name == "c17") {
      job->netlist = netlist::parse_bench_string(netlist::kIscas85C17);
    } else {
      job->netlist =
          netlist::generate_circuit(netlist::spec_for_profile(name, seed));
    }
    return Status::Ok();
  }
  if (!bench->is_string()) {
    return Status::InvalidArgument("\"bench\" must be a string of .bench text");
  }
  try {
    job->netlist = netlist::parse_bench_string(bench->as_string());
  } catch (const netlist::BenchParseError& e) {
    return Status::InvalidArgument(std::string("bench input: ") + e.what());
  }
  return Status::Ok();
}

}  // namespace

Status apply_request_options(const Json& overrides, core::FlowOptions* options) {
  if (!overrides.is_object()) {
    return Status::InvalidArgument("\"options\" must be an object");
  }
  api::FlowOptionsBuilder builder(*options);
  for (const auto& [key, value] : overrides.as_object()) {
    const bool is_number = value.is_number();
    const bool is_bool = value.is_bool();
    // Integer knobs go through the range check so semantic validation
    // (validate_options naming the field) sees a defined value; values a
    // 32-bit int cannot hold are rejected here instead.
    std::int64_t integer = 0;
    const bool is_i32 =
        is_number && checked_integer(value, -kMaxInt32 - 1, kMaxInt32, &integer);
    if (key == "vectors" && is_i32) {
      builder.vectors(static_cast<std::int32_t>(integer));
    } else if (key == "use_woss" && is_bool) {
      builder.use_woss(value.as_bool());
    } else if (key == "delay_bound" && is_number) {
      builder.delay_bound(value.as_number());
    } else if (key == "power_bound" && is_number) {
      builder.power_bound(value.as_number());
    } else if (key == "noise_bound" && is_number) {
      builder.noise_bound(value.as_number());
    } else if (key == "per_net_noise_bound" && is_number) {
      builder.per_net_noise_bound(value.as_number());
    } else if (key == "initial_size" && is_number) {
      builder.initial_size(value.as_number());
    } else if (key == "threads" && is_i32) {
      builder.threads(static_cast<int>(integer));
    } else if (key == "max_iterations" && is_i32) {
      builder.max_iterations(static_cast<int>(integer));
    } else if (key == "sweep" && value.is_string()) {
      const std::string& name = value.as_string();
      if (name == "dense") {
        builder.sweep_mode(core::SweepMode::kDense);
      } else if (name == "worklist") {
        builder.sweep_mode(core::SweepMode::kWorklist);
      } else {
        return Status::InvalidArgument(
            "option \"sweep\" must be \"dense\" or \"worklist\", got \"" + name +
            "\"");
      }
    } else {
      return Status::InvalidArgument(
          "unknown, mistyped or out-of-range option \"" + key +
          "\": " + value.dump());
    }
  }
  return builder.build(*options);
}

Status parse_request(const std::string& line, const core::FlowOptions& base,
                     Request* out, std::string* error_id) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const runtime::JsonParseError& e) {
    return Status::InvalidArgument(e.what());
  }
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  if (error_id) {
    if (const Json* found = doc.find("id"); found && found->is_string()) {
      *error_id = found->as_string();
    }
  }
  if (LRSIZER_FAULT_POINT("json.parse")) {
    // After the id extraction, so the injected rejection still echoes the
    // request id and a chaos client can retry it.
    return Status::InvalidArgument("fault injected: json.parse");
  }
  const Json* type = doc.find("type");
  if (!type || !type->is_string()) {
    return Status::InvalidArgument("request needs a string \"type\"");
  }

  Request request;
  if (type->as_string() == "shutdown") {
    request.kind = Request::Kind::kShutdown;
    *out = std::move(request);
    return Status::Ok();
  }
  if (type->as_string() == "stats") {
    // The id is optional here: stats is a fire-and-forget poll, and a
    // client with nothing else in flight has no correlation to do.
    request.kind = Request::Kind::kStats;
    if (const Json* id = doc.find("id")) {
      if (!id->is_string()) {
        return Status::InvalidArgument("\"id\" must be a string");
      }
      request.stats_id = id->as_string();
    }
    *out = std::move(request);
    return Status::Ok();
  }

  const Json* id = doc.find("id");
  if (const Status st =
          expect(id && id->is_string() && !id->as_string().empty(),
                 "request needs a non-empty string \"id\"");
      !st.ok()) {
    return st;
  }

  if (type->as_string() == "cancel") {
    request.kind = Request::Kind::kCancel;
    request.cancel_id = id->as_string();
    *out = std::move(request);
    return Status::Ok();
  }
  if (type->as_string() != "size") {
    return Status::InvalidArgument("unknown request type " + type->dump());
  }

  request.kind = Request::Kind::kSize;
  request.size.id = id->as_string();
  request.size.job.name = id->as_string();
  request.size.job.options = base;
  // Default seed: the server's (base.elab.seed = the CLI --seed), so a
  // request without "seed" generates AND elaborates exactly like the
  // equivalent `lrsizer run` — never a mixed generation/elaboration pair.
  request.size.job.seed = base.elab.seed;

  if (const Json* seed = doc.find("seed")) {
    std::int64_t value = 0;
    if (!seed->is_number() ||
        !checked_integer(*seed, 0, kMaxExactDouble, &value)) {
      return Status::InvalidArgument(
          "\"seed\" must be an integer in [0, 2^53]");
    }
    request.size.job.seed = static_cast<std::uint64_t>(value);
    request.size.job.options.elab.seed = request.size.job.seed;
  }
  if (const Json* options = doc.find("options")) {
    if (const Status st =
            apply_request_options(*options, &request.size.job.options);
        !st.ok()) {
      return st;
    }
  }
  const Json* input = doc.find("input");
  if (!input) return Status::InvalidArgument("size request needs \"input\"");
  if (const Status st =
          parse_input(*input, request.size.job.seed, &request.size.job);
      !st.ok()) {
    return st;
  }
  if (const Json* progress = doc.find("progress")) {
    std::int64_t value = 0;
    if (!progress->is_number() ||
        !checked_integer(*progress, 0, kMaxInt32, &value)) {
      return Status::InvalidArgument(
          "\"progress\" must be an integer in [0, 2^31)");
    }
    request.size.progress_every = static_cast<int>(value);
  }
  if (const Json* sizes = doc.find("sizes")) {
    if (!sizes->is_bool()) {
      return Status::InvalidArgument("\"sizes\" must be a bool");
    }
    request.size.want_sizes = sizes->as_bool();
  }
  if (const Json* trace = doc.find("trace")) {
    if (!trace->is_bool()) {
      return Status::InvalidArgument("\"trace\" must be a bool");
    }
    request.size.trace = trace->as_bool();
  }
  if (const Json* warm = doc.find("warm_start")) {
    if (!warm->is_array()) {
      return Status::InvalidArgument(
          "\"warm_start\" must be an array of [node, size] pairs");
    }
    for (const Json& pair : warm->as_array()) {
      std::int64_t node = 0;
      if (!pair.is_array() || pair.size() != 2 ||
          !pair.as_array()[0].is_number() ||
          !checked_integer(pair.as_array()[0], 0, kMaxInt32, &node) ||
          !pair.as_array()[1].is_number()) {
        return Status::InvalidArgument(
            "\"warm_start\" entries must be [node, size] pairs with an "
            "integer node id");
      }
      request.size.job.warm_sizes.emplace_back(
          static_cast<std::int32_t>(node), pair.as_array()[1].as_number());
    }
  }
  if (const Json* deadline = doc.find("deadline_ms")) {
    std::int64_t value = 0;
    if (!deadline->is_number() ||
        !checked_integer(*deadline, 0, kMaxExactDouble, &value)) {
      return Status::InvalidArgument(
          "\"deadline_ms\" must be an integer in [0, 2^53] (0 = unlimited)");
    }
    request.size.deadline_ms = value;
  }
  if (const Json* eco = doc.find("eco_base")) {
    if (!eco->is_string() || eco->as_string().empty()) {
      return Status::InvalidArgument(
          "\"eco_base\" must be a non-empty cache-key string");
    }
    if (!request.size.job.warm_sizes.empty()) {
      return Status::InvalidArgument(
          "\"eco_base\" and \"warm_start\" are mutually exclusive — an ECO "
          "seed is a warm start");
    }
    request.size.eco_base = eco->as_string();
  }
  *out = std::move(request);
  return Status::Ok();
}

// ---- response builders ------------------------------------------------------

Json hello_json(const std::string& version, int jobs,
                const std::string& cache_mode) {
  Json j = Json::object();
  j.set("schema", "lrsizer-serve-v3");
  j.set("type", "hello");
  j.set("version", version);
  j.set("jobs", static_cast<std::int64_t>(jobs));
  j.set("cache", cache_mode);
  return j;
}

Json accepted_json(const std::string& id, const std::string& key) {
  Json j = Json::object();
  j.set("type", "accepted");
  j.set("id", id);
  j.set("key", key);
  return j;
}

Json progress_json(const std::string& id, const core::OgwsIterate& iterate) {
  Json j = Json::object();
  j.set("type", "progress");
  j.set("id", id);
  j.set("k", static_cast<std::int64_t>(iterate.k));
  j.set("area", iterate.area);
  j.set("dual", iterate.dual);
  j.set("rel_gap", iterate.rel_gap);
  j.set("max_violation", iterate.max_violation);
  return j;
}

Json result_json(const std::string& id, bool cache_hit, const Json& job,
                 const std::vector<std::pair<std::int32_t, double>>* sizes,
                 const Json* trace, bool timeout) {
  Json j = Json::object();
  j.set("type", "result");
  j.set("id", id);
  j.set("cache_hit", cache_hit);
  // Key absent on normal results (not `false`): cache-hit payloads must
  // stay byte-identical to pre-deadline builds.
  if (timeout) j.set("timeout", true);
  j.set("job", job);
  if (sizes) {
    Json array = Json::array();
    for (const auto& [node, size] : *sizes) {
      Json pair = Json::array();
      pair.push_back(static_cast<std::int64_t>(node));
      pair.push_back(size);
      array.push_back(pair);
    }
    j.set("sizes", array);
  }
  if (trace) j.set("trace", *trace);
  return j;
}

Json cancelled_json(const std::string& id, const Json* partial_job) {
  Json j = Json::object();
  j.set("type", "cancelled");
  j.set("id", id);
  if (partial_job) j.set("job", *partial_job);
  return j;
}

Json stats_json(const std::string& id, const StatsSnapshot& s) {
  const auto count = [](std::size_t n) {
    return static_cast<std::int64_t>(n);
  };
  Json jobs = Json::object();
  jobs.set("accepted", count(s.accepted));
  jobs.set("completed", count(s.completed));
  jobs.set("cache_hits", count(s.cache_hits));
  jobs.set("cancelled", count(s.cancelled));
  jobs.set("timeouts", count(s.timeouts));
  jobs.set("errors", count(s.errors));
  jobs.set("shed", count(s.shed));
  jobs.set("eco", count(s.eco_jobs));
  jobs.set("queue_depth", count(s.queue_depth));

  Json clients = Json::object();
  clients.set("active", count(s.active_clients));

  Json cache = Json::object();
  cache.set("entries", count(s.cache_entries));
  cache.set("bytes", count(s.cache_bytes));
  cache.set("hits", count(s.cache_lookup_hits));
  cache.set("misses", count(s.cache_lookup_misses));
  cache.set("warm_hits", count(s.cache_warm_hits));
  cache.set("eco_hits", count(s.cache_eco_hits));
  cache.set("hit_rate", cache_hit_rate(s));
  cache.set("evictions", count(s.cache_evictions));
  cache.set("corrupt", count(s.cache_corrupt));
  cache.set("mode", s.cache_disk ? "disk" : "memory");

  Json latency = Json::object();
  latency.set("count", count(s.latency_count));
  latency.set("p50_ms", s.latency_p50_s * 1e3);
  latency.set("p99_ms", s.latency_p99_s * 1e3);

  Json server = Json::object();
  server.set("version", s.version);
  server.set("state", s.state);
  server.set("start_time_unix_s", s.start_time_unix_s);
  server.set("uptime_s", s.uptime_s);

  Json j = Json::object();
  j.set("type", "stats");
  if (!id.empty()) j.set("id", id);
  j.set("server", server);
  j.set("jobs", jobs);
  j.set("clients", clients);
  j.set("cache", cache);
  j.set("latency", latency);
  return j;
}

Json error_json(const std::string& id, const std::string& code,
                const std::string& message, std::int64_t retry_after_ms) {
  Json j = Json::object();
  j.set("type", "error");
  if (!id.empty()) j.set("id", id);
  j.set("code", code);
  if (retry_after_ms >= 0) j.set("retry_after_ms", retry_after_ms);
  j.set("message", message);
  return j;
}

}  // namespace lrsizer::serve
