#include "serve/listen.hpp"

#include <cstdio>
#include <iostream>

#include "obs/gzip.hpp"
#include "obs/http.hpp"
#include "obs/prometheus.hpp"
#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LRSIZER_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#endif

namespace lrsizer::serve {

#if defined(LRSIZER_HAVE_SOCKETS)

namespace {

/// Write one response line (plus newline) to a socket, whole or not at all
/// from the caller's perspective: EINTR is retried, any other short write
/// means the client is gone — false tells the caller to stop writing, and
/// the event loop reaps the connection. MSG_NOSIGNAL because a
/// disconnected client must surface as a write error, not a
/// process-killing SIGPIPE — this is a long-lived server (per-fd
/// SO_NOSIGPIPE covers platforms without the flag).
bool write_all_fd(int fd, const std::string& out) {
  if (LRSIZER_FAULT_POINT("socket.write")) return false;
  std::size_t off = 0;
  while (off < out.size()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
#endif
    if (n < 0 && errno == EINTR) continue;  // retry, or the line tears
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line_fd(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  return write_all_fd(fd, out);
}

/// Read lines from one connected fd (the stdin transport). Reads are
/// poll-gated so a stop request (Ctrl-C) is noticed within ~500 ms even
/// while the peer is idle.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF, error, or stop request; strips the trailing newline
  /// like std::getline.
  bool read_line(std::string& line, const std::stop_token& stop) {
    while (true) {
      const std::size_t newline = buffer_.find('\n', pos_);
      if (newline != std::string::npos) {
        line.assign(buffer_, pos_, newline - pos_);
        pos_ = newline + 1;
        return true;
      }
      buffer_.erase(0, pos_);
      pos_ = 0;
      if (!fill(stop)) {
        // EOF with a final unterminated line still hands it over.
        if (buffer_.empty()) return false;
        line = std::move(buffer_);
        buffer_.clear();
        return true;
      }
    }
  }

 private:
  /// Append at least one byte to the buffer; false on EOF/error/stop.
  bool fill(const std::stop_token& stop) {
    while (true) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 500);
      if (stop.stop_requested()) return false;
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

/// One accepted connection in the event loop: its fd, its Server client
/// handle, and the bytes received that do not yet form a complete line.
struct Conn {
  int fd = -1;
  Server::ClientId client = 0;  ///< jsonl connections only (0 = none)
  /// Set by the response sink (worker threads) when a write fails; the
  /// event loop reaps the connection on its next pass. shared_ptr because
  /// the sink closure outlives Conn vector reallocations.
  std::shared_ptr<std::atomic<bool>> broken;
  std::string buffer;
  /// An over-budget line was rejected; drop bytes until its newline.
  bool discarding = false;
  bool dead = false;
  /// Accepted on the metrics listener: bytes go through `parser` and the
  /// connection answers exactly one HTTP request (Connection: close).
  bool http = false;
  obs::HttpRequestParser parser;
};

/// Open a loopback TCP listener (`port` 0 = ephemeral). Returns the fd, or
/// -1 with the reason logged. `*actual` receives the bound port.
int open_listener(std::uint16_t port, const char* what, std::uint16_t* actual) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    util::log_error() << "serve: socket() for " << what << ": "
                      << std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 16) < 0) {
    util::log_error() << "serve: cannot listen (" << what << ") on 127.0.0.1:"
                      << port << ": " << std::strerror(errno);
    ::close(listener);
    return -1;
  }
  *actual = port;
  if (port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *actual = ntohs(bound.sin_port);
    }
  }
  return listener;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Answer one complete HTTP request on a metrics connection and close it.
void respond_http(Conn& conn, Server& server) {
  const obs::HttpRequest& req = conn.parser.request();
  std::string response;
  if (req.method != "GET") {
    response = obs::http_response(405, reason_phrase(405),
                                  "text/plain; charset=utf-8",
                                  "method not allowed\n");
  } else if (req.target == "/metrics") {
    const std::string body =
        obs::render_prometheus(server.registry().snapshot());
    // Scrapes grow with the metric surface; honor Accept-Encoding: gzip when
    // this build has zlib. A failed compression (or a zlib-less build) falls
    // back to the identity response — gzip here is an optimization, never a
    // requirement.
    std::string gzipped;
    if (conn.parser.accept_gzip() && obs::gzip_available() &&
        obs::gzip_compress(body, &gzipped)) {
      response = obs::http_response(
          200, reason_phrase(200), "text/plain; version=0.0.4; charset=utf-8",
          gzipped, "Content-Encoding: gzip\r\nVary: Accept-Encoding\r\n");
    } else {
      response = obs::http_response(
          200, reason_phrase(200), "text/plain; version=0.0.4; charset=utf-8",
          body);
    }
  } else if (req.target == "/healthz") {
    // 200 while the event loop is alive and accepting work; 503 once a
    // drain begins so load balancers stop routing here while in-flight
    // jobs finish. Liveness, not a job-level health judgement.
    if (server.draining()) {
      response = obs::http_response(503, reason_phrase(503),
                                    "text/plain; charset=utf-8", "draining\n");
    } else {
      response = obs::http_response(200, reason_phrase(200),
                                    "text/plain; charset=utf-8", "ok\n");
    }
  } else {
    response = obs::http_response(404, reason_phrase(404),
                                  "text/plain; charset=utf-8", "not found\n");
  }
  write_all_fd(conn.fd, response);
  conn.dead = true;  // Connection: close
}

}  // namespace

bool listen_available() { return true; }

void serve_stdin(Server& server, const std::stop_token& stop) {
  server.hello();
  LineReader input(0);
  std::string line;
  while (!stop.stop_requested() && !server.draining() &&
         input.read_line(line, stop)) {
    if (!server.handle_line(line)) break;
  }
  server.drain();
}

int listen_and_serve(std::uint16_t port, Server& server,
                     std::atomic<std::uint16_t>* bound_port) {
  ListenOptions options;
  options.port = port;
  options.bound_port = bound_port;
  return listen_and_serve(options, server);
}

int listen_and_serve(const ListenOptions& listen_options, Server& server) {
  const std::stop_token stop = server.options().stop;
  const std::size_t max_line = server.options().max_line_bytes;

  std::uint16_t actual_port = 0;
  const int listener = open_listener(listen_options.port, "jsonl", &actual_port);
  if (listener < 0) return 1;
  int metrics_listener = -1;
  std::uint16_t metrics_port = 0;
  if (listen_options.metrics_port >= 0) {
    metrics_listener =
        open_listener(static_cast<std::uint16_t>(listen_options.metrics_port),
                      "metrics", &metrics_port);
    if (metrics_listener < 0) {
      ::close(listener);
      return 1;
    }
  }
  if (listen_options.bound_port) listen_options.bound_port->store(actual_port);
  if (listen_options.metrics_bound_port) {
    listen_options.metrics_bound_port->store(metrics_port);
  }
  // Announced unconditionally (not through the leveled logger): tooling
  // that launches `serve --listen 0` parses these lines for the actual
  // ports.
  std::fprintf(stderr, "lrsizer serve: listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(actual_port));
  if (metrics_listener >= 0) {
    std::fprintf(stderr, "lrsizer serve: metrics on 127.0.0.1:%u\n",
                 static_cast<unsigned>(metrics_port));
  }
  std::fflush(stderr);

  const int one = 1;
  (void)one;  // only used under SO_NOSIGPIPE below
  // pfds layout: jsonl listener, then the metrics listener (when enabled),
  // then one slot per connection.
  const std::size_t conn_base = metrics_listener >= 0 ? 2 : 1;
  std::vector<Conn> conns;
  bool shutdown_requested = false;
  while (!shutdown_requested && !stop.stop_requested()) {
    // The 500 ms timeout bounds how long a stop request (Ctrl-C) can go
    // unnoticed while every fd is idle.
    std::vector<pollfd> pfds;
    pfds.reserve(conns.size() + conn_base);
    pfds.push_back({listener, POLLIN, 0});
    if (metrics_listener >= 0) pfds.push_back({metrics_listener, POLLIN, 0});
    for (const Conn& conn : conns) pfds.push_back({conn.fd, POLLIN, 0});
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 500);
    if (stop.stop_requested()) break;
    // Graceful drain (SIGTERM): new jobs are already being refused with a
    // "shutdown" error by the Server; leave the loop once the last
    // in-flight job has flushed its terminal response. Until then keep
    // polling so those responses reach their clients and /metrics and
    // /healthz keep answering (503) for the ops side.
    if (server.draining() && server.idle()) break;
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    // Serve existing clients before accepting new ones, so a full house
    // cannot starve connected clients of reads.
    for (std::size_t i = 0; i < conns.size() && !shutdown_requested; ++i) {
      Conn& conn = conns[i];
      const short revents = pfds[i + conn_base].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (conn.http) {
        // Metrics connection: feed the parser; answer (or reject) once it
        // settles. A peer that dribbles partial headers and stops
        // (slowloris) holds only its own fd + a capped parser buffer, and
        // EOF simply closes — the jsonl side never blocks on it.
        char chunk[4096];
        const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          conn.dead = true;
          continue;
        }
        switch (conn.parser.feed(chunk, static_cast<std::size_t>(n))) {
          case obs::HttpRequestParser::State::kIncomplete:
            break;
          case obs::HttpRequestParser::State::kComplete:
            respond_http(conn, server);
            break;
          case obs::HttpRequestParser::State::kBad: {
            const int status = conn.parser.error_status();
            write_all_fd(conn.fd,
                         obs::http_response(status, reason_phrase(status),
                                            "text/plain; charset=utf-8",
                                            conn.parser.error_reason() + "\n"));
            conn.dead = true;
            break;
          }
        }
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // EOF (or error): a final unterminated line still counts, matching
        // the stdin transport.
        if (!conn.buffer.empty() && !conn.discarding) {
          if (!server.handle_line(conn.client, conn.buffer)) {
            shutdown_requested = true;
          }
        }
        conn.dead = true;
        continue;
      }
      conn.buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = conn.buffer.find('\n', start);
        if (newline == std::string::npos) break;
        std::string line = conn.buffer.substr(start, newline - start);
        start = newline + 1;
        if (conn.discarding) {
          // The tail of an already-rejected oversized line.
          conn.discarding = false;
          continue;
        }
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!server.handle_line(conn.client, line)) {
          shutdown_requested = true;
          break;
        }
      }
      conn.buffer.erase(0, start);
      if (conn.buffer.size() > max_line) {
        // Reject once, then drop bytes until the line finally ends —
        // bounding per-connection memory against a peer that never sends
        // a newline.
        if (!conn.discarding) {
          server.reject(conn.client,
                        "request line exceeds " + std::to_string(max_line) +
                            " bytes");
          conn.discarding = true;
        }
        conn.buffer.clear();
      }
    }

    // Accept new connections.
    if (!shutdown_requested && (pfds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        if (server.draining()) {
          // New work is no longer welcome; close immediately rather than
          // greet a client whose every request would be refused. Metrics
          // connections (below) stay served throughout the drain.
          ::close(fd);
        } else {
#if defined(SO_NOSIGPIPE)
          // BSD/macOS counterpart of MSG_NOSIGNAL in write_line_fd.
          ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
          Conn conn;
          conn.fd = fd;
          conn.broken = std::make_shared<std::atomic<bool>>(false);
          const std::shared_ptr<std::atomic<bool>> broken = conn.broken;
          conn.client =
              server.add_client([fd, broken](const std::string& line) {
                // Once one write fails the peer is gone; swallow the rest
                // of its responses instead of hammering a dead socket.
                if (broken->load(std::memory_order_relaxed)) return;
                if (!write_line_fd(fd, line)) {
                  broken->store(true, std::memory_order_relaxed);
                }
              });
          server.hello(conn.client);
          conns.push_back(std::move(conn));
        }
      }
    }
    if (!shutdown_requested && metrics_listener >= 0 &&
        (pfds[1].revents & POLLIN) != 0) {
      const int fd = ::accept(metrics_listener, nullptr, nullptr);
      if (fd >= 0) {
#if defined(SO_NOSIGPIPE)
        ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
        Conn conn;
        conn.fd = fd;
        conn.http = true;  // no Server client: scrapes never enter the
                           // jsonl protocol or the job loop
        conns.push_back(std::move(conn));
      }
    }

    // Reap disconnected clients: cancel their jobs and drop their pending
    // responses before the fd closes, so no write ever hits a closed fd.
    // A failed response write (broken sink) is the same condition observed
    // from the other direction — reap those too; the server itself
    // survives the loss of any client.
    for (std::size_t i = 0; i < conns.size();) {
      if (conns[i].broken &&
          conns[i].broken->load(std::memory_order_relaxed)) {
        conns[i].dead = true;
      }
      if (!conns[i].dead) {
        ++i;
        continue;
      }
      if (conns[i].client != 0) server.remove_client(conns[i].client);
      ::close(conns[i].fd);
      conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  // Drain before detaching sinks: in-flight jobs (cancelled by the stop
  // token on Ctrl-C, or running to completion on client shutdown) flush
  // their terminal responses to clients that are still connected.
  server.drain();
  for (const Conn& conn : conns) {
    if (conn.client != 0) server.remove_client(conn.client);
    ::close(conn.fd);
  }
  ::close(listener);
  if (metrics_listener >= 0) ::close(metrics_listener);
  return 0;
}

#else  // !LRSIZER_HAVE_SOCKETS

bool listen_available() { return false; }

int listen_and_serve(std::uint16_t, Server&, std::atomic<std::uint16_t>*) {
  util::log_error() << "serve: --listen is unavailable on this platform "
                       "(no BSD sockets); use stdin-jsonl mode";
  return 1;
}

int listen_and_serve(const ListenOptions&, Server& server) {
  return listen_and_serve(0, server, nullptr);
}

void serve_stdin(Server& server, const std::stop_token&) {
  server.serve_stream(std::cin);
}

#endif

}  // namespace lrsizer::serve
